//! The persistent-worker executor: threads spawned **once per solve**,
//! convergence checked **concurrently** by the calling thread.
//!
//! [`crate::threaded::ThreadedExecutor`] realises asynchronous chaos, but
//! driving it to a tolerance means chunked respawning: every
//! `check_every` rounds the whole thread scope is torn down, the iterate
//! is round-tripped through fresh storage, and the driver blocks on a
//! host-side residual. The paper's method has *no* such barrier — its
//! CUDA kernels stream continuously while the host reads the (racy)
//! iterate on the side and decides when to stop. This executor is that
//! shape:
//!
//! * **Workers persist.** `n_workers` OS threads are spawned once and run
//!   until the round budget is exhausted or the stop flag flips. No
//!   spawn/join, no iterate copies, no allocation inside the solve loop.
//! * **Sharded tickets with work-stealing.** The blocks are split into
//!   per-worker shards (contiguous ranges — the paper's SM-owns-its-blocks
//!   locality), each with its own atomic round counter. A worker drains
//!   its home shard first and steals from the others only when its own is
//!   exhausted, so the single contended global counter of the chunked
//!   executor disappears from the hot path.
//! * **The host is the monitor.** The calling thread plays the paper's
//!   host: it snapshots the live [`AtomicF64Vec`] into a reused buffer,
//!   runs an arbitrary [`ConvergenceMonitor`] check against it *while the
//!   workers keep iterating*, and raises an atomic stop flag when the
//!   check fires — a Release store paired with the workers' Acquire
//!   loads, so the global-iteration watermark recorded at the stop is
//!   coherent with what the stopping workers observe.
//!
//! Results are non-deterministic run to run, exactly like the chunked
//! threaded executor; the discrete-event simulator remains the
//! reproducible oracle.

use crate::halo::HaloExchange;
use crate::kernel::{BlockKernel, BlockScratch, UpdateFilter};
use crate::schedule::BlockSchedule;
use crate::threaded::acquire_block_flag;
use crate::trace::{SkewTracker, StalenessHistogram, UpdateTrace};
use crate::xview::{AtomicF64Vec, XView};
use abr_sync::{Ordering, SyncBool, SyncUsize};
use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// An explicit contiguous shard partition of the block set: shard `s`
/// owns blocks `offsets[s] .. offsets[s + 1]`. This is how a multi-device
/// run hands the executor its *device slices* — the shards then are the
/// per-device block ranges, not an arbitrary `n_workers`-way split — so
/// the execution topology matches what the timing model prices and what
/// the halo layer stages. Workers map onto shards round-robin
/// (`worker % n_shards`), so more workers than shards simply team up on
/// each device.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    offsets: Vec<usize>,
}

impl ShardPlan {
    /// A plan from block-index offsets: `offsets[0] == 0`, strictly
    /// increasing, last entry = total block count (checked against the
    /// kernel at run time).
    pub fn from_offsets(offsets: &[usize]) -> ShardPlan {
        assert!(offsets.len() >= 2, "a shard plan needs at least one shard");
        assert_eq!(offsets[0], 0, "shard offsets must start at 0");
        assert!(offsets.windows(2).all(|w| w[0] < w[1]), "shards must be non-empty");
        ShardPlan { offsets: offsets.to_vec() }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The block-index offsets.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The block range of shard `s`.
    pub fn shard_range(&self, s: usize) -> (usize, usize) {
        (self.offsets[s], self.offsets[s + 1])
    }
}

/// Options for [`PersistentExecutor`].
#[derive(Debug, Clone)]
pub struct PersistentOptions {
    /// Number of persistent OS worker threads (also the shard count,
    /// capped at the number of blocks). Defaults like
    /// [`crate::ThreadedOptions`]: available parallelism, capped at 8.
    pub n_workers: usize,
    /// How many rounds of the block schedule to materialise into the
    /// per-shard ticket lists. Budgets beyond this cycle reuse the
    /// materialised pattern (with correct absolute round indices), so an
    /// unbounded solve does not need unbounded ticket storage. Within the
    /// first `schedule_cycle` rounds the dispatch order is exactly the
    /// schedule's.
    pub schedule_cycle: usize,
    /// Base (minimum) pause between the monitor's watermark polls. The
    /// monitor paces itself from the observed watermark rate — sleeping
    /// roughly until the next check period is due, clamped to
    /// `[monitor_pause, 64 * monitor_pause]` — so it reacts within about
    /// half a check period yet stays nearly silent in between. It shares
    /// cores with the workers (as the paper's host shares the PCIe bus),
    /// and on a single-core host every needless wakeup preempts a worker.
    pub monitor_pause: Duration,
    /// How many rounds a shard's dispatch may run ahead of the
    /// committed-progress floor (the minimum per-block processed-dispatch
    /// count). Workers skip shards beyond this window and steal from the
    /// lagging ones instead, bounding the realised staleness — the
    /// admissibility condition (paper Eq. 2) requires the shift to be
    /// bounded, and an OS scheduler (unlike the GPU's hardware dispatcher)
    /// will happily let one worker drain its whole budget in a single
    /// timeslice if nothing stops it. The reported `UpdateTrace::max_skew`
    /// stays within `max_round_lag + 1`.
    pub max_round_lag: usize,
}

impl Default for PersistentOptions {
    fn default() -> Self {
        let par = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
        PersistentOptions {
            n_workers: par.min(8),
            schedule_cycle: 256,
            monitor_pause: Duration::from_micros(50),
            max_round_lag: 1,
        }
    }
}

/// The host-side convergence check run concurrently with the workers.
///
/// The executor polls the global-iteration watermark (the minimum
/// per-block update count, relaxed loads — racy by design); every
/// [`period`](Self::period) watermark steps it snapshots the live iterate
/// into its reused buffer and calls [`check`](Self::check). Returning
/// `true` raises the stop flag.
pub trait ConvergenceMonitor {
    /// Global iterations between checks; `0` disables checking entirely
    /// (the run then always consumes its full round budget).
    fn period(&self) -> usize {
        0
    }

    /// One concurrent check: `global_iteration` is the watermark at which
    /// the check fired, `x` the snapshot taken for it (possibly mixing
    /// epochs — an asynchronous observer's view). Return `true` to stop
    /// the workers.
    fn check(&mut self, global_iteration: usize, x: &[f64]) -> bool;
}

/// The trivial monitor: never checks, never stops.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoMonitor;

impl ConvergenceMonitor for NoMonitor {
    fn check(&mut self, _global_iteration: usize, _x: &[f64]) -> bool {
        false
    }
}

/// Reusable storage for [`PersistentExecutor::run`]: the shared atomic
/// iterate, the monitor's snapshot buffer, the per-shard ticket lists and
/// counters, and the per-block bookkeeping. Reusing one workspace across
/// solves of the same system performs **zero** heap allocation after the
/// first run's capacities stabilise (asserted by
/// `tests/persistent_executor.rs`).
#[derive(Debug, Default)]
pub struct PersistentWorkspace {
    x: AtomicF64Vec,
    snapshot: Vec<f64>,
    /// One materialised schedule cycle per shard: `cycle * shard_len[s]`
    /// block ids, in dispatch order.
    shard_tickets: Vec<Vec<u32>>,
    /// The sharded round counters: ticket `t` of shard `s` is round
    /// `t / shard_len[s]`, block `shard_tickets[s][t % cycle_len]`.
    shard_next: Vec<SyncUsize>,
    shard_len: Vec<usize>,
    shard_total: Vec<usize>,
    counts: Vec<SyncUsize>,
    in_flight: Vec<SyncBool>,
    order_buf: Vec<usize>,
    block_shard: Vec<u32>,
    cycle_rounds: usize,
}

impl PersistentWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fingerprint of the monitor's snapshot buffer (pointer, capacity) —
    /// the observable the zero-copy acceptance test watches across
    /// repeated solves.
    pub fn snapshot_fingerprint(&self) -> (usize, usize) {
        (self.snapshot.as_ptr() as usize, self.snapshot.capacity())
    }

    /// Total ticket capacity currently materialised (across shards).
    pub fn materialised_tickets(&self) -> usize {
        self.shard_tickets.iter().map(|t| t.len()).sum()
    }

    /// (Re)builds every buffer for a run. Reuses capacity wherever the
    /// shapes match the previous run. With `shard_offsets` the split is
    /// the caller's (device slices); otherwise it is the even
    /// `n_shards`-way default.
    #[allow(clippy::too_many_arguments)]
    fn prepare(
        &mut self,
        kernel: &dyn BlockKernel,
        x0: &[f64],
        rounds: usize,
        schedule: &mut dyn BlockSchedule,
        n_shards: usize,
        cycle_cap: usize,
        shard_offsets: Option<&[usize]>,
    ) {
        let nb = kernel.n_blocks();
        self.x.reset_from(x0);
        self.snapshot.resize(x0.len(), 0.0);

        self.shard_len.clear();
        match shard_offsets {
            Some(off) => {
                debug_assert_eq!(off.len() - 1, n_shards);
                assert_eq!(*off.last().unwrap(), nb, "shard plan must cover every block");
                self.shard_len.extend(off.windows(2).map(|w| w[1] - w[0]));
            }
            None => {
                // Contiguous shard split: shard s owns q blocks, the
                // first r shards one extra.
                let q = nb / n_shards;
                let r = nb % n_shards;
                self.shard_len.extend((0..n_shards).map(|s| q + usize::from(s < r)));
            }
        }
        self.block_shard.clear();
        for (s, &len) in self.shard_len.iter().enumerate() {
            self.block_shard.extend(std::iter::repeat_n(s as u32, len));
        }
        self.shard_total.clear();
        self.shard_total.extend(self.shard_len.iter().map(|&len| len * rounds));

        self.cycle_rounds = rounds.min(cycle_cap).max(1);
        if self.shard_tickets.len() != n_shards {
            self.shard_tickets.resize_with(n_shards, Vec::new);
        }
        for t in &mut self.shard_tickets {
            t.clear();
        }
        for round in 0..self.cycle_rounds {
            schedule.order(round, nb, &mut self.order_buf);
            debug_assert_eq!(self.order_buf.len(), nb);
            for &b in &self.order_buf {
                self.shard_tickets[self.block_shard[b] as usize].push(b as u32);
            }
        }

        if self.shard_next.len() != n_shards {
            self.shard_next.resize_with(n_shards, || SyncUsize::new(0));
        }
        for c in &mut self.shard_next {
            c.set_exclusive(0);
        }
        if self.counts.len() != nb {
            self.counts.resize_with(nb, || SyncUsize::new(0));
        }
        for c in &mut self.counts {
            c.set_exclusive(0);
        }
        if self.in_flight.len() != nb {
            self.in_flight.resize_with(nb, || SyncBool::new(false));
        }
        for f in &mut self.in_flight {
            f.set_exclusive(false);
        }
    }
}

/// What a persistent run did, beyond the [`UpdateTrace`].
#[derive(Debug, Clone, Default)]
pub struct PersistentReport {
    /// The global-iteration watermark when the run ended (minimum
    /// completed rounds over all blocks).
    pub global_iterations: usize,
    /// The watermark at which the monitor raised the stop flag, if it
    /// did — this is what a solver should report as its iteration count.
    pub stopped_at: Option<usize>,
    /// Monitor checks performed.
    pub checks: usize,
    /// Updates a worker executed from a shard other than its home shard.
    pub stolen_updates: usize,
    /// OS threads spawned — always exactly the worker count, once.
    pub workers_spawned: usize,
    /// Halo stage refreshes performed (0 when the run had no
    /// [`HaloExchange`] — single-device or DK).
    pub halo_refreshes: usize,
}

/// The persistent-worker executor.
#[derive(Debug, Clone, Default)]
pub struct PersistentExecutor {
    /// Execution options.
    pub opts: PersistentOptions,
}

impl PersistentExecutor {
    /// Creates an executor with the given options.
    pub fn new(opts: PersistentOptions) -> Self {
        PersistentExecutor { opts }
    }

    /// Runs up to `rounds` asynchronous global rounds of the kernel over
    /// `x` (in place: read as the initial iterate, overwritten with the
    /// final one), dispatching per `schedule`, committing per `filter`,
    /// with `monitor` checked concurrently on the calling thread. Stops
    /// early when the monitor fires. The workspace is reused storage —
    /// pass the same one across runs to avoid reallocation.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &self,
        kernel: &dyn BlockKernel,
        x: &mut [f64],
        rounds: usize,
        schedule: &mut dyn BlockSchedule,
        filter: &dyn UpdateFilter,
        monitor: &mut dyn ConvergenceMonitor,
        ws: &mut PersistentWorkspace,
    ) -> (UpdateTrace, PersistentReport) {
        self.run_sharded(kernel, x, rounds, schedule, filter, monitor, ws, None, None)
    }

    /// [`run`](Self::run) with an explicit shard partition and an
    /// optional staged halo. With `shards`, the per-shard ticket pools
    /// are the plan's block ranges (a multi-GPU driver passes its device
    /// slices) instead of the even `n_workers`-way split. With `halo`,
    /// workers of shard `s` read the iterate through the halo's staged
    /// view for device `s` — off-shard components then arrive on the
    /// exchange's epoch cadence rather than live — and the halo's device
    /// count must equal the shard count.
    #[allow(clippy::too_many_arguments)]
    pub fn run_sharded(
        &self,
        kernel: &dyn BlockKernel,
        x: &mut [f64],
        rounds: usize,
        schedule: &mut dyn BlockSchedule,
        filter: &dyn UpdateFilter,
        monitor: &mut dyn ConvergenceMonitor,
        ws: &mut PersistentWorkspace,
        shards: Option<&ShardPlan>,
        halo: Option<&HaloExchange>,
    ) -> (UpdateTrace, PersistentReport) {
        let nb = kernel.n_blocks();
        assert_eq!(x.len(), kernel.n(), "iterate length must match kernel");
        let mut trace = UpdateTrace::new(nb);
        let mut report = PersistentReport::default();
        if nb == 0 || rounds == 0 {
            return (trace, report);
        }

        let n_workers = self.opts.n_workers.max(1);
        let n_shards = match shards {
            Some(plan) => plan.n_shards(),
            None => n_workers.min(nb),
        };
        if let Some(h) = halo {
            assert_eq!(
                h.n_devices(),
                n_shards,
                "halo device count must match the shard count"
            );
        }
        ws.prepare(
            kernel,
            x,
            rounds,
            schedule,
            n_shards,
            self.opts.schedule_cycle,
            shards.map(|p| p.offsets()),
        );
        report.workers_spawned = n_workers;

        // Disjoint borrows of the workspace: workers share the immutable
        // parts, the monitor alone touches the snapshot buffer.
        let PersistentWorkspace {
            x: ref xa,
            snapshot: ref mut snap,
            shard_tickets: ref tickets,
            shard_next: ref next,
            ref shard_len,
            ref shard_total,
            ref counts,
            ref in_flight,
            ref block_shard,
            cycle_rounds,
            ..
        } = *ws;

        let stop = SyncBool::new(false);
        let active = SyncUsize::new(n_workers);
        let skipped = SyncUsize::new(0);
        let stolen = SyncUsize::new(0);
        let lag = self.opts.max_round_lag;
        // The concurrent count-of-counts watermark (allocated here, at
        // solve start). Its floor — the minimum per-block *progress*
        // (commits plus filter-skips) — is what the lag gate below
        // compares dispatch rounds against: gating on committed progress
        // rather than dispatched tickets is what makes the reported
        // `max_skew <= max_round_lag + 1` airtight (an in-flight dispatch
        // no longer lets other blocks run an extra window ahead), and
        // counting skips keeps a filter-frozen block from pinning the
        // floor forever.
        let skew = SkewTracker::new(nb);
        let skew = &skew;
        // Each worker records read staleness into a private histogram and
        // merges it here at exit (one lock per worker per run).
        let stale_sink: Mutex<StalenessHistogram> = Mutex::new(StalenessHistogram::default());
        // Per-shard read views: live atomic everywhere, unless a halo
        // stages the off-shard components.
        let shard_views: Vec<XView<'_>> = (0..n_shards)
            .map(|s| match halo {
                Some(h) => XView::Staged(h.view(s, xa)),
                None => XView::Atomic(xa),
            })
            .collect();
        let shard_views = &shard_views;
        let started = Instant::now();

        std::thread::scope(|scope| {
            for w in 0..n_workers {
                let stop = &stop;
                let active = &active;
                let skipped = &skipped;
                let stolen = &stolen;
                let stale_sink = &stale_sink;
                scope.spawn(move || {
                    let home = w % n_shards;
                    // Per-worker buffers: allocated at spawn (= solve
                    // start), allocation-free once capacities settle.
                    let mut out: Vec<f64> = Vec::new();
                    let mut scratch = BlockScratch::new();
                    let mut stale_local = StalenessHistogram::default();
                    // sync: Acquire pairs with the monitor's Release
                    // store — a worker that observes stop=true also
                    // observes everything the monitor did before raising
                    // it (in particular its recorded stop watermark), so
                    // `stopped_at` is coherent with worker-visible stop.
                    'work: while !stop.load(Ordering::Acquire) {
                        let mut exhausted = true;
                        for s in 0..n_shards {
                            // sync: advisory emptiness probe; the draw
                            // below revalidates with a CAS, so a stale
                            // read only costs one extra pass.
                            if next[s].load(Ordering::Relaxed) < shard_total[s] {
                                exhausted = false;
                                break;
                            }
                        }
                        if exhausted {
                            break 'work;
                        }
                        // The lag gate: a shard whose next dispatch round
                        // is more than `max_round_lag` ahead of the
                        // committed-progress floor is skipped — its
                        // would-be worker steals from the laggards
                        // instead, which both bounds the realised
                        // staleness (Eq. 2) and actively rebalances the
                        // load.
                        let floor = skew.floor();
                        // Draw a ticket: home shard first, then steal in
                        // ring order from the eligible others. The draw
                        // is a gate-validated CAS, not a fetch_add: the
                        // ticket taken is exactly the one the bounds
                        // check inspected. (A fetch_add after a separate
                        // gate check can overshoot — racing workers each
                        // validate the same `seen` and then draw
                        // *different* tickets, some past the lag window,
                        // which is precisely the `max_skew` bound leak
                        // the model explorer catches.)
                        let mut drawn = None;
                        'probe: for probe in 0..n_shards {
                            let s = (home + probe) % n_shards;
                            // sync: Relaxed snapshot to seed the CAS loop
                            // — staleness only costs a CAS retry.
                            let mut seen = next[s].load(Ordering::Relaxed);
                            loop {
                                if seen >= shard_total[s] || seen / shard_len[s] > floor + lag {
                                    continue 'probe;
                                }
                                // sync: Relaxed CAS — the counter is a
                                // pure ticket dispenser; the gate bound is
                                // sound against a stale progress floor
                                // because the floor is monotone and read
                                // conservatively low.
                                match next[s].compare_exchange_weak(
                                    seen,
                                    seen + 1,
                                    Ordering::Relaxed,
                                    Ordering::Relaxed,
                                ) {
                                    Ok(_) => {
                                        drawn = Some((s, seen, probe != 0));
                                        break 'probe;
                                    }
                                    Err(cur) => seen = cur,
                                }
                            }
                        }
                        let Some((s, t, was_stolen)) = drawn else {
                            // Every eligible shard raced away (or only
                            // in-flight commits can advance the floor);
                            // let the holders make progress and retry.
                            std::thread::yield_now();
                            continue 'work;
                        };
                        let m = shard_len[s];
                        let round = t / m;
                        let block = tickets[s][t % (cycle_rounds * m)] as usize;
                        if was_stolen {
                            // sync: statistics counter, read after join.
                            stolen.fetch_add(1, Ordering::Relaxed);
                        }
                        if let Some(h) = halo {
                            h.maybe_refresh(s, round, xa, skew.floor());
                        }
                        if filter.block_enabled(block, round) {
                            acquire_block_flag(&in_flight[block]);
                            // Realised shift of every neighbour read
                            // (Eq. 3 measured, mirroring the DES): own
                            // committed rounds minus what the read
                            // actually delivers — the neighbour's count
                            // when read live, the stage's freshness stamp
                            // when it comes through the halo.
                            if let Some(nbrs) = kernel.neighbor_blocks(block) {
                                // sync: own count is only ever advanced
                                // under this block's in-flight flag, which
                                // we hold — the Relaxed read is exact.
                                let own = counts[block].load(Ordering::Relaxed) as i64;
                                for &j in nbrs {
                                    let read = match halo {
                                        Some(h) if block_shard[j] as usize != s => {
                                            h.stage_stamp(s) as i64
                                        }
                                        // sync: deliberately racy neighbour
                                        // progress sample — staleness here
                                        // is the quantity being *measured*
                                        // (Eq. 3), not a bug to order away.
                                        _ => counts[j].load(Ordering::Relaxed) as i64,
                                    };
                                    stale_local.record(own - read);
                                }
                            }
                            let (bs, be) = kernel.block_range(block);
                            out.clear();
                            out.resize(be - bs, 0.0);
                            kernel.update_block_with(
                                block,
                                &shard_views[s],
                                &mut out,
                                &mut scratch,
                            );
                            for (k, &v) in out.iter().enumerate() {
                                if filter.component_enabled(bs + k, round) {
                                    xa.set(bs + k, v);
                                }
                            }
                            // sync: Relaxed is safe under the held
                            // in-flight flag; cross-thread readers only
                            // use the count as a staleness sample.
                            counts[block].fetch_add(1, Ordering::Relaxed);
                            // sync: Release publishes this block's
                            // component writes and count bump to the next
                            // worker that Acquire-wins the flag.
                            in_flight[block].store(false, Ordering::Release);
                        } else {
                            // sync: statistics counter, read after join.
                            skipped.fetch_add(1, Ordering::Relaxed);
                        }
                        skew.on_progress(block);
                    }
                    if stale_local.total() > 0 {
                        stale_sink.lock().merge(&stale_local);
                    }
                    // sync: Release pairs with the monitor's Acquire load
                    // — "active == 0" proves every worker's final writes
                    // are visible before the monitor loop exits.
                    active.fetch_sub(1, Ordering::Release);
                });
            }

            // --- The concurrent monitor, on the calling thread. ---
            // This is the paper's host: it reads the racy iterate on the
            // side while the workers stream updates, and raises the stop
            // flag the moment its check is satisfied.
            let period = monitor.period();
            let mut next_check = period.max(1);
            let base_pause = self.opts.monitor_pause.max(Duration::from_micros(1));
            let max_pause = base_pause * 64;
            // Rate-paced polling: track how fast the watermark advances
            // and sleep roughly until the next check is due. Blind
            // exponential backoff alone would let fast, tiny rounds run
            // hundreds of iterations past the stop point before the
            // monitor wakes; pure fixed-rate polling would preempt the
            // workers thousands of times per solve on a saturated host.
            let mut last_wm = 0usize;
            let mut last_t = Instant::now();
            let mut per_round = base_pause;
            let mut idle_pause = base_pause;
            loop {
                // sync: Acquire pairs with each worker's Release
                // decrement; zero means all worker writes are visible.
                if active.load(Ordering::Acquire) == 0 {
                    break;
                }
                // sync: Acquire matches the flag's Release store (it is
                // this thread's own store, but the facade audit keeps the
                // flag's declared discipline uniform at every site).
                if period > 0 && !stop.load(Ordering::Acquire) {
                    // Watermark = dispatched rounds, not committed
                    // updates: O(n_shards) per poll, and it keeps
                    // advancing past blocks an [`UpdateFilter`] has
                    // frozen (fault injection), so convergence checks
                    // never stall behind a dead block.
                    let watermark = (0..n_shards)
                        .map(|s| {
                            // sync: racy progress sample; the counter is
                            // monotone so a stale read only under-reports
                            // the watermark (checks fire late, never on
                            // future state).
                            next[s].load(Ordering::Relaxed).min(shard_total[s]) / shard_len[s]
                        })
                        .min()
                        .unwrap_or(0);
                    if watermark > last_wm {
                        let step = last_t.elapsed() / (watermark - last_wm) as u32;
                        // Smooth towards the observed per-round time so a
                        // single slow poll doesn't swing the pacing.
                        per_round = (per_round + step) / 2;
                        last_wm = watermark;
                        last_t = Instant::now();
                        idle_pause = base_pause;
                    }
                    if watermark >= next_check {
                        for (i, sl) in snap.iter_mut().enumerate() {
                            *sl = xa.get(i);
                        }
                        report.checks += 1;
                        if monitor.check(watermark, snap) {
                            report.stopped_at = Some(watermark);
                            // sync: Release publishes the recorded stop
                            // watermark (the line above) to any worker
                            // that Acquire-observes the flag — the
                            // stop-watermark coherence invariant checked
                            // by tests/model_stop_watermark.rs.
                            stop.store(true, Ordering::Release);
                        } else {
                            next_check = watermark.saturating_add(period);
                        }
                        continue;
                    }
                    // Wake around halfway to the expected due time so the
                    // check lands within ~period/2 of the true crossing.
                    // The distance is clamped before widening to `u32`
                    // and the multiply saturates: a monitor with a huge
                    // `period` (e.g. `usize::MAX` to mean "never") must
                    // degrade into the max pause, not overflow.
                    let remaining = next_check.saturating_sub(watermark).min(1 << 16) as u32;
                    let pause = (per_round.saturating_mul(remaining) / 2).clamp(base_pause, max_pause);
                    std::thread::sleep(pause);
                } else {
                    // Nothing to check (fixed budget or stop already
                    // raised): back off until the workers drain.
                    std::thread::sleep(idle_pause);
                    idle_pause = (idle_pause * 2).min(max_pause);
                }
            }
        });

        trace.elapsed = started.elapsed().as_secs_f64();
        // sync: the thread scope has joined every worker — these Relaxed
        // reads are ordered by the join edges and therefore exact.
        trace.updates_per_block = counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        // sync: post-join read (see above).
        trace.skipped_updates = skipped.load(Ordering::Relaxed);
        trace.max_skew = skew.max_skew();
        trace.staleness = stale_sink.into_inner();
        report.global_iterations =
            trace.updates_per_block.iter().copied().min().unwrap_or(0);
        // sync: post-join read (see above).
        report.stolen_updates = stolen.load(Ordering::Relaxed);
        report.halo_refreshes = halo.map_or(0, |h| h.refreshes());
        xa.copy_into(x);
        (trace, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::test_kernels::ConsensusKernel;
    use crate::kernel::AllowAll;
    use crate::schedule::{RandomPermutation, RoundRobin};

    fn run_consensus(
        n_workers: usize,
        rounds: usize,
        monitor: &mut dyn ConvergenceMonitor,
    ) -> (Vec<f64>, UpdateTrace, PersistentReport) {
        let kernel = ConsensusKernel { n: 48, block_size: 5 };
        let mut x: Vec<f64> = (0..48).map(|i| i as f64).collect();
        let exec = PersistentExecutor::new(PersistentOptions {
            n_workers,
            ..PersistentOptions::default()
        });
        let mut ws = PersistentWorkspace::new();
        let mut sched = RandomPermutation::new(11);
        let (trace, report) =
            exec.run(&kernel, &mut x, rounds, &mut sched, &AllowAll, monitor, &mut ws);
        (x, trace, report)
    }

    #[test]
    fn consensus_converges_with_persistent_workers() {
        let (x, trace, report) = run_consensus(3, 80, &mut NoMonitor);
        let mean = x.iter().sum::<f64>() / 48.0;
        for &v in &x {
            assert!((v - mean).abs() < 1e-5, "not converged: {v} vs {mean}");
        }
        assert_eq!(trace.total_updates(), 80 * 10);
        assert_eq!(report.global_iterations, 80);
        assert_eq!(report.workers_spawned, 3);
        assert_eq!(report.stopped_at, None);
    }

    #[test]
    fn monitor_stop_flag_halts_workers_early() {
        struct StopAt(usize);
        impl ConvergenceMonitor for StopAt {
            fn period(&self) -> usize {
                1
            }
            fn check(&mut self, gi: usize, _x: &[f64]) -> bool {
                gi >= self.0
            }
        }
        let mut monitor = StopAt(5);
        let (_, trace, report) = run_consensus(2, 10_000, &mut monitor);
        let at = report.stopped_at.expect("monitor must fire");
        assert!(at >= 5, "stopped at watermark {at}");
        assert!(
            trace.total_updates() < 10_000 * 10,
            "stop flag must halt the run early: {} updates",
            trace.total_updates()
        );
        assert!(report.checks >= 1);
    }

    #[test]
    fn filter_respected_with_absolute_rounds() {
        // Blocks frozen from round 3 onward: each block commits exactly 3
        // updates, and the skip counter absorbs the rest.
        struct FreezeFrom(usize);
        impl UpdateFilter for FreezeFrom {
            fn block_enabled(&self, _b: usize, round: usize) -> bool {
                round < self.0
            }
        }
        let kernel = ConsensusKernel { n: 20, block_size: 4 };
        let mut x = vec![1.0; 20];
        let exec = PersistentExecutor::new(PersistentOptions {
            n_workers: 2,
            ..PersistentOptions::default()
        });
        let mut ws = PersistentWorkspace::new();
        let (trace, _) = exec.run(
            &kernel,
            &mut x,
            8,
            &mut RoundRobin,
            &FreezeFrom(3),
            &mut NoMonitor,
            &mut ws,
        );
        assert_eq!(trace.updates_per_block, vec![3; 5]);
        assert_eq!(trace.skipped_updates, 5 * 5);
    }

    #[test]
    fn budget_beyond_schedule_cycle_still_counts_rounds_exactly() {
        let kernel = ConsensusKernel { n: 12, block_size: 3 };
        let mut x = vec![2.0; 12];
        let exec = PersistentExecutor::new(PersistentOptions {
            n_workers: 2,
            schedule_cycle: 4, // force cycling well below the budget
            ..PersistentOptions::default()
        });
        let mut ws = PersistentWorkspace::new();
        let (trace, report) = exec.run(
            &kernel,
            &mut x,
            50,
            &mut RandomPermutation::new(3),
            &AllowAll,
            &mut NoMonitor,
            &mut ws,
        );
        assert_eq!(trace.updates_per_block, vec![50; 4]);
        assert_eq!(report.global_iterations, 50);
    }

    #[test]
    fn workspace_reuse_keeps_buffers_stable() {
        let kernel = ConsensusKernel { n: 30, block_size: 5 };
        let exec = PersistentExecutor::new(PersistentOptions {
            n_workers: 2,
            ..PersistentOptions::default()
        });
        let mut ws = PersistentWorkspace::new();
        let run = |ws: &mut PersistentWorkspace| {
            let mut x = vec![1.0; 30];
            exec.run(
                &kernel,
                &mut x,
                20,
                &mut RoundRobin,
                &AllowAll,
                &mut NoMonitor,
                ws,
            );
        };
        run(&mut ws);
        let fp = ws.snapshot_fingerprint();
        let tickets = ws.materialised_tickets();
        for _ in 0..3 {
            run(&mut ws);
            assert_eq!(ws.snapshot_fingerprint(), fp, "snapshot buffer must be reused");
            assert_eq!(ws.materialised_tickets(), tickets);
        }
    }

    #[test]
    fn more_workers_than_blocks_degrades_gracefully() {
        let kernel = ConsensusKernel { n: 8, block_size: 4 }; // 2 blocks
        let mut x: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let exec = PersistentExecutor::new(PersistentOptions {
            n_workers: 6,
            ..PersistentOptions::default()
        });
        let mut ws = PersistentWorkspace::new();
        let (trace, _) = exec.run(
            &kernel,
            &mut x,
            40,
            &mut RoundRobin,
            &AllowAll,
            &mut NoMonitor,
            &mut ws,
        );
        assert_eq!(trace.total_updates(), 40 * 2);
        let mean = x.iter().sum::<f64>() / 8.0;
        for &v in &x {
            assert!((v - mean).abs() < 1e-6);
        }
    }

    /// Satellite regression: a multi-worker persistent run must actually
    /// measure skew (today's bug was a dead `max_skew == 0`), and the
    /// progress-floor lag gate must keep it within `max_round_lag + 1`.
    #[test]
    fn max_skew_is_nonzero_and_bounded_by_the_lag_gate() {
        for lag in [1usize, 3] {
            let kernel = ConsensusKernel { n: 48, block_size: 4 };
            let mut x: Vec<f64> = (0..48).map(|i| i as f64).collect();
            let exec = PersistentExecutor::new(PersistentOptions {
                n_workers: 4,
                max_round_lag: lag,
                ..PersistentOptions::default()
            });
            let mut ws = PersistentWorkspace::new();
            let (trace, _) = exec.run(
                &kernel,
                &mut x,
                60,
                &mut RandomPermutation::new(7),
                &AllowAll,
                &mut NoMonitor,
                &mut ws,
            );
            assert_eq!(trace.updates_per_block, vec![60; 12]);
            assert!(trace.max_skew > 0, "a concurrent run cannot be perfectly synchronous");
            assert!(
                trace.max_skew <= lag + 1,
                "skew {} exceeds the lag bound {}",
                trace.max_skew,
                lag + 1
            );
        }
    }

    /// Satellite regression: a monitor with a huge period (e.g.
    /// `usize::MAX` to mean "never due") must neither overflow the pacing
    /// arithmetic nor ever fire.
    #[test]
    fn huge_monitor_period_does_not_overflow_the_pacing() {
        struct NeverDue;
        impl ConvergenceMonitor for NeverDue {
            fn period(&self) -> usize {
                usize::MAX
            }
            fn check(&mut self, _gi: usize, _x: &[f64]) -> bool {
                panic!("a usize::MAX period must never come due");
            }
        }
        let (_, trace, report) = run_consensus(2, 40, &mut NeverDue);
        assert_eq!(trace.total_updates(), 40 * 10);
        assert_eq!(report.checks, 0);
        assert_eq!(report.stopped_at, None);
    }

    #[test]
    fn explicit_shard_plan_drives_the_split() {
        let kernel = ConsensusKernel { n: 20, block_size: 4 }; // 5 blocks
        let mut x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let exec = PersistentExecutor::new(PersistentOptions {
            n_workers: 4, // more workers than shards: they team up
            ..PersistentOptions::default()
        });
        let plan = ShardPlan::from_offsets(&[0, 2, 5]);
        assert_eq!(plan.n_shards(), 2);
        assert_eq!(plan.shard_range(1), (2, 5));
        let mut ws = PersistentWorkspace::new();
        let (trace, report) = exec.run_sharded(
            &kernel,
            &mut x,
            30,
            &mut RoundRobin,
            &AllowAll,
            &mut NoMonitor,
            &mut ws,
            Some(&plan),
            None,
        );
        assert_eq!(trace.updates_per_block, vec![30; 5]);
        assert_eq!(report.global_iterations, 30);
        assert_eq!(report.workers_spawned, 4);
        // The workspace took the plan's lengths, not the even split.
        assert_eq!(ws.shard_len, vec![2, 3]);
        let mean = x.iter().sum::<f64>() / 20.0;
        for &v in &x {
            assert!((v - mean).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "cover every block")]
    fn shard_plan_must_cover_every_block() {
        let kernel = ConsensusKernel { n: 20, block_size: 4 }; // 5 blocks
        let mut x = vec![0.0; 20];
        let exec = PersistentExecutor::default();
        let plan = ShardPlan::from_offsets(&[0, 2, 4]); // only 4 of 5
        let mut ws = PersistentWorkspace::new();
        exec.run_sharded(
            &kernel,
            &mut x,
            2,
            &mut RoundRobin,
            &AllowAll,
            &mut NoMonitor,
            &mut ws,
            Some(&plan),
            None,
        );
    }

    #[test]
    fn staged_halo_refreshes_and_still_converges() {
        use crate::halo::HaloExchange;
        use crate::timing::CommStrategy;
        let kernel = ConsensusKernel { n: 20, block_size: 4 }; // 5 blocks
        let mut x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let x0 = x.clone();
        let exec = PersistentExecutor::new(PersistentOptions {
            n_workers: 2,
            ..PersistentOptions::default()
        });
        let plan = ShardPlan::from_offsets(&[0, 2, 5]);
        // Device rows mirror the shard plan's block ranges (blocks of 4).
        let halo = HaloExchange::for_strategy(CommStrategy::Dc, &[0, 8, 20], &x0, 2).unwrap();
        let mut ws = PersistentWorkspace::new();
        let (trace, report) = exec.run_sharded(
            &kernel,
            &mut x,
            400,
            &mut RoundRobin,
            &AllowAll,
            &mut NoMonitor,
            &mut ws,
            Some(&plan),
            Some(&halo),
        );
        assert_eq!(trace.updates_per_block, vec![400; 5]);
        assert!(report.halo_refreshes > 0, "the exchange must actually run");
        // Stale halos slow consensus but must not break it: with a
        // 2-round epoch over 400 rounds the devices still agree.
        let mean = x.iter().sum::<f64>() / 20.0;
        for &v in &x {
            assert!((v - mean).abs() < 1e-5, "not converged: {v} vs {mean}");
        }
    }

    #[test]
    fn zero_rounds_noop() {
        let kernel = ConsensusKernel { n: 4, block_size: 2 };
        let mut x = vec![9.0; 4];
        let exec = PersistentExecutor::default();
        let mut ws = PersistentWorkspace::new();
        let (trace, report) = exec.run(
            &kernel,
            &mut x,
            0,
            &mut RoundRobin,
            &AllowAll,
            &mut NoMonitor,
            &mut ws,
        );
        assert_eq!(x, vec![9.0; 4]);
        assert_eq!(trace.total_updates(), 0);
        assert_eq!(report.workers_spawned, 0);
    }
}
