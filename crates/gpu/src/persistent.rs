//! The persistent-worker executor: threads spawned **once per solve**,
//! convergence checked **concurrently** by the calling thread.
//!
//! [`crate::threaded::ThreadedExecutor`] realises asynchronous chaos, but
//! driving it to a tolerance means chunked respawning: every
//! `check_every` rounds the whole thread scope is torn down, the iterate
//! is round-tripped through fresh storage, and the driver blocks on a
//! host-side residual. The paper's method has *no* such barrier — its
//! CUDA kernels stream continuously while the host reads the (racy)
//! iterate on the side and decides when to stop. This executor is that
//! shape:
//!
//! * **Workers persist.** `n_workers` OS threads are spawned once and run
//!   until the round budget is exhausted or the stop flag flips. No
//!   spawn/join, no iterate copies, no allocation inside the solve loop.
//! * **Sharded tickets with work-stealing.** The blocks are split into
//!   per-worker shards (contiguous ranges — the paper's SM-owns-its-blocks
//!   locality), each with its own atomic round counter. A worker drains
//!   its home shard first and steals from the others only when its own is
//!   exhausted, so the single contended global counter of the chunked
//!   executor disappears from the hot path.
//! * **The host is the monitor.** The calling thread plays the paper's
//!   host: it snapshots the live [`AtomicF64Vec`] into a reused buffer,
//!   runs an arbitrary [`ConvergenceMonitor`] check against it *while the
//!   workers keep iterating*, and raises an atomic stop flag when the
//!   check fires — a Release store paired with the workers' Acquire
//!   loads, so the global-iteration watermark recorded at the stop is
//!   coherent with what the stopping workers observe.
//!
//! Results are non-deterministic run to run, exactly like the chunked
//! threaded executor; the discrete-event simulator remains the
//! reproducible oracle.

use crate::halo::HaloExchange;
use crate::kernel::{BlockKernel, BlockScratch, UpdateFilter};
use crate::pool::{CancelCause, CancelToken, Lease, WorkerPool};
use crate::residual::ResidualSlots;
use crate::schedule::BlockSchedule;
use crate::threaded::acquire_block_flag;
use crate::trace::{SkewTracker, StalenessHistogram, UpdateTrace};
use crate::xview::{AtomicF64Vec, XView};
use abr_sync::{Ordering, SyncBool, SyncUsize};
use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// An explicit contiguous shard partition of the block set: shard `s`
/// owns blocks `offsets[s] .. offsets[s + 1]`. This is how a multi-device
/// run hands the executor its *device slices* — the shards then are the
/// per-device block ranges, not an arbitrary `n_workers`-way split — so
/// the execution topology matches what the timing model prices and what
/// the halo layer stages. Workers map onto shards round-robin
/// (`worker % n_shards`), so more workers than shards simply team up on
/// each device.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    offsets: Vec<usize>,
}

impl ShardPlan {
    /// A plan from block-index offsets: `offsets[0] == 0`, strictly
    /// increasing, last entry = total block count (checked against the
    /// kernel at run time).
    pub fn from_offsets(offsets: &[usize]) -> ShardPlan {
        assert!(offsets.len() >= 2, "a shard plan needs at least one shard");
        assert_eq!(offsets[0], 0, "shard offsets must start at 0");
        assert!(offsets.windows(2).all(|w| w[0] < w[1]), "shards must be non-empty");
        ShardPlan { offsets: offsets.to_vec() }
    }

    /// The even `n_shards`-way split of `n_blocks` blocks (the first
    /// `n_blocks % n_shards` shards take one extra) — the same split the
    /// executor uses when no plan is passed, made explicit so a caller
    /// multiplexing many solves (the service daemon leasing worker
    /// slices) hands every run a concrete plan.
    pub fn even(n_blocks: usize, n_shards: usize) -> ShardPlan {
        let n_shards = n_shards.clamp(1, n_blocks.max(1));
        let q = n_blocks / n_shards;
        let r = n_blocks % n_shards;
        let mut offsets = Vec::with_capacity(n_shards + 1);
        offsets.push(0);
        for s in 0..n_shards {
            offsets.push(offsets[s] + q + usize::from(s < r));
        }
        ShardPlan { offsets }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The block-index offsets.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The block range of shard `s`.
    pub fn shard_range(&self, s: usize) -> (usize, usize) {
        (self.offsets[s], self.offsets[s + 1])
    }
}

/// How a planned worker fault manifests at its trigger round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker thread exits immediately: it stops drawing tickets,
    /// orphans its home shard (if it was the last live worker homed
    /// there), and is never heard from again. Detection is the monitor's
    /// job — a dead core does not announce itself.
    Kill,
    /// The worker parks without exiting: same orphaning as [`Kill`](Self::Kill),
    /// but the thread stays resident until the stop flag flips (a livelocked
    /// or preempted-forever core). Exercises the stall supervision path.
    Hang,
    /// The worker keeps drawing tickets but every block sweep it runs
    /// panics from the trigger round on. The executor isolates each panic
    /// with `catch_unwind`: the block's commit is dropped, the run is
    /// degraded but never aborted, and the [`FaultReport`] counts every
    /// catch.
    Panic,
}

/// One worker's planned fault: `kind` fires when the committed-progress
/// floor first reaches `at_round` (the paper's §4.5 "cores die at
/// iteration `t0`" expressed against the realised floor, so the trigger
/// is meaningful under asynchronous skew).
#[derive(Debug, Clone)]
pub struct WorkerFault {
    /// Worker index in `0..n_workers`.
    pub worker: usize,
    /// What happens.
    pub kind: FaultKind,
    /// Committed-progress floor at which it happens.
    pub at_round: usize,
}

/// A realised fault plan for one persistent run: which workers die, hang,
/// or go panicky, and whether orphaned shards are recovered. This is the
/// *live* counterpart of `abr_fault`'s analytic [`UpdateFilter`] fault
/// model — workers actually stop, the monitor actually detects them, and
/// recovery actually reassigns their blocks (lowered from
/// `abr_fault::FailureScenario::lower`).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Planned faults (at most one fires per worker: the first entry for
    /// a given worker index wins).
    pub faults: Vec<WorkerFault>,
    /// The paper's recovery-(t_r): once a death is detected, its orphaned
    /// shard is released for adoption after the floor advances another
    /// `t_r` rounds. `None` is the no-recovery regime — orphaned blocks
    /// stay frozen and the run ends [`RunOutcome::Stalled`].
    pub recovery_rounds: Option<usize>,
}

impl FaultPlan {
    /// An empty plan (no faults, no recovery).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Plans a [`FaultKind::Kill`] of `worker` at floor round `at_round`.
    pub fn kill(mut self, worker: usize, at_round: usize) -> FaultPlan {
        self.faults.push(WorkerFault { worker, kind: FaultKind::Kill, at_round });
        self
    }

    /// Plans a [`FaultKind::Hang`] of `worker` at floor round `at_round`.
    pub fn hang(mut self, worker: usize, at_round: usize) -> FaultPlan {
        self.faults.push(WorkerFault { worker, kind: FaultKind::Hang, at_round });
        self
    }

    /// Plans a [`FaultKind::Panic`] poisoning of `worker` from floor
    /// round `at_round` on.
    pub fn poison(mut self, worker: usize, at_round: usize) -> FaultPlan {
        self.faults.push(WorkerFault { worker, kind: FaultKind::Panic, at_round });
        self
    }

    /// Enables recovery-(t_r).
    pub fn with_recovery(mut self, t_r: usize) -> FaultPlan {
        self.recovery_rounds = Some(t_r);
        self
    }

    /// True when no fault is planned.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    fn fault_for(&self, worker: usize) -> Option<&WorkerFault> {
        self.faults.iter().find(|f| f.worker == worker)
    }
}

/// How a persistent run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RunOutcome {
    /// The round budget drained normally.
    #[default]
    Completed,
    /// The monitor's check fired and raised the stop flag.
    Stopped,
    /// Progress ceased with tickets still outstanding: every worker died,
    /// or the survivors' only remaining work sits in an orphaned shard
    /// that no recovery will ever release. The run terminates within the
    /// stall supervision budget instead of polling forever.
    Stalled,
    /// A request-scoped [`CancelToken`] was cancelled mid-run: the
    /// monitor translated it into the stop flag and the workers drained
    /// within one poll. The iterate holds the partial result.
    Cancelled,
    /// The [`CancelToken`]'s deadline passed mid-run; otherwise exactly
    /// like [`Cancelled`](Self::Cancelled).
    DeadlineExceeded,
}

/// One detected worker death.
#[derive(Debug, Clone)]
pub struct DeathRecord {
    /// The worker declared dead.
    pub worker: usize,
    /// Committed-progress floor when the monitor declared it.
    pub declared_at: usize,
    /// Floor rounds between the worker's last observed heartbeat and the
    /// declaration — the realised detection latency.
    pub detection_lag: usize,
}

/// One recovery handoff: an orphaned shard adopted into a survivor's
/// work-stealing ring.
#[derive(Debug, Clone)]
pub struct Reassignment {
    /// The orphaned shard.
    pub shard: usize,
    /// The surviving worker whose adoption CAS won.
    pub new_owner: usize,
    /// Committed-progress floor at adoption.
    pub at_floor: usize,
}

/// One block's outage: the window during which its owning worker was dead
/// and nobody was allowed to update it.
#[derive(Debug, Clone)]
pub struct FrozenSpan {
    /// The frozen block.
    pub block: usize,
    /// The block's progress count when it was frozen.
    pub frozen_at: usize,
    /// How many rounds the live floor ran ahead of it before the thaw —
    /// the realised outage length, and exactly the amount by which this
    /// span widens the staleness bound.
    pub outage_rounds: usize,
    /// Whether a recovery handoff thawed the block (`false`: it was still
    /// frozen when the run ended — the no-recovery regime).
    pub thawed: bool,
}

/// What the fault runtime did during a run. Empty (all zero/empty fields)
/// for a fault-free run.
#[derive(Debug, Clone, Default)]
pub struct FaultReport {
    /// Detected deaths, in detection order.
    pub deaths: Vec<DeathRecord>,
    /// Recovery handoffs, in adoption order.
    pub reassignments: Vec<Reassignment>,
    /// Per-block outage spans, in freeze order.
    pub frozen_spans: Vec<FrozenSpan>,
    /// Block sweeps that panicked and were isolated by `catch_unwind`.
    pub caught_panics: usize,
    /// Largest realised outage over all frozen spans, in floor rounds.
    /// The asserted staleness contract of a faulted run is
    /// `max_skew <= max_round_lag + 1 + max_outage_rounds`.
    pub max_outage_rounds: usize,
}

impl FaultReport {
    /// True when the run saw no fault activity at all.
    pub fn is_empty(&self) -> bool {
        self.deaths.is_empty()
            && self.reassignments.is_empty()
            && self.frozen_spans.is_empty()
            && self.caught_panics == 0
            && self.max_outage_rounds == 0
    }
}

/// A shard's phase under the fault runtime, as seen by a probing worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPhase {
    /// In the normal work-stealing pool, never orphaned. When the fault
    /// plan dooms the shard's whole home-worker set, its dispatch fence
    /// still applies in this phase.
    Open,
    /// Its last home worker died; no ticket may be drawn from it.
    Orphaned,
    /// Released for adoption by the monitor after recovery-(t_r): the
    /// next prober to win the adoption CAS owns it.
    Released,
    /// Adopted by a survivor — back in the pool, fence lifted.
    Adopted,
}

const SHARD_POOLED: usize = 0;
const SHARD_ORPHANED: usize = 1;
const SHARD_RELEASED: usize = 2;
const SHARD_ADOPTED_BASE: usize = 3;

/// The shard-ownership state machine of the recovery handoff:
/// `Pooled → Orphaned → Released → Adopted(worker)`, each step a single
/// atomic transition. The adoption step is an election — many survivors
/// may probe a released shard concurrently, and CAS atomicity guarantees
/// exactly one winner (a load-then-store shape would let two survivors
/// both observe `Released` and both claim the shard; the model test
/// `tests/model_reassignment.rs` demonstrates the explorer catching
/// precisely that variant).
#[derive(Debug)]
pub struct ShardState {
    state: SyncUsize,
}

impl Default for ShardState {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardState {
    /// A pooled (normally owned) shard.
    pub fn new() -> ShardState {
        ShardState { state: SyncUsize::new(SHARD_POOLED) }
    }

    /// Exclusive reset for workspace reuse.
    fn reset(&mut self) {
        self.state.set_exclusive(SHARD_POOLED);
    }

    /// Marks the shard orphaned. Called by its dying last home worker —
    /// the realised outage begins here.
    pub fn orphan(&self) {
        // sync: Release publishes the dying worker's freeze bookkeeping
        // (SkewTracker::freeze of every shard block) to the survivors'
        // Acquire probes, so nobody draws against half-frozen accounting.
        self.state.store(SHARD_ORPHANED, Ordering::Release);
    }

    /// Opens an orphaned shard for adoption (the monitor, once the
    /// recovery-(t_r) delay has elapsed). Returns `false` when the shard
    /// was never orphaned — a spurious death declaration must not leak a
    /// pooled shard into the adoption protocol.
    pub fn release(&self) -> bool {
        // sync: AcqRel CAS — success orders the monitor's recovery
        // decision before any survivor's Acquire probe observes
        // `Released`; failure (not orphaned) needs only the Acquire read.
        self.state
            .compare_exchange(
                SHARD_ORPHANED,
                SHARD_RELEASED,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// The adoption election: `true` for exactly one calling worker per
    /// release. The winner must thaw the shard's blocks before treating
    /// the shard as its own.
    pub fn try_adopt(&self, worker: usize) -> bool {
        // sync: AcqRel CAS — RMW atomicity elects a single winner among
        // racing survivors (the invariant the schedule explorer checks),
        // and success orders the release it observed before the winner's
        // thaw writes.
        self.state
            .compare_exchange(
                SHARD_RELEASED,
                SHARD_ADOPTED_BASE + worker,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// The phase as a probing worker must treat it.
    pub fn probe(&self) -> ShardPhase {
        // sync: Acquire pairs with `orphan`'s / `release`'s publishing
        // stores — a prober that sees a phase also sees the bookkeeping
        // that justified it. A stale (older) phase read only delays the
        // reaction by one probe pass.
        match self.state.load(Ordering::Acquire) {
            SHARD_ORPHANED => ShardPhase::Orphaned,
            SHARD_RELEASED => ShardPhase::Released,
            s if s >= SHARD_ADOPTED_BASE => ShardPhase::Adopted,
            _ => ShardPhase::Open,
        }
    }

    /// The adopting worker, if adoption happened.
    pub fn adopter(&self) -> Option<usize> {
        // sync: read for post-join reporting; the join edges (or the
        // caller's own synchronisation) make it exact there.
        let s = self.state.load(Ordering::Relaxed);
        (s >= SHARD_ADOPTED_BASE).then(|| s - SHARD_ADOPTED_BASE)
    }
}

/// Options for [`PersistentExecutor`].
#[derive(Debug, Clone)]
pub struct PersistentOptions {
    /// Number of persistent OS worker threads (also the shard count,
    /// capped at the number of blocks). Defaults like
    /// [`crate::ThreadedOptions`]: available parallelism, capped at 8.
    pub n_workers: usize,
    /// How many rounds of the block schedule to materialise into the
    /// per-shard ticket lists. Budgets beyond this cycle reuse the
    /// materialised pattern (with correct absolute round indices), so an
    /// unbounded solve does not need unbounded ticket storage. Within the
    /// first `schedule_cycle` rounds the dispatch order is exactly the
    /// schedule's.
    pub schedule_cycle: usize,
    /// Base (minimum) pause between the monitor's watermark polls. The
    /// monitor paces itself from the observed watermark rate — sleeping
    /// roughly until the next check period is due, clamped to
    /// `[monitor_pause, 64 * monitor_pause]` — so it reacts within about
    /// half a check period yet stays nearly silent in between. It shares
    /// cores with the workers (as the paper's host shares the PCIe bus),
    /// and on a single-core host every needless wakeup preempts a worker.
    pub monitor_pause: Duration,
    /// How many rounds a shard's dispatch may run ahead of the
    /// committed-progress floor (the minimum per-block processed-dispatch
    /// count). Workers skip shards beyond this window and steal from the
    /// lagging ones instead, bounding the realised staleness — the
    /// admissibility condition (paper Eq. 2) requires the shift to be
    /// bounded, and an OS scheduler (unlike the GPU's hardware dispatcher)
    /// will happily let one worker drain its whole budget in a single
    /// timeslice if nothing stops it. The reported `UpdateTrace::max_skew`
    /// stays within `max_round_lag + 1`.
    pub max_round_lag: usize,
    /// Death-detection budget, in floor rounds: a worker whose heartbeat
    /// has not moved while the committed-progress floor advanced this
    /// many rounds is declared dead. Small values detect fast but may
    /// record spurious deaths for briefly-starved workers (harmless — a
    /// spurious declaration never releases a shard that was not actually
    /// orphaned); large values delay recovery.
    pub detect_after_rounds: usize,
    /// Stall supervision budget: when no worker heartbeat (and no exit)
    /// has been observed for this long, the monitor raises the stop flag
    /// and the run ends [`RunOutcome::Stalled`] instead of polling a
    /// frozen watermark forever — the all-workers-dead termination
    /// guarantee.
    pub stall_timeout: Duration,
    /// Whether workers publish fused per-block residual sub-norms (via
    /// [`BlockKernel::update_block_estimating`]) into the workspace's
    /// [`ResidualSlots`], letting the monitor answer most polls with an
    /// O(n_blocks) slot reduce instead of an O(n) snapshot + O(nnz)
    /// exact check ([`ConvergenceMonitor::fused_check`]). The estimate is
    /// advisory only — stopping always goes through the exact check —
    /// so disabling this (the bench baseline does, to price the fusion)
    /// changes cost, never the stopping decision.
    pub fuse_residuals: bool,
}

impl Default for PersistentOptions {
    fn default() -> Self {
        let par = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
        PersistentOptions {
            n_workers: par.min(8),
            schedule_cycle: 256,
            monitor_pause: Duration::from_micros(50),
            max_round_lag: 1,
            detect_after_rounds: 8,
            stall_timeout: Duration::from_millis(500),
            fuse_residuals: true,
        }
    }
}

/// The host-side convergence check run concurrently with the workers.
///
/// The executor polls the global-iteration watermark (the minimum
/// per-block update count, relaxed loads — racy by design); every
/// [`period`](Self::period) watermark steps it snapshots the live iterate
/// into its reused buffer and calls [`check`](Self::check). Returning
/// `true` raises the stop flag.
pub trait ConvergenceMonitor {
    /// Global iterations between checks; `0` disables checking entirely
    /// (the run then always consumes its full round budget).
    fn period(&self) -> usize {
        0
    }

    /// One concurrent check: `global_iteration` is the watermark at which
    /// the check fired, `x` the snapshot taken for it (possibly mixing
    /// epochs — an asynchronous observer's view). Return `true` to stop
    /// the workers.
    fn check(&mut self, global_iteration: usize, x: &[f64]) -> bool;

    /// The fused fast path, consulted **before** [`check`](Self::check)
    /// when every block has published a residual sub-norm estimate
    /// (`estimate_sq ≈ ‖b − A x‖²`, reduced from the workers'
    /// [`crate::ResidualSlots`] in O(n_blocks)). Return `true` to
    /// *escalate* — take the snapshot and run the exact check — or
    /// `false` to skip this poll entirely, on the estimate's word that
    /// convergence is still far. The estimate can never stop the run:
    /// only the exact [`check`](Self::check) can, so a lying estimator
    /// costs extra polls (`false` near convergence) or extra exact
    /// checks (`true` early), never a wrong answer. The default always
    /// escalates, which reproduces the pre-fusion behaviour exactly.
    fn fused_check(&mut self, global_iteration: usize, estimate_sq: f64) -> bool {
        let _ = (global_iteration, estimate_sq);
        true
    }

    /// Whether the last exact [`check`](Self::check) found the run so
    /// close to stopping that the executor should keep polling at full
    /// pace instead of applying its expensive-poll pacing floor.
    /// Consulted right after an escalated check that did not stop the
    /// run: on a saturated host the wall-clock of an exact check
    /// includes CPU lost to the workers, and a floor proportional to it
    /// can sleep the monitor many rounds past the crossing — the one
    /// moment detection latency is the whole point. A converging run
    /// spends only its last handful of polls urgent, so waiving the
    /// floor there costs a bounded number of extra exact checks. The
    /// default (`false`) keeps cost-proportional pacing unconditionally.
    fn urgent(&self) -> bool {
        false
    }
}

/// The trivial monitor: never checks, never stops.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoMonitor;

impl ConvergenceMonitor for NoMonitor {
    fn check(&mut self, _global_iteration: usize, _x: &[f64]) -> bool {
        false
    }
}

/// Reusable storage for [`PersistentExecutor::run`]: the shared atomic
/// iterate, the monitor's snapshot buffer, the per-shard ticket lists and
/// counters, and the per-block bookkeeping. Reusing one workspace across
/// solves of the same system performs **zero** heap allocation after the
/// first run's capacities stabilise (asserted by
/// `tests/persistent_executor.rs`).
#[derive(Debug, Default)]
pub struct PersistentWorkspace {
    x: AtomicF64Vec,
    snapshot: Vec<f64>,
    /// One materialised schedule cycle per shard: `cycle * shard_len[s]`
    /// block ids, in dispatch order.
    shard_tickets: Vec<Vec<u32>>,
    /// The sharded round counters: ticket `t` of shard `s` is round
    /// `t / shard_len[s]`, block `shard_tickets[s][t % cycle_len]`.
    shard_next: Vec<SyncUsize>,
    shard_len: Vec<usize>,
    shard_total: Vec<usize>,
    counts: Vec<SyncUsize>,
    in_flight: Vec<SyncBool>,
    order_buf: Vec<usize>,
    block_shard: Vec<u32>,
    /// Prefix block offsets of the shards (`n_shards + 1` entries) — the
    /// fault runtime freezes/thaws whole shards by this range.
    shard_off: Vec<usize>,
    cycle_rounds: usize,
    /// Per-worker liveness beacons: bumped once per processed ticket.
    heartbeats: Vec<SyncUsize>,
    /// Per-worker normal-exit flags: a retired worker's frozen heartbeat
    /// is an exit, not a death.
    retired: Vec<SyncBool>,
    /// Per-shard ownership state for the recovery handoff.
    shard_state: Vec<ShardState>,
    /// Per-shard count of live workers homed on the shard; the last one
    /// to die orphans it.
    home_alive: Vec<SyncUsize>,
    /// One epoch-stamped residual sub-norm slot per block, published by
    /// workers on commit and reduced by the monitor's fused fast path.
    residuals: ResidualSlots,
}

impl PersistentWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fingerprint of the monitor's snapshot buffer (pointer, capacity) —
    /// the observable the zero-copy acceptance test watches across
    /// repeated solves.
    pub fn snapshot_fingerprint(&self) -> (usize, usize) {
        (self.snapshot.as_ptr() as usize, self.snapshot.capacity())
    }

    /// Total ticket capacity currently materialised (across shards).
    pub fn materialised_tickets(&self) -> usize {
        self.shard_tickets.iter().map(|t| t.len()).sum()
    }

    /// (Re)builds every buffer for a run. Reuses capacity wherever the
    /// shapes match the previous run. With `shard_offsets` the split is
    /// the caller's (device slices); otherwise it is the even
    /// `n_shards`-way default.
    #[allow(clippy::too_many_arguments)]
    fn prepare(
        &mut self,
        kernel: &dyn BlockKernel,
        x0: &[f64],
        rounds: usize,
        schedule: &mut dyn BlockSchedule,
        n_shards: usize,
        n_workers: usize,
        cycle_cap: usize,
        shard_offsets: Option<&[usize]>,
    ) {
        let nb = kernel.n_blocks();
        self.x.reset_from(x0);
        self.snapshot.resize(x0.len(), 0.0);

        self.shard_len.clear();
        match shard_offsets {
            Some(off) => {
                debug_assert_eq!(off.len() - 1, n_shards);
                assert_eq!(*off.last().unwrap(), nb, "shard plan must cover every block");
                self.shard_len.extend(off.windows(2).map(|w| w[1] - w[0]));
            }
            None => {
                // Contiguous shard split: shard s owns q blocks, the
                // first r shards one extra.
                let q = nb / n_shards;
                let r = nb % n_shards;
                self.shard_len.extend((0..n_shards).map(|s| q + usize::from(s < r)));
            }
        }
        self.shard_off.clear();
        self.shard_off.push(0);
        for &len in &self.shard_len {
            self.shard_off.push(self.shard_off.last().unwrap() + len);
        }
        if self.heartbeats.len() != n_workers {
            self.heartbeats.resize_with(n_workers, || SyncUsize::new(0));
        }
        for h in &mut self.heartbeats {
            h.set_exclusive(0);
        }
        if self.retired.len() != n_workers {
            self.retired.resize_with(n_workers, || SyncBool::new(false));
        }
        for r in &mut self.retired {
            r.set_exclusive(false);
        }
        if self.shard_state.len() != n_shards {
            self.shard_state.resize_with(n_shards, ShardState::new);
        }
        for st in &mut self.shard_state {
            st.reset();
        }
        if self.home_alive.len() != n_shards {
            self.home_alive.resize_with(n_shards, || SyncUsize::new(0));
        }
        for (s, c) in self.home_alive.iter_mut().enumerate() {
            c.set_exclusive((0..n_workers).filter(|w| w % n_shards == s).count());
        }
        self.block_shard.clear();
        for (s, &len) in self.shard_len.iter().enumerate() {
            self.block_shard.extend(std::iter::repeat_n(s as u32, len));
        }
        self.shard_total.clear();
        self.shard_total.extend(self.shard_len.iter().map(|&len| len * rounds));

        self.cycle_rounds = rounds.min(cycle_cap).max(1);
        if self.shard_tickets.len() != n_shards {
            self.shard_tickets.resize_with(n_shards, Vec::new);
        }
        for t in &mut self.shard_tickets {
            t.clear();
        }
        for round in 0..self.cycle_rounds {
            schedule.order(round, nb, &mut self.order_buf);
            debug_assert_eq!(self.order_buf.len(), nb);
            for &b in &self.order_buf {
                self.shard_tickets[self.block_shard[b] as usize].push(b as u32);
            }
        }

        if self.shard_next.len() != n_shards {
            self.shard_next.resize_with(n_shards, || SyncUsize::new(0));
        }
        for c in &mut self.shard_next {
            c.set_exclusive(0);
        }
        if self.counts.len() != nb {
            self.counts.resize_with(nb, || SyncUsize::new(0));
        }
        for c in &mut self.counts {
            c.set_exclusive(0);
        }
        if self.in_flight.len() != nb {
            self.in_flight.resize_with(nb, || SyncBool::new(false));
        }
        for f in &mut self.in_flight {
            f.set_exclusive(false);
        }
        self.residuals.reset(nb);
    }
}

/// What a persistent run did, beyond the [`UpdateTrace`].
#[derive(Debug, Clone, Default)]
pub struct PersistentReport {
    /// The global-iteration watermark when the run ended (minimum
    /// completed rounds over all blocks).
    pub global_iterations: usize,
    /// The watermark at which the monitor raised the stop flag, if it
    /// did — this is what a solver should report as its iteration count.
    pub stopped_at: Option<usize>,
    /// Monitor polls that took a snapshot and ran the exact
    /// [`ConvergenceMonitor::check`].
    pub checks: usize,
    /// Monitor polls answered by the fused residual estimate alone — an
    /// O(n_blocks) slot reduce, no snapshot, no exact check. Total polls
    /// are `checks + fused_checks`.
    pub fused_checks: usize,
    /// Updates a worker executed from a shard other than its home shard.
    pub stolen_updates: usize,
    /// Worker threads engaged — spawned for a scoped run, leased from
    /// the [`WorkerPool`] for a pooled one; always the worker count.
    pub workers_spawned: usize,
    /// Halo stage refreshes performed (0 when the run had no
    /// [`HaloExchange`] — single-device or DK).
    pub halo_refreshes: usize,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// What the fault runtime saw (empty for a fault-free run).
    pub fault: FaultReport,
    /// Worker bodies that unwound *outside* the per-sweep `catch_unwind`
    /// (an executor bug or a violated contract, never a planned fault)
    /// and were contained by the pool harness. Always 0 on the scoped
    /// path, where such a panic propagates out of the thread scope; a
    /// pooled caller must treat any non-zero value as a failed run whose
    /// result is untrustworthy.
    pub escaped_panics: usize,
}

/// The extended execution context of
/// [`PersistentExecutor::run_session`]: everything beyond the core
/// (kernel, iterate, schedule, filter, monitor, workspace) arguments.
/// `RunSession::default()` reproduces a plain [`PersistentExecutor::run`].
#[derive(Default)]
pub struct RunSession<'a> {
    /// Explicit shard partition (device slices); `None` for the even
    /// `n_workers`-way split.
    pub shards: Option<&'a ShardPlan>,
    /// Staged halo for off-shard reads; `None` for live reads.
    pub halo: Option<&'a HaloExchange>,
    /// Live fault plan; `None` for a fault-free run.
    pub faults: Option<&'a FaultPlan>,
    /// Request-scoped cancellation/deadline token, polled by the monitor.
    pub cancel: Option<&'a CancelToken>,
    /// Run on leased threads of a long-lived pool instead of spawning a
    /// scope; the lease size becomes the worker count.
    pub pool: Option<(&'a WorkerPool, Lease<'a>)>,
}

/// Raises the stop flag when dropped — the unwind backstop that keeps a
/// panicking monitor from leaving workers to run their full budget
/// before the scope join (or pool wait) can complete. On the normal path
/// the workers are already done and the store is inert.
struct RaiseStopOnExit<'a>(&'a SyncBool);

impl Drop for RaiseStopOnExit<'_> {
    fn drop(&mut self) {
        // sync: Release mirrors the monitor's stop-store discipline.
        self.0.store(true, Ordering::Release);
    }
}

/// The persistent-worker executor.
#[derive(Debug, Clone, Default)]
pub struct PersistentExecutor {
    /// Execution options.
    pub opts: PersistentOptions,
}

impl PersistentExecutor {
    /// Creates an executor with the given options.
    pub fn new(opts: PersistentOptions) -> Self {
        PersistentExecutor { opts }
    }

    /// Runs up to `rounds` asynchronous global rounds of the kernel over
    /// `x` (in place: read as the initial iterate, overwritten with the
    /// final one), dispatching per `schedule`, committing per `filter`,
    /// with `monitor` checked concurrently on the calling thread. Stops
    /// early when the monitor fires. The workspace is reused storage —
    /// pass the same one across runs to avoid reallocation.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &self,
        kernel: &dyn BlockKernel,
        x: &mut [f64],
        rounds: usize,
        schedule: &mut dyn BlockSchedule,
        filter: &dyn UpdateFilter,
        monitor: &mut dyn ConvergenceMonitor,
        ws: &mut PersistentWorkspace,
    ) -> (UpdateTrace, PersistentReport) {
        self.run_sharded(kernel, x, rounds, schedule, filter, monitor, ws, None, None)
    }

    /// [`run`](Self::run) with an explicit shard partition and an
    /// optional staged halo. With `shards`, the per-shard ticket pools
    /// are the plan's block ranges (a multi-GPU driver passes its device
    /// slices) instead of the even `n_workers`-way split. With `halo`,
    /// workers of shard `s` read the iterate through the halo's staged
    /// view for device `s` — off-shard components then arrive on the
    /// exchange's epoch cadence rather than live — and the halo's device
    /// count must equal the shard count.
    #[allow(clippy::too_many_arguments)]
    pub fn run_sharded(
        &self,
        kernel: &dyn BlockKernel,
        x: &mut [f64],
        rounds: usize,
        schedule: &mut dyn BlockSchedule,
        filter: &dyn UpdateFilter,
        monitor: &mut dyn ConvergenceMonitor,
        ws: &mut PersistentWorkspace,
        shards: Option<&ShardPlan>,
        halo: Option<&HaloExchange>,
    ) -> (UpdateTrace, PersistentReport) {
        self.run_faulted(kernel, x, rounds, schedule, filter, monitor, ws, shards, halo, None)
    }

    /// [`run_sharded`](Self::run_sharded) under a live [`FaultPlan`]:
    /// planned workers really die, hang, or go panicky mid-solve; the
    /// monitor detects deaths from stalled heartbeats; and — when the
    /// plan enables recovery-(t_r) — orphaned shards are reassigned into
    /// the survivors' work-stealing ring after `t_r` further floor
    /// rounds.
    ///
    /// ## The staleness contract under an outage
    ///
    /// The fault-free invariant is `max_skew <= max_round_lag + 1`: the
    /// lag gate admits a dispatch only while its round is within
    /// `max_round_lag` of the committed-progress floor, plus one for the
    /// in-flight update. An outage widens it as follows. When a worker
    /// dies, its orphaned blocks are *frozen out* of the floor (the
    /// paper's surviving components keep iterating), so the floor the
    /// gate sees keeps advancing while the frozen blocks sit at their
    /// pre-outage count `c`. At the thaw, the floor has reached some
    /// `F >= c`, and the realised outage is `F - c` rounds. The monotone
    /// floor mirror does **not** drop back to `c`: survivors remain gated
    /// at `F + max_round_lag`, so no live block can pass
    /// `F + max_round_lag + 1` until the thawed block itself catches up
    /// past `F` — at which point the normal invariant is restored. The
    /// widest spread is therefore at the thaw instant:
    /// `(F + max_round_lag + 1) - c = max_round_lag + 1 + (F - c)`, i.e.
    ///
    /// ```text
    /// max_skew <= max_round_lag + 1 + max_outage_rounds
    /// ```
    ///
    /// with `max_outage_rounds` the largest realised `F - c` over all
    /// frozen spans ([`FaultReport::max_outage_rounds`], measured by the
    /// [`SkewTracker`] at each thaw and at end-of-run reconciliation for
    /// never-thawed blocks). This bound is **asserted** after every run —
    /// fault-free runs assert the original bound, since their
    /// `max_outage_rounds` is 0.
    #[allow(clippy::too_many_arguments)]
    pub fn run_faulted(
        &self,
        kernel: &dyn BlockKernel,
        x: &mut [f64],
        rounds: usize,
        schedule: &mut dyn BlockSchedule,
        filter: &dyn UpdateFilter,
        monitor: &mut dyn ConvergenceMonitor,
        ws: &mut PersistentWorkspace,
        shards: Option<&ShardPlan>,
        halo: Option<&HaloExchange>,
        faults: Option<&FaultPlan>,
    ) -> (UpdateTrace, PersistentReport) {
        self.run_session(
            kernel,
            x,
            rounds,
            schedule,
            filter,
            monitor,
            ws,
            RunSession { shards, halo, faults, ..RunSession::default() },
        )
    }

    /// The fully general entry point: [`run_faulted`](Self::run_faulted)
    /// plus the request-scoped extensions a multi-tenant caller needs,
    /// bundled in a [`RunSession`].
    ///
    /// * **Cancellation/deadline** ([`RunSession::cancel`]): the monitor
    ///   polls the token once per poll and translates a fired token into
    ///   the ordinary Release stop store, so the run ends (and its leased
    ///   workers free up) within one monitor poll. The outcome is
    ///   [`RunOutcome::Cancelled`] / [`RunOutcome::DeadlineExceeded`] and
    ///   the iterate holds the partial result;
    ///   [`PersistentReport::global_iterations`] is the partial count.
    /// * **Pooled execution** ([`RunSession::pool`]): instead of spawning
    ///   a thread scope, the run consumes a [`Lease`] from a long-lived
    ///   [`WorkerPool`] and dispatches the same worker body onto the
    ///   leased threads; the worker count is the lease size (the
    ///   executor's `n_workers` option is ignored). The monitor still
    ///   runs on the calling thread, and the run does not return until
    ///   every leased worker has finished — the pool's completion edge
    ///   plays the thread-scope join edge, so all post-run reads stay
    ///   exact. A worker body that unwinds on a pooled run is contained
    ///   by the pool and surfaced via
    ///   [`PersistentReport::escaped_panics`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_session(
        &self,
        kernel: &dyn BlockKernel,
        x: &mut [f64],
        rounds: usize,
        schedule: &mut dyn BlockSchedule,
        filter: &dyn UpdateFilter,
        monitor: &mut dyn ConvergenceMonitor,
        ws: &mut PersistentWorkspace,
        session: RunSession<'_>,
    ) -> (UpdateTrace, PersistentReport) {
        let RunSession { shards, halo, faults, cancel, pool } = session;
        let nb = kernel.n_blocks();
        assert_eq!(x.len(), kernel.n(), "iterate length must match kernel");
        let mut trace = UpdateTrace::new(nb);
        let mut report = PersistentReport::default();
        if nb == 0 || rounds == 0 {
            return (trace, report);
        }

        // A pooled run's parallelism is its lease, not the option: the
        // pool arbitrates how many workers each concurrent solve gets.
        let n_workers = match &pool {
            Some((_, lease)) => lease.n().max(1),
            None => self.opts.n_workers.max(1),
        };
        let n_shards = match shards {
            Some(plan) => plan.n_shards(),
            None => n_workers.min(nb),
        };
        if let Some(h) = halo {
            assert_eq!(
                h.n_devices(),
                n_shards,
                "halo device count must match the shard count"
            );
        }
        ws.prepare(
            kernel,
            x,
            rounds,
            schedule,
            n_shards,
            n_workers,
            self.opts.schedule_cycle,
            shards.map(|p| p.offsets()),
        );
        report.workers_spawned = n_workers;

        // Disjoint borrows of the workspace: workers share the immutable
        // parts, the monitor alone touches the snapshot buffer.
        let PersistentWorkspace {
            x: ref xa,
            snapshot: ref mut snap,
            shard_tickets: ref tickets,
            shard_next: ref next,
            ref shard_len,
            ref shard_total,
            ref shard_off,
            ref counts,
            ref in_flight,
            ref block_shard,
            ref heartbeats,
            ref retired,
            ref shard_state,
            ref home_alive,
            ref residuals,
            cycle_rounds,
            ..
        } = *ws;
        let fuse = self.opts.fuse_residuals;

        let stop = SyncBool::new(false);
        let active = SyncUsize::new(n_workers);
        let skipped = SyncUsize::new(0);
        let stolen = SyncUsize::new(0);
        let panics = SyncUsize::new(0);
        let lag = self.opts.max_round_lag;
        let has_faults = faults.is_some_and(|p| !p.is_empty());
        let recovery = faults.and_then(|p| p.recovery_rounds);
        let detect_after = self.opts.detect_after_rounds.max(1);
        let stall_timeout = self.opts.stall_timeout.max(Duration::from_millis(1));
        // Adoption log: one lock per recovery handoff, not per update.
        let reassign_log: Mutex<Vec<Reassignment>> = Mutex::new(Vec::new());
        // The concurrent count-of-counts watermark (allocated here, at
        // solve start). Its floor — the minimum per-block *progress*
        // (commits plus filter-skips) — is what the lag gate below
        // compares dispatch rounds against: gating on committed progress
        // rather than dispatched tickets is what makes the reported
        // `max_skew <= max_round_lag + 1` airtight (an in-flight dispatch
        // no longer lets other blocks run an extra window ahead), and
        // counting skips keeps a filter-frozen block from pinning the
        // floor forever.
        let skew = SkewTracker::new(nb);
        let skew = &skew;
        // Each worker records read staleness into a private histogram and
        // merges it here at exit (one lock per worker per run).
        let stale_sink: Mutex<StalenessHistogram> = Mutex::new(StalenessHistogram::default());
        // Per-shard read views: live atomic everywhere, unless a halo
        // stages the off-shard components.
        let shard_views: Vec<XView<'_>> = (0..n_shards)
            .map(|s| match halo {
                Some(h) => XView::Staged(h.view(s, xa)),
                None => XView::Atomic(xa),
            })
            .collect();
        let shard_views = &shard_views;
        // The dispatch fence — the deterministic half of the outage
        // boundary. A shard whose *entire* home-worker set is planned to
        // die (Kill/Hang) dispatches no ticket at or beyond the outage
        // round until the shard is adopted: the §4.5 semantics "the dead
        // core's blocks receive no update after t0" must not depend on
        // how quickly the OS schedules the dying thread. Without the
        // fence, a descheduled victim lets survivors steal the doomed
        // shard's entire remaining budget before the fault ever fires —
        // no outage would be realised at all. The dying worker still
        // performs the freeze/orphan bookkeeping when it fires (and
        // detection still goes through the heartbeat protocol); the fence
        // only pins the ticket counter, so between the fence round and
        // the realised orphaning the system idles at the lag gate rather
        // than running ahead.
        let shard_fence: Vec<usize> = (0..n_shards)
            .map(|s| {
                let Some(plan) = faults else { return usize::MAX };
                let mut fence = 0usize;
                let mut homes = 0usize;
                for w in 0..n_workers {
                    if w % n_shards != s {
                        continue;
                    }
                    homes += 1;
                    match plan.fault_for(w) {
                        Some(f) if matches!(f.kind, FaultKind::Kill | FaultKind::Hang) => {
                            fence = fence.max(f.at_round)
                        }
                        _ => return usize::MAX,
                    }
                }
                if homes == 0 {
                    usize::MAX
                } else {
                    fence
                }
            })
            .collect();
        let shard_fence = &shard_fence;
        let started = Instant::now();
        let stop = &stop;

        // The worker body, shared verbatim by both execution modes — the
        // classic scoped spawn (threads born and joined per run) and the
        // pooled dispatch (threads leased from a long-lived
        // [`WorkerPool`]). It captures the whole solve-local environment
        // by shared reference; all per-worker mutable state lives inside.
        let worker = |w: usize| {
            {
                let my_fault =
                    faults.and_then(|p| p.fault_for(w)).map(|f| (f.kind, f.at_round));
                {
                    let home = w % n_shards;
                    // Per-worker buffers: allocated at spawn (= solve
                    // start), allocation-free once capacities settle.
                    let mut out: Vec<f64> = Vec::new();
                    let mut scratch = BlockScratch::new();
                    let mut stale_local = StalenessHistogram::default();
                    let mut fault_armed = my_fault.is_some();
                    let mut poisoned = false;
                    let mut died = false;
                    // sync: Acquire pairs with the monitor's Release
                    // store — a worker that observes stop=true also
                    // observes everything the monitor did before raising
                    // it (in particular its recorded stop watermark), so
                    // `stopped_at` is coherent with worker-visible stop.
                    'work: while !stop.load(Ordering::Acquire) {
                        // The fault trigger, checked *before* drawing a
                        // ticket so a dying worker never consumes (and
                        // thereby loses) a dispatch it will not perform.
                        if fault_armed {
                            let (kind, at_round) = my_fault.unwrap();
                            if skew.floor() >= at_round {
                                fault_armed = false;
                                match kind {
                                    FaultKind::Panic => poisoned = true,
                                    FaultKind::Kill | FaultKind::Hang => {
                                        // The dying worker realises the
                                        // outage: if it was the last live
                                        // worker homed on its shard, the
                                        // shard's blocks freeze out of the
                                        // progress floor and the shard
                                        // leaves the stealing pool. (A real
                                        // dead core does not announce
                                        // itself — *detection* still goes
                                        // through the heartbeat protocol.)
                                        //
                                        // sync: AcqRel — the decrement both
                                        // publishes this worker's last
                                        // commits and, for the final
                                        // decrementer, orders the freeze +
                                        // orphan sequence after every
                                        // sibling's death.
                                        if home_alive[home].fetch_sub(1, Ordering::AcqRel) == 1 {
                                            for b in shard_off[home]..shard_off[home + 1] {
                                                skew.freeze(b);
                                            }
                                            shard_state[home].orphan();
                                        }
                                        died = true;
                                        if kind == FaultKind::Hang {
                                            // Parked, not exited: the
                                            // thread stays resident until
                                            // the stop flag flips (stall
                                            // supervision guarantees it
                                            // eventually does).
                                            //
                                            // sync: Acquire pairs with the
                                            // monitor's Release stop store.
                                            while !stop.load(Ordering::Acquire) {
                                                std::thread::sleep(Duration::from_micros(200));
                                            }
                                        }
                                        break 'work;
                                    }
                                }
                            }
                        }
                        let mut exhausted = true;
                        for s in 0..n_shards {
                            // sync: advisory emptiness probe; the draw
                            // below revalidates with a CAS, so a stale
                            // read only costs one extra pass.
                            if next[s].load(Ordering::Relaxed) < shard_total[s] {
                                exhausted = false;
                                break;
                            }
                        }
                        if exhausted {
                            break 'work;
                        }
                        // The lag gate: a shard whose next dispatch round
                        // is more than `max_round_lag` ahead of the
                        // committed-progress floor is skipped — its
                        // would-be worker steals from the laggards
                        // instead, which both bounds the realised
                        // staleness (Eq. 2) and actively rebalances the
                        // load.
                        let floor = skew.floor();
                        // Draw a ticket: home shard first, then steal in
                        // ring order from the eligible others. The draw
                        // is a gate-validated CAS, not a fetch_add: the
                        // ticket taken is exactly the one the bounds
                        // check inspected. (A fetch_add after a separate
                        // gate check can overshoot — racing workers each
                        // validate the same `seen` and then draw
                        // *different* tickets, some past the lag window,
                        // which is precisely the `max_skew` bound leak
                        // the model explorer catches.)
                        let mut drawn = None;
                        'probe: for probe in 0..n_shards {
                            let s = (home + probe) % n_shards;
                            let mut cap = shard_total[s];
                            if has_faults {
                                match shard_state[s].probe() {
                                    // The outage: no ticket leaves an
                                    // orphaned shard, no matter how far
                                    // the stealing ring would reach.
                                    ShardPhase::Orphaned => continue 'probe,
                                    ShardPhase::Released => {
                                        // The recovery handoff: one
                                        // survivor wins the adoption CAS,
                                        // thaws the blocks (ending their
                                        // frozen spans), and logs the
                                        // reassignment; losers fall
                                        // through and treat the shard as
                                        // pooled again.
                                        if shard_state[s].try_adopt(w) {
                                            for b in shard_off[s]..shard_off[s + 1] {
                                                skew.thaw(b);
                                            }
                                            reassign_log.lock().push(Reassignment {
                                                shard: s,
                                                new_owner: w,
                                                at_floor: skew.floor(),
                                            });
                                        }
                                    }
                                    // Adoption lifts the fence: the new
                                    // owner (and the stealing ring) works
                                    // the backlog from the outage round on.
                                    ShardPhase::Adopted => {}
                                    ShardPhase::Open => {
                                        // Not yet orphaned, but doomed by
                                        // plan: the fence caps dispatch at
                                        // the outage round (see its
                                        // definition above).
                                        if shard_fence[s] != usize::MAX {
                                            cap = cap.min(
                                                shard_fence[s].saturating_mul(shard_len[s]),
                                            );
                                        }
                                    }
                                }
                            }
                            // sync: Relaxed snapshot to seed the CAS loop
                            // — staleness only costs a CAS retry.
                            let mut seen = next[s].load(Ordering::Relaxed);
                            loop {
                                if seen >= cap || seen / shard_len[s] > floor + lag {
                                    continue 'probe;
                                }
                                // sync: Relaxed CAS — the counter is a
                                // pure ticket dispenser; the gate bound is
                                // sound against a stale progress floor
                                // because the floor is monotone and read
                                // conservatively low.
                                match next[s].compare_exchange_weak(
                                    seen,
                                    seen + 1,
                                    Ordering::Relaxed,
                                    Ordering::Relaxed,
                                ) {
                                    Ok(_) => {
                                        drawn = Some((s, seen, probe != 0));
                                        break 'probe;
                                    }
                                    Err(cur) => seen = cur,
                                }
                            }
                        }
                        let Some((s, t, was_stolen)) = drawn else {
                            // Every eligible shard raced away (or only
                            // in-flight commits can advance the floor);
                            // let the holders make progress and retry.
                            std::thread::yield_now();
                            continue 'work;
                        };
                        let m = shard_len[s];
                        let round = t / m;
                        let block = tickets[s][t % (cycle_rounds * m)] as usize;
                        if was_stolen {
                            // sync: statistics counter, read after join.
                            stolen.fetch_add(1, Ordering::Relaxed);
                        }
                        if let Some(h) = halo {
                            h.maybe_refresh(s, round, xa, skew.floor());
                        }
                        if filter.block_enabled(block, round) {
                            acquire_block_flag(&in_flight[block]);
                            // hb shadow: with the in-flight flag held,
                            // this worker claims the block region and its
                            // scratch exclusively — both claims must
                            // happen-after the previous holder's (the
                            // flag's Release/Acquire hand-off provides
                            // the edge; a downgrade would be reported).
                            #[cfg(any(feature = "model", feature = "sanitize"))]
                            {
                                abr_sync::hb::on_data_write(
                                    abr_sync::hb::id_of(&in_flight[block]),
                                    abr_sync::hb::Access::WriteExcl,
                                );
                                scratch.hb_claim();
                            }
                            // Realised shift of every neighbour read
                            // (Eq. 3 measured, mirroring the DES): own
                            // committed rounds minus what the read
                            // actually delivers — the neighbour's count
                            // when read live, the stage's freshness stamp
                            // when it comes through the halo.
                            if let Some(nbrs) = kernel.neighbor_blocks(block) {
                                // sync: own count is only ever advanced
                                // under this block's in-flight flag, which
                                // we hold — the Relaxed read is exact.
                                let own = counts[block].load(Ordering::Relaxed) as i64;
                                for &j in nbrs {
                                    let read = match halo {
                                        Some(h) if block_shard[j] as usize != s => {
                                            h.stage_stamp(s) as i64
                                        }
                                        // sync: deliberately racy neighbour
                                        // progress sample — staleness here
                                        // is the quantity being *measured*
                                        // (Eq. 3), not a bug to order away.
                                        _ => counts[j].load(Ordering::Relaxed) as i64,
                                    };
                                    stale_local.record(own - read);
                                }
                            }
                            let (bs, be) = kernel.block_range(block);
                            out.clear();
                            out.resize(be - bs, 0.0);
                            // A panicking sweep (a planned Panic fault or
                            // a genuinely buggy kernel) is isolated here:
                            // the commit is dropped, the flag still
                            // released, the run degraded but never
                            // aborted. `AssertUnwindSafe` is sound because
                            // `out` is rebuilt above and the kernel
                            // contract re-initialises every scratch region
                            // it reads, so a torn state from an unwound
                            // sweep cannot leak into a later one.
                            let swept = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                || {
                                    if poisoned {
                                        panic!(
                                            "injected fault: worker {w} poisoned, \
                                             sweep of block {block} round {round} panics"
                                        );
                                    }
                                    if fuse {
                                        kernel.update_block_estimating(
                                            block,
                                            &shard_views[s],
                                            &mut out,
                                            &mut scratch,
                                        )
                                    } else {
                                        kernel.update_block_with(
                                            block,
                                            &shard_views[s],
                                            &mut out,
                                            &mut scratch,
                                        );
                                        None
                                    }
                                },
                            ));
                            if let Ok(estimate) = swept {
                                for (k, &v) in out.iter().enumerate() {
                                    if filter.component_enabled(bs + k, round) {
                                        xa.set(bs + k, v);
                                    }
                                }
                                // sync: Relaxed is safe under the held
                                // in-flight flag; cross-thread readers only
                                // use the count as a staleness sample.
                                counts[block].fetch_add(1, Ordering::Relaxed);
                                // Publish the fused residual sub-norm while
                                // still holding the block's in-flight flag
                                // (one publisher per slot at a time). The
                                // estimate is advisory — a poll it answers
                                // can only skip an exact check, never stop
                                // the run — so component drops by the fault
                                // filter merely make it optimistic, which
                                // the confirmation gate absorbs.
                                if let Some(sub_norm_sq) = estimate {
                                    residuals.publish(block, sub_norm_sq);
                                }
                            } else {
                                // sync: statistics counter, read after join.
                                panics.fetch_add(1, Ordering::Relaxed);
                            }
                            // sync: Release publishes this block's
                            // component writes and count bump to the next
                            // worker that Acquire-wins the flag.
                            in_flight[block].store(false, Ordering::Release);
                        } else {
                            // sync: statistics counter, read after join.
                            skipped.fetch_add(1, Ordering::Relaxed);
                        }
                        skew.on_progress(block);
                        // sync: Relaxed — a monotone liveness beacon; the
                        // monitor only compares successive samples for
                        // equality, so no ordering is needed.
                        heartbeats[w].fetch_add(1, Ordering::Relaxed);
                    }
                    if stale_local.total() > 0 {
                        stale_sink.lock().merge(&stale_local);
                    }
                    if !died {
                        // sync: Release pairs with the monitor's Acquire
                        // read — a retired worker's frozen heartbeat is a
                        // normal exit, never a death to detect. (A killed
                        // or hung worker deliberately does *not* retire.)
                        retired[w].store(true, Ordering::Release);
                    }
                    // sync: Release pairs with the monitor's Acquire load
                    // — "active == 0" proves every worker's final writes
                    // are visible before the monitor loop exits.
                    active.fetch_sub(1, Ordering::Release);
                }
            }
        };

        // --- The concurrent monitor, on the calling thread. ---
        // This is the paper's host: it reads the racy iterate on the
        // side while the workers stream updates, and raises the stop
        // flag the moment its check is satisfied. Wrapped as a closure so
        // both execution modes run the identical loop.
        let mut cancel_cause: Option<CancelCause> = None;
        let mut monitor_loop = || {
            let period = monitor.period();
            let mut next_check = period.max(1);
            let base_pause = self.opts.monitor_pause.max(Duration::from_micros(1));
            let max_pause = base_pause * 64;
            // Rate-paced polling: track how fast the watermark advances
            // and sleep roughly until the next check is due. Blind
            // exponential backoff alone would let fast, tiny rounds run
            // hundreds of iterations past the stop point before the
            // monitor wakes; pure fixed-rate polling would preempt the
            // workers thousands of times per solve on a saturated host.
            let mut last_wm = 0usize;
            let mut last_t = Instant::now();
            let mut per_round = base_pause;
            let mut idle_pause = base_pause;
            // Smoothed poll costs, tracked *per poll kind*: a fused
            // O(n_blocks) reduce and an escalated snapshot + exact check
            // differ by five orders of magnitude (~200 ns vs ~25 ms of
            // CPU at a million rows), and the elapsed wall-clock of an
            // exact check on a saturated host additionally includes the
            // CPU it lost to the workers. One shared estimate would let
            // a single escalation throttle the cheap fused polls into
            // the same sparse cadence as the expensive ones — observed
            // as the monitor sleeping 15+ rounds past the crossing. The
            // pacing floor below is set from the cost of whichever poll
            // kind just ran, so each kind's duty cycle is bounded at
            // ~1/4 independently.
            let mut fused_cost = Duration::ZERO;
            let mut exact_cost = Duration::ZERO;
            let mut poll_floor = Duration::ZERO;
            // Stall supervision + death detection state. The progress
            // signature folds every heartbeat and the live-worker count;
            // while it does not change, nothing in the system can ever
            // change it again except a worker action — so a signature
            // frozen past `stall_timeout` proves the run is wedged
            // (all workers dead/hung, or the survivors' only remaining
            // tickets sit in a shard no recovery will release).
            let mut last_sig = usize::MAX;
            let mut last_beat = Instant::now();
            let mut hb_seen = vec![usize::MAX; n_workers];
            let mut hb_floor = vec![0usize; n_workers];
            let mut dead = vec![false; n_workers];
            let mut reassign_due: Vec<Option<usize>> = vec![None; n_shards];
            loop {
                // sync: Acquire pairs with each worker's Release
                // decrement; zero means all worker writes are visible.
                let live = active.load(Ordering::Acquire);
                if live == 0 {
                    break;
                }
                // The request-scoped stop: an explicit cancellation or an
                // expired deadline becomes the run's ordinary Release
                // stop store on the very next poll — the workers (and a
                // pooled run's leased threads) drain within one monitor
                // poll, the latency bound the service layer advertises.
                if cancel_cause.is_none() {
                    if let Some(tok) = cancel {
                        if let Some(why) = tok.should_stop() {
                            cancel_cause = Some(why);
                            // sync: Release pairs with the workers'
                            // Acquire stop loads, as at every stop site.
                            stop.store(true, Ordering::Release);
                        }
                    }
                }
                let mut sig = live;
                for hb in heartbeats.iter() {
                    // sync: Relaxed — monotone beacon, sampled only for
                    // equality against the previous sample.
                    sig = sig.wrapping_add(hb.load(Ordering::Relaxed));
                }
                if sig != last_sig {
                    last_sig = sig;
                    last_beat = Instant::now();
                } else if last_beat.elapsed() >= stall_timeout {
                    // Last-resort recovery sweep before declaring the run
                    // wedged. The round-based detector below needs floor
                    // headroom *after* the victim's last observed beat; if
                    // the survivors drained their whole budget between two
                    // monitor polls, that headroom never materialises and
                    // the orphaned shard would wedge the run even though
                    // recovery was requested. A frozen progress signature
                    // is a stronger death certificate than any watermark
                    // comparison — every non-retired worker is provably
                    // not beating — so declare them, release what was
                    // orphaned, and grant the system one more stall
                    // window. Only if nothing could be released is the
                    // run truly wedged.
                    let mut rescued = false;
                    if has_faults && recovery.is_some() {
                        let floor = skew.floor();
                        for dw in 0..n_workers {
                            if dead[dw] {
                                continue;
                            }
                            // sync: Acquire pairs with the worker's
                            // retirement Release store (see below).
                            if retired[dw].load(Ordering::Acquire) {
                                dead[dw] = true;
                                continue;
                            }
                            dead[dw] = true;
                            report.fault.deaths.push(DeathRecord {
                                worker: dw,
                                declared_at: floor,
                                detection_lag: floor.saturating_sub(hb_floor[dw]),
                            });
                        }
                        for s in 0..n_shards {
                            if reassign_due[s].is_none()
                                && shard_state[s].probe() == ShardPhase::Orphaned
                                && (0..n_workers).filter(|w| w % n_shards == s).all(|w| dead[w])
                            {
                                reassign_due[s] = Some(floor);
                            }
                        }
                        for (s, due) in reassign_due.iter_mut().enumerate() {
                            if due.is_some() && shard_state[s].release() {
                                *due = None;
                                rescued = true;
                            }
                        }
                    }
                    if rescued {
                        last_beat = Instant::now();
                    } else {
                        // sync: Release pairs with the workers' (and hung
                        // threads') Acquire stop loads — the Stalled
                        // verdict and everything before it are visible to
                        // whoever acts on the flag.
                        stop.store(true, Ordering::Release);
                        // The scope join below still waits for the
                        // threads; hung workers wake on the flag and exit.
                        break;
                    }
                }
                if has_faults {
                    let floor = skew.floor();
                    for dw in 0..n_workers {
                        if dead[dw] {
                            continue;
                        }
                        // sync: Acquire pairs with the worker's retirement
                        // Release store — an exit observed here is never
                        // misread as a death.
                        if retired[dw].load(Ordering::Acquire) {
                            dead[dw] = true;
                            continue;
                        }
                        // sync: Relaxed beacon sample (see the worker's
                        // beat site).
                        let hb = heartbeats[dw].load(Ordering::Relaxed);
                        if hb != hb_seen[dw] {
                            hb_seen[dw] = hb;
                            hb_floor[dw] = floor;
                        } else if floor > hb_floor[dw] && floor - hb_floor[dw] >= detect_after {
                            // The heartbeat sat still while the floor ran
                            // `detect_after` rounds past it: declared
                            // dead. (Spurious for a merely-starved worker,
                            // which is harmless — `release` refuses
                            // shards that were never orphaned.)
                            dead[dw] = true;
                            report.fault.deaths.push(DeathRecord {
                                worker: dw,
                                declared_at: floor,
                                detection_lag: floor - hb_floor[dw],
                            });
                        }
                    }
                    // Recovery-(t_r) scheduling is decoupled from the
                    // declaration event: a shard is due for release `t_r`
                    // rounds after the first poll that observes it both
                    // orphaned and fully detected (every home worker
                    // declared dead). Tying it to the declaration itself
                    // loses recovery permanently when a spurious early
                    // declaration (a starved worker during spawn ramp-up)
                    // lands while the doomed shard is still Open — the
                    // sticky `dead` flag would then skip the real death.
                    if recovery.is_some() {
                        for s in 0..n_shards {
                            if reassign_due[s].is_none()
                                && shard_state[s].probe() == ShardPhase::Orphaned
                                && (0..n_workers).filter(|w| w % n_shards == s).all(|w| dead[w])
                            {
                                reassign_due[s] = Some(floor + recovery.unwrap_or(0));
                            }
                        }
                    }
                    // A pending release fires when the floor has run
                    // `t_r` rounds past the detection — or as soon as
                    // every live (pooled/adopted) shard has drained its
                    // budget: once the floor can no longer advance, the
                    // remaining delay has no rounds left to be measured
                    // in, and holding the shard would wedge a fixed-budget
                    // run into a stall that recovery was asked to prevent.
                    let any_due = reassign_due.iter().any(|d| d.is_some());
                    let live_drained = any_due
                        && (0..n_shards).all(|s| {
                            matches!(
                                shard_state[s].probe(),
                                ShardPhase::Orphaned | ShardPhase::Released
                            )
                                // sync: advisory drain probe; a stale low
                                // read only delays the early release by
                                // one poll.
                                || next[s].load(Ordering::Relaxed) >= shard_total[s]
                        });
                    for (s, due) in reassign_due.iter_mut().enumerate() {
                        if let Some(d) = *due {
                            if (floor >= d || live_drained) && shard_state[s].release() {
                                *due = None;
                            }
                        }
                    }
                }
                // sync: Acquire matches the flag's Release store (it is
                // this thread's own store, but the facade audit keeps the
                // flag's declared discipline uniform at every site).
                if period > 0 && !stop.load(Ordering::Acquire) {
                    // Watermark = dispatched rounds, not committed
                    // updates: O(n_shards) per poll, and it keeps
                    // advancing past blocks an [`UpdateFilter`] has
                    // frozen (fault injection), so convergence checks
                    // never stall behind a dead block. For the same
                    // reason an orphaned (or released-but-unadopted)
                    // shard is excluded: its dispatch counter is fenced
                    // for the whole outage, and pinning the watermark to
                    // it would silence every residual check of a
                    // no-recovery run right when the plateau is the
                    // thing being measured. An adopted shard rejoins the
                    // minimum — its backlog is live work again.
                    let watermark = (0..n_shards)
                        .filter(|&s| {
                            !has_faults
                                || !matches!(
                                    shard_state[s].probe(),
                                    ShardPhase::Orphaned | ShardPhase::Released
                                )
                        })
                        .map(|s| {
                            // sync: racy progress sample; the counter is
                            // monotone so a stale read only under-reports
                            // the watermark (checks fire late, never on
                            // future state).
                            next[s].load(Ordering::Relaxed).min(shard_total[s]) / shard_len[s]
                        })
                        .min()
                        .unwrap_or(0);
                    if watermark > last_wm {
                        let step = last_t.elapsed() / (watermark - last_wm) as u32;
                        // Smooth towards the observed per-round time so a
                        // single slow poll doesn't swing the pacing.
                        per_round = (per_round + step) / 2;
                        last_wm = watermark;
                        last_t = Instant::now();
                        idle_pause = base_pause;
                    }
                    if watermark >= next_check {
                        let poll_started = Instant::now();
                        // The fused fast path: when every block has
                        // published a residual sub-norm, an O(n_blocks)
                        // reduce prices this poll. `fused_check` may
                        // *skip* the snapshot + exact check (the
                        // estimate says convergence is far) but can
                        // never stop the run — stopping strictly
                        // requires the exact check below, so a stale or
                        // lying estimate costs polls, not correctness.
                        let escalate = match residuals.reduce() {
                            Some(estimate_sq) => monitor.fused_check(watermark, estimate_sq),
                            None => true,
                        };
                        if escalate {
                            for (i, sl) in snap.iter_mut().enumerate() {
                                *sl = xa.get(i);
                            }
                            report.checks += 1;
                            if monitor.check(watermark, snap) {
                                report.stopped_at = Some(watermark);
                                // sync: Release publishes the recorded stop
                                // watermark (the line above) to any worker
                                // that Acquire-observes the flag — the
                                // stop-watermark coherence invariant checked
                                // by tests/model_stop_watermark.rs.
                                stop.store(true, Ordering::Release);
                            } else {
                                next_check = watermark.saturating_add(period);
                            }
                            // Smooth towards the observed cost, like the
                            // per-round estimate: one slow outlier (a page
                            // fault mid-SpMV) should not triple the pacing
                            // floor for the rest of the run.
                            exact_cost = (exact_cost + poll_started.elapsed()) / 2;
                            // Endgame override: when the check itself says
                            // the crossing is imminent, pace like a fused
                            // poll — sleeping 3x an exact check's (possibly
                            // contention-inflated) wall cost here is how a
                            // run overshoots the tolerance by many rounds.
                            poll_floor = if monitor.urgent() {
                                fused_cost.saturating_mul(3)
                            } else {
                                exact_cost.saturating_mul(3)
                            };
                        } else {
                            report.fused_checks += 1;
                            next_check = watermark.saturating_add(period);
                            fused_cost = (fused_cost + poll_started.elapsed()) / 2;
                            poll_floor = fused_cost.saturating_mul(3);
                        }
                        // Fall through to the pacing sleep instead of
                        // re-polling immediately: when the workers outran
                        // `next_check` during an expensive poll, an
                        // unconditional catch-up would chain polls
                        // back-to-back and pin the monitor at 100% duty —
                        // exactly what the cost floor below exists to
                        // prevent.
                    }
                    // Wake around halfway to the expected due time so the
                    // check lands within ~period/2 of the true crossing.
                    // The distance is clamped before widening to `u32`
                    // and the multiply saturates: a monitor with a huge
                    // `period` (e.g. `usize::MAX` to mean "never") must
                    // degrade into the max pause, not overflow.
                    let remaining = next_check.saturating_sub(watermark).min(1 << 16) as u32;
                    let pause = (per_round.saturating_mul(remaining) / 2)
                        .clamp(base_pause, max_pause)
                        // The cost-aware floor: sleep at least 3x what the
                        // last poll of this kind cost, so polling can
                        // consume at most ~1/4 of the monitor thread's
                        // wall-clock no matter how expensive the check
                        // is. Deliberately applied after the clamp — a
                        // multi-millisecond exact check must be allowed
                        // to push the pause past `64 * monitor_pause` —
                        // and reset per poll kind, so one escalation does
                        // not throttle the nanosecond fused polls that
                        // follow it.
                        .max(poll_floor);
                    std::thread::sleep(pause);
                } else {
                    // Nothing to check (fixed budget or stop already
                    // raised): back off until the workers drain.
                    std::thread::sleep(idle_pause);
                    idle_pause = (idle_pause * 2).min(max_pause);
                }
            }
        };

        match pool {
            None => {
                // The classic lifecycle: one scope, n_workers spawns,
                // joined before the post-run reads below.
                std::thread::scope(|scope| {
                    for w in 0..n_workers {
                        let worker = &worker;
                        scope.spawn(move || worker(w));
                    }
                    // Unwind backstop: a panicking monitor (e.g. a
                    // violated contract assert) raises stop on the way
                    // out so the scope join does not wait for the full
                    // round budget.
                    let _raise = RaiseStopOnExit(stop);
                    monitor_loop();
                });
            }
            Some((pool, lease)) => {
                // The pooled lifecycle: the same worker body on leased
                // long-lived threads, monitor still on this thread.
                let pending = pool.dispatch(lease, &worker);
                {
                    let _raise = RaiseStopOnExit(stop);
                    monitor_loop();
                }
                // The wait is the pooled run's join edge — the post-run
                // reads below are exact for the same reason they are
                // after a thread scope.
                report.escaped_panics = pending.wait();
            }
        }

        trace.elapsed = started.elapsed().as_secs_f64();
        // Fold still-frozen outages (the no-recovery regime) into the
        // skew accounting before reading it: an outage nobody thawed is
        // still realised skew.
        skew.reconcile();
        // sync: the thread scope has joined every worker — these Relaxed
        // reads are ordered by the join edges and therefore exact.
        trace.updates_per_block = counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        // sync: post-join read (see above).
        trace.skipped_updates = skipped.load(Ordering::Relaxed);
        trace.max_skew = skew.max_skew();
        trace.staleness = stale_sink.into_inner();
        report.global_iterations =
            trace.updates_per_block.iter().copied().min().unwrap_or(0);
        // sync: post-join read (see above).
        report.stolen_updates = stolen.load(Ordering::Relaxed);
        report.halo_refreshes = halo.map_or(0, |h| h.refreshes());
        report.fault.reassignments = reassign_log.into_inner();
        // sync: post-join read (see above).
        report.fault.caught_panics = panics.load(Ordering::Relaxed);
        report.fault.max_outage_rounds = skew.max_outage();
        report.fault.frozen_spans = skew
            .frozen_spans()
            .into_iter()
            .map(|(block, frozen_at, outage_rounds, thawed)| FrozenSpan {
                block,
                frozen_at,
                outage_rounds,
                thawed,
            })
            .collect();
        report.outcome = if report.stopped_at.is_some() {
            RunOutcome::Stopped
        } else if (0..n_shards)
            // sync: post-join read (see above).
            .all(|s| next[s].load(Ordering::Relaxed) >= shard_total[s])
        {
            RunOutcome::Completed
        } else if let Some(why) = cancel_cause {
            // Undrained because the request-scoped token fired: the
            // caller asked for the stop, so this is neither convergence
            // nor a wedge.
            match why {
                CancelCause::Cancelled => RunOutcome::Cancelled,
                CancelCause::DeadlineExceeded => RunOutcome::DeadlineExceeded,
            }
        } else {
            // Undrained and never stopped by a check: the workers exited
            // on kills or on the stall-supervision stop — either way the
            // run wedged with tickets outstanding.
            RunOutcome::Stalled
        };
        // The staleness contract, re-derived for the outage window (see
        // the method docs): the fault-free `max_round_lag + 1` widens by
        // exactly the largest realised outage. Asserted, not hand-waved.
        assert!(
            trace.max_skew <= lag + 1 + report.fault.max_outage_rounds,
            "staleness contract violated: max_skew {} > max_round_lag {} + 1 + max_outage {}",
            trace.max_skew,
            lag,
            report.fault.max_outage_rounds
        );
        xa.copy_into(x);
        (trace, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::test_kernels::ConsensusKernel;
    use crate::kernel::AllowAll;
    use crate::schedule::{RandomPermutation, RoundRobin};

    fn run_consensus(
        n_workers: usize,
        rounds: usize,
        monitor: &mut dyn ConvergenceMonitor,
    ) -> (Vec<f64>, UpdateTrace, PersistentReport) {
        let kernel = ConsensusKernel { n: 48, block_size: 5 };
        let mut x: Vec<f64> = (0..48).map(|i| i as f64).collect();
        let exec = PersistentExecutor::new(PersistentOptions {
            n_workers,
            ..PersistentOptions::default()
        });
        let mut ws = PersistentWorkspace::new();
        let mut sched = RandomPermutation::new(11);
        let (trace, report) =
            exec.run(&kernel, &mut x, rounds, &mut sched, &AllowAll, monitor, &mut ws);
        (x, trace, report)
    }

    #[test]
    fn consensus_converges_with_persistent_workers() {
        let (x, trace, report) = run_consensus(3, 80, &mut NoMonitor);
        let mean = x.iter().sum::<f64>() / 48.0;
        for &v in &x {
            assert!((v - mean).abs() < 1e-5, "not converged: {v} vs {mean}");
        }
        assert_eq!(trace.total_updates(), 80 * 10);
        assert_eq!(report.global_iterations, 80);
        assert_eq!(report.workers_spawned, 3);
        assert_eq!(report.stopped_at, None);
    }

    #[test]
    fn monitor_stop_flag_halts_workers_early() {
        struct StopAt(usize);
        impl ConvergenceMonitor for StopAt {
            fn period(&self) -> usize {
                1
            }
            fn check(&mut self, gi: usize, _x: &[f64]) -> bool {
                gi >= self.0
            }
        }
        let mut monitor = StopAt(5);
        let (_, trace, report) = run_consensus(2, 10_000, &mut monitor);
        let at = report.stopped_at.expect("monitor must fire");
        assert!(at >= 5, "stopped at watermark {at}");
        assert!(
            trace.total_updates() < 10_000 * 10,
            "stop flag must halt the run early: {} updates",
            trace.total_updates()
        );
        assert!(report.checks >= 1);
    }

    #[test]
    fn filter_respected_with_absolute_rounds() {
        // Blocks frozen from round 3 onward: each block commits exactly 3
        // updates, and the skip counter absorbs the rest.
        struct FreezeFrom(usize);
        impl UpdateFilter for FreezeFrom {
            fn block_enabled(&self, _b: usize, round: usize) -> bool {
                round < self.0
            }
        }
        let kernel = ConsensusKernel { n: 20, block_size: 4 };
        let mut x = vec![1.0; 20];
        let exec = PersistentExecutor::new(PersistentOptions {
            n_workers: 2,
            ..PersistentOptions::default()
        });
        let mut ws = PersistentWorkspace::new();
        let (trace, _) = exec.run(
            &kernel,
            &mut x,
            8,
            &mut RoundRobin,
            &FreezeFrom(3),
            &mut NoMonitor,
            &mut ws,
        );
        assert_eq!(trace.updates_per_block, vec![3; 5]);
        assert_eq!(trace.skipped_updates, 5 * 5);
    }

    #[test]
    fn budget_beyond_schedule_cycle_still_counts_rounds_exactly() {
        let kernel = ConsensusKernel { n: 12, block_size: 3 };
        let mut x = vec![2.0; 12];
        let exec = PersistentExecutor::new(PersistentOptions {
            n_workers: 2,
            schedule_cycle: 4, // force cycling well below the budget
            ..PersistentOptions::default()
        });
        let mut ws = PersistentWorkspace::new();
        let (trace, report) = exec.run(
            &kernel,
            &mut x,
            50,
            &mut RandomPermutation::new(3),
            &AllowAll,
            &mut NoMonitor,
            &mut ws,
        );
        assert_eq!(trace.updates_per_block, vec![50; 4]);
        assert_eq!(report.global_iterations, 50);
    }

    #[test]
    fn workspace_reuse_keeps_buffers_stable() {
        let kernel = ConsensusKernel { n: 30, block_size: 5 };
        let exec = PersistentExecutor::new(PersistentOptions {
            n_workers: 2,
            ..PersistentOptions::default()
        });
        let mut ws = PersistentWorkspace::new();
        let run = |ws: &mut PersistentWorkspace| {
            let mut x = vec![1.0; 30];
            exec.run(
                &kernel,
                &mut x,
                20,
                &mut RoundRobin,
                &AllowAll,
                &mut NoMonitor,
                ws,
            );
        };
        run(&mut ws);
        let fp = ws.snapshot_fingerprint();
        let tickets = ws.materialised_tickets();
        for _ in 0..3 {
            run(&mut ws);
            assert_eq!(ws.snapshot_fingerprint(), fp, "snapshot buffer must be reused");
            assert_eq!(ws.materialised_tickets(), tickets);
        }
    }

    #[test]
    fn more_workers_than_blocks_degrades_gracefully() {
        let kernel = ConsensusKernel { n: 8, block_size: 4 }; // 2 blocks
        let mut x: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let exec = PersistentExecutor::new(PersistentOptions {
            n_workers: 6,
            ..PersistentOptions::default()
        });
        let mut ws = PersistentWorkspace::new();
        let (trace, _) = exec.run(
            &kernel,
            &mut x,
            40,
            &mut RoundRobin,
            &AllowAll,
            &mut NoMonitor,
            &mut ws,
        );
        assert_eq!(trace.total_updates(), 40 * 2);
        let mean = x.iter().sum::<f64>() / 8.0;
        for &v in &x {
            assert!((v - mean).abs() < 1e-6);
        }
    }

    /// Satellite regression: a multi-worker persistent run must actually
    /// measure skew (today's bug was a dead `max_skew == 0`), and the
    /// progress-floor lag gate must keep it within `max_round_lag + 1`.
    #[test]
    fn max_skew_is_nonzero_and_bounded_by_the_lag_gate() {
        for lag in [1usize, 3] {
            let kernel = ConsensusKernel { n: 48, block_size: 4 };
            let mut x: Vec<f64> = (0..48).map(|i| i as f64).collect();
            let exec = PersistentExecutor::new(PersistentOptions {
                n_workers: 4,
                max_round_lag: lag,
                ..PersistentOptions::default()
            });
            let mut ws = PersistentWorkspace::new();
            let (trace, _) = exec.run(
                &kernel,
                &mut x,
                60,
                &mut RandomPermutation::new(7),
                &AllowAll,
                &mut NoMonitor,
                &mut ws,
            );
            assert_eq!(trace.updates_per_block, vec![60; 12]);
            assert!(trace.max_skew > 0, "a concurrent run cannot be perfectly synchronous");
            assert!(
                trace.max_skew <= lag + 1,
                "skew {} exceeds the lag bound {}",
                trace.max_skew,
                lag + 1
            );
        }
    }

    /// Satellite regression: a monitor with a huge period (e.g.
    /// `usize::MAX` to mean "never due") must neither overflow the pacing
    /// arithmetic nor ever fire.
    #[test]
    fn huge_monitor_period_does_not_overflow_the_pacing() {
        struct NeverDue;
        impl ConvergenceMonitor for NeverDue {
            fn period(&self) -> usize {
                usize::MAX
            }
            fn check(&mut self, _gi: usize, _x: &[f64]) -> bool {
                panic!("a usize::MAX period must never come due");
            }
        }
        let (_, trace, report) = run_consensus(2, 40, &mut NeverDue);
        assert_eq!(trace.total_updates(), 40 * 10);
        assert_eq!(report.checks, 0);
        assert_eq!(report.stopped_at, None);
    }

    #[test]
    fn explicit_shard_plan_drives_the_split() {
        let kernel = ConsensusKernel { n: 20, block_size: 4 }; // 5 blocks
        let mut x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let exec = PersistentExecutor::new(PersistentOptions {
            n_workers: 4, // more workers than shards: they team up
            ..PersistentOptions::default()
        });
        let plan = ShardPlan::from_offsets(&[0, 2, 5]);
        assert_eq!(plan.n_shards(), 2);
        assert_eq!(plan.shard_range(1), (2, 5));
        let mut ws = PersistentWorkspace::new();
        let (trace, report) = exec.run_sharded(
            &kernel,
            &mut x,
            30,
            &mut RoundRobin,
            &AllowAll,
            &mut NoMonitor,
            &mut ws,
            Some(&plan),
            None,
        );
        assert_eq!(trace.updates_per_block, vec![30; 5]);
        assert_eq!(report.global_iterations, 30);
        assert_eq!(report.workers_spawned, 4);
        // The workspace took the plan's lengths, not the even split.
        assert_eq!(ws.shard_len, vec![2, 3]);
        let mean = x.iter().sum::<f64>() / 20.0;
        for &v in &x {
            assert!((v - mean).abs() < 1e-6);
        }
    }

    #[test]
    fn even_shard_plan_matches_the_implicit_split() {
        let plan = ShardPlan::even(10, 4);
        assert_eq!(plan.offsets(), &[0, 3, 6, 8, 10]);
        assert_eq!(plan.n_shards(), 4);
        // More shards than blocks clamps to one block per shard.
        assert_eq!(ShardPlan::even(3, 8).offsets(), &[0, 1, 2, 3]);
    }

    #[test]
    fn pooled_run_matches_scoped_semantics_and_reuses_the_pool() {
        let pool = crate::pool::WorkerPool::new(4);
        let kernel = ConsensusKernel { n: 48, block_size: 4 }; // 12 blocks
        let exec = PersistentExecutor::default();
        let mut ws = PersistentWorkspace::new();
        // Several consecutive solves on the same leased pool: the fabric
        // outlives every run (the daemon lifecycle in miniature).
        for round in 0..3 {
            let mut x: Vec<f64> = (0..48).map(|i| (i + round) as f64).collect();
            let lease = pool.try_lease(3).expect("pool is idle between runs");
            let plan = ShardPlan::even(kernel.n_blocks(), lease.n());
            let (trace, report) = exec.run_session(
                &kernel,
                &mut x,
                50,
                &mut RandomPermutation::new(round as u64),
                &AllowAll,
                &mut NoMonitor,
                &mut ws,
                RunSession {
                    shards: Some(&plan),
                    pool: Some((&pool, lease)),
                    ..RunSession::default()
                },
            );
            assert_eq!(trace.updates_per_block, vec![50; 12]);
            assert_eq!(report.global_iterations, 50);
            assert_eq!(report.outcome, RunOutcome::Completed);
            assert_eq!(report.workers_spawned, 3, "worker count is the lease size");
            assert_eq!(report.escaped_panics, 0);
            assert!(trace.max_skew <= exec.opts.max_round_lag + 1);
            let mean = x.iter().sum::<f64>() / 48.0;
            for &v in &x {
                assert!((v - mean).abs() < 1e-5, "not converged: {v} vs {mean}");
            }
            assert_eq!(pool.idle(), 4, "lease returned after the run");
        }
        assert_eq!(pool.shutdown(), 4);
    }

    #[test]
    fn cancel_token_stops_a_run_and_reports_cancelled() {
        let kernel = ConsensusKernel { n: 48, block_size: 4 };
        let mut x: Vec<f64> = (0..48).map(|i| i as f64).collect();
        let exec = PersistentExecutor::new(PersistentOptions {
            n_workers: 2,
            ..PersistentOptions::default()
        });
        let mut ws = PersistentWorkspace::new();
        let token = CancelToken::new();
        token.cancel(); // fired before the first poll: stops immediately
        let (trace, report) = exec.run_session(
            &kernel,
            &mut x,
            200_000,
            &mut RoundRobin,
            &AllowAll,
            &mut NoMonitor,
            &mut ws,
            RunSession { cancel: Some(&token), ..RunSession::default() },
        );
        assert_eq!(report.outcome, RunOutcome::Cancelled);
        assert!(
            trace.total_updates() < 200_000 * 12,
            "cancellation must stop the run early: {} updates",
            trace.total_updates()
        );
    }

    #[test]
    fn expired_deadline_reports_partial_progress_on_a_pooled_run() {
        let pool = crate::pool::WorkerPool::new(2);
        let kernel = ConsensusKernel { n: 48, block_size: 4 };
        let exec = PersistentExecutor::default();
        let mut ws = PersistentWorkspace::new();
        let lease = pool.try_lease(2).unwrap();
        let plan = ShardPlan::even(kernel.n_blocks(), lease.n());
        let token =
            CancelToken::with_deadline(Instant::now() + Duration::from_millis(5));
        let mut x: Vec<f64> = (0..48).map(|i| i as f64).collect();
        let (_, report) = exec.run_session(
            &kernel,
            &mut x,
            usize::MAX / (12 * 4), // far more rounds than 5 ms allows
            &mut RoundRobin,
            &AllowAll,
            &mut NoMonitor,
            &mut ws,
            RunSession {
                shards: Some(&plan),
                cancel: Some(&token),
                pool: Some((&pool, lease)),
                ..RunSession::default()
            },
        );
        assert_eq!(report.outcome, RunOutcome::DeadlineExceeded);
        // The shards came back: the next request on the same pool leases
        // the full width and completes fault-free.
        let lease = pool.try_lease(2).expect("deadline-out run released its lease");
        let plan = ShardPlan::even(kernel.n_blocks(), lease.n());
        let mut y: Vec<f64> = (0..48).map(|i| i as f64).collect();
        let (_, report2) = exec.run_session(
            &kernel,
            &mut y,
            50,
            &mut RoundRobin,
            &AllowAll,
            &mut NoMonitor,
            &mut ws,
            RunSession {
                shards: Some(&plan),
                pool: Some((&pool, lease)),
                ..RunSession::default()
            },
        );
        assert_eq!(report2.outcome, RunOutcome::Completed);
        let mean = y.iter().sum::<f64>() / 48.0;
        for &v in &y {
            assert!((v - mean).abs() < 1e-5);
        }
        assert_eq!(pool.shutdown(), 2);
    }

    #[test]
    #[should_panic(expected = "cover every block")]
    fn shard_plan_must_cover_every_block() {
        let kernel = ConsensusKernel { n: 20, block_size: 4 }; // 5 blocks
        let mut x = vec![0.0; 20];
        let exec = PersistentExecutor::default();
        let plan = ShardPlan::from_offsets(&[0, 2, 4]); // only 4 of 5
        let mut ws = PersistentWorkspace::new();
        exec.run_sharded(
            &kernel,
            &mut x,
            2,
            &mut RoundRobin,
            &AllowAll,
            &mut NoMonitor,
            &mut ws,
            Some(&plan),
            None,
        );
    }

    #[test]
    fn staged_halo_refreshes_and_still_converges() {
        use crate::halo::HaloExchange;
        use crate::timing::CommStrategy;
        let kernel = ConsensusKernel { n: 20, block_size: 4 }; // 5 blocks
        let mut x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let x0 = x.clone();
        let exec = PersistentExecutor::new(PersistentOptions {
            n_workers: 2,
            ..PersistentOptions::default()
        });
        let plan = ShardPlan::from_offsets(&[0, 2, 5]);
        // Device rows mirror the shard plan's block ranges (blocks of 4).
        let halo = HaloExchange::for_strategy(CommStrategy::Dc, &[0, 8, 20], &x0, 2).unwrap();
        let mut ws = PersistentWorkspace::new();
        let (trace, report) = exec.run_sharded(
            &kernel,
            &mut x,
            400,
            &mut RoundRobin,
            &AllowAll,
            &mut NoMonitor,
            &mut ws,
            Some(&plan),
            Some(&halo),
        );
        assert_eq!(trace.updates_per_block, vec![400; 5]);
        assert!(report.halo_refreshes > 0, "the exchange must actually run");
        // Stale halos slow consensus but must not break it: with a
        // 2-round epoch over 400 rounds the devices still agree.
        let mean = x.iter().sum::<f64>() / 20.0;
        for &v in &x {
            assert!((v - mean).abs() < 1e-5, "not converged: {v} vs {mean}");
        }
    }

    /// Fault-path harness: a consensus run under a plan, small pauses and
    /// aggressive detection so the tests stay fast.
    #[allow(clippy::too_many_arguments)]
    fn run_faulted_consensus(
        n_workers: usize,
        nb_times_bs: (usize, usize),
        rounds: usize,
        plan: &FaultPlan,
        detect_after: usize,
        stall_ms: u64,
    ) -> (Vec<f64>, UpdateTrace, PersistentReport) {
        let (n, block_size) = nb_times_bs;
        let kernel = ConsensusKernel { n, block_size };
        let mut x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let exec = PersistentExecutor::new(PersistentOptions {
            n_workers,
            detect_after_rounds: detect_after,
            stall_timeout: Duration::from_millis(stall_ms),
            ..PersistentOptions::default()
        });
        let mut ws = PersistentWorkspace::new();
        let mut sched = RoundRobin;
        let (trace, report) = exec.run_faulted(
            &kernel,
            &mut x,
            rounds,
            &mut sched,
            &AllowAll,
            &mut NoMonitor,
            &mut ws,
            None,
            None,
            Some(plan),
        );
        (x, trace, report)
    }

    /// The Stalled regression: every worker killed at round 0 must end
    /// the run with an explicit `Stalled` outcome in bounded time (here
    /// the kill path — the monitor breaks on `active == 0` immediately,
    /// no stall timeout even needed).
    #[test]
    fn all_workers_killed_returns_stalled_in_bounded_time() {
        let mut plan = FaultPlan::new();
        for w in 0..3 {
            plan = plan.kill(w, 0);
        }
        let started = Instant::now();
        let (_, trace, report) =
            run_faulted_consensus(3, (24, 4), 10_000, &plan, 3, 200);
        assert_eq!(report.outcome, RunOutcome::Stalled);
        assert_eq!(trace.total_updates(), 0, "nobody should have worked");
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "an all-dead run must terminate promptly"
        );
    }

    /// Same guarantee on the hang path: the threads stay resident, so
    /// termination relies on the stall supervision raising the stop flag.
    #[test]
    fn all_workers_hung_returns_stalled_within_the_pacing_budget() {
        let mut plan = FaultPlan::new();
        for w in 0..2 {
            plan = plan.hang(w, 0);
        }
        let started = Instant::now();
        let (_, _, report) = run_faulted_consensus(2, (12, 3), 10_000, &plan, 3, 100);
        assert_eq!(report.outcome, RunOutcome::Stalled);
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "stall supervision must terminate a hung run"
        );
    }

    /// A kill with recovery: the death is detected from the stalled
    /// heartbeat, the orphaned shard is released after t_r floor rounds,
    /// exactly one survivor adopts it, and the run then drains its full
    /// budget — every block ends at the full commit count, with the
    /// outage recorded as frozen spans and a widened (asserted) skew
    /// bound.
    #[test]
    fn kill_with_recovery_reassigns_the_orphaned_shard() {
        let plan = FaultPlan::new().kill(1, 5).with_recovery(6);
        let (x, trace, report) =
            run_faulted_consensus(4, (48, 4), 120, &plan, 3, 2_000);
        assert_eq!(report.outcome, RunOutcome::Completed);
        assert_eq!(trace.updates_per_block, vec![120; 12]);
        assert!(
            report.fault.deaths.iter().any(|d| d.worker == 1),
            "worker 1's death must be detected: {:?}",
            report.fault.deaths
        );
        for d in &report.fault.deaths {
            // Both detection paths (watermark headroom, stall rescue)
            // declare at a floor past the fence round.
            assert!(d.declared_at >= 5, "declared at {} before the fault", d.declared_at);
        }
        let r = report
            .fault
            .reassignments
            .iter()
            .find(|r| r.shard == 1)
            .expect("shard 1 must be reassigned");
        assert_ne!(r.new_owner, 1, "a dead worker cannot adopt");
        assert!(!report.fault.frozen_spans.is_empty());
        assert!(report.fault.frozen_spans.iter().all(|s| s.thawed));
        assert!(report.fault.max_outage_rounds > 0, "the outage must be realised");
        let mean = x.iter().sum::<f64>() / 48.0;
        for &v in &x {
            // Loose tolerance: a worst-case-late recovery leaves fewer
            // effective mixing rounds after the backlog replay.
            assert!((v - mean).abs() < 1e-3, "not converged: {v} vs {mean}");
        }
    }

    /// No recovery: the orphaned shard's tickets are never drained, the
    /// survivors finish their own work and the run ends `Stalled`, with
    /// the orphan blocks' commit counts frozen at the outage point.
    #[test]
    fn kill_without_recovery_stalls_with_frozen_blocks() {
        let plan = FaultPlan::new().kill(1, 5);
        let (_, trace, report) = run_faulted_consensus(4, (48, 4), 40, &plan, 3, 300);
        assert_eq!(report.outcome, RunOutcome::Stalled);
        // Shard 1 owns blocks 3..6; they froze around round 5 while every
        // other block drained the full 40-round budget.
        for b in 0..12 {
            let c = trace.updates_per_block[b];
            if (3..6).contains(&b) {
                assert!(c < 40, "orphan block {b} should be frozen, got {c}");
            } else {
                assert_eq!(c, 40, "live block {b} must drain its budget");
            }
        }
        assert!(report.fault.frozen_spans.iter().any(|s| !s.thawed));
        assert!(report.fault.max_outage_rounds > 0);
    }

    /// Panic isolation: a poisoned worker's sweeps all panic, yet the run
    /// completes its budget without aborting the process; the lost
    /// commits are visible in the per-block counts and the catches in the
    /// FaultReport.
    #[test]
    fn poisoned_worker_degrades_the_solve_without_aborting() {
        // Silence the default panic hook for the injected panics (races
        // with other tests' hooks are cosmetic only).
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        // Poison *every* worker: once the floor passes round 3 each
        // worker's next observation arms the panic, so the catches are
        // guaranteed regardless of how the OS schedules the threads
        // (poisoning a single worker of many is racy under a loaded test
        // host — the survivors can drain the whole budget while the
        // victim never gets a slot).
        let plan = FaultPlan::new().poison(0, 3).poison(1, 3);
        let (_, trace, report) = run_faulted_consensus(2, (48, 4), 60, &plan, 4, 2_000);
        std::panic::set_hook(hook);
        assert_eq!(report.outcome, RunOutcome::Completed);
        assert!(report.fault.caught_panics > 0, "panics must be caught and counted");
        assert!(
            trace.total_updates() + report.fault.caught_panics == 60 * 12,
            "every dispatch must be either committed or a counted catch: {} + {}",
            trace.total_updates(),
            report.fault.caught_panics
        );
        // A starved worker may be *declared* dead spuriously (documented
        // as harmless), but a panicking worker never orphans its shard:
        // nothing may be frozen or reassigned.
        assert!(report.fault.frozen_spans.is_empty(), "a panic must not freeze blocks");
        assert!(report.fault.reassignments.is_empty(), "a panic must not reassign");
        assert_eq!(report.fault.max_outage_rounds, 0);
    }

    #[test]
    fn fault_free_run_reports_an_empty_fault_report() {
        let (_, _, report) = run_consensus(3, 30, &mut NoMonitor);
        assert!(report.fault.is_empty());
        assert_eq!(report.outcome, RunOutcome::Completed);
        assert_eq!(report.fault.max_outage_rounds, 0);
    }

    #[test]
    fn zero_rounds_noop() {
        let kernel = ConsensusKernel { n: 4, block_size: 2 };
        let mut x = vec![9.0; 4];
        let exec = PersistentExecutor::default();
        let mut ws = PersistentWorkspace::new();
        let (trace, report) = exec.run(
            &kernel,
            &mut x,
            0,
            &mut RoundRobin,
            &AllowAll,
            &mut NoMonitor,
            &mut ws,
        );
        assert_eq!(x, vec![9.0; 4]);
        assert_eq!(trace.total_updates(), 0);
        assert_eq!(report.workers_spawned, 0);
    }
}
