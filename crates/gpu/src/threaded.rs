//! The real-threads executor: genuine asynchronous chaos.
//!
//! Where [`crate::sim::SimExecutor`] *simulates* asynchrony reproducibly,
//! this executor realises it physically: OS worker threads grab block
//! tickets from an atomic counter and update a shared [`AtomicF64Vec`]
//! with relaxed loads and stores, with no synchronisation whatsoever
//! between updates — precisely the situation of the paper's CUDA kernels
//! running through unsynchronised streams. Results are therefore
//! non-deterministic run to run; the integration tests check that the
//! *achieved residual* agrees with the DES executor, which is the claim
//! the paper's §4.1 statistics make about the method.

use crate::kernel::{BlockKernel, BlockScratch, UpdateFilter};
use crate::schedule::{flatten_schedule, BlockSchedule};
use crate::trace::{SkewTracker, UpdateTrace};
use crate::xview::{AtomicF64Vec, XView};
use abr_sync::{Ordering, SyncBool, SyncUsize};
use parking_lot::Mutex;
use std::time::Instant;

/// How many failed acquisition attempts to spin before falling back to
/// yielding the OS scheduler. Spinning briefly wins when the holder is
/// mid-update on another core; yielding wins when the holder has been
/// descheduled (on a single-core host, spinning alone would burn the
/// whole timeslice the holder needs to finish).
const SPIN_LIMIT: u32 = 64;

/// Acquires a per-block in-flight flag with bounded spinning: up to
/// [`SPIN_LIMIT`] `spin_loop` hints, then `yield_now` between attempts.
/// Shared by the chunked [`ThreadedExecutor`] and the persistent
/// executor ([`crate::persistent`]) — both serialise the updates of one
/// block through exactly this protocol.
#[inline]
pub(crate) fn acquire_block_flag(flag: &SyncBool) {
    let mut attempts = 0u32;
    // sync: Acquire on success pairs with the releasing store that frees
    // the flag — winning the flag makes the previous holder's block
    // writes and count bump visible. Relaxed on failure: a losing
    // attempt publishes nothing and acts on nothing.
    while flag
        .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
        .is_err()
    {
        if attempts < SPIN_LIMIT {
            attempts += 1;
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

/// Options for [`ThreadedExecutor`].
#[derive(Debug, Clone)]
pub struct ThreadedOptions {
    /// Number of OS worker threads. Defaults to the machine's available
    /// parallelism (capped at 8 — beyond that the tiny test systems just
    /// produce scheduler noise).
    pub n_workers: usize,
    /// When true, the worker that takes the last ticket of each round
    /// snapshots the (racy, mid-flight) iterate — the observable the
    /// non-determinism study records.
    pub snapshot_rounds: bool,
}

impl Default for ThreadedOptions {
    fn default() -> Self {
        let par = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
        ThreadedOptions { n_workers: par.min(8), snapshot_rounds: false }
    }
}

/// The real-threads executor.
#[derive(Debug, Clone, Default)]
pub struct ThreadedExecutor {
    /// Execution options.
    pub opts: ThreadedOptions,
}

impl ThreadedExecutor {
    /// Creates an executor with the given options.
    pub fn new(opts: ThreadedOptions) -> Self {
        ThreadedExecutor { opts }
    }

    /// Runs `rounds` rounds over a copy of `x0`; returns the final iterate,
    /// the trace, and (if `snapshot_rounds`) one snapshot per round in
    /// round order.
    pub fn run(
        &self,
        kernel: &dyn BlockKernel,
        x0: &[f64],
        rounds: usize,
        schedule: &mut dyn BlockSchedule,
        filter: &dyn UpdateFilter,
    ) -> (Vec<f64>, UpdateTrace, Vec<Vec<f64>>) {
        let nb = kernel.n_blocks();
        assert_eq!(x0.len(), kernel.n(), "iterate length must match kernel");
        let mut trace = UpdateTrace::new(nb);
        if nb == 0 || rounds == 0 {
            return (x0.to_vec(), trace, Vec::new());
        }
        let tickets = flatten_schedule(schedule, nb, rounds);
        let x = AtomicF64Vec::from_slice(x0);
        let next = SyncUsize::new(0);
        let counts: Vec<SyncUsize> = (0..nb).map(|_| SyncUsize::new(0)).collect();
        // Prevents two workers updating the same block concurrently,
        // which bounds how far one block's committed updates can reorder
        // (on the hardware, a block's updates are consecutive kernels of
        // one stream). Note this is mutual exclusion, not strict ticket
        // order: a later ticket can occasionally commit first, which is
        // just one more admissible chaotic ordering.
        let in_flight: Vec<SyncBool> = (0..nb).map(|_| SyncBool::new(false)).collect();
        let skipped = SyncUsize::new(0);
        // Count-of-counts watermark: every processed ticket (commit or
        // filtered skip) is progress, so the reported `max_skew` measures
        // how far the chaotic interleaving actually spread the blocks —
        // previously this path left `max_skew` dead at zero.
        let skew = SkewTracker::new(nb);
        let skew = &skew;
        let snapshots: Mutex<Vec<(usize, Vec<f64>)>> = Mutex::new(Vec::new());
        let started = Instant::now();

        let workers = self.opts.n_workers.max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    // Per-worker buffers: never shared across threads, so
                    // updates are allocation-free once capacities settle.
                    let mut out: Vec<f64> = Vec::new();
                    let mut scratch = BlockScratch::new();
                    loop {
                        // sync: pure ticket dispenser — each ticket is
                        // handed out exactly once by RMW atomicity, and
                        // no other memory hangs off the ticket value.
                        let t = next.fetch_add(1, Ordering::Relaxed);
                        if t >= tickets.len() {
                            break;
                        }
                        let block = tickets[t] as usize;
                        let round = t / nb;
                        if filter.block_enabled(block, round) {
                            acquire_block_flag(&in_flight[block]);
                            let (s, e) = kernel.block_range(block);
                            out.clear();
                            out.resize(e - s, 0.0);
                            kernel.update_block_with(block, &XView::Atomic(&x), &mut out, &mut scratch);
                            for (k, &v) in out.iter().enumerate() {
                                if filter.component_enabled(s + k, round) {
                                    x.set(s + k, v);
                                }
                            }
                            // sync: Relaxed is safe under the held
                            // in-flight flag (no concurrent writer).
                            counts[block].fetch_add(1, Ordering::Relaxed);
                            // sync: Release publishes this block's writes
                            // to the next Acquire-winner of the flag.
                            in_flight[block].store(false, Ordering::Release);
                        } else {
                            // sync: statistics counter, read after join.
                            skipped.fetch_add(1, Ordering::Relaxed);
                        }
                        skew.on_progress(block);
                        if self.opts.snapshot_rounds && (t + 1).is_multiple_of(nb) {
                            snapshots.lock().push((round, x.snapshot()));
                        }
                    }
                });
            }
        });

        trace.elapsed = started.elapsed().as_secs_f64();
        // sync: the thread scope has joined every worker — these Relaxed
        // reads are ordered by the join edges and therefore exact.
        trace.updates_per_block =
            counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        // sync: post-join read (see above).
        trace.skipped_updates = skipped.load(Ordering::Relaxed);
        trace.max_skew = skew.max_skew();
        let mut snaps = snapshots.into_inner();
        snaps.sort_by_key(|(round, _)| *round);
        (x.snapshot(), trace, snaps.into_iter().map(|(_, s)| s).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::test_kernels::ConsensusKernel;
    use crate::kernel::AllowAll;
    use crate::schedule::{RandomPermutation, RoundRobin};

    #[test]
    fn consensus_converges_with_real_threads() {
        let kernel = ConsensusKernel { n: 48, block_size: 5 };
        let x0: Vec<f64> = (0..48).map(|i| i as f64).collect();
        let exec = ThreadedExecutor::default();
        let mut sched = RandomPermutation::new(11);
        let (x, trace, _) = exec.run(&kernel, &x0, 80, &mut sched, &AllowAll);
        let mean = x.iter().sum::<f64>() / 48.0;
        for &v in &x {
            assert!((v - mean).abs() < 1e-5, "not converged: {v} vs {mean}");
        }
        assert_eq!(trace.total_updates(), 80 * kernel.n_blocks());
    }

    /// Satellite regression: this path used to leave `max_skew` dead at
    /// zero. With more than one block the very first committed update
    /// already spreads the count histogram, so a run must report skew.
    #[test]
    fn max_skew_is_measured_on_the_threaded_path() {
        let kernel = ConsensusKernel { n: 24, block_size: 4 };
        let x0 = vec![1.0; 24];
        let exec = ThreadedExecutor::new(ThreadedOptions {
            n_workers: 4,
            ..ThreadedOptions::default()
        });
        let (_, trace, _) = exec.run(&kernel, &x0, 40, &mut RoundRobin, &AllowAll);
        assert!(trace.max_skew > 0, "a run over >1 block cannot report zero skew");
    }

    #[test]
    fn snapshots_cover_rounds() {
        let kernel = ConsensusKernel { n: 12, block_size: 4 };
        let x0 = vec![1.0; 12];
        let exec = ThreadedExecutor::new(ThreadedOptions { n_workers: 3, snapshot_rounds: true });
        let (_, _, snaps) = exec.run(&kernel, &x0, 6, &mut RoundRobin, &AllowAll);
        assert_eq!(snaps.len(), 6);
        for s in &snaps {
            assert_eq!(s.len(), 12);
        }
    }

    #[test]
    fn filter_respected() {
        struct FreezeAll;
        impl UpdateFilter for FreezeAll {
            fn component_enabled(&self, _i: usize, _round: usize) -> bool {
                false
            }
        }
        let kernel = ConsensusKernel { n: 10, block_size: 2 };
        let x0: Vec<f64> = (0..10).map(|i| i as f64 * 2.0).collect();
        let exec = ThreadedExecutor::default();
        let (x, trace, _) = exec.run(&kernel, &x0, 5, &mut RoundRobin, &FreezeAll);
        assert_eq!(x, x0, "all writes filtered: iterate unchanged");
        // blocks still executed (the cores ran, their writes were dropped)
        assert_eq!(trace.total_updates(), 5 * 5);
    }

    #[test]
    fn zero_rounds_noop() {
        let kernel = ConsensusKernel { n: 4, block_size: 2 };
        let exec = ThreadedExecutor::default();
        let (x, trace, snaps) = exec.run(&kernel, &[9.0; 4], 0, &mut RoundRobin, &AllowAll);
        assert_eq!(x, vec![9.0; 4]);
        assert_eq!(trace.total_updates(), 0);
        assert!(snaps.is_empty());
    }
}
