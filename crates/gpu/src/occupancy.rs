//! Fermi occupancy arithmetic: how many thread blocks fit on one SM.
//!
//! This is the calculation behind the paper's "empirically based tuning"
//! of the thread-block size: 448 threads = 14 warps, so three blocks fill
//! 42 of Fermi's 48 warp slots (87.5 % occupancy) while leaving register
//! headroom — one of the sweet spots the tuning would find.

/// Hardware limits of one streaming multiprocessor.
#[derive(Debug, Clone, Copy)]
pub struct SmLimits {
    /// Maximum resident threads.
    pub max_threads: usize,
    /// Maximum resident blocks.
    pub max_blocks: usize,
    /// Maximum threads per block.
    pub max_threads_per_block: usize,
    /// Warp size.
    pub warp_size: usize,
    /// Register file size (32-bit registers).
    pub registers: usize,
    /// Shared memory in bytes.
    pub shared_memory: usize,
}

impl SmLimits {
    /// Fermi (compute capability 2.0) — the C2070's SM.
    pub fn fermi() -> SmLimits {
        SmLimits {
            max_threads: 1536,
            max_blocks: 8,
            max_threads_per_block: 1024,
            warp_size: 32,
            registers: 32_768,
            shared_memory: 48 * 1024,
        }
    }

    /// Maximum resident warps (`max_threads / warp_size`).
    pub fn max_warps(&self) -> usize {
        self.max_threads / self.warp_size
    }
}

/// A kernel's per-block resource footprint.
#[derive(Debug, Clone, Copy)]
pub struct KernelFootprint {
    /// Threads per block.
    pub threads_per_block: usize,
    /// Registers per thread.
    pub registers_per_thread: usize,
    /// Shared memory per block in bytes.
    pub shared_per_block: usize,
}

/// Result of the occupancy calculation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Blocks resident per SM.
    pub blocks_per_sm: usize,
    /// Resident warps per SM.
    pub warps_per_sm: usize,
    /// `warps_per_sm / max_warps`, in `[0, 1]`.
    pub fraction: f64,
    /// Which resource capped the block count.
    pub limited_by: Limiter,
}

/// The binding resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Limiter {
    /// Hardware block-slot limit.
    Blocks,
    /// Thread (warp-slot) limit.
    Threads,
    /// Register file.
    Registers,
    /// Shared memory.
    SharedMemory,
    /// The block does not fit at all (zero occupancy).
    DoesNotFit,
}

/// Computes how many blocks of the kernel fit on one SM.
pub fn occupancy(limits: &SmLimits, kernel: &KernelFootprint) -> Occupancy {
    let t = kernel.threads_per_block;
    if t == 0 || t > limits.max_threads_per_block {
        return Occupancy {
            blocks_per_sm: 0,
            warps_per_sm: 0,
            fraction: 0.0,
            limited_by: Limiter::DoesNotFit,
        };
    }
    // threads round up to whole warps
    let warps_per_block = t.div_ceil(limits.warp_size);
    let threads_alloc = warps_per_block * limits.warp_size;

    let by_blocks = limits.max_blocks;
    let by_threads = limits.max_threads / threads_alloc;
    let regs_per_block = threads_alloc * kernel.registers_per_thread;
    let by_registers = limits.registers.checked_div(regs_per_block).unwrap_or(usize::MAX);
    let by_shared =
        limits.shared_memory.checked_div(kernel.shared_per_block).unwrap_or(usize::MAX);

    let blocks = by_blocks.min(by_threads).min(by_registers).min(by_shared);
    let limited_by = if blocks == 0 {
        Limiter::DoesNotFit
    } else if blocks == by_threads && by_threads <= by_blocks.min(by_registers).min(by_shared) {
        Limiter::Threads
    } else if blocks == by_registers && by_registers <= by_blocks.min(by_shared) {
        Limiter::Registers
    } else if blocks == by_shared && by_shared <= by_blocks {
        Limiter::SharedMemory
    } else {
        Limiter::Blocks
    };
    let warps = blocks * warps_per_block;
    Occupancy {
        blocks_per_sm: blocks,
        warps_per_sm: warps,
        fraction: warps as f64 / limits.max_warps() as f64,
        limited_by,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn light_kernel(threads: usize) -> KernelFootprint {
        KernelFootprint { threads_per_block: threads, registers_per_thread: 20, shared_per_block: 0 }
    }

    #[test]
    fn paper_block_size_448_hits_87_percent() {
        let occ = occupancy(&SmLimits::fermi(), &light_kernel(448));
        assert_eq!(occ.blocks_per_sm, 3);
        assert_eq!(occ.warps_per_sm, 42);
        assert!((occ.fraction - 42.0 / 48.0).abs() < 1e-12);
        assert_eq!(occ.limited_by, Limiter::Threads);
    }

    #[test]
    fn small_blocks_hit_the_block_slot_limit() {
        let occ = occupancy(&SmLimits::fermi(), &light_kernel(64));
        assert_eq!(occ.blocks_per_sm, 8, "Fermi caps at 8 blocks");
        assert_eq!(occ.limited_by, Limiter::Blocks);
        assert!((occ.fraction - 16.0 / 48.0).abs() < 1e-12, "only 1/3 occupancy");
    }

    #[test]
    fn register_pressure_limits() {
        let k = KernelFootprint {
            threads_per_block: 512,
            registers_per_thread: 40,
            shared_per_block: 0,
        };
        // 512 * 40 = 20480 regs/block; 32768 / 20480 = 1 block
        let occ = occupancy(&SmLimits::fermi(), &k);
        assert_eq!(occ.blocks_per_sm, 1);
        assert_eq!(occ.limited_by, Limiter::Registers);
    }

    #[test]
    fn shared_memory_limits() {
        let k = KernelFootprint {
            threads_per_block: 128,
            registers_per_thread: 8,
            shared_per_block: 20 * 1024,
        };
        // 48 KiB / 20 KiB = 2 blocks
        let occ = occupancy(&SmLimits::fermi(), &k);
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.limited_by, Limiter::SharedMemory);
    }

    #[test]
    fn oversized_block_does_not_fit() {
        let occ = occupancy(&SmLimits::fermi(), &light_kernel(2048));
        assert_eq!(occ.blocks_per_sm, 0);
        assert_eq!(occ.limited_by, Limiter::DoesNotFit);
        let occ = occupancy(&SmLimits::fermi(), &light_kernel(0));
        assert_eq!(occ.limited_by, Limiter::DoesNotFit);
    }

    #[test]
    fn partial_warps_round_up() {
        // 100 threads allocate 4 warps (128 thread slots)
        let occ = occupancy(&SmLimits::fermi(), &light_kernel(100));
        assert_eq!(occ.warps_per_sm, occ.blocks_per_sm * 4);
    }

    #[test]
    fn full_occupancy_possible() {
        // 192 threads, 6 warps/block: 8 blocks = 48 warps = 100 %
        let occ = occupancy(&SmLimits::fermi(), &light_kernel(192));
        assert_eq!(occ.blocks_per_sm, 8);
        assert!((occ.fraction - 1.0).abs() < 1e-12);
    }
}
