#![warn(missing_docs)]

//! # abr-gpu
//!
//! A GPU execution substrate for the block-asynchronous relaxation
//! experiments, replacing the CUDA/Fermi testbed of the paper (see
//! DESIGN.md §2 for the substitution argument). Two independent concerns
//! are modelled:
//!
//! 1. **Update ordering** — the chaotic interleaving of thread-block
//!    updates that drives the numerics of asynchronous iteration. Provided
//!    by two executors with a common interface:
//!    [`sim::SimExecutor`] (a seeded discrete-event simulation of SMs
//!    dispatching thread blocks — deterministic and reproducible) and
//!    [`threaded::ThreadedExecutor`] (real OS threads hammering a shared
//!    atomic vector — genuinely non-deterministic).
//! 2. **Wall-clock cost** — a calibrated [`timing::TimingModel`] mapping
//!    (method, matrix size, iteration counts, devices, communication
//!    strategy) to seconds on the paper's hardware (Fermi C2070 GPUs in a
//!    dual-socket Supermicro host). Used to regenerate Tables 4–6 and
//!    Figures 8, 9, 11.

pub mod device;
pub mod halo;
pub mod kernel;
pub mod occupancy;
pub mod persistent;
pub mod pool;
pub mod residual;
pub mod schedule;
pub mod sim;
pub mod threaded;
pub mod timing;
pub mod topology;
pub mod trace;
pub mod xview;

pub use device::{DeviceSpec, HostSpec};
pub use halo::HaloExchange;
pub use kernel::{BlockKernel, BlockScratch, UpdateFilter};
pub use occupancy::{occupancy, KernelFootprint, Occupancy, SmLimits};
pub use persistent::{
    ConvergenceMonitor, DeathRecord, FaultKind, FaultPlan, FaultReport, FrozenSpan, NoMonitor,
    PersistentExecutor, PersistentOptions, PersistentReport, PersistentWorkspace, Reassignment,
    RunOutcome, RunSession, ShardPhase, ShardPlan, ShardState, WorkerFault,
};
pub use pool::{CancelCause, CancelToken, Lease, WorkerPool};
pub use residual::ResidualSlots;
pub use schedule::{BlockSchedule, RandomPermutation, RecurringPattern, RoundRobin};
pub use sim::{SimExecutor, SimOptions};
pub use threaded::{ThreadedExecutor, ThreadedOptions};
pub use timing::{CommStrategy, TimingModel};
pub use topology::Topology;
pub use trace::{SkewTracker, StalenessHistogram, UpdateTrace};
pub use xview::{AtomicF64Vec, HaloView, XView};
