//! A long-lived worker pool the persistent executor can run on, plus the
//! request-scoped [`CancelToken`] that stops one run without touching its
//! neighbours.
//!
//! [`crate::PersistentExecutor`] was built around one `thread::scope` per
//! solve: workers are born at solve start and die at solve end. That is
//! the right lifecycle for a library call and the wrong one for a daemon
//! multiplexing many concurrent solves — respawning OS threads per
//! request costs milliseconds, and nothing arbitrates how many threads
//! the host is running at once. [`WorkerPool`] inverts the lifecycle:
//!
//! * **Spawn once, serve many.** `n` OS threads are spawned at pool
//!   construction and parked on a condvar. Each solve *leases* a slice of
//!   them ([`WorkerPool::try_lease`]) and hands the lease a job; the
//!   workers run the job to completion and return to the pool.
//! * **Leases are the admission-control primitive.** `try_lease(n)` is a
//!   non-blocking reservation against the idle count — a daemon that
//!   cannot get a lease *knows* it is saturated and can shed the request
//!   with a structured rejection instead of queueing unbounded work.
//! * **Jobs are borrowed, not `'static`.** A solve's worker body borrows
//!   the whole solve-local workspace from the dispatcher's stack. The
//!   pool erases that lifetime internally ([`ErasedFn`]) and re-imposes
//!   it structurally: [`PendingJob`] blocks until every leased worker has
//!   finished the job — in `wait` *and* in `Drop` — so the borrow can
//!   never end while a worker still holds the pointer. `PendingJob` is
//!   deliberately crate-private: the only way to reach `dispatch` is
//!   through [`crate::PersistentExecutor`]'s pooled run path, which
//!   always waits before returning.
//! * **A panicking job never kills a pool thread.** Each worker runs its
//!   job slice under `catch_unwind`; the panic is counted on the job and
//!   reported to the waiter, and the thread goes back to the pool. This
//!   is the per-request fault-isolation floor the daemon builds on.

use abr_sync::{Ordering, SyncBool, SyncUsize};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A lifetime-erased `&(dyn Fn(usize) + Sync)`.
///
/// SAFETY: the pointee is `Sync` (shared calls from many workers are the
/// contract) and the pointer is only dereferenced between `dispatch` and
/// the completion of the job's last worker — a window [`PendingJob`]
/// keeps inside the original borrow by blocking in `wait`/`Drop`.
struct ErasedFn(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync`, so sharing the pointer across the pool
// threads is sound; validity is bounded by the `PendingJob` wait protocol
// described on `ErasedFn`.
unsafe impl Send for ErasedFn {}
// SAFETY: as above — `&dyn Fn(usize) + Sync` is shareable by definition.
unsafe impl Sync for ErasedFn {}

/// One dispatched job: `n` workers each call `f(index)` exactly once for
/// a distinct `index` in `0..n`.
struct JobInner {
    f: ErasedFn,
    /// Publication flag: the dispatcher's Release store hands every
    /// pre-dispatch write (the prepared solve workspace) to the workers'
    /// Acquire loads through the audited facade, so the happens-before
    /// sanitizer sees the edge the queue mutex would otherwise hide.
    go: SyncBool,
    /// Worker slices still running (or not yet started).
    remaining: SyncUsize,
    /// Worker slices that unwound out of `f` and were caught.
    panics: SyncUsize,
}

struct PoolState {
    /// Workers neither running a job slice nor reserved by a lease.
    free: usize,
    /// Pending job slices: any idle worker may take any token.
    tokens: VecDeque<(Arc<JobInner>, usize)>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers park here waiting for tokens (or shutdown).
    work_cv: Condvar,
    /// Dispatchers park here waiting for a job's `remaining` to hit 0.
    done_cv: Condvar,
    /// Leasers park here waiting for `free` capacity.
    idle_cv: Condvar,
}

/// A persistent pool of `n` named OS worker threads serving leased jobs.
/// See the module docs for the lifecycle contract.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    n_workers: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("n_workers", &self.n_workers)
            .field("idle", &self.idle())
            .finish()
    }
}

/// A reservation of `n` pool workers. Obtained from
/// [`WorkerPool::try_lease`] / [`WorkerPool::lease_timeout`]; consumed by
/// the executor's pooled run path. Dropping an unused lease returns the
/// capacity to the pool.
pub struct Lease<'p> {
    pool: &'p WorkerPool,
    n: usize,
    /// Still holds capacity (not yet consumed by a dispatch).
    armed: bool,
}

impl Lease<'_> {
    /// Number of workers reserved.
    pub fn n(&self) -> usize {
        self.n
    }
}

impl std::fmt::Debug for Lease<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lease").field("n", &self.n).finish()
    }
}

impl Drop for Lease<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut st = self.pool.shared.state.lock().unwrap();
            st.free += self.n;
            drop(st);
            self.pool.shared.idle_cv.notify_all();
        }
    }
}

/// A dispatched job in flight. `wait` (and `Drop`, as a backstop) blocks
/// until every leased worker has finished its slice — the structural
/// guarantee that makes the lifetime erasure in [`ErasedFn`] sound.
pub(crate) struct PendingJob<'p> {
    pool: &'p WorkerPool,
    job: Arc<JobInner>,
    collected: bool,
}

impl PendingJob<'_> {
    /// Blocks until the job is fully finished; returns how many worker
    /// slices unwound out of the job body (caught panics).
    pub(crate) fn wait(mut self) -> usize {
        self.wait_inner()
    }

    fn wait_inner(&mut self) -> usize {
        if !self.collected {
            let mut st = self.pool.shared.state.lock().unwrap();
            // sync: Acquire pairs with each worker's Release decrement —
            // `remaining == 0` observed here proves every worker's writes
            // made through the job body are visible to the dispatcher,
            // the pooled analogue of the thread-scope join edge the
            // executor's post-join reads rely on.
            while self.job.remaining.load(Ordering::Acquire) != 0 {
                st = self.pool.shared.done_cv.wait(st).unwrap();
            }
            drop(st);
            self.collected = true;
        }
        // sync: post-completion read, ordered by the Acquire above.
        self.job.panics.load(Ordering::Relaxed)
    }
}

impl Drop for PendingJob<'_> {
    fn drop(&mut self) {
        self.wait_inner();
    }
}

impl WorkerPool {
    /// Spawns a pool of `n` (≥ 1) named, parked worker threads.
    pub fn new(n: usize) -> WorkerPool {
        let n = n.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                free: n,
                tokens: VecDeque::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            idle_cv: Condvar::new(),
        });
        let handles = (0..n)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("abr-pool-{i}"))
                    .spawn(move || worker_main(&shared))
                    .expect("spawning a pool worker thread")
            })
            .collect();
        WorkerPool { shared, handles: Mutex::new(handles), n_workers: n }
    }

    /// Total worker threads in the pool.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Workers currently idle and unreserved — an advisory saturation
    /// probe for admission metrics (racy by nature; leases are the only
    /// authoritative reservation).
    pub fn idle(&self) -> usize {
        self.shared.state.lock().unwrap().free
    }

    /// Non-blocking reservation of `n` workers. `None` when fewer than
    /// `n` are idle (or the pool is shutting down) — the caller's cue to
    /// queue or shed.
    pub fn try_lease(&self, n: usize) -> Option<Lease<'_>> {
        let n = n.max(1);
        let mut st = self.shared.state.lock().unwrap();
        if st.shutdown || st.free < n {
            return None;
        }
        st.free -= n;
        drop(st);
        Some(Lease { pool: self, n, armed: true })
    }

    /// Blocking reservation: waits up to `timeout` for `n` workers to be
    /// idle. `None` on timeout or shutdown.
    pub fn lease_timeout(&self, n: usize, timeout: Duration) -> Option<Lease<'_>> {
        let n = n.max(1);
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if st.shutdown {
                return None;
            }
            if st.free >= n {
                st.free -= n;
                drop(st);
                return Some(Lease { pool: self, n, armed: true });
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            let (guard, res) = self.shared.idle_cv.wait_timeout(st, left).unwrap();
            st = guard;
            if res.timed_out() && st.free < n {
                return None;
            }
        }
    }

    /// Hands the leased workers a job: each of the `lease.n()` workers
    /// calls `f(index)` once with a distinct `index` in `0..lease.n()`.
    /// Crate-private on purpose — see the module docs for why the
    /// returned [`PendingJob`] must be awaited inside `f`'s borrow, which
    /// the executor's pooled run path guarantees structurally.
    pub(crate) fn dispatch<'p>(
        &'p self,
        mut lease: Lease<'p>,
        f: &(dyn Fn(usize) + Sync),
    ) -> PendingJob<'p> {
        let n = lease.n;
        // Lifetime erasure of the job body: the pointer is only
        // dereferenced by pool workers between this dispatch and the
        // moment the job's `remaining` count hits zero, and the returned
        // `PendingJob` blocks until that moment in both `wait` and
        // `Drop` — so every dereference happens inside `f`'s original
        // borrow. `PendingJob` never escapes the crate, and the one call
        // site (`PersistentExecutor`'s pooled run) waits before its
        // borrowed locals go out of scope.
        // SAFETY: per the above, the `PendingJob` wait bounds every
        // dereference of the erased pointer inside `f`'s borrow.
        let f_static: *const (dyn Fn(usize) + Sync + 'static) =
            unsafe { std::mem::transmute(f as *const (dyn Fn(usize) + Sync)) };
        let job = Arc::new(JobInner {
            f: ErasedFn(f_static),
            go: SyncBool::new(false),
            remaining: SyncUsize::new(n),
            panics: SyncUsize::new(0),
        });
        // sync: Release publishes every pre-dispatch write of the
        // dispatcher (the prepared workspace the job body borrows) to the
        // workers' Acquire load of `go` — the facade-visible edge for the
        // hb sanitizer; the queue mutex provides the same edge for the
        // hardware.
        job.go.store(true, Ordering::Release);
        {
            let mut st = self.shared.state.lock().unwrap();
            assert!(!st.shutdown, "dispatch on a pool that is shutting down");
            for idx in 0..n {
                st.tokens.push_back((Arc::clone(&job), idx));
            }
        }
        self.shared.work_cv.notify_all();
        lease.armed = false;
        PendingJob { pool: self, job, collected: false }
    }

    /// Graceful teardown: workers finish any queued job slices, then
    /// exit; every thread is joined. Returns the number of threads
    /// joined — the structural "zero leaked threads" accounting a drain
    /// test asserts against.
    pub fn shutdown(self) -> usize {
        self.drain()
    }

    /// [`shutdown`](Self::shutdown) through a shared reference, for
    /// owners that hold the pool behind an `Arc` (the service daemon).
    /// Idempotent: a second call joins nothing and returns 0. New
    /// `dispatch` calls after drain panic; `try_lease` returns `None`.
    pub fn drain(&self) -> usize {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        self.shared.idle_cv.notify_all();
        let handles: Vec<_> = self.handles.lock().unwrap().drain(..).collect();
        let n = handles.len();
        for h in handles {
            h.join().expect("pool worker must not die outside catch_unwind");
        }
        n
    }
}

fn worker_main(shared: &PoolShared) {
    loop {
        let token = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(tok) = st.tokens.pop_front() {
                    break Some(tok);
                }
                if st.shutdown {
                    break None;
                }
                st = shared.work_cv.wait(st).unwrap();
            }
        };
        let Some((job, idx)) = token else { return };
        // sync: Acquire pairs with the dispatcher's Release store of `go`
        // — from here on the worker sees every pre-dispatch write the job
        // body is about to read. Always already true; the loop is the
        // idiomatic pairing site, not a real spin.
        while !job.go.load(Ordering::Acquire) {
            std::hint::spin_loop();
        }
        // SAFETY: dereference inside the dispatch/completion window — the
        // dispatcher's `PendingJob` cannot unblock (and the pointee's
        // borrow cannot end) until the `remaining` decrement below.
        let f = unsafe { &*job.f.0 };
        // A panicking job slice is the *request's* failure, never the
        // pool's: count it and put the thread back to work.
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(idx)));
        if res.is_err() {
            // sync: tallied before the Release decrement below, which
            // orders it for the waiter's post-completion read.
            job.panics.fetch_add(1, Ordering::Relaxed);
        }
        // sync: Release pairs with the waiter's Acquire in
        // `PendingJob::wait` — the pooled analogue of the scope-join
        // edge: `remaining == 0` proves this worker's job-body writes
        // (and its panic tally) are visible to the dispatcher.
        job.remaining.fetch_sub(1, Ordering::Release);
        {
            let mut st = shared.state.lock().unwrap();
            st.free += 1;
            drop(st);
            shared.done_cv.notify_all();
            shared.idle_cv.notify_all();
        }
    }
}

/// Why a [`CancelToken`] asked a run to stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelCause {
    /// Explicit client cancellation ([`CancelToken::cancel`]).
    Cancelled,
    /// The token's deadline passed.
    DeadlineExceeded,
}

/// A request-scoped stop handle: an explicit cancel flag plus an optional
/// deadline, polled by the executor's concurrent monitor once per poll
/// and translated into the run's existing Release/Acquire stop flag — so
/// an expired or cancelled request frees its leased workers within one
/// monitor poll, without any new signalling path into the workers.
#[derive(Debug, Default)]
pub struct CancelToken {
    flag: SyncBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token with no deadline.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that fires [`CancelCause::DeadlineExceeded`] at `deadline`.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken { flag: SyncBool::new(false), deadline: Some(deadline) }
    }

    /// Requests cancellation. Safe to call from any thread, any number of
    /// times; the run stops within one monitor poll.
    pub fn cancel(&self) {
        // sync: Release pairs with `is_cancelled`'s Acquire — anything
        // the cancelling thread wrote before cancelling (e.g. its reason
        // bookkeeping) is visible to the monitor that acts on the flag.
        self.flag.store(true, Ordering::Release);
    }

    /// Whether `cancel` has been called.
    pub fn is_cancelled(&self) -> bool {
        // sync: Acquire pairs with `cancel`'s Release store.
        self.flag.load(Ordering::Acquire)
    }

    /// The deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The monitor's poll: `Some(cause)` once the token wants the run
    /// stopped. Explicit cancellation wins over a simultaneously-expired
    /// deadline.
    pub fn should_stop(&self) -> Option<CancelCause> {
        if self.is_cancelled() {
            return Some(CancelCause::Cancelled);
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => Some(CancelCause::DeadlineExceeded),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_accounting_and_dispatch_round_trip() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.idle(), 4);
        let lease = pool.try_lease(3).expect("3 of 4 idle");
        assert_eq!(pool.idle(), 1);
        assert!(pool.try_lease(2).is_none(), "only 1 unreserved worker left");

        let hits = SyncUsize::new(0);
        let seen = [SyncBool::new(false), SyncBool::new(false), SyncBool::new(false)];
        let body = |i: usize| {
            // sync: test tallies, read after the job's completion edge.
            seen[i].store(true, Ordering::Relaxed);
            // sync: same — tallied under the job's completion edge.
            hits.fetch_add(1, Ordering::Relaxed);
        };
        let pending = pool.dispatch(lease, &body);
        assert_eq!(pending.wait(), 0, "no panics");
        // sync: post-wait reads, ordered by the job completion Acquire.
        assert_eq!(hits.load(Ordering::Relaxed), 3);
        // sync: post-wait read, same completion edge as above.
        assert!(seen.iter().all(|s| s.load(Ordering::Relaxed)), "each index called once");
        assert_eq!(pool.idle(), 4, "workers returned to the pool");
        assert_eq!(pool.shutdown(), 4);
    }

    #[test]
    fn dropped_lease_returns_capacity() {
        let pool = WorkerPool::new(2);
        drop(pool.try_lease(2).unwrap());
        assert_eq!(pool.idle(), 2);
        assert_eq!(pool.shutdown(), 2);
    }

    #[test]
    fn panicking_job_is_counted_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let lease = pool.try_lease(2).unwrap();
        let body = |i: usize| {
            if i == 0 {
                panic!("injected: slice 0 dies");
            }
        };
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // quiet the expected panic
        let panics = pool.dispatch(lease, &body).wait();
        std::panic::set_hook(prev);
        assert_eq!(panics, 1);
        // The pool still works after a panicked job.
        let lease = pool.try_lease(2).expect("both workers back");
        let ok = SyncUsize::new(0);
        let body = |_i: usize| {
            // sync: test tally, read after the completion edge.
            ok.fetch_add(1, Ordering::Relaxed);
        };
        assert_eq!(pool.dispatch(lease, &body).wait(), 0);
        // sync: post-wait read (see above).
        assert_eq!(ok.load(Ordering::Relaxed), 2);
        assert_eq!(pool.shutdown(), 2);
    }

    #[test]
    fn lease_timeout_waits_for_release() {
        let pool = WorkerPool::new(1);
        let lease = pool.try_lease(1).unwrap();
        assert!(pool.lease_timeout(1, Duration::from_millis(10)).is_none());
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(20));
                drop(lease);
            });
            let got = pool.lease_timeout(1, Duration::from_secs(5));
            assert!(got.is_some(), "lease must arrive once released");
        });
        assert_eq!(pool.shutdown(), 1);
    }

    #[test]
    fn cancel_token_causes() {
        let t = CancelToken::new();
        assert!(t.should_stop().is_none());
        t.cancel();
        assert_eq!(t.should_stop(), Some(CancelCause::Cancelled));

        let expired = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(expired.should_stop(), Some(CancelCause::DeadlineExceeded));
        let future = CancelToken::with_deadline(Instant::now() + Duration::from_secs(60));
        assert!(future.should_stop().is_none());
        // Explicit cancel outranks a pending deadline.
        future.cancel();
        assert_eq!(future.should_stop(), Some(CancelCause::Cancelled));
    }
}
