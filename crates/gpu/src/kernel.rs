//! The kernel and filter traits connecting the numerics (abr-core) to the
//! execution fabric (this crate).
//!
//! A [`BlockKernel`] is what a CUDA kernel is to the paper: given the
//! current iterate, it computes replacement values for one thread block's
//! rows. The executors decide *when* each block runs and *which* iterate
//! state it observes; an [`UpdateFilter`] decides whether an update is
//! committed at all (the fault-injection hook used by `abr-fault`).

use crate::xview::XView;

/// Reusable per-worker workspace for [`BlockKernel::update_block_with`].
///
/// Executors own one scratch per worker (the DES executor models one
/// in-flight update at a time per replayed event, so it keeps a single
/// scratch; the threaded executor keeps one per OS thread) and hand it to
/// every update that worker performs. Kernels size the buffers on first
/// use with [`BlockScratch::ensure`]; after the first update of the
/// largest block, no further allocation happens — the capacity has
/// stabilised and every subsequent update is allocation-free.
///
/// The buffers carry no values across calls: kernels must treat their
/// contents as garbage on entry (except that `ensure` guarantees the
/// lengths). Two workers must never share one scratch concurrently —
/// `&mut` enforces this within safe code.
#[derive(Debug, Default)]
pub struct BlockScratch {
    /// Current local iterate (plus one guaranteed-zero pad slot for
    /// ELL-packed sweeps).
    pub cur: Vec<f64>,
    /// Next local iterate for Jacobi-style double buffering.
    pub next: Vec<f64>,
    /// Frozen off-block contribution `s_i = b_i - sum_{j not in block} a_ij x_j`.
    pub frozen: Vec<f64>,
}

impl BlockScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resizes all three buffers to hold a block of `nb` rows: `frozen`
    /// to `nb`, `cur`/`next` to `nb + 1` (the extra slot is the ELL pad
    /// target). Only grows capacity; never shrinks it.
    #[inline]
    pub fn ensure(&mut self, nb: usize) {
        self.cur.resize(nb + 1, 0.0);
        self.next.resize(nb + 1, 0.0);
        self.frozen.resize(nb, 0.0);
    }

    /// Records an exclusive claim of this scratch in the happens-before
    /// shadow (sanitizer builds only). `&mut` rules out concurrent
    /// sharing in safe code, but executors hand scratches around by
    /// index — a claim by a worker that does not happen-after the
    /// previous worker's claim is reported as a conflicting write.
    #[cfg(any(feature = "model", feature = "sanitize"))]
    #[inline]
    pub fn hb_claim(&self) {
        abr_sync::hb::on_data_write(abr_sync::hb::id_of(self), abr_sync::hb::Access::WriteExcl);
    }
}

/// One block-update computation.
///
/// Implementations live in `abr-core` (the async-(k) local sweep) and in
/// tests. They must be `Sync`: the threaded executor calls `update_block`
/// from many threads at once.
pub trait BlockKernel: Sync {
    /// Length of the iterate vector.
    fn n(&self) -> usize;

    /// Number of row blocks.
    fn n_blocks(&self) -> usize;

    /// Half-open row range `[start, end)` of block `b`.
    fn block_range(&self, b: usize) -> (usize, usize);

    /// Computes new values for the rows of block `b`, reading the shared
    /// iterate through `x`. `out` has length `end - start`.
    fn update_block(&self, b: usize, x: &XView<'_>, out: &mut [f64]);

    /// Like [`update_block`](Self::update_block), but with a reusable
    /// [`BlockScratch`] so kernels that need working buffers can run
    /// allocation-free in steady state. Executors call this form, passing
    /// one scratch per worker. The default delegates to `update_block`
    /// (correct for kernels that need no workspace).
    fn update_block_with(
        &self,
        b: usize,
        x: &XView<'_>,
        out: &mut [f64],
        scratch: &mut BlockScratch,
    ) {
        let _ = scratch;
        self.update_block(b, x, out);
    }

    /// Like [`update_block_with`](Self::update_block_with), but also
    /// returns the block's **fused residual sub-norm estimate**:
    /// `Σ_{i ∈ block} r_i²` where `r_i ≈ (b − A x)_i` is evaluated from
    /// values the sweep already holds in registers (the off-block halo
    /// frozen at the snapshot the update read). The estimate prices a
    /// cheap convergence poll — the persistent executor's monitor reduces
    /// one slot per block instead of running an O(nnz) SpMV — and is
    /// **never** the basis for declaring convergence: the executor always
    /// confirms with the exact residual before stopping.
    ///
    /// `None` (the default) means this kernel cannot estimate; the
    /// executor then leaves the fused slots cold and the monitor keeps
    /// polling exactly.
    fn update_block_estimating(
        &self,
        b: usize,
        x: &XView<'_>,
        out: &mut [f64],
        scratch: &mut BlockScratch,
    ) -> Option<f64> {
        self.update_block_with(b, x, out, scratch);
        None
    }

    /// Relative virtual duration of one update of block `b`, in arbitrary
    /// units (the DES executor multiplies by a seeded jitter). The default
    /// is proportional to the block's row count.
    fn block_cost(&self, b: usize) -> f64 {
        let (s, e) = self.block_range(b);
        (e - s) as f64
    }

    /// The other blocks whose components block `b` reads (its coupling
    /// neighbourhood). When provided, the DES executor records the
    /// realised staleness of every such read — the measured shift
    /// function `s(k, j)` of the paper's Eq. (3). `None` (the default)
    /// disables the measurement.
    fn neighbor_blocks(&self, b: usize) -> Option<&[usize]> {
        let _ = b;
        None
    }
}

/// Decides whether updates are committed — the fault-injection hook.
///
/// `round` is the per-block update count (the block's own global-iteration
/// index) at the time of the update.
pub trait UpdateFilter: Sync {
    /// If `false`, the executor skips computing block `b` entirely at its
    /// `round`-th opportunity (e.g. the core owning it is down).
    fn block_enabled(&self, block: usize, round: usize) -> bool {
        let _ = (block, round);
        true
    }

    /// If `false`, the computed value for component `i` is discarded at
    /// this `round` (the component's core is down); the old value stays.
    fn component_enabled(&self, i: usize, round: usize) -> bool {
        let _ = (i, round);
        true
    }
}

/// The trivial filter: everything runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct AllowAll;

impl UpdateFilter for AllowAll {}

#[cfg(test)]
pub(crate) mod test_kernels {
    use super::*;

    /// A toy kernel for executor tests: each block's components move
    /// halfway toward the mean of the whole vector, i.e.
    /// `x_i <- (x_i + mean(x)) / 2`. The fixed point is the consensus
    /// vector; convergence is robust to any update order, making it a good
    /// probe for executor correctness.
    pub struct ConsensusKernel {
        pub n: usize,
        pub block_size: usize,
    }

    impl BlockKernel for ConsensusKernel {
        fn n(&self) -> usize {
            self.n
        }
        fn n_blocks(&self) -> usize {
            self.n.div_ceil(self.block_size)
        }
        fn block_range(&self, b: usize) -> (usize, usize) {
            let s = b * self.block_size;
            (s, (s + self.block_size).min(self.n))
        }
        fn update_block(&self, b: usize, x: &XView<'_>, out: &mut [f64]) {
            // The O(n) mean is recomputed on every update on purpose: the
            // point of this kernel is to observe the *shared iterate as
            // this update sees it*, including concurrent writes from other
            // blocks. Hoisting or caching the mean would decouple the probe
            // from the asynchronous schedule under test.
            let mean: f64 = (0..self.n).map(|i| x.get(i)).sum::<f64>() / self.n as f64;
            let (s, e) = self.block_range(b);
            for (o, i) in out.iter_mut().zip(s..e) {
                *o = 0.5 * (x.get(i) + mean);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_kernels::ConsensusKernel;
    use super::*;

    #[test]
    fn default_cost_is_block_length() {
        let k = ConsensusKernel { n: 10, block_size: 4 };
        assert_eq!(k.n_blocks(), 3);
        assert_eq!(k.block_cost(0), 4.0);
        assert_eq!(k.block_cost(2), 2.0); // last block has 2 rows
    }

    #[test]
    fn allow_all_allows() {
        let f = AllowAll;
        assert!(f.block_enabled(3, 100));
        assert!(f.component_enabled(7, 0));
    }

    #[test]
    fn consensus_kernel_moves_toward_mean() {
        let k = ConsensusKernel { n: 4, block_size: 4 };
        let x = [0.0, 0.0, 4.0, 4.0];
        let mut out = [0.0; 4];
        k.update_block(0, &XView::Plain(&x), &mut out);
        assert_eq!(out, [1.0, 1.0, 3.0, 3.0]);
    }
}
