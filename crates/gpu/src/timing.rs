//! The calibrated wall-clock cost model.
//!
//! Reproducing the paper's timing tables does not require cycle-accurate
//! simulation — the relaxation methods are memory- and latency-bound, and
//! the paper's own numbers (Table 5, Figure 8) are dominated by a handful
//! of per-iteration costs. The model here decomposes a global iteration
//! into physically named components whose constants were calibrated
//! against Table 5 / Table 4 / Figure 8 of the paper:
//!
//! * **CPU Gauss-Seidel** scales as `c1 n^2 + c2 nnz` — the paper's CPU
//!   timings scale almost exactly quadratically in `n` across its five
//!   matrices, the signature of a dense-ish triangular sweep.
//! * **GPU methods** pay a per-iteration launch/stream overhead plus a
//!   host-side bookkeeping term `~n^2` (the per-iteration residual/norm
//!   handling of the 2012-era implementation, which dominates for large
//!   `n`) plus a memory-bound kernel term `~nnz`.
//! * **Jacobi** additionally synchronises and round-trips the iterate
//!   after *every* sweep, which is why Table 5 shows it *slower* per
//!   global iteration than async-(5) despite the latter doing five local
//!   sweeps: the async local sweeps run from the multiprocessor cache and
//!   cost only `(k-1) * nnz_local * c_local`.
//! * A one-time **setup** cost (context creation, allocation, matrix
//!   upload) amortises over the run — this produces Figure 8's decaying
//!   average-time-per-iteration curves.
//!
//! Absolute seconds are "2012 hardware" seconds, not wall time on the
//! machine running this crate; EXPERIMENTS.md reports model-vs-paper for
//! every table entry.

use crate::topology::Topology;

/// Cost-model constants. Construct via [`TimingModel::calibrated`] (the
/// paper-fit values) or customise fields for ablations.
///
/// # Examples
///
/// ```
/// use abr_gpu::TimingModel;
///
/// let m = TimingModel::calibrated();
/// // fv1 (n = 9604, nnz = 85264): one CPU Gauss-Seidel sweep vs one
/// // async-(5) global iteration on the GPU
/// let cpu = m.cpu_gauss_seidel_iteration(9604, 85264);
/// let gpu = m.gpu_async_iteration(9604, 85264, 78000, 5);
/// assert!(cpu / gpu > 5.0, "the GPU wins by the paper's 5-10x");
/// ```
#[derive(Debug, Clone)]
pub struct TimingModel {
    /// One-time GPU context + allocation + matrix upload (s). The paper
    /// subtracts this "initialization overhead" in its figures; it is the
    /// amortised term behind Figure 8's decaying curves.
    pub gpu_setup: f64,
    /// Non-amortisable launch-pipeline warmup visible at the start of
    /// every GPU run even after setup is subtracted (the small-time
    /// offset of the paper's Figure 9 curves).
    pub kernel_warmup: f64,
    /// Per-global-iteration kernel-launch and stream overhead (s).
    pub kernel_launch: f64,
    /// Host-side per-iteration bookkeeping coefficient (s per n^2).
    pub host_norm_coeff: f64,
    /// Memory-bound kernel coefficient (s per nonzero read globally).
    pub kernel_nnz_coeff: f64,
    /// Extra synchronisation cost Jacobi pays per iteration (s).
    pub jacobi_sync: f64,
    /// Extra host bookkeeping Jacobi pays per iteration (s per n^2).
    pub jacobi_sync_n2_coeff: f64,
    /// Cost of one additional cache-resident local sweep (s per local
    /// nonzero).
    pub local_sweep_coeff: f64,
    /// CPU Gauss-Seidel sweep coefficient (s per n^2).
    pub cpu_n2_coeff: f64,
    /// CPU Gauss-Seidel sweep coefficient (s per nonzero).
    pub cpu_nnz_coeff: f64,
    /// CG premium over the base GPU iteration (multiplier for its extra
    /// kernels).
    pub cg_kernel_factor: f64,
    /// Latency of CG's two synchronising dot products per iteration (s).
    pub cg_dot_sync: f64,
    /// Per-iteration overhead of one host<->device iterate exchange in the
    /// AMC scheme (stream/event handling and staging latency; devices
    /// exchange concurrently so this is paid once, not per device).
    pub amc_exchange_overhead: f64,
    /// Per-device, per-iteration overhead of a GPU-direct exchange with
    /// the master GPU (serialised on the master's link).
    pub dc_exchange_overhead: f64,
    /// Extra per-iteration cost whenever any active device sits on the far
    /// socket: cross-socket DMA synchronisation over QPI. This is the term
    /// behind Figure 11's "3 GPUs slower than 2".
    pub qpi_iteration_penalty: f64,
    /// Inefficiency multiplier of kernel-side remote loads (DK) relative
    /// to bulk GPU-direct copies (DC): uncoalesced fine-grained PCIe
    /// reads.
    pub dk_remote_load_factor: f64,
}

impl TimingModel {
    /// Constants fit to the paper's Tables 4/5 and Figure 8.
    pub fn calibrated() -> Self {
        TimingModel {
            gpu_setup: 0.35,
            kernel_warmup: 0.06,
            kernel_launch: 4.0e-4,
            host_norm_coeff: 1.4e-10,
            kernel_nnz_coeff: 2.0e-9,
            jacobi_sync: 3.0e-4,
            jacobi_sync_n2_coeff: 0.7e-10,
            local_sweep_coeff: 1.2e-9,
            cpu_n2_coeff: 1.30e-9,
            cpu_nnz_coeff: 2.0e-8,
            cg_kernel_factor: 1.05,
            cg_dot_sync: 8.0e-4,
            amc_exchange_overhead: 5.0e-3,
            dc_exchange_overhead: 8.0e-3,
            qpi_iteration_penalty: 11.0e-3,
            dk_remote_load_factor: 1.25,
        }
    }

    /// Seconds for one CPU Gauss-Seidel sweep.
    pub fn cpu_gauss_seidel_iteration(&self, n: usize, nnz: usize) -> f64 {
        self.cpu_n2_coeff * (n as f64) * (n as f64) + self.cpu_nnz_coeff * nnz as f64
    }

    /// Seconds for one synchronous GPU Jacobi sweep (marginal, without
    /// setup).
    pub fn gpu_jacobi_iteration(&self, n: usize, nnz: usize) -> f64 {
        let n2 = (n as f64) * (n as f64);
        self.kernel_launch
            + self.jacobi_sync
            + (self.host_norm_coeff + self.jacobi_sync_n2_coeff) * n2
            + self.kernel_nnz_coeff * nnz as f64
    }

    /// Seconds for one async-(k) *global* iteration (marginal): one
    /// asynchronous pass over all blocks with `local_iters` Jacobi sweeps
    /// per block. `nnz_local` is the number of nonzeros inside the
    /// partition's diagonal blocks — the entries reused from cache by the
    /// extra sweeps.
    pub fn gpu_async_iteration(
        &self,
        n: usize,
        nnz: usize,
        nnz_local: usize,
        local_iters: usize,
    ) -> f64 {
        let n2 = (n as f64) * (n as f64);
        self.kernel_launch
            + self.host_norm_coeff * n2
            + self.kernel_nnz_coeff * nnz as f64
            + self.local_sweep_coeff * nnz_local as f64 * local_iters.saturating_sub(1) as f64
    }

    /// Seconds for one GPU CG iteration (SpMV + 2 synchronising dots +
    /// several axpys).
    pub fn gpu_cg_iteration(&self, n: usize, nnz: usize) -> f64 {
        let n2 = (n as f64) * (n as f64);
        self.cg_kernel_factor
            * (self.kernel_launch + self.host_norm_coeff * n2 + self.kernel_nnz_coeff * nnz as f64)
            + self.cg_dot_sync
    }

    /// Total seconds for `iters` iterations of a GPU method with marginal
    /// per-iteration cost `t_iter`, including setup.
    pub fn gpu_total(&self, t_iter: f64, iters: usize) -> f64 {
        self.gpu_setup + t_iter * iters as f64
    }

    /// Average seconds per iteration when running `total_iters` iterations
    /// — the quantity of Figure 8 and Table 5 (setup amortised over the
    /// run).
    pub fn gpu_average_per_iteration(&self, t_iter: f64, total_iters: usize) -> f64 {
        assert!(total_iters > 0, "average over zero iterations");
        self.gpu_total(t_iter, total_iters) / total_iters as f64
    }

    /// The paper's Table 5 averaging convention: the mean of the average
    /// per-iteration times over runs of 10, 20, ..., 200 iterations.
    pub fn table5_average(&self, t_iter: f64) -> f64 {
        let ks: Vec<usize> = (1..=20).map(|j| 10 * j).collect();
        ks.iter().map(|&k| self.gpu_average_per_iteration(t_iter, k)).sum::<f64>()
            / ks.len() as f64
    }

    /// Per-global-iteration communication cost of a multi-GPU setup.
    /// `n` is the full system dimension; each device owns `n / g`
    /// components and needs the complete iterate before the next sweep.
    ///
    /// * **AMC** — every device exchanges with host memory over *its own*
    ///   link, concurrently: one exchange overhead plus the slowest single
    ///   link's bandwidth time. Any far-socket device adds the QPI
    ///   synchronisation penalty.
    /// * **DC** — the master GPU's link serialises a bulk copy to/from
    ///   every other device (one `dc_exchange_overhead` each).
    /// * **DK** — like DC but the traffic happens as fine-grained remote
    ///   loads inside the kernel, costing `dk_remote_load_factor` more.
    pub fn multi_gpu_transfer(&self, topo: &Topology, strategy: CommStrategy, n: usize) -> f64 {
        let g = topo.n_devices();
        let bytes_full = 8 * n;
        let bytes_slice = bytes_full / g.max(1);
        let any_far = (0..g).any(|d| topo.crosses_qpi(d));
        let qpi = if any_far { self.qpi_iteration_penalty } else { 0.0 };
        match strategy {
            CommStrategy::Amc => {
                // Concurrent per-device transfers: max over devices of
                // (download full + upload slice) on that device's path.
                let per_dev = (0..g)
                    .map(|d| {
                        topo.host_device_time(d, bytes_full)
                            + topo.host_device_time(d, bytes_slice)
                    })
                    .fold(0.0f64, f64::max);
                // Devices sharing the far socket contend for QPI.
                let far = (0..g).filter(|&d| topo.crosses_qpi(d)).count();
                self.amc_exchange_overhead
                    + per_dev
                    + qpi * (1.0 + 0.25 * far.saturating_sub(1) as f64)
            }
            CommStrategy::Dc | CommStrategy::Dk => {
                let factor = if strategy == CommStrategy::Dk {
                    self.dk_remote_load_factor
                } else {
                    1.0
                };
                let serialised: f64 = (1..g)
                    .map(|d| {
                        self.dc_exchange_overhead
                            + topo.device_device_time(0, d, bytes_full)
                            + topo.device_device_time(0, d, bytes_slice)
                    })
                    .sum();
                factor * serialised + qpi
            }
        }
    }

    /// The strategy-independent compute share of one multi-GPU async-(k)
    /// global iteration: each device sweeps and book-keeps only its
    /// `n/g` share.
    pub fn multi_gpu_compute_iteration(
        &self,
        topo: &Topology,
        n: usize,
        nnz: usize,
        nnz_local: usize,
        local_iters: usize,
    ) -> f64 {
        let g = topo.n_devices().max(1);
        let n2 = (n as f64) * (n as f64);
        self.kernel_launch
            + (self.host_norm_coeff * n2
                + self.kernel_nnz_coeff * nnz as f64
                + self.local_sweep_coeff
                    * nnz_local as f64
                    * local_iters.saturating_sub(1) as f64)
                / g as f64
    }

    /// Marginal per-global-iteration time of multi-GPU async-(k): the
    /// compute share plus the strategy's communication cost.
    pub fn multi_gpu_async_iteration(
        &self,
        topo: &Topology,
        strategy: CommStrategy,
        n: usize,
        nnz: usize,
        nnz_local: usize,
        local_iters: usize,
    ) -> f64 {
        self.multi_gpu_compute_iteration(topo, n, nnz, nnz_local, local_iters)
            + self.multi_gpu_transfer(topo, strategy, n)
    }

    /// How many compute rounds one halo exchange takes under `strategy` —
    /// the refresh cadence of [`crate::halo::HaloExchange`], modelling a
    /// pipelined exchange running concurrently with compute: while one
    /// exchange is in flight, `ceil(transfer / compute)` rounds complete,
    /// so that is how stale (in rounds) a freshly arrived stage already
    /// is. Returns `0` for DK, whose kernels read remote memory live.
    pub fn halo_epoch_rounds(
        &self,
        topo: &Topology,
        strategy: CommStrategy,
        n: usize,
        nnz: usize,
        nnz_local: usize,
        local_iters: usize,
    ) -> usize {
        if strategy == CommStrategy::Dk {
            return 0;
        }
        let compute = self.multi_gpu_compute_iteration(topo, n, nnz, nnz_local, local_iters);
        let transfer = self.multi_gpu_transfer(topo, strategy, n);
        let ratio = transfer / compute;
        if !ratio.is_finite() {
            return 1;
        }
        (ratio.ceil() as usize).clamp(1, 1024)
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel::calibrated()
    }
}

/// The three multi-GPU communication schemes of §3.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommStrategy {
    /// Asynchronous multicopy through host memory.
    Amc,
    /// GPU-direct memory transfer via a master GPU.
    Dc,
    /// GPU-direct kernel access of master-GPU memory.
    Dk,
}

impl CommStrategy {
    /// All three strategies.
    pub const ALL: [CommStrategy; 3] = [CommStrategy::Amc, CommStrategy::Dc, CommStrategy::Dk];

    /// Short display name used in the figure.
    pub fn name(&self) -> &'static str {
        match self {
            CommStrategy::Amc => "AMC",
            CommStrategy::Dc => "DC",
            CommStrategy::Dk => "DK",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FV1: (usize, usize) = (9604, 85264);
    const FV3: (usize, usize) = (9801, 87025);
    const CHEM: (usize, usize) = (2541, 7361);
    const TREF2K: (usize, usize) = (2000, 41906);
    const S1RMT: (usize, usize) = (5489, 262411);

    #[test]
    fn cpu_gs_matches_table5_scale() {
        let m = TimingModel::calibrated();
        // paper: fv1 = 0.120191, chem = 0.008448, s1rmt3m1 = 0.039530
        let t = m.cpu_gauss_seidel_iteration(FV1.0, FV1.1);
        assert!((t - 0.1202).abs() / 0.1202 < 0.1, "{t}");
        let t = m.cpu_gauss_seidel_iteration(CHEM.0, CHEM.1);
        assert!((t - 0.008448).abs() / 0.008448 < 0.1, "{t}");
        let t = m.cpu_gauss_seidel_iteration(S1RMT.0, S1RMT.1);
        assert!((t - 0.03953).abs() / 0.03953 < 0.25, "{t}");
    }

    #[test]
    fn gpu_jacobi_matches_table5_scale() {
        let m = TimingModel::calibrated();
        // paper Table 5 Jacobi column, within ~35 %.
        for ((n, nnz), paper) in [
            (FV1, 0.019449),
            (FV3, 0.021009),
            (CHEM, 0.002051),
            (TREF2K, 0.001494),
            (S1RMT, 0.006442),
        ] {
            let t = m.gpu_jacobi_iteration(n, nnz);
            assert!((t - paper).abs() / paper < 0.35, "n={n}: model {t} vs paper {paper}");
        }
    }

    #[test]
    fn async5_cheaper_than_jacobi_per_iteration() {
        let m = TimingModel::calibrated();
        for (n, nnz) in [FV1, FV3, CHEM, TREF2K, S1RMT] {
            let j = m.gpu_jacobi_iteration(n, nnz);
            let a = m.gpu_async_iteration(n, nnz, nnz / 2, 5);
            assert!(a < j, "n={n}: async {a} vs jacobi {j}");
        }
    }

    #[test]
    fn local_sweep_overhead_matches_table4_shape() {
        let m = TimingModel::calibrated();
        let (n, nnz) = FV3;
        let base = m.gpu_async_iteration(n, nnz, nnz, 1);
        let two = m.gpu_async_iteration(n, nnz, nnz, 2);
        let nine = m.gpu_async_iteration(n, nnz, nnz, 9);
        // paper: async-(2) adds < 5 %, async-(9) < 35 %.
        assert!((two - base) / base < 0.05, "{}", (two - base) / base);
        assert!((nine - base) / base < 0.35, "{}", (nine - base) / base);
        assert!(nine > two && two > base);
    }

    #[test]
    fn gpu_faster_than_cpu_by_5_to_10x() {
        let m = TimingModel::calibrated();
        for (n, nnz) in [FV1, FV3, CHEM, TREF2K, S1RMT] {
            let cpu = m.cpu_gauss_seidel_iteration(n, nnz);
            let gpu = m.gpu_async_iteration(n, nnz, nnz, 5);
            let speedup = cpu / gpu;
            assert!(speedup > 3.0 && speedup < 20.0, "n={n}: speedup {speedup}");
        }
    }

    #[test]
    fn average_decays_with_total_iterations() {
        let m = TimingModel::calibrated();
        let t_iter = m.gpu_jacobi_iteration(FV3.0, FV3.1);
        let a10 = m.gpu_average_per_iteration(t_iter, 10);
        let a200 = m.gpu_average_per_iteration(t_iter, 200);
        assert!(a10 > 2.0 * a200, "{a10} vs {a200}");
        assert!(a200 > t_iter);
    }

    #[test]
    fn table5_average_exceeds_marginal() {
        let m = TimingModel::calibrated();
        let t = m.gpu_jacobi_iteration(CHEM.0, CHEM.1);
        assert!(m.table5_average(t) > t);
    }

    #[test]
    fn amc_scales_then_suffers_qpi() {
        // Figure 11 shape: 2 GPUs nearly halve AMC time; 3 GPUs are slower
        // than 2; 4 GPUs recover but stay above half of the 2-GPU time.
        let m = TimingModel::calibrated();
        let (n, nnz) = (20000, 554466); // Trefethen_20000
        let t = |g: usize| {
            let topo = Topology::supermicro(g);
            m.multi_gpu_async_iteration(&topo, CommStrategy::Amc, n, nnz, nnz / 2, 5)
        };
        let (t1, t2, t3, t4) = (t(1), t(2), t(3), t(4));
        assert!(t2 < 0.75 * t1, "2 GPUs should be much faster: {t1} -> {t2}");
        assert!(t3 > t2, "3 GPUs cross QPI and slow down: {t2} -> {t3}");
        assert!(t4 < t3, "4 GPUs amortise the QPI hit: {t3} -> {t4}");
    }

    #[test]
    fn gpu_direct_gains_are_small() {
        // Figure 11: DC and DK see only small improvements from more GPUs.
        let m = TimingModel::calibrated();
        let (n, nnz) = (20000, 554466);
        for s in [CommStrategy::Dc, CommStrategy::Dk] {
            let t1 = m.multi_gpu_async_iteration(
                &Topology::supermicro(1),
                s,
                n,
                nnz,
                nnz / 2,
                5,
            );
            let t2 = m.multi_gpu_async_iteration(
                &Topology::supermicro(2),
                s,
                n,
                nnz,
                nnz / 2,
                5,
            );
            assert!(t2 < t1, "{s:?}: {t1} -> {t2}");
            assert!(t2 > 0.6 * t1, "{s:?} gains should be modest: {t1} -> {t2}");
        }
    }

    #[test]
    fn halo_epochs_follow_the_transfer_to_compute_ratio() {
        let m = TimingModel::calibrated();
        let topo = Topology::supermicro(2);
        // trefethen(400) shape, async-(5), half the nnz local.
        let (n, nnz) = (400, 2800);
        let e = |s| m.halo_epoch_rounds(&topo, s, n, nnz, nnz / 2, 5);
        assert_eq!(e(CommStrategy::Dk), 0, "DK reads live");
        let amc = e(CommStrategy::Amc);
        let dc = e(CommStrategy::Dc);
        assert!(amc >= 1 && dc >= 1);
        // DC's serialised master-link exchange costs more per epoch than
        // AMC's concurrent host hops, so its cadence is coarser.
        assert!(dc > amc, "AMC epoch {amc} vs DC epoch {dc}");
        // Consistency: epoch ~ transfer / compute.
        let compute = m.multi_gpu_compute_iteration(&topo, n, nnz, nnz / 2, 5);
        let transfer = m.multi_gpu_transfer(&topo, CommStrategy::Amc, n);
        assert_eq!(amc, (transfer / compute).ceil() as usize);
    }

    #[test]
    fn single_gpu_direct_slightly_faster_than_amc() {
        // Figure 11, 1-GPU bars: DC/DK avoid the host round trip.
        let m = TimingModel::calibrated();
        let (n, nnz) = (20000, 554466);
        let topo = Topology::supermicro(1);
        let amc = m.multi_gpu_async_iteration(&topo, CommStrategy::Amc, n, nnz, nnz / 2, 5);
        let dc = m.multi_gpu_async_iteration(&topo, CommStrategy::Dc, n, nnz, nnz / 2, 5);
        assert!(dc <= amc, "amc {amc} vs dc {dc}");
    }
}
