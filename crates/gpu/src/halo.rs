//! Staged halo exchange: the §3.4 communication schemes *realised*, not
//! just priced.
//!
//! The three multi-GPU schemes differ in how stale the off-device
//! components a kernel reads are:
//!
//! * **AMC** (asynchronous multicopy) — every device pushes its slice to
//!   host memory and pulls the others' slices from there. Remote data
//!   therefore crosses *two* hops (device → host, host → device), each on
//!   the exchange cadence: what a device reads lags the live iterate by
//!   one to two exchange epochs.
//! * **DC** (direct copy) — a bulk GPU-direct copy staged through the
//!   master GPU once per exchange epoch: one hop, zero to one epochs
//!   stale.
//! * **DK** (direct kernel access) — the kernel loads remote memory
//!   directly. No stage at all: reads are live, and
//!   [`HaloExchange::for_strategy`] accordingly returns `None` (the
//!   executor then reads the shared [`AtomicF64Vec`] as usual). The price
//!   of that freshness is the `dk_remote_load_factor` in the timing
//!   model.
//!
//! The exchange cadence (`epoch_rounds`) comes from the timing model:
//! [`crate::TimingModel::halo_epoch_rounds`] divides the strategy's
//! transfer time by the per-round compute time, so a scheme that pays
//! more per exchange also refreshes less often per round of compute — a
//! continuous pipelined-exchange model of the paper's implementation.
//!
//! Refreshes are elected by an atomic `fetch_max` raise of the device's
//! epoch: the worker that raises it to a new value wins the right to
//! copy, everyone else keeps iterating —
//! there is no barrier anywhere, and readers may observe a half-copied
//! stage (mixed epochs), exactly the racy view an asynchronous DMA gives
//! the paper's kernels.

use crate::timing::CommStrategy;
use crate::xview::{AtomicF64Vec, HaloView};
use abr_sync::{Ordering, SyncUsize};

#[cfg(any(feature = "model", feature = "sanitize"))]
use abr_sync::hb;

/// The staged-halo state for one multi-device run: one full-length stage
/// per device (plus a host stage for AMC), refreshed on the strategy's
/// epoch cadence.
#[derive(Debug)]
pub struct HaloExchange {
    strategy: CommStrategy,
    /// Row offsets of the device slices: device `d` owns rows
    /// `device_rows[d] .. device_rows[d + 1]`.
    device_rows: Vec<usize>,
    /// Rounds between stage refreshes (>= 1).
    epoch_rounds: usize,
    /// Per-device staged copy of the full iterate; only the off-device
    /// rows are ever read from (or refreshed into) it.
    stages: Vec<AtomicF64Vec>,
    /// The AMC host staging buffer (empty for DC).
    host_stage: AtomicF64Vec,
    /// Last epoch each device's stage was refreshed for (the refresher is
    /// elected by an atomic `fetch_max` raise).
    device_epoch: Vec<SyncUsize>,
    /// Last epoch the host stage was refreshed for (AMC only).
    host_epoch: SyncUsize,
    /// Global-iteration watermark at which each device's stage content
    /// was captured from the live iterate — the freshness stamp staleness
    /// accounting reads.
    stage_stamp: Vec<SyncUsize>,
    /// Watermark of the host stage's content (AMC only).
    host_stamp: SyncUsize,
    /// Total stage refreshes performed (device + host copies).
    refreshes: SyncUsize,
}

impl HaloExchange {
    /// The halo state for `strategy` over the device slices described by
    /// `device_rows` (offsets, `device_rows[0] == 0`, last == `n`), with
    /// stages initialised from `x0`. Returns `None` for
    /// [`CommStrategy::Dk`], which reads remote memory live.
    /// `epoch_rounds` below 1 is clamped to 1.
    pub fn for_strategy(
        strategy: CommStrategy,
        device_rows: &[usize],
        x0: &[f64],
        epoch_rounds: usize,
    ) -> Option<HaloExchange> {
        if strategy == CommStrategy::Dk {
            return None;
        }
        assert!(device_rows.len() >= 2, "need at least one device slice");
        assert_eq!(device_rows[0], 0, "device offsets must start at 0");
        assert_eq!(*device_rows.last().unwrap(), x0.len(), "device offsets must cover x");
        assert!(device_rows.windows(2).all(|w| w[0] < w[1]), "empty device slice");
        let g = device_rows.len() - 1;
        // Stage writes are declared racy for the happens-before
        // sanitizer: winners of successive epochs may copy concurrently,
        // and readers may see mixed epochs — the racy DMA view the
        // module docs promise. The elect → copy → stamp discipline is
        // checked separately (`hb::on_stamp`).
        let mut stages: Vec<AtomicF64Vec> = (0..g).map(|_| AtomicF64Vec::from_slice(x0)).collect();
        for s in &mut stages {
            s.mark_racy_writes();
        }
        let mut host_stage = if strategy == CommStrategy::Amc {
            AtomicF64Vec::from_slice(x0)
        } else {
            AtomicF64Vec::new()
        };
        host_stage.mark_racy_writes();
        Some(HaloExchange {
            strategy,
            device_rows: device_rows.to_vec(),
            epoch_rounds: epoch_rounds.max(1),
            stages,
            host_stage,
            device_epoch: (0..g).map(|_| SyncUsize::new(0)).collect(),
            host_epoch: SyncUsize::new(0),
            stage_stamp: (0..g).map(|_| SyncUsize::new(0)).collect(),
            host_stamp: SyncUsize::new(0),
            refreshes: SyncUsize::new(0),
        })
    }

    /// Number of device slices.
    pub fn n_devices(&self) -> usize {
        self.device_rows.len() - 1
    }

    /// The strategy this exchange realises (never DK).
    pub fn strategy(&self) -> CommStrategy {
        self.strategy
    }

    /// Rounds between stage refreshes.
    pub fn epoch_rounds(&self) -> usize {
        self.epoch_rounds
    }

    /// The row range device `d` owns.
    pub fn device_range(&self, d: usize) -> (usize, usize) {
        (self.device_rows[d], self.device_rows[d + 1])
    }

    /// The watermark stamp of device `d`'s current stage content.
    pub fn stage_stamp(&self, d: usize) -> usize {
        // sync: racy freshness estimate; see `maybe_refresh`.
        self.stage_stamp[d].load(Ordering::Relaxed)
    }

    /// Total stage refreshes performed so far.
    pub fn refreshes(&self) -> usize {
        // sync: statistics counter, read after the run.
        self.refreshes.load(Ordering::Relaxed)
    }

    /// The staged view device `d`'s workers read the iterate through.
    pub fn view<'a>(&'a self, d: usize, live: &'a AtomicF64Vec) -> HaloView<'a> {
        HaloView::new(live, &self.stages[d], self.device_rows[d], self.device_rows[d + 1])
    }

    /// Called by a worker of device `d` about to run a round-`round`
    /// update: if the round has crossed into a new exchange epoch, elect
    /// this worker (CAS) to refresh the device's stage. `watermark` is
    /// the current global-iteration floor, recorded as the freshness
    /// stamp of whatever live data the refresh captures.
    pub fn maybe_refresh(
        &self,
        d: usize,
        round: usize,
        live: &AtomicF64Vec,
        watermark: usize,
    ) {
        let target = round / self.epoch_rounds;
        if target == 0 {
            return; // the initial stage covers epoch 0
        }
        // Election by fetch_max raise: whoever *raises* the epoch to a
        // new value wins the refresh; anyone who observes it already
        // there loses. A separate load-then-CAS could act on a stale
        // `cur` and bail even though nobody had claimed `target` yet —
        // silently skipping a refresh this worker was owed. fetch_max
        // has no such window: exactly one worker sees `prev < target`
        // per raise (checked by tests/model_halo_election.rs).
        // sync: Relaxed — the election only needs RMW atomicity; stage
        // content is *allowed* to be observed mixed-epoch (a racy DMA
        // view), so no release/acquire pairing is wanted here.
        let prev = self.device_epoch[d].fetch_max(target, Ordering::Relaxed);
        if prev >= target {
            return; // up to date, or another worker won the election
        }
        // hb shadow: this worker won the election; the stamp below must
        // be preceded by a completed stage copy in its program order.
        #[cfg(any(feature = "model", feature = "sanitize"))]
        hb::on_elect(hb::id_of(&self.stages[d]));
        match self.strategy {
            CommStrategy::Amc => {
                // Pull: the device picks up whatever the *previous*
                // epoch's push left in host memory — remote data crosses
                // two hops, so it arrives one epoch later than under DC.
                self.copy_remote_rows(&self.host_stage, d);
                // sync: racy stamp propagation — the stamp is a
                // freshness *estimate* for staleness accounting, and a
                // stale read only under-reports freshness (the AMC bound
                // checked in model tests is one-sided).
                let pulled = self.host_stamp.load(Ordering::Relaxed);
                // sync: stamp store needs no ordering; readers treat it
                // as an independent monotone estimate.
                self.stage_stamp[d].store(pulled, Ordering::Relaxed);
                #[cfg(any(feature = "model", feature = "sanitize"))]
                hb::on_stamp(hb::id_of(&self.stages[d]));
                // Push: elect one device per epoch to refresh the host
                // stage from the live iterate for the *next* pull —
                // fetch_max election, same reasoning as the device epoch.
                // sync: Relaxed — RMW atomicity alone decides the winner.
                if self.host_epoch.fetch_max(target, Ordering::Relaxed) < target {
                    #[cfg(any(feature = "model", feature = "sanitize"))]
                    hb::on_elect(hb::id_of(&self.host_stage));
                    for i in 0..live.len() {
                        self.host_stage.set(i, live.get(i));
                    }
                    #[cfg(any(feature = "model", feature = "sanitize"))]
                    hb::on_copy(hb::id_of(&self.host_stage));
                    // sync: freshness estimate only (see pull side).
                    self.host_stamp.store(watermark, Ordering::Relaxed);
                    #[cfg(any(feature = "model", feature = "sanitize"))]
                    hb::on_stamp(hb::id_of(&self.host_stage));
                    // sync: statistics counter, read after the run.
                    self.refreshes.fetch_add(1, Ordering::Relaxed);
                }
            }
            CommStrategy::Dc => {
                // One GPU-direct hop: bulk-copy the live remote slices.
                self.copy_remote_rows(live, d);
                // sync: freshness estimate only (see AMC pull side).
                self.stage_stamp[d].store(watermark, Ordering::Relaxed);
                #[cfg(any(feature = "model", feature = "sanitize"))]
                hb::on_stamp(hb::id_of(&self.stages[d]));
            }
            CommStrategy::Dk => unreachable!("DK has no halo stage"),
        }
        // sync: statistics counter, read after the run.
        self.refreshes.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies every row *outside* device `d`'s own slice from `src` into
    /// the device's stage. Own rows are never read through the stage, so
    /// skipping them models that only remote slices move.
    fn copy_remote_rows(&self, src: &AtomicF64Vec, d: usize) {
        let (own_start, own_end) = self.device_range(d);
        let stage = &self.stages[d];
        for i in 0..own_start {
            stage.set(i, src.get(i));
        }
        for i in own_end..src.len() {
            stage.set(i, src.get(i));
        }
        // hb shadow: the copy half of the elect → copy → stamp region
        // discipline checked by `hb::on_stamp`.
        #[cfg(any(feature = "model", feature = "sanitize"))]
        hb::on_copy(hb::id_of(stage));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xview::XView;

    fn live(vals: &[f64]) -> AtomicF64Vec {
        AtomicF64Vec::from_slice(vals)
    }

    #[test]
    fn dk_has_no_stage() {
        assert!(HaloExchange::for_strategy(CommStrategy::Dk, &[0, 2, 4], &[0.0; 4], 3).is_none());
    }

    #[test]
    fn dc_refreshes_remote_rows_once_per_epoch() {
        let x0 = [1.0, 2.0, 3.0, 4.0];
        let h = HaloExchange::for_strategy(CommStrategy::Dc, &[0, 2, 4], &x0, 5).unwrap();
        let x = live(&x0);
        for i in 0..4 {
            x.set(i, 10.0 + i as f64);
        }
        // Inside epoch 0: no refresh, device 0 still reads x0 remotely.
        h.maybe_refresh(0, 4, &x, 2);
        let v = XView::Staged(h.view(0, &x));
        assert_eq!(v.get(2), 3.0);
        assert_eq!(h.stage_stamp(0), 0);
        assert_eq!(h.refreshes(), 0);
        // Crossing into epoch 1: remote rows refresh, own rows read live.
        h.maybe_refresh(0, 5, &x, 5);
        assert_eq!(v.get(2), 12.0);
        assert_eq!(v.get(3), 13.0);
        assert_eq!(v.get(0), 10.0, "own rows always live");
        assert_eq!(h.stage_stamp(0), 5);
        assert_eq!(h.refreshes(), 1);
        // Re-calling within the same epoch is a no-op.
        h.maybe_refresh(0, 7, &x, 6);
        assert_eq!(h.stage_stamp(0), 5);
        assert_eq!(h.refreshes(), 1);
    }

    #[test]
    fn amc_lags_one_extra_epoch_behind_dc() {
        let x0 = [0.0, 0.0, 0.0, 0.0];
        let h = HaloExchange::for_strategy(CommStrategy::Amc, &[0, 2, 4], &x0, 4).unwrap();
        let x = live(&x0);
        // Epoch 1: live holds "epoch 1" values; the pull only sees the
        // initial host stage (x0), the push captures the live values.
        for i in 0..4 {
            x.set(i, 1.0);
        }
        h.maybe_refresh(0, 4, &x, 4);
        let v = XView::Staged(h.view(0, &x));
        assert_eq!(v.get(2), 0.0, "first pull still sees the initial host stage");
        assert_eq!(h.stage_stamp(0), 0);
        // Epoch 2: the pull now delivers what epoch 1 pushed.
        for i in 0..4 {
            x.set(i, 2.0);
        }
        h.maybe_refresh(0, 8, &x, 8);
        assert_eq!(v.get(2), 1.0, "second pull delivers the previous epoch's push");
        assert_eq!(h.stage_stamp(0), 4, "stamped with the push-time watermark");
        assert_eq!(v.get(0), 2.0, "own rows always live");
    }

    #[test]
    fn devices_refresh_independently() {
        let x0 = [0.0; 6];
        let h = HaloExchange::for_strategy(CommStrategy::Dc, &[0, 2, 4, 6], &x0, 2).unwrap();
        let x = live(&x0);
        x.set(0, 7.0);
        h.maybe_refresh(1, 2, &x, 2);
        // Device 1 refreshed; device 2 did not.
        assert_eq!(h.view(1, &x).get(0), 7.0);
        assert_eq!(h.view(2, &x).get(0), 0.0);
        assert_eq!(h.stage_stamp(1), 2);
        assert_eq!(h.stage_stamp(2), 0);
    }

    #[test]
    fn epoch_rounds_clamped_to_one() {
        let h = HaloExchange::for_strategy(CommStrategy::Dc, &[0, 1, 2], &[0.0; 2], 0).unwrap();
        assert_eq!(h.epoch_rounds(), 1);
        assert_eq!(h.n_devices(), 2);
        assert_eq!(h.strategy(), CommStrategy::Dc);
        assert_eq!(h.device_range(1), (1, 2));
    }
}
