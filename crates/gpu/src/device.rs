//! Device and host descriptors.
//!
//! Defaults model the paper's testbed: NVIDIA Tesla/Fermi C2070 GPUs
//! (14 multiprocessors x 32 CUDA cores @ 1.15 GHz, 6 GB, ~144 GB/s) in a
//! Supermicro host with two Intel Xeon E5540 @ 2.53 GHz.

/// Static description of one GPU device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, for reports.
    pub name: String,
    /// Number of streaming multiprocessors; each executes one thread block
    /// at a time in the simulator.
    pub sm_count: usize,
    /// CUDA cores per SM.
    pub cores_per_sm: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Device-memory bandwidth in bytes/second.
    pub mem_bandwidth: f64,
    /// Device memory capacity in bytes.
    pub mem_bytes: u64,
}

impl DeviceSpec {
    /// The Fermi C2070 used in all of the paper's experiments.
    pub fn fermi_c2070() -> Self {
        DeviceSpec {
            name: "Fermi C2070".into(),
            sm_count: 14,
            cores_per_sm: 32,
            clock_ghz: 1.15,
            mem_bandwidth: 144.0e9,
            mem_bytes: 6 * 1024 * 1024 * 1024,
        }
    }

    /// Total CUDA cores.
    pub fn total_cores(&self) -> usize {
        self.sm_count * self.cores_per_sm
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        DeviceSpec::fermi_c2070()
    }
}

/// Static description of the host CPU(s).
#[derive(Debug, Clone, PartialEq)]
pub struct HostSpec {
    /// Marketing name, for reports.
    pub name: String,
    /// Number of sockets.
    pub sockets: usize,
    /// Cores per socket.
    pub cores_per_socket: usize,
    /// Clock in GHz.
    pub clock_ghz: f64,
}

impl HostSpec {
    /// The dual Xeon E5540 host of the paper.
    pub fn dual_xeon_e5540() -> Self {
        HostSpec {
            name: "2x Intel Xeon E5540".into(),
            sockets: 2,
            cores_per_socket: 4,
            clock_ghz: 2.53,
        }
    }

    /// Total cores.
    pub fn total_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }
}

impl Default for HostSpec {
    fn default() -> Self {
        HostSpec::dual_xeon_e5540()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c2070_shape() {
        let d = DeviceSpec::fermi_c2070();
        assert_eq!(d.total_cores(), 448); // = the paper's thread-block size
        assert_eq!(d.sm_count, 14);
    }

    #[test]
    fn host_shape() {
        let h = HostSpec::dual_xeon_e5540();
        assert_eq!(h.total_cores(), 8);
    }
}
