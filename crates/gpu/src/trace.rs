//! Execution traces: what the executor actually did — including the
//! *realised* shift function of the paper's Eq. (3).

use std::collections::BTreeMap;

/// Histogram of realised read staleness: for each block update at its own
/// round `r`, reading a neighbour block that had completed `c` updates
/// counts one observation of shift `r - c`. Shift `0` is what synchronous
/// Jacobi always sees; negative shifts are *fresher*-than-Jacobi reads
/// (the Gauss-Seidel flavour of the asynchronous iteration); positive
/// shifts are stale reads. The paper's admissibility condition (2)
/// requires the positive side to be bounded, which [`StalenessHistogram::max_shift`]
/// verifies empirically.
#[derive(Debug, Clone, Default)]
pub struct StalenessHistogram {
    counts: BTreeMap<i64, u64>,
}

impl StalenessHistogram {
    /// Records one read with the given shift.
    pub fn record(&mut self, shift: i64) {
        *self.counts.entry(shift).or_insert(0) += 1;
    }

    /// Total recorded reads.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Largest observed (stalest) shift, if any reads were recorded.
    pub fn max_shift(&self) -> Option<i64> {
        self.counts.keys().next_back().copied()
    }

    /// Smallest observed shift (most negative = freshest).
    pub fn min_shift(&self) -> Option<i64> {
        self.counts.keys().next().copied()
    }

    /// Mean shift.
    pub fn mean_shift(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.counts.iter().map(|(&s, &c)| s as f64 * c as f64).sum::<f64>() / total as f64
    }

    /// Fraction of reads fresher than synchronous Jacobi (shift < 0).
    pub fn fraction_fresh(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let fresh: u64 =
            self.counts.iter().filter(|(&s, _)| s < 0).map(|(_, &c)| c).sum();
        fresh as f64 / total as f64
    }

    /// The `(shift, count)` pairs in increasing shift order.
    pub fn entries(&self) -> impl Iterator<Item = (i64, u64)> + '_ {
        self.counts.iter().map(|(&s, &c)| (s, c))
    }
}

/// Summary of one executor run.
#[derive(Debug, Clone)]
pub struct UpdateTrace {
    /// Completed updates per block.
    pub updates_per_block: Vec<usize>,
    /// Largest observed skew: at some instant, the most-updated block was
    /// this many rounds ahead of the least-updated one. Zero means the run
    /// was effectively synchronous.
    pub max_skew: usize,
    /// Total virtual time of the run (DES) or wall seconds (threaded).
    pub elapsed: f64,
    /// Number of block updates that were skipped by the filter.
    pub skipped_updates: usize,
    /// Realised read-staleness distribution (empty unless the kernel
    /// exposes its neighbour blocks; DES executor only).
    pub staleness: StalenessHistogram,
}

impl UpdateTrace {
    /// An empty trace for `n_blocks` blocks.
    pub fn new(n_blocks: usize) -> Self {
        UpdateTrace {
            updates_per_block: vec![0; n_blocks],
            max_skew: 0,
            elapsed: 0.0,
            skipped_updates: 0,
            staleness: StalenessHistogram::default(),
        }
    }

    /// Minimum completed rounds over all blocks — the number of *global*
    /// iterations in the paper's counting convention.
    pub fn global_iterations(&self) -> usize {
        self.updates_per_block.iter().copied().min().unwrap_or(0)
    }

    /// Total committed block updates.
    pub fn total_updates(&self) -> usize {
        self.updates_per_block.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_iterations_is_min() {
        let mut t = UpdateTrace::new(3);
        t.updates_per_block = vec![5, 3, 7];
        assert_eq!(t.global_iterations(), 3);
        assert_eq!(t.total_updates(), 15);
    }

    #[test]
    fn empty_trace() {
        let t = UpdateTrace::new(0);
        assert_eq!(t.global_iterations(), 0);
        assert_eq!(t.total_updates(), 0);
        assert_eq!(t.staleness.total(), 0);
        assert_eq!(t.staleness.max_shift(), None);
    }

    #[test]
    fn staleness_histogram_statistics() {
        let mut h = StalenessHistogram::default();
        h.record(0);
        h.record(0);
        h.record(-1);
        h.record(2);
        assert_eq!(h.total(), 4);
        assert_eq!(h.max_shift(), Some(2));
        assert_eq!(h.min_shift(), Some(-1));
        assert!((h.mean_shift() - 0.25).abs() < 1e-15);
        assert!((h.fraction_fresh() - 0.25).abs() < 1e-15);
        let e: Vec<_> = h.entries().collect();
        assert_eq!(e, vec![(-1, 1), (0, 2), (2, 1)]);
    }
}
