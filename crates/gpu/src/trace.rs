//! Execution traces: what the executor actually did — including the
//! *realised* shift function of the paper's Eq. (3).

use abr_sync::{Ordering, SyncUsize};
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Histogram of realised read staleness: for each block update at its own
/// round `r`, reading a neighbour block that had completed `c` updates
/// counts one observation of shift `r - c`. Shift `0` is what synchronous
/// Jacobi always sees; negative shifts are *fresher*-than-Jacobi reads
/// (the Gauss-Seidel flavour of the asynchronous iteration); positive
/// shifts are stale reads. The paper's admissibility condition (2)
/// requires the positive side to be bounded, which [`StalenessHistogram::max_shift`]
/// verifies empirically.
#[derive(Debug, Clone, Default)]
pub struct StalenessHistogram {
    counts: BTreeMap<i64, u64>,
}

impl StalenessHistogram {
    /// Records one read with the given shift.
    pub fn record(&mut self, shift: i64) {
        *self.counts.entry(shift).or_insert(0) += 1;
    }

    /// Total recorded reads.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Largest observed (stalest) shift, if any reads were recorded.
    pub fn max_shift(&self) -> Option<i64> {
        self.counts.keys().next_back().copied()
    }

    /// Smallest observed shift (most negative = freshest).
    pub fn min_shift(&self) -> Option<i64> {
        self.counts.keys().next().copied()
    }

    /// Mean shift.
    pub fn mean_shift(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.counts.iter().map(|(&s, &c)| s as f64 * c as f64).sum::<f64>() / total as f64
    }

    /// Fraction of reads fresher than synchronous Jacobi (shift < 0).
    pub fn fraction_fresh(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let fresh: u64 =
            self.counts.iter().filter(|(&s, _)| s < 0).map(|(_, &c)| c).sum();
        fresh as f64 / total as f64
    }

    /// The `(shift, count)` pairs in increasing shift order.
    pub fn entries(&self) -> impl Iterator<Item = (i64, u64)> + '_ {
        self.counts.iter().map(|(&s, &c)| (s, c))
    }

    /// Folds another histogram into this one. The threaded executors let
    /// each worker record into a private histogram and merge at join, so
    /// the hot path never touches a shared map.
    pub fn merge(&mut self, other: &StalenessHistogram) {
        for (&s, &c) in &other.counts {
            *self.counts.entry(s).or_insert(0) += c;
        }
    }
}

/// Concurrent count-of-counts watermark tracker: the real-thread
/// executors' counterpart of the DES's skew bookkeeping (`sim.rs`).
///
/// Every processed dispatch (a committed update, or a filter-skipped one
/// — both advance a block past its round) moves one block from progress
/// bucket `c` to `c + 1`; the histogram maintains the minimum (the
/// *progress floor*, also published as a relaxed atomic so workers can
/// read it without taking the lock) and maximum in O(1), and
/// [`max_skew`](Self::max_skew) records the widest spread ever observed —
/// the empirical check of the paper's Eq. 2 staleness bound. Skips count
/// as progress on purpose: a permanently frozen block (fault injection)
/// must not pin the floor, or the persistent executor's lag gate would
/// deadlock against it.
#[derive(Debug)]
pub struct SkewTracker {
    inner: Mutex<SkewInner>,
    /// Relaxed mirror of the histogram minimum, for lock-free reads on
    /// the dispatch path.
    floor: SyncUsize,
}

#[derive(Debug)]
struct SkewInner {
    progress: Vec<usize>,
    /// `hist[c]` *live* (unfrozen) blocks have progressed exactly `c`
    /// times.
    hist: Vec<usize>,
    min_count: usize,
    max_count: usize,
    max_skew: usize,
    /// Blocks currently excluded from the histogram (a live fault froze
    /// them: their owner died and nobody may update them until the
    /// recovery handoff). Their progress is still tracked, but they do
    /// not pin the floor — the paper's surviving components keep
    /// iterating during the outage.
    frozen: Vec<bool>,
    /// Progress at the moment each currently-frozen block was frozen.
    frozen_at: Vec<usize>,
    n_live: usize,
    /// Completed `(block, frozen_at, outage_rounds, thawed)` spans.
    spans: Vec<(usize, usize, usize, bool)>,
    /// Largest realised outage (floor rounds a frozen block missed).
    max_outage: usize,
}

impl SkewInner {
    /// Removes one observation of `count` from the histogram, keeping
    /// `min_count`/`max_count` tight. No-op bookkeeping when the last
    /// live block leaves (the bounds then go stale until a thaw re-seeds
    /// them, and no reader consumes them in between).
    fn hist_remove(&mut self, count: usize) {
        self.hist[count] -= 1;
        if self.n_live == 0 {
            return;
        }
        if count == self.min_count && self.hist[count] == 0 {
            while self.min_count < self.max_count && self.hist[self.min_count] == 0 {
                self.min_count += 1;
            }
        }
        if count == self.max_count && self.hist[count] == 0 {
            while self.max_count > self.min_count && self.hist[self.max_count] == 0 {
                self.max_count -= 1;
            }
        }
    }
}

impl SkewTracker {
    /// A tracker over `n_blocks` blocks, all at progress 0.
    pub fn new(n_blocks: usize) -> Self {
        SkewTracker {
            inner: Mutex::new(SkewInner {
                progress: vec![0; n_blocks],
                hist: vec![n_blocks],
                min_count: 0,
                max_count: 0,
                max_skew: 0,
                frozen: vec![false; n_blocks],
                frozen_at: vec![0; n_blocks],
                n_live: n_blocks,
                spans: Vec::new(),
                max_outage: 0,
            }),
            floor: SyncUsize::new(0),
        }
    }

    /// Records one processed dispatch of `block` (commit or skip). A
    /// frozen block's stray dispatches (in flight when the freeze landed,
    /// or raced through a stale shard-state read) still count progress
    /// but stay outside the histogram until the thaw re-admits them.
    pub fn on_progress(&self, block: usize) {
        let new_floor;
        {
            let mut g = self.inner.lock();
            let old = g.progress[block];
            g.progress[block] = old + 1;
            if g.hist.len() == old + 1 {
                g.hist.push(0);
            }
            if g.frozen[block] {
                return;
            }
            g.hist[old] -= 1;
            g.hist[old + 1] += 1;
            if old + 1 > g.max_count {
                g.max_count = old + 1;
            }
            new_floor = if old == g.min_count && g.hist[old] == 0 {
                while g.min_count < g.max_count && g.hist[g.min_count] == 0 {
                    g.min_count += 1;
                }
                Some(g.min_count)
            } else {
                None
            };
            let skew = g.max_count - g.min_count;
            if skew > g.max_skew {
                g.max_skew = skew;
            }
        }
        if let Some(f) = new_floor {
            // sync: published *outside* the lock — under the model
            // runtime every facade op is a schedule point and must never
            // run with a lock held. Relaxed fetch_max is sound here:
            // the floor is monotone, racing publications keep the
            // largest, and a reader seeing a lagging mirror only makes
            // the lag gate *more* conservative (never admits a dispatch
            // the true floor would reject).
            self.floor.fetch_max(f, Ordering::Relaxed);
        }
    }

    /// Freezes `block`: removes it from the histogram so it no longer
    /// pins the progress floor. Called by the fault runtime when the
    /// block's owning worker dies — the surviving blocks' floor then
    /// keeps advancing, which is exactly how the realised staleness bound
    /// widens from `max_round_lag + 1` to `max_round_lag + 1 + outage`
    /// (see `abr_gpu::persistent`'s bound re-derivation).
    pub fn freeze(&self, block: usize) {
        let new_floor;
        {
            let mut g = self.inner.lock();
            if g.frozen[block] {
                return;
            }
            g.frozen[block] = true;
            g.frozen_at[block] = g.progress[block];
            g.n_live -= 1;
            let count = g.progress[block];
            let old_min = g.min_count;
            g.hist_remove(count);
            new_floor = (g.min_count > old_min && g.n_live > 0).then_some(g.min_count);
        }
        if let Some(f) = new_floor {
            // sync: same monotone-mirror publication as `on_progress` —
            // outside the lock, conservative-low for racing readers.
            self.floor.fetch_max(f, Ordering::Relaxed);
        }
    }

    /// Thaws `block` after the recovery handoff, re-admitting it to the
    /// histogram at its (stale) progress count. Returns the realised
    /// outage length in floor rounds — how far the live floor ran ahead
    /// of the frozen block — which is the exact widening of the skew
    /// bound this outage caused. The realised gap is folded into
    /// [`max_skew`](Self::max_skew): it *is* observed skew.
    pub fn thaw(&self, block: usize) -> usize {
        self.thaw_inner(block, true)
    }

    fn thaw_inner(&self, block: usize, thawed: bool) -> usize {
        // sync: Relaxed mirror read, taken *before* the lock (facade ops
        // must not run under a lock — model runtime). The mirror is what
        // the executor's lag gate runs against, so the outage must be
        // measured against it: with staggered multi-shard outages the
        // histogram min can sit *below* the mirror (an earlier thawed
        // block still catching up) while dispatch is still admitted up to
        // mirror + lag, and an outage measured only against the min would
        // under-record the widening. The mirror cannot advance mid-thaw:
        // it only rises when the histogram min does, and the min is about
        // to become this block's stale count.
        let mirror = self.floor.load(Ordering::Relaxed);
        let mut g = self.inner.lock();
        if !g.frozen[block] {
            return 0;
        }
        let count = g.progress[block];
        let outage = if g.n_live == 0 {
            mirror.saturating_sub(count)
        } else {
            mirror.max(g.min_count).saturating_sub(count)
        };
        g.frozen[block] = false;
        g.n_live += 1;
        g.hist[count] += 1;
        if g.n_live == 1 {
            g.min_count = count;
            g.max_count = count;
        } else {
            g.min_count = g.min_count.min(count);
            g.max_count = g.max_count.max(count);
        }
        let skew = g.max_count - g.min_count;
        if skew > g.max_skew {
            g.max_skew = skew;
        }
        if outage > g.max_outage {
            g.max_outage = outage;
        }
        let frozen_at = g.frozen_at[block];
        g.spans.push((block, frozen_at, outage, thawed));
        outage
        // No floor publication: the true minimum may have *dropped* to
        // the thawed block's count, and the mirror is monotone. The gate
        // then runs against a stale-high floor while the block catches
        // up, which admits dispatch only up to (old floor + lag + 1) —
        // still within the widened `lag + 1 + outage` envelope, and the
        // mirror resumes once the floor passes its old value.
    }

    /// End-of-run reconciliation: folds every still-frozen block's gap
    /// into the skew and outage accounting (a no-recovery outage is real
    /// skew even though no thaw ever happened). Call after the workers
    /// have joined, before reading [`max_skew`](Self::max_skew).
    pub fn reconcile(&self) {
        let n = self.inner.lock().frozen.len();
        for b in 0..n {
            self.thaw_inner(b, false);
        }
    }

    /// The current progress floor (minimum over blocks), relaxed.
    #[inline]
    pub fn floor(&self) -> usize {
        // sync: conservative-low racy read of a monotone mirror; see
        // the publication comment in `on_progress`.
        self.floor.load(Ordering::Relaxed)
    }

    /// The widest min-to-max spread observed so far.
    pub fn max_skew(&self) -> usize {
        self.inner.lock().max_skew
    }

    /// Largest realised outage over all freeze/thaw spans, in floor
    /// rounds. The asserted staleness contract of the persistent
    /// executor is `max_skew <= max_round_lag + 1 + max_outage`.
    pub fn max_outage(&self) -> usize {
        self.inner.lock().max_outage
    }

    /// The completed `(block, frozen_at_progress, outage_rounds, thawed)`
    /// spans, in freeze order.
    pub fn frozen_spans(&self) -> Vec<(usize, usize, usize, bool)> {
        self.inner.lock().spans.clone()
    }
}

/// Summary of one executor run.
#[derive(Debug, Clone)]
pub struct UpdateTrace {
    /// Completed updates per block.
    pub updates_per_block: Vec<usize>,
    /// Largest observed skew: at some instant, the most-updated block was
    /// this many rounds ahead of the least-updated one. Zero means the run
    /// was effectively synchronous.
    pub max_skew: usize,
    /// Total virtual time of the run (DES) or wall seconds (threaded).
    pub elapsed: f64,
    /// Number of block updates that were skipped by the filter.
    pub skipped_updates: usize,
    /// Realised read-staleness distribution (empty unless the kernel
    /// exposes its neighbour blocks; maintained by the DES and persistent
    /// executors).
    pub staleness: StalenessHistogram,
}

impl UpdateTrace {
    /// An empty trace for `n_blocks` blocks.
    pub fn new(n_blocks: usize) -> Self {
        UpdateTrace {
            updates_per_block: vec![0; n_blocks],
            max_skew: 0,
            elapsed: 0.0,
            skipped_updates: 0,
            staleness: StalenessHistogram::default(),
        }
    }

    /// Minimum completed rounds over all blocks — the number of *global*
    /// iterations in the paper's counting convention.
    pub fn global_iterations(&self) -> usize {
        self.updates_per_block.iter().copied().min().unwrap_or(0)
    }

    /// Total committed block updates.
    pub fn total_updates(&self) -> usize {
        self.updates_per_block.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_iterations_is_min() {
        let mut t = UpdateTrace::new(3);
        t.updates_per_block = vec![5, 3, 7];
        assert_eq!(t.global_iterations(), 3);
        assert_eq!(t.total_updates(), 15);
    }

    #[test]
    fn empty_trace() {
        let t = UpdateTrace::new(0);
        assert_eq!(t.global_iterations(), 0);
        assert_eq!(t.total_updates(), 0);
        assert_eq!(t.staleness.total(), 0);
        assert_eq!(t.staleness.max_shift(), None);
    }

    #[test]
    fn staleness_histogram_statistics() {
        let mut h = StalenessHistogram::default();
        h.record(0);
        h.record(0);
        h.record(-1);
        h.record(2);
        assert_eq!(h.total(), 4);
        assert_eq!(h.max_shift(), Some(2));
        assert_eq!(h.min_shift(), Some(-1));
        assert!((h.mean_shift() - 0.25).abs() < 1e-15);
        assert!((h.fraction_fresh() - 0.25).abs() < 1e-15);
        let e: Vec<_> = h.entries().collect();
        assert_eq!(e, vec![(-1, 1), (0, 2), (2, 1)]);
    }

    #[test]
    fn histograms_merge() {
        let mut a = StalenessHistogram::default();
        a.record(0);
        a.record(3);
        let mut b = StalenessHistogram::default();
        b.record(3);
        b.record(-1);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        let e: Vec<_> = a.entries().collect();
        assert_eq!(e, vec![(-1, 1), (0, 1), (3, 2)]);
    }

    #[test]
    fn skew_tracker_matches_manual_bookkeeping() {
        let t = SkewTracker::new(3);
        assert_eq!(t.floor(), 0);
        assert_eq!(t.max_skew(), 0);
        t.on_progress(0); // counts 1,0,0
        assert_eq!(t.max_skew(), 1);
        assert_eq!(t.floor(), 0);
        t.on_progress(0); // 2,0,0
        assert_eq!(t.max_skew(), 2);
        t.on_progress(1); // 2,1,0
        t.on_progress(2); // 2,1,1 -> floor advances to 1
        assert_eq!(t.floor(), 1);
        assert_eq!(t.max_skew(), 2);
        t.on_progress(1); // 2,2,1
        t.on_progress(2); // 2,2,2 -> floor 2, skew now 0 but max stays
        assert_eq!(t.floor(), 2);
        assert_eq!(t.max_skew(), 2);
    }

    #[test]
    fn skew_tracker_single_block_never_skews() {
        let t = SkewTracker::new(1);
        for _ in 0..10 {
            t.on_progress(0);
        }
        assert_eq!(t.max_skew(), 0);
        assert_eq!(t.floor(), 10);
    }

    /// A frozen block stops pinning the floor; the thaw measures the
    /// realised outage and folds it into the skew.
    #[test]
    fn freeze_releases_the_floor_and_thaw_records_the_outage() {
        let t = SkewTracker::new(3);
        // Everyone to 2.
        for _ in 0..2 {
            for b in 0..3 {
                t.on_progress(b);
            }
        }
        assert_eq!(t.floor(), 2);
        t.freeze(0);
        // The survivors run 5 more rounds; the floor follows them.
        for _ in 0..5 {
            t.on_progress(1);
            t.on_progress(2);
        }
        assert_eq!(t.floor(), 7, "a frozen block must not pin the floor");
        let outage = t.thaw(0);
        assert_eq!(outage, 5, "floor 7 minus frozen count 2");
        assert_eq!(t.max_outage(), 5);
        assert_eq!(t.max_skew(), 5, "the realised gap is observed skew");
        let spans = t.frozen_spans();
        assert_eq!(spans, vec![(0, 2, 5, true)]);
        // Catch-up: progress on the thawed block does not publish a lower
        // floor (the mirror is monotone) until it passes the old one.
        t.on_progress(0);
        assert_eq!(t.floor(), 7);
    }

    /// Progress on a frozen block (an in-flight dispatch racing the
    /// freeze) is counted but stays outside the histogram.
    #[test]
    fn frozen_block_progress_is_counted_outside_the_histogram() {
        let t = SkewTracker::new(2);
        t.on_progress(0);
        t.on_progress(1); // floor 1
        t.freeze(0);
        t.on_progress(0); // stray dispatch on the frozen block
        for _ in 0..3 {
            t.on_progress(1);
        }
        assert_eq!(t.floor(), 4);
        let outage = t.thaw(0);
        assert_eq!(outage, 2, "floor 4 minus progress 2 (the stray counted)");
    }

    /// Never-thawed blocks (the no-recovery regime) are folded in by the
    /// end-of-run reconciliation with `thawed == false`.
    #[test]
    fn reconcile_folds_unthawed_spans() {
        let t = SkewTracker::new(2);
        t.on_progress(0);
        t.on_progress(1);
        t.freeze(0);
        for _ in 0..4 {
            t.on_progress(1);
        }
        t.reconcile();
        assert_eq!(t.max_outage(), 4);
        let spans = t.frozen_spans();
        assert_eq!(spans, vec![(0, 1, 4, false)]);
        // Reconciling twice is a no-op.
        t.reconcile();
        assert_eq!(t.frozen_spans().len(), 1);
    }

    /// Freeze/thaw of every block (all workers dead) must not corrupt the
    /// bookkeeping.
    #[test]
    fn freezing_every_block_is_safe() {
        let t = SkewTracker::new(2);
        t.on_progress(0);
        t.on_progress(1);
        t.freeze(0);
        t.freeze(1);
        assert_eq!(t.floor(), 1);
        t.thaw(1);
        t.thaw(0);
        assert_eq!(t.max_outage(), 0, "no live floor ever ran ahead");
        t.on_progress(0);
        t.on_progress(1);
        assert_eq!(t.floor(), 2);
    }
}
