//! Block-dispatch schedules.
//!
//! The GPU's thread-block scheduler is undocumented; §4.1 of the paper
//! infers from its 1000-run statistics that it follows a *recurring
//! pattern* (the linear growth of the relative variation "immediately
//! suggests the existence of a recurring pattern in the GPU-internal
//! scheduling"). The executors therefore take the dispatch order as a
//! pluggable policy so the experiments can compare:
//!
//! * [`RoundRobin`] — blocks in index order every round (a fully
//!   deterministic baseline; with one worker this reduces the async
//!   method to block-Jacobi),
//! * [`RandomPermutation`] — a fresh seeded shuffle every round
//!   (maximum scheduling entropy),
//! * [`RecurringPattern`] — one seeded shuffle fixed for the whole run
//!   (the paper's inferred GPU behaviour).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Produces the dispatch order of the `n_blocks` block updates of one
/// round. Stateful: random policies advance their RNG between rounds.
pub trait BlockSchedule: Send {
    /// Writes the block order for `round` into `out` (cleared first).
    fn order(&mut self, round: usize, n_blocks: usize, out: &mut Vec<usize>);
}

/// Blocks in index order, every round.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin;

impl BlockSchedule for RoundRobin {
    fn order(&mut self, _round: usize, n_blocks: usize, out: &mut Vec<usize>) {
        out.clear();
        out.extend(0..n_blocks);
    }
}

/// A fresh random permutation every round.
#[derive(Debug)]
pub struct RandomPermutation {
    rng: StdRng,
}

impl RandomPermutation {
    /// Seeded constructor; the same seed reproduces the same run.
    pub fn new(seed: u64) -> Self {
        RandomPermutation { rng: StdRng::seed_from_u64(seed) }
    }
}

impl BlockSchedule for RandomPermutation {
    fn order(&mut self, _round: usize, n_blocks: usize, out: &mut Vec<usize>) {
        out.clear();
        out.extend(0..n_blocks);
        out.shuffle(&mut self.rng);
    }
}

/// One random permutation, fixed for the whole run — the paper's inferred
/// GPU scheduling behaviour.
#[derive(Debug)]
pub struct RecurringPattern {
    seed: u64,
    cached: Vec<usize>,
}

impl RecurringPattern {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        RecurringPattern { seed, cached: Vec::new() }
    }
}

impl BlockSchedule for RecurringPattern {
    fn order(&mut self, _round: usize, n_blocks: usize, out: &mut Vec<usize>) {
        if self.cached.len() != n_blocks {
            self.cached = (0..n_blocks).collect();
            let mut rng = StdRng::seed_from_u64(self.seed);
            self.cached.shuffle(&mut rng);
        }
        out.clear();
        out.extend_from_slice(&self.cached);
    }
}

/// Flattens `rounds` rounds of a schedule into one ticket list, used by the
/// threaded executor (whose workers grab tickets from an atomic counter).
pub fn flatten_schedule(
    schedule: &mut dyn BlockSchedule,
    n_blocks: usize,
    rounds: usize,
) -> Vec<u32> {
    let mut tickets = Vec::with_capacity(n_blocks * rounds);
    let mut order = Vec::new();
    for round in 0..rounds {
        schedule.order(round, n_blocks, &mut order);
        debug_assert_eq!(order.len(), n_blocks);
        tickets.extend(order.iter().map(|&b| b as u32));
    }
    tickets
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(v: &[usize], n: usize) -> bool {
        let mut seen = vec![false; n];
        if v.len() != n {
            return false;
        }
        for &b in v {
            if b >= n || seen[b] {
                return false;
            }
            seen[b] = true;
        }
        true
    }

    #[test]
    fn round_robin_in_order() {
        let mut s = RoundRobin;
        let mut out = Vec::new();
        s.order(0, 5, &mut out);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        s.order(7, 5, &mut out);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn random_permutation_valid_and_varying() {
        let mut s = RandomPermutation::new(42);
        let mut a = Vec::new();
        let mut b = Vec::new();
        s.order(0, 20, &mut a);
        s.order(1, 20, &mut b);
        assert!(is_permutation(&a, 20));
        assert!(is_permutation(&b, 20));
        assert_ne!(a, b, "two rounds should (almost surely) differ");
    }

    #[test]
    fn random_permutation_reproducible() {
        let mut s1 = RandomPermutation::new(7);
        let mut s2 = RandomPermutation::new(7);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for round in 0..5 {
            s1.order(round, 16, &mut a);
            s2.order(round, 16, &mut b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn recurring_pattern_repeats() {
        let mut s = RecurringPattern::new(3);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        s.order(0, 12, &mut a);
        s.order(5, 12, &mut b);
        assert_eq!(a, b);
        assert!(is_permutation(&a, 12));
        // usually not the identity
        assert_ne!(a, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn flatten_covers_each_round() {
        let mut s = RandomPermutation::new(1);
        let tickets = flatten_schedule(&mut s, 6, 4);
        assert_eq!(tickets.len(), 24);
        for round in 0..4 {
            let slice: Vec<usize> =
                tickets[round * 6..(round + 1) * 6].iter().map(|&b| b as usize).collect();
            assert!(is_permutation(&slice, 6), "round {round}");
        }
    }
}
