//! The discrete-event executor: a seeded, reproducible simulation of a
//! GPU dispatching thread blocks onto its multiprocessors.
//!
//! Each of `n_workers` workers (modelling SMs) executes one block update
//! at a time. Blocks are dispatched in schedule order to the
//! earliest-free worker; an update occupies the worker for
//! `block_cost * (1 ± jitter)` virtual time. Crucially there is **no
//! barrier between rounds** — a fast worker starts round `k+1` blocks
//! while slow workers still run round `k`, so blocks observe iterates that
//! mix epochs. A block reads the shared vector at its *start* time (all
//! writes that completed earlier are visible, later ones are not), which
//! realises exactly the bounded-shift asynchronous model of the paper's
//! Eq. (3): the shift of component `j` is however many updates its block
//! completed between this block's start and `j`'s last write.
//!
//! Determinism: everything is driven by one seeded RNG, so a (seed,
//! schedule) pair reproduces the identical update history — this is how
//! the 1000-run statistics of Tables 2/3 are generated reproducibly.

use crate::kernel::{BlockKernel, BlockScratch, UpdateFilter};
use crate::schedule::BlockSchedule;
use crate::trace::UpdateTrace;
use crate::xview::XView;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options for [`SimExecutor`].
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Number of concurrent workers (SMs). The Fermi C2070 has 14.
    pub n_workers: usize,
    /// Relative jitter of each update's duration, clamped to `[0, 0.95]`
    /// at run time (durations must stay positive). Zero makes every round
    /// effectively lock-step (no skew); the default 0.3 gives realistic
    /// overlap between rounds.
    pub jitter: f64,
    /// RNG seed for the duration jitter.
    pub seed: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions { n_workers: 14, jitter: 0.3, seed: 0 }
    }
}

/// The discrete-event executor.
#[derive(Debug, Clone, Default)]
pub struct SimExecutor {
    /// Execution options.
    pub opts: SimOptions,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    // Finish sorts before Start at equal times so a block starting exactly
    // when another finishes reads the freshest value.
    Finish = 0,
    Start = 1,
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    kind: EventKind,
    /// dispatch id; pairs the Start and Finish of one update
    dispatch: usize,
    block: usize,
    round: usize,
}

impl SimExecutor {
    /// Creates an executor with the given options.
    pub fn new(opts: SimOptions) -> Self {
        SimExecutor { opts }
    }

    /// Runs `rounds` asynchronous global rounds of the kernel over `x`,
    /// dispatching blocks per `schedule` and committing updates per
    /// `filter`. `on_global_iteration(k, x)` fires whenever the
    /// *minimum* per-block update count reaches `k` (i.e. global iteration
    /// `k` has completed in the paper's counting convention), with the
    /// then-current — possibly mid-flight — iterate.
    pub fn run<F>(
        &self,
        kernel: &dyn BlockKernel,
        x: &mut [f64],
        rounds: usize,
        schedule: &mut dyn BlockSchedule,
        filter: &dyn UpdateFilter,
        mut on_global_iteration: F,
    ) -> UpdateTrace
    where
        F: FnMut(usize, &[f64]),
    {
        let nb = kernel.n_blocks();
        assert_eq!(x.len(), kernel.n(), "iterate length must match kernel");
        let mut trace = UpdateTrace::new(nb);
        if nb == 0 || rounds == 0 {
            return trace;
        }
        let mut rng = StdRng::seed_from_u64(self.opts.seed);
        let w = self.opts.n_workers.max(1);
        let jitter = self.opts.jitter.clamp(0.0, 0.95);

        // --- Phase 1: list-schedule all dispatches onto workers. ---
        // A block's successive updates serialise (its round r+1 cannot
        // start before its own round r finished — on the hardware they
        // are consecutive kernels of the same stream). This is what keeps
        // the shift function bounded, the admissibility condition (2) of
        // the paper's §2.2; without it, surplus workers would run whole
        // future rounds against ancient iterates.
        let mut worker_free = vec![0.0f64; w];
        let mut block_free = vec![0.0f64; nb];
        let mut events: Vec<Event> = Vec::with_capacity(2 * nb * rounds);
        let mut order: Vec<usize> = Vec::with_capacity(nb);
        let mut dispatch = 0usize;
        for round in 0..rounds {
            schedule.order(round, nb, &mut order);
            for &block in &order {
                if !filter.block_enabled(block, round) {
                    trace.skipped_updates += 1;
                    continue;
                }
                // earliest-free worker (it idles until the block itself
                // is free, if need be)
                let (wi, &wfree) = worker_free
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).expect("times are finite"))
                    .expect("at least one worker");
                let start = wfree.max(block_free[block]);
                let factor = if jitter > 0.0 {
                    1.0 + jitter * (rng.gen::<f64>() - 0.5) * 2.0
                } else {
                    1.0
                };
                let dur = kernel.block_cost(block).max(1e-12) * factor;
                let finish = start + dur;
                worker_free[wi] = finish;
                block_free[block] = finish;
                events.push(Event { time: start, kind: EventKind::Start, dispatch, block, round });
                events.push(Event { time: finish, kind: EventKind::Finish, dispatch, block, round });
                dispatch += 1;
            }
        }
        trace.elapsed = worker_free.iter().fold(0.0f64, |m, &t| m.max(t));

        // --- Phase 2: replay events in time order. ---
        events.sort_by(|a, b| {
            a.time
                .partial_cmp(&b.time)
                .expect("times are finite")
                .then((a.kind as u8).cmp(&(b.kind as u8)))
                .then(a.dispatch.cmp(&b.dispatch))
        });

        // in-flight results, keyed by dispatch id
        let mut inflight: Vec<Option<Vec<f64>>> = vec![None; dispatch];
        let mut buf_pool: Vec<Vec<f64>> = Vec::new();
        // The replay is sequential, so one scratch serves every update;
        // its capacity stabilises after the largest block's first update.
        let mut scratch = BlockScratch::new();
        let mut completed_global = 0usize;
        // Count-of-counts histogram over per-block update counts:
        // `hist[c]` blocks have completed exactly `c` updates. One Finish
        // event moves one block from bucket `c` to `c + 1`, so the
        // minimum (the global-iteration watermark) and maximum (for
        // `max_skew`) both maintain in O(1) — the minimum can only ever
        // advance when its bucket empties, and then only by one.
        let mut hist: Vec<usize> = vec![nb];
        let mut min_count = 0usize;
        let mut max_count = 0usize;

        for ev in &events {
            match ev.kind {
                EventKind::Start => {
                    // Realised shift of every neighbour read (Eq. 3
                    // measured): own completed rounds minus neighbour's.
                    if let Some(nbrs) = kernel.neighbor_blocks(ev.block) {
                        let own = trace.updates_per_block[ev.block] as i64;
                        for &nb in nbrs {
                            trace
                                .staleness
                                .record(own - trace.updates_per_block[nb] as i64);
                        }
                    }
                    let (s, e) = kernel.block_range(ev.block);
                    let mut out = buf_pool.pop().unwrap_or_default();
                    out.clear();
                    out.resize(e - s, 0.0);
                    kernel.update_block_with(ev.block, &XView::Plain(&*x), &mut out, &mut scratch);
                    inflight[ev.dispatch] = Some(out);
                }
                EventKind::Finish => {
                    let out = inflight[ev.dispatch]
                        .take()
                        .expect("finish follows its start");
                    let (s, _e) = kernel.block_range(ev.block);
                    for (k, &v) in out.iter().enumerate() {
                        if filter.component_enabled(s + k, ev.round) {
                            x[s + k] = v;
                        }
                    }
                    buf_pool.push(out);
                    let old = trace.updates_per_block[ev.block];
                    trace.updates_per_block[ev.block] = old + 1;
                    hist[old] -= 1;
                    if hist.len() == old + 1 {
                        hist.push(0);
                    }
                    hist[old + 1] += 1;
                    max_count = max_count.max(old + 1);
                    if old == min_count && hist[old] == 0 {
                        min_count += 1;
                    }
                    trace.max_skew = trace.max_skew.max(max_count - min_count);
                    while completed_global < min_count {
                        completed_global += 1;
                        on_global_iteration(completed_global, x);
                    }
                }
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::test_kernels::ConsensusKernel;
    use crate::kernel::AllowAll;
    use crate::schedule::{RandomPermutation, RoundRobin};

    #[test]
    fn consensus_converges_under_chaos() {
        let kernel = ConsensusKernel { n: 32, block_size: 5 };
        let mut x: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let exec = SimExecutor::new(SimOptions { n_workers: 4, jitter: 0.4, seed: 9 });
        let mut sched = RandomPermutation::new(3);
        let trace = exec.run(&kernel, &mut x, 60, &mut sched, &AllowAll, |_, _| {});
        let mean = x.iter().sum::<f64>() / 32.0;
        for &v in &x {
            assert!((v - mean).abs() < 1e-6, "not converged: {v} vs {mean}");
        }
        assert_eq!(trace.global_iterations(), 60);
        assert_eq!(trace.total_updates(), 60 * kernel.n_blocks());
    }

    #[test]
    fn deterministic_replay() {
        let kernel = ConsensusKernel { n: 20, block_size: 4 };
        let run = |seed| {
            let mut x: Vec<f64> = (0..20).map(|i| (i as f64).sin()).collect();
            let exec = SimExecutor::new(SimOptions { n_workers: 3, jitter: 0.3, seed });
            let mut sched = RandomPermutation::new(1);
            exec.run(&kernel, &mut x, 10, &mut sched, &AllowAll, |_, _| {});
            x
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "different seeds should interleave differently");
    }

    #[test]
    fn jitter_produces_skew_and_zero_jitter_does_not() {
        let kernel = ConsensusKernel { n: 64, block_size: 4 };
        let mut x = vec![1.0; 64];
        let exec = SimExecutor::new(SimOptions { n_workers: 5, jitter: 0.5, seed: 2 });
        let trace = exec.run(&kernel, &mut x, 30, &mut RoundRobin, &AllowAll, |_, _| {});
        assert!(trace.max_skew >= 1, "jittered run should overlap rounds");

        let mut x = vec![1.0; 64];
        let exec = SimExecutor::new(SimOptions { n_workers: 16, jitter: 0.0, seed: 2 });
        let trace = exec.run(&kernel, &mut x, 5, &mut RoundRobin, &AllowAll, |_, _| {});
        // equal costs + no jitter: every round finishes before the next
        // can get ahead by more than one
        assert!(trace.max_skew <= 1, "skew {}", trace.max_skew);
    }

    #[test]
    fn global_iteration_callback_counts() {
        let kernel = ConsensusKernel { n: 12, block_size: 3 };
        let mut x = vec![0.0; 12];
        let exec = SimExecutor::default();
        let mut seen = Vec::new();
        exec.run(&kernel, &mut x, 7, &mut RoundRobin, &AllowAll, |k, _| seen.push(k));
        assert_eq!(seen, vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn filter_blocks_are_skipped() {
        struct DropBlockZero;
        impl UpdateFilter for DropBlockZero {
            fn block_enabled(&self, block: usize, _round: usize) -> bool {
                block != 0
            }
        }
        let kernel = ConsensusKernel { n: 12, block_size: 3 };
        let mut x: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let exec = SimExecutor::default();
        let trace = exec.run(&kernel, &mut x, 4, &mut RoundRobin, &DropBlockZero, |_, _| {});
        assert_eq!(trace.updates_per_block[0], 0);
        assert_eq!(trace.updates_per_block[1], 4);
        assert_eq!(trace.skipped_updates, 4);
        assert_eq!(trace.global_iterations(), 0, "block 0 never completes a round");
    }

    #[test]
    fn filter_components_keep_old_values() {
        struct FreezeFirst;
        impl UpdateFilter for FreezeFirst {
            fn component_enabled(&self, i: usize, _round: usize) -> bool {
                i != 0
            }
        }
        let kernel = ConsensusKernel { n: 8, block_size: 8 };
        let mut x: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let exec = SimExecutor::default();
        exec.run(&kernel, &mut x, 10, &mut RoundRobin, &FreezeFirst, |_, _| {});
        assert_eq!(x[0], 0.0, "frozen component must keep its initial value");
        assert!(x[1] != 1.0, "live components must move");
    }

    #[test]
    fn empty_rounds_noop() {
        let kernel = ConsensusKernel { n: 4, block_size: 2 };
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        let before = x.clone();
        let exec = SimExecutor::default();
        let trace = exec.run(&kernel, &mut x, 0, &mut RoundRobin, &AllowAll, |_, _| {});
        assert_eq!(x, before);
        assert_eq!(trace.total_updates(), 0);
    }
}
