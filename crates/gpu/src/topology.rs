//! Host/device topology: which GPU hangs off which socket, and what the
//! links cost.
//!
//! The paper's Supermicro X8DTG-QF board attaches two GPUs to each of two
//! CPU sockets; traffic between GPUs on different sockets crosses the QPI
//! link, which §4.6 identifies as the reason three-GPU runs are *slower*
//! than two-GPU runs. CUDA 4.0 GPU-direct peer access additionally only
//! works between GPUs on the same socket.

use crate::device::{DeviceSpec, HostSpec};

/// A host with some number of GPUs and the interconnect characteristics.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Host CPU description.
    pub host: HostSpec,
    /// The attached devices.
    pub devices: Vec<DeviceSpec>,
    /// Socket each device's PCIe lanes terminate at.
    pub socket_of_device: Vec<usize>,
    /// Effective PCIe x16 bandwidth (bytes/s) between host memory and a
    /// device on the same socket.
    pub pcie_bandwidth: f64,
    /// Effective QPI bandwidth (bytes/s) for traffic crossing sockets.
    pub qpi_bandwidth: f64,
    /// One-way transfer latency per PCIe transaction (seconds).
    pub pcie_latency: f64,
}

impl Topology {
    /// The paper's system with `n_gpus` (1..=4) of the four C2070s in use.
    /// Devices 0, 1 sit on socket 0; devices 2, 3 on socket 1.
    pub fn supermicro(n_gpus: usize) -> Self {
        assert!((1..=4).contains(&n_gpus), "the testbed has 4 GPUs");
        Topology {
            host: HostSpec::dual_xeon_e5540(),
            devices: vec![DeviceSpec::fermi_c2070(); n_gpus],
            socket_of_device: (0..n_gpus).map(|d| d / 2).collect(),
            // ~3.2 GB/s effective for pinned transfers on Gen2 x16,
            // ~2.0 GB/s across QPI (the penalty §4.6 observes).
            pcie_bandwidth: 3.2e9,
            qpi_bandwidth: 2.0e9,
            pcie_latency: 10.0e-6,
        }
    }

    /// Number of devices.
    pub fn n_devices(&self) -> usize {
        self.devices.len()
    }

    /// `true` if devices `a` and `b` can use GPU-direct peer access
    /// (CUDA 4.0: only within a socket).
    pub fn peer_access(&self, a: usize, b: usize) -> bool {
        a != b && self.socket_of_device[a] == self.socket_of_device[b]
    }

    /// `true` if host<->device traffic for `device` crosses QPI when the
    /// controlling process runs on socket 0 (the paper pins the host
    /// thread there).
    pub fn crosses_qpi(&self, device: usize) -> bool {
        self.socket_of_device[device] != 0
    }

    /// Seconds to move `bytes` between host and `device`.
    pub fn host_device_time(&self, device: usize, bytes: usize) -> f64 {
        let bw = if self.crosses_qpi(device) { self.qpi_bandwidth } else { self.pcie_bandwidth };
        self.pcie_latency + bytes as f64 / bw
    }

    /// Seconds to move `bytes` directly between two devices.
    ///
    /// With peer access the transfer crosses each device's PCIe link once;
    /// without it (different sockets under CUDA 4.0) the driver stages the
    /// copy through host memory *and* QPI, roughly doubling the cost.
    pub fn device_device_time(&self, a: usize, b: usize, bytes: usize) -> f64 {
        if a == b {
            return 0.0;
        }
        if self.peer_access(a, b) {
            self.pcie_latency + bytes as f64 / self.pcie_bandwidth
        } else {
            2.0 * self.pcie_latency
                + bytes as f64 / self.pcie_bandwidth
                + bytes as f64 / self.qpi_bandwidth
        }
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::supermicro(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supermicro_sockets() {
        let t = Topology::supermicro(4);
        assert_eq!(t.socket_of_device, vec![0, 0, 1, 1]);
        assert!(t.peer_access(0, 1));
        assert!(t.peer_access(2, 3));
        assert!(!t.peer_access(1, 2));
        assert!(!t.peer_access(0, 0));
    }

    #[test]
    fn qpi_crossing() {
        let t = Topology::supermicro(4);
        assert!(!t.crosses_qpi(0));
        assert!(!t.crosses_qpi(1));
        assert!(t.crosses_qpi(2));
        assert!(t.crosses_qpi(3));
    }

    #[test]
    fn transfer_times_ordered() {
        let t = Topology::supermicro(4);
        let bytes = 1 << 20;
        let same_socket = t.device_device_time(0, 1, bytes);
        let cross_socket = t.device_device_time(0, 2, bytes);
        assert!(cross_socket > same_socket);
        assert_eq!(t.device_device_time(2, 2, bytes), 0.0);
        // host->device on socket 1 is slower than on socket 0
        assert!(t.host_device_time(2, bytes) > t.host_device_time(0, bytes));
    }

    #[test]
    #[should_panic(expected = "testbed has 4 GPUs")]
    fn too_many_gpus_panics() {
        Topology::supermicro(5);
    }
}
