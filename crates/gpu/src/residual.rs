//! Fused per-block residual slots — the monitor's O(n_blocks) poll.
//!
//! Every committed block update already knows (to one inner sweep) the
//! residual of its own rows: the async-(k) sweep computes
//! `r_i = a_ii (sweep_i − cur_i)` as a by-product of the update law (see
//! `AsyncJacobiKernel::update_block_estimating` in abr-core). A
//! [`ResidualSlots`] gives each block one **epoch-stamped slot** to
//! publish that sub-norm into, so the convergence monitor can estimate
//! `‖b − A x‖²` by summing `n_blocks` slots instead of running an
//! O(nnz) SpMV against a fresh snapshot — the locally-accumulated
//! monitoring of Chow–Frommer–Szyld (arXiv:2009.02015) and Nayak et al.
//! (arXiv:2003.05361), and the design that keeps the monitor off the
//! critical path at multi-million-row sizes.
//!
//! The estimate is **advisory only**: the persistent executor never stops
//! on it. A fused poll that crosses the tolerance merely escalates to the
//! exact `relative_residual_with` confirmation gate; `SolveResult`
//! tolerances are unchanged.
//!
//! # Ordering story
//!
//! A publish is two operations: a `Relaxed` store of the value bits,
//! then a `Release` increment of the slot's epoch. A reader that
//! `Acquire`-loads a non-zero epoch therefore observes *some* published
//! value for that slot (the one stamped by that epoch or a newer one —
//! value and stamp may interleave with a concurrent publish, which is
//! harmless: both are valid recent estimates). The epoch exists so the
//! monitor can tell *cold* slots (block never updated since reset — sum
//! would undercount the residual) from published ones; it never needs to
//! pair a specific value with a specific epoch.

use abr_sync::{Ordering, SyncU64, SyncUsize};

#[cfg(any(feature = "model", feature = "sanitize"))]
use abr_sync::hb;

/// One epoch-stamped `f64` slot per block, written by workers on every
/// committed update and reduced by the monitor.
#[derive(Debug, Default)]
pub struct ResidualSlots {
    /// Latest published sub-norm `Σ_{i∈block} r_i²`, as f64 bits.
    val_bits: Vec<SyncU64>,
    /// Number of publishes since the last reset; 0 = cold.
    epoch: Vec<SyncUsize>,
}

impl ResidualSlots {
    /// An empty slot set; size it with [`reset`](Self::reset).
    pub fn new() -> Self {
        Self::default()
    }

    /// Resizes to `n_blocks` slots and clears every value and epoch.
    /// Takes `&mut self` (no concurrent readers or writers), so like
    /// `AtomicF64Vec::reset_from` the modification histories restart
    /// fresh: after the executor hands the workspace to its threads, no
    /// reader can observe pre-reset epochs.
    pub fn reset(&mut self, n_blocks: usize) {
        if self.val_bits.len() == n_blocks {
            for v in self.val_bits.iter_mut() {
                v.set_exclusive(0);
            }
            for e in self.epoch.iter_mut() {
                e.set_exclusive(0);
            }
        } else {
            self.val_bits.clear();
            self.epoch.clear();
            self.val_bits.extend((0..n_blocks).map(|_| SyncU64::new(0)));
            self.epoch.extend((0..n_blocks).map(|_| SyncUsize::new(0)));
            // hb shadow: freshly allocated cells may reuse addresses of
            // cells dropped earlier in the same sanitizer session; clear
            // any stale shadow evidence keyed there.
            #[cfg(any(feature = "model", feature = "sanitize"))]
            for (v, e) in self.val_bits.iter().zip(&self.epoch) {
                hb::on_reset(hb::id_of(v));
                hb::on_reset(hb::id_of(e));
            }
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.val_bits.len()
    }

    /// Whether there are no slots at all.
    pub fn is_empty(&self) -> bool {
        self.val_bits.is_empty()
    }

    /// Publishes `sub_norm_sq` as block `b`'s latest residual sub-norm
    /// and stamps the slot's epoch. Called by the worker that just
    /// committed an update of `b` (the executor's per-block `in_flight`
    /// flag guarantees one publisher at a time per slot).
    #[inline]
    pub fn publish(&self, b: usize, sub_norm_sq: f64) {
        // hb shadow: the value store must be exclusive (one publisher
        // per slot under the block's in-flight flag) and is what the
        // Release bump below publishes.
        #[cfg(any(feature = "model", feature = "sanitize"))]
        hb::on_data_write(hb::id_of(&self.val_bits[b]), hb::Access::WriteExcl);
        // sync: Relaxed value store; the Release epoch bump below is the
        // publication edge that makes it visible to an Acquire reader
        self.val_bits[b].store(sub_norm_sq.to_bits(), Ordering::Relaxed);
        // sync: Release pairs with the monitor's Acquire epoch load in
        // `reduce` — a reader that sees this stamp sees the value store
        // sequenced above it (or a newer one)
        self.epoch[b].fetch_add(1, Ordering::Release);
    }

    /// Publishes since the last reset for block `b` (0 = cold slot).
    pub fn epoch_of(&self, b: usize) -> usize {
        // sync: Acquire pairs with `publish`'s Release stamp, same as the
        // reduce loop
        self.epoch[b].load(Ordering::Acquire)
    }

    /// Sums every slot into a fused estimate of `‖b − A x‖²`.
    ///
    /// Returns `None` while any slot is still cold (its block has never
    /// published since the reset): a partial sum would *undercount* the
    /// residual and could trigger spurious escalations — or worse,
    /// spurious confidence — so the monitor polls exactly until every
    /// block has reported once. One O(n_blocks) pass, no SpMV, no
    /// snapshot.
    pub fn reduce(&self) -> Option<f64> {
        let mut sum = 0.0f64;
        for (v, e) in self.val_bits.iter().zip(&self.epoch) {
            // sync: Acquire pairs with `publish`'s Release stamp so a
            // non-zero epoch implies the slot's value store is visible
            if e.load(Ordering::Acquire) == 0 {
                return None;
            }
            // hb shadow: a warm epoch claims the value is published —
            // this read must be covered by some recorded publish.
            #[cfg(any(feature = "model", feature = "sanitize"))]
            hb::on_data_read(hb::id_of(v), hb::Access::ReadPublished);
            // sync: Relaxed value read; visibility is given by the
            // Acquire epoch load above, and any torn-in newer value is an
            // equally valid recent estimate
            sum += f64::from_bits(v.load(Ordering::Relaxed));
        }
        Some(sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_slots_refuse_to_reduce() {
        let mut s = ResidualSlots::new();
        s.reset(3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.reduce(), None);
        s.publish(0, 1.0);
        s.publish(2, 4.0);
        assert_eq!(s.reduce(), None, "slot 1 is still cold");
        s.publish(1, 2.0);
        assert_eq!(s.reduce(), Some(7.0));
        assert_eq!(s.epoch_of(0), 1);
    }

    #[test]
    fn publish_overwrites_and_restamps() {
        let mut s = ResidualSlots::new();
        s.reset(1);
        s.publish(0, 9.0);
        s.publish(0, 0.25);
        assert_eq!(s.reduce(), Some(0.25));
        assert_eq!(s.epoch_of(0), 2);
    }

    #[test]
    fn reset_reuses_storage_and_clears() {
        let mut s = ResidualSlots::new();
        s.reset(2);
        s.publish(0, 1.0);
        s.publish(1, 1.0);
        s.reset(2);
        assert_eq!(s.reduce(), None, "reset must clear epochs");
        s.reset(5);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
    }
}
