//! Views over the shared iterate vector.
//!
//! The two executors store the iterate differently — a plain `Vec<f64>`
//! mutated in event order (DES), or a `Vec<AtomicU64>` hammered by real
//! threads — but the numerical kernels only ever *read* components.
//! [`XView`] gives them a single read interface over both.

use abr_sync::{Ordering, SyncU64};

#[cfg(any(feature = "model", feature = "sanitize"))]
use abr_sync::hb;

/// A shared vector of `f64` values stored as atomic bit patterns, so
/// multiple threads may read and write components without locks. All
/// accesses use `Relaxed` ordering: the asynchronous iteration tolerates
/// arbitrarily stale values by design (that is the entire point of the
/// method), so no happens-before edges are needed for correctness of the
/// algorithm — only the final join synchronises.
#[derive(Debug)]
pub struct AtomicF64Vec {
    data: Vec<SyncU64>,
    /// Sanitizer classification of writes: the live iterate's component
    /// stores are exclusive per block (the in-flight flag orders
    /// hand-offs), while halo stages are declared racy (successive epoch
    /// winners may copy concurrently by design).
    #[cfg(any(feature = "model", feature = "sanitize"))]
    racy_writes: bool,
}

/// Above this length, only every [`HB_SAMPLE_STRIDE`]-th component is
/// shadow-tracked (sampled instrumentation; million-row iterates would
/// otherwise swamp the detector). Small vectors are tracked fully so the
/// protocol tests see every component.
#[cfg(any(feature = "model", feature = "sanitize"))]
const HB_SAMPLE_FULL_BELOW: usize = 1024;
#[cfg(any(feature = "model", feature = "sanitize"))]
const HB_SAMPLE_STRIDE: usize = 64;

impl AtomicF64Vec {
    /// Creates from initial values.
    pub fn from_slice(values: &[f64]) -> Self {
        let v = AtomicF64Vec {
            data: values.iter().map(|&v| SyncU64::new(v.to_bits())).collect(),
            #[cfg(any(feature = "model", feature = "sanitize"))]
            racy_writes: false,
        };
        // hb shadow: a fresh allocation may reuse addresses of cells
        // dropped earlier in the same sanitizer session.
        #[cfg(any(feature = "model", feature = "sanitize"))]
        for c in &v.data {
            hb::on_reset(hb::id_of(c));
        }
        v
    }

    /// An empty vector; fill it with [`reset_from`](Self::reset_from).
    pub fn new() -> Self {
        AtomicF64Vec {
            data: Vec::new(),
            #[cfg(any(feature = "model", feature = "sanitize"))]
            racy_writes: false,
        }
    }

    /// Declares every write to this vector racy-by-design for the
    /// happens-before sanitizer (halo stages: concurrent copies for
    /// successive epochs are the documented DMA-like behaviour). Without
    /// this, sampled writes are checked as per-block-exclusive. No-op in
    /// builds without the `model`/`sanitize` features.
    pub fn mark_racy_writes(&mut self) {
        #[cfg(any(feature = "model", feature = "sanitize"))]
        {
            self.racy_writes = true;
        }
    }

    /// Whether component `i` is shadow-tracked (see sampling constants).
    #[cfg(any(feature = "model", feature = "sanitize"))]
    #[inline]
    fn hb_sampled(&self, i: usize) -> bool {
        self.data.len() < HB_SAMPLE_FULL_BELOW || i.is_multiple_of(HB_SAMPLE_STRIDE)
    }

    /// Reloads the vector with `values`, reusing the existing storage
    /// when the length matches. This is what lets a persistent-executor
    /// workspace be reused across solves without reallocating the shared
    /// iterate.
    ///
    /// **Epoch semantics** (in the `abr_sync` model's terms): the writes
    /// go through the exclusive borrow, so there is no atomic traffic
    /// and no concurrent reader — each component's modification history
    /// is *discarded* and restarts at the new value as a fresh epoch 0.
    /// After `reset_from` returns, every reader (once it can reach the
    /// vector at all, which requires an ordinary happens-after edge such
    /// as a thread spawn) observes the reset values exactly: no read can
    /// mix pre-reset epochs into a post-reset view, because the old
    /// history no longer exists.
    pub fn reset_from(&mut self, values: &[f64]) {
        if self.data.len() == values.len() {
            for (a, &v) in self.data.iter_mut().zip(values) {
                a.set_exclusive(v.to_bits());
            }
        } else {
            self.data.clear();
            self.data.extend(values.iter().map(|&v| SyncU64::new(v.to_bits())));
            // hb shadow: same address-reuse hygiene as `from_slice`.
            #[cfg(any(feature = "model", feature = "sanitize"))]
            for c in &self.data {
                hb::on_reset(hb::id_of(c));
            }
        }
    }

    /// Copies the current state into `out` without allocating. `out`
    /// must have the same length.
    ///
    /// **Epoch semantics** (in the `abr_sync` model's terms): each
    /// component is one `Relaxed` atomic load — individually untorn, but
    /// the copy as a whole is *not* an atomic snapshot. Component `i`
    /// may deliver any epoch from the caller's coherence floor up to the
    /// latest, independently per component, so the result can mix epochs
    /// across components exactly as [`snapshot`](Self::snapshot) does —
    /// the view an asynchronous observer (the paper's host-side monitor)
    /// gets by design. Call it after joining the writers (as the
    /// executors do for the final iterate) and the join edges force
    /// every component to its latest epoch, making the copy exact.
    pub fn copy_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.len(), "copy_into: length mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.get(i);
        }
    }

    /// Vector length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads component `i` (relaxed).
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        // sync: stale iterate reads are the algorithm's contract (paper
        // Eq. 3) — the asynchronous iteration converges under any
        // bounded staleness, so no edge is needed or wanted.
        f64::from_bits(self.data[i].load(Ordering::Relaxed))
    }

    /// Writes component `i` (relaxed).
    #[inline]
    pub fn set(&self, i: usize, v: f64) {
        // hb shadow (sampled): live-iterate stores are exclusive per
        // block — a second writer must happen-after via the in-flight
        // hand-off; stage stores are declared racy.
        #[cfg(any(feature = "model", feature = "sanitize"))]
        if self.hb_sampled(i) {
            hb::on_data_write(
                hb::id_of(&self.data[i]),
                if self.racy_writes { hb::Access::WriteRacy } else { hb::Access::WriteExcl },
            );
        }
        // sync: component publication needs only untorn atomicity; when
        // cross-block visibility order matters (block hand-off) the
        // in-flight flag's Release/Acquire pair provides it.
        self.data[i].store(v.to_bits(), Ordering::Relaxed);
    }

    /// Copies the current state into a `Vec` (each component read
    /// atomically; the vector as a whole may mix epochs, which is exactly
    /// what an asynchronous observer sees).
    pub fn snapshot(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }
}

impl Default for AtomicF64Vec {
    fn default() -> Self {
        Self::new()
    }
}

/// A device's staged view of the iterate: reads inside `[own_start,
/// own_end)` come from the live shared vector (the device's own memory),
/// reads outside come from a staged halo buffer that a
/// [`crate::halo::HaloExchange`] refreshes on its strategy's cadence.
/// This is how the AMC and DC schemes of §3.4 actually see remote data —
/// through a copy that lags the live iterate — where DK's kernels read
/// the remote memory directly.
#[derive(Clone, Copy)]
pub struct HaloView<'a> {
    live: &'a AtomicF64Vec,
    stage: &'a AtomicF64Vec,
    own_start: usize,
    own_end: usize,
}

impl<'a> HaloView<'a> {
    /// A view for the device owning rows `[own_start, own_end)`.
    pub fn new(
        live: &'a AtomicF64Vec,
        stage: &'a AtomicF64Vec,
        own_start: usize,
        own_end: usize,
    ) -> Self {
        assert_eq!(live.len(), stage.len(), "stage must mirror the live iterate");
        assert!(own_start <= own_end && own_end <= live.len(), "own range out of bounds");
        HaloView { live, stage, own_start, own_end }
    }

    /// Reads component `i`: live when owned, staged when remote.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        if i >= self.own_start && i < self.own_end {
            self.live.get(i)
        } else {
            self.stage.get(i)
        }
    }

    /// Vector length.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }
}

/// A read-only view of the iterate, over either storage.
#[derive(Clone, Copy)]
pub enum XView<'a> {
    /// Plain storage (DES executor).
    Plain(&'a [f64]),
    /// Atomic storage (threaded executor).
    Atomic(&'a AtomicF64Vec),
    /// Device-staged storage: own rows live, remote rows through a halo
    /// stage (AMC/DC multi-GPU realisation).
    Staged(HaloView<'a>),
}

impl XView<'_> {
    /// Reads component `i`.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        match self {
            XView::Plain(s) => s[i],
            XView::Atomic(a) => a.get(i),
            XView::Staged(h) => h.get(i),
        }
    }

    /// Vector length.
    pub fn len(&self) -> usize {
        match self {
            XView::Plain(s) => s.len(),
            XView::Atomic(a) => a.len(),
            XView::Staged(h) => h.len(),
        }
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_roundtrip() {
        let v = AtomicF64Vec::from_slice(&[1.5, -2.0, 0.0]);
        assert_eq!(v.get(0), 1.5);
        v.set(0, 7.25);
        assert_eq!(v.get(0), 7.25);
        assert_eq!(v.len(), 3);
        assert_eq!(v.snapshot(), vec![7.25, -2.0, 0.0]);
    }

    #[test]
    fn views_agree() {
        let plain = [3.0, 4.0];
        let atomic = AtomicF64Vec::from_slice(&plain);
        let vp = XView::Plain(&plain);
        let va = XView::Atomic(&atomic);
        for i in 0..2 {
            assert_eq!(vp.get(i), va.get(i));
        }
        assert_eq!(vp.len(), 2);
        assert!(!va.is_empty());
    }

    #[test]
    fn reset_reuses_storage_and_copy_into_round_trips() {
        let mut v = AtomicF64Vec::from_slice(&[1.0, 2.0, 3.0]);
        let before = v.data.as_ptr();
        v.reset_from(&[4.0, 5.0, 6.0]);
        assert_eq!(v.data.as_ptr(), before, "same-length reset must reuse storage");
        let mut out = [0.0; 3];
        v.copy_into(&mut out);
        assert_eq!(out, [4.0, 5.0, 6.0]);
        // different length rebuilds
        v.reset_from(&[9.0]);
        assert_eq!(v.len(), 1);
        assert_eq!(v.get(0), 9.0);
    }

    #[test]
    fn staged_view_routes_own_rows_live_and_remote_rows_staged() {
        let live = AtomicF64Vec::from_slice(&[10.0, 11.0, 12.0, 13.0]);
        let stage = AtomicF64Vec::from_slice(&[0.0, 1.0, 2.0, 3.0]);
        let h = HaloView::new(&live, &stage, 1, 3);
        let v = XView::Staged(h);
        assert_eq!(v.get(0), 0.0, "remote row reads the stage");
        assert_eq!(v.get(1), 11.0, "own row reads live");
        assert_eq!(v.get(2), 12.0);
        assert_eq!(v.get(3), 3.0);
        assert_eq!(v.len(), 4);
        // Live writes to own rows are visible immediately; live writes to
        // remote rows are not (until a refresh copies them over).
        live.set(2, 99.0);
        live.set(3, 99.0);
        assert_eq!(v.get(2), 99.0);
        assert_eq!(v.get(3), 3.0);
    }

    #[test]
    fn nan_and_negative_zero_preserved() {
        let v = AtomicF64Vec::from_slice(&[f64::NAN, -0.0]);
        assert!(v.get(0).is_nan());
        assert!(v.get(1).is_sign_negative());
    }

    #[test]
    fn concurrent_writes_do_not_tear() {
        // Writers store one of two full-width patterns; readers must only
        // ever observe one of them (atomicity), never a mix.
        let v = std::sync::Arc::new(AtomicF64Vec::from_slice(&[1.0]));
        let a = f64::from_bits(0xAAAA_AAAA_AAAA_AAAA);
        let b = f64::from_bits(0x5555_5555_5555_5555);
        let mut handles = Vec::new();
        for pattern in [a, b] {
            let v = v.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    v.set(0, pattern);
                }
            }));
        }
        let v2 = v.clone();
        let reader = std::thread::spawn(move || {
            for _ in 0..10_000 {
                let bits = v2.get(0).to_bits();
                assert!(
                    bits == a.to_bits() || bits == b.to_bits() || bits == 1.0f64.to_bits(),
                    "torn read: {bits:#x}"
                );
            }
        });
        for h in handles {
            h.join().unwrap();
        }
        reader.join().unwrap();
    }
}
