//! The benchmark suites, as library functions over `&mut Criterion`.
//!
//! Each `benches/*.rs` harness is a thin wrapper around the matching
//! module here, so the same bodies run two ways: under `cargo bench` for
//! real measurements, and under `cargo test` through `tests/bench_smoke.rs`
//! (with `CRITERION_SAMPLES=1`) so bench code cannot silently rot.

pub mod async_overhead;
pub mod block_plan;
pub mod executors;
pub mod experiments;
pub mod extensions;
pub mod krylov;
pub mod scale;
pub mod spmv;
pub mod sweeps;
