//! Ablation benches for the extension features: multigrid smoother
//! choice, RCM reordering, spectral estimation.

use abr_core::multigrid::Multigrid;
use abr_core::smoother::{AsyncSmoother, DampedJacobiSmoother, GaussSeidelSmoother};
use abr_core::SolveOptions;
use abr_sparse::gen::{laplacian_2d_5pt, trefethen};
use abr_sparse::reorder::reverse_cuthill_mckee;
use abr_sparse::IterationMatrix;
use criterion::{black_box, Criterion};

/// Multigrid V-cycles by smoother choice.
pub fn bench_multigrid_smoothers(c: &mut Criterion) {
    let a = laplacian_2d_5pt(24); // n = 576
    let n = a.n_rows();
    let b = a.mul_vec(&vec![1.0; n]).expect("square");
    let opts = SolveOptions::to_tolerance(1e-8, 60);
    let mut group = c.benchmark_group("multigrid_smoothers");
    group.sample_size(20);

    group.bench_function("damped_jacobi", |bch| {
        let mg = Multigrid::new(&a, DampedJacobiSmoother::default(), 16).expect("hierarchy");
        bch.iter(|| black_box(mg.solve(&b, &vec![0.0; n], &opts).expect("solve")))
    });
    group.bench_function("gauss_seidel", |bch| {
        let mg = Multigrid::new(&a, GaussSeidelSmoother, 16).expect("hierarchy");
        bch.iter(|| black_box(mg.solve(&b, &vec![0.0; n], &opts).expect("solve")))
    });
    group.bench_function("async_block", |bch| {
        let sm = AsyncSmoother { block_size: 48, ..Default::default() };
        let mg = Multigrid::new(&a, sm, 16).expect("hierarchy");
        bch.iter(|| black_box(mg.solve(&b, &vec![0.0; n], &opts).expect("solve")))
    });
    group.finish();
}

/// Reverse Cuthill-McKee on the Trefethen operator.
pub fn bench_rcm(c: &mut Criterion) {
    let a = trefethen(2000).expect("generator");
    c.bench_function("rcm_trefethen_2000", |b| {
        b.iter(|| black_box(reverse_cuthill_mckee(&a)))
    });
}

/// Power-iteration spectral radius of the Jacobi iteration matrix.
pub fn bench_spectra(c: &mut Criterion) {
    let a = laplacian_2d_5pt(40);
    c.bench_function("spectral_radius_1600", |b| {
        b.iter(|| {
            let it = IterationMatrix::new(&a).expect("diag");
            black_box(it.spectral_radius().expect("converges"))
        })
    });
}

/// The whole suite.
pub fn all(c: &mut Criterion) {
    bench_multigrid_smoothers(c);
    bench_rcm(c);
    bench_spectra(c);
}
