//! The Table 4 question asked of *this* library: what do extra local
//! sweeps cost per async-(k) global iteration, and how does block size
//! change the per-iteration cost?

use crate::{bench_partition, bench_system};
use abr_core::{AsyncBlockSolver, SolveOptions};
use criterion::{black_box, BenchmarkId, Criterion};

/// Cost of k in async-(k) at a fixed global-iteration budget.
pub fn bench_local_sweeps(c: &mut Criterion) {
    let (a, b, x0) = bench_system(60);
    let p = bench_partition(a.n_rows(), 120);
    let opts = SolveOptions::fixed_iterations(5);
    let mut group = c.benchmark_group("async_local_sweeps");
    for k in [1usize, 2, 3, 5, 9] {
        let solver = AsyncBlockSolver::async_k(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bch, _| {
            bch.iter(|| black_box(solver.solve(&a, &b, &x0, &p, &opts).expect("solve")))
        });
    }
    group.finish();
}

/// Cost of the block (subdomain) size at fixed k.
pub fn bench_block_sizes(c: &mut Criterion) {
    let (a, b, x0) = bench_system(60);
    let opts = SolveOptions::fixed_iterations(5);
    let solver = AsyncBlockSolver::async_k(5);
    let mut group = c.benchmark_group("async_block_size");
    for bs in [30usize, 120, 448, 1200] {
        let p = bench_partition(a.n_rows(), bs);
        group.bench_with_input(BenchmarkId::from_parameter(bs), &bs, |bch, _| {
            bch.iter(|| black_box(solver.solve(&a, &b, &x0, &p, &opts).expect("solve")))
        });
    }
    group.finish();
}

/// The whole suite.
pub fn all(c: &mut Criterion) {
    bench_local_sweeps(c);
    bench_block_sizes(c);
}
