//! Per-iteration wall cost of each relaxation method in this library
//! (the real-hardware analog of the paper's Table 5 comparison).

use crate::{bench_partition, bench_system};
use abr_core::{gauss_seidel, jacobi, sor, AsyncBlockSolver, SolveOptions};
use criterion::{black_box, BenchmarkId, Criterion};

fn one_iteration_opts() -> SolveOptions {
    SolveOptions { max_iters: 1, tol: 0.0, record_history: false, check_every: 1 }
}

/// One global iteration of every relaxation method.
pub fn bench_methods(c: &mut Criterion) {
    let (a, b, x0) = bench_system(60); // n = 3600
    let opts = one_iteration_opts();
    let mut group = c.benchmark_group("one_iteration");

    group.bench_function("jacobi", |bch| {
        bch.iter(|| black_box(jacobi(&a, &b, &x0, &opts).expect("solve")))
    });
    group.bench_function("gauss_seidel", |bch| {
        bch.iter(|| black_box(gauss_seidel(&a, &b, &x0, &opts).expect("solve")))
    });
    group.bench_function("sor_1.5", |bch| {
        bch.iter(|| black_box(sor(&a, &b, &x0, 1.5, &opts).expect("solve")))
    });
    for k in [1usize, 5] {
        let p = bench_partition(a.n_rows(), 120);
        let solver = AsyncBlockSolver::async_k(k);
        group.bench_with_input(BenchmarkId::new("async", k), &k, |bch, _| {
            bch.iter(|| black_box(solver.solve(&a, &b, &x0, &p, &opts).expect("solve")))
        });
    }
    group.finish();
}

/// Ten CG iterations on the same system.
pub fn bench_cg(c: &mut Criterion) {
    let (a, b, x0) = bench_system(60);
    c.bench_function("cg_10_iterations", |bch| {
        let opts = SolveOptions { max_iters: 10, tol: 0.0, record_history: false, check_every: 1 };
        bch.iter(|| {
            black_box(abr_core::conjugate_gradient(&a, &b, &x0, &opts).expect("solve"))
        })
    });
}

/// The whole suite.
pub fn all(c: &mut Criterion) {
    bench_methods(c);
    bench_cg(c);
}
