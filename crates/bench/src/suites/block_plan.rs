//! Plan-path vs span-sliced-path block updates: the speedup the
//! precompiled `BlockPlan` layer buys on the async-(k) hot loop.
//!
//! For each system (the 100x100 2D Laplacian of the acceptance target and
//! a random strictly diagonally dominant matrix) and each k in {1, 5},
//! one "iteration" updates **every** block once against a fixed iterate:
//! `plan` through `update_block_with` with a reused scratch (the executor
//! hot path), `reference` through the old allocating span-sliced
//! implementation. Set `CRITERION_JSON=BENCH_block_plan.json` to record
//! the numbers.

use crate::bench_partition;
use abr_core::async_block::AsyncJacobiKernel;
use abr_gpu::{BlockKernel, BlockScratch, XView};
use abr_sparse::gen::{laplacian_2d_5pt, random_diag_dominant};
use abr_sparse::{CsrMatrix, RowPartition};
use criterion::{black_box, BenchmarkId, Criterion, Throughput};

fn varied_iterate(n: usize) -> Vec<f64> {
    (0..n).map(|i| (i as f64 * 0.37).sin() + 0.1).collect()
}

fn sweep_all_blocks_plan(
    kernel: &AsyncJacobiKernel<'_>,
    x: &[f64],
    out: &mut [f64],
    scratch: &mut BlockScratch,
) {
    for b in 0..kernel.n_blocks() {
        let (s, e) = kernel.block_range(b);
        kernel.update_block_with(b, &XView::Plain(x), &mut out[..e - s], scratch);
    }
}

fn sweep_all_blocks_reference(kernel: &AsyncJacobiKernel<'_>, x: &[f64], out: &mut [f64]) {
    for b in 0..kernel.n_blocks() {
        let (s, e) = kernel.block_range(b);
        kernel.update_block_reference(b, &XView::Plain(x), &mut out[..e - s]);
    }
}

fn bench_one_system(c: &mut Criterion, label: &str, a: &CsrMatrix, p: &RowPartition) {
    let n = a.n_rows();
    let rhs = a.mul_vec(&vec![1.0; n]).expect("square");
    let x = varied_iterate(n);
    let widest = p.blocks().iter().map(|b| b.len()).max().unwrap();
    let mut out = vec![0.0; widest];

    let mut group = c.benchmark_group(format!("block_update/{label}"));
    group.throughput(Throughput::Elements(a.nnz() as u64));
    for k in [1usize, 5] {
        let kernel = AsyncJacobiKernel::new(a, &rhs, p, k, 1.0).expect("diag dominant");
        let mut scratch = BlockScratch::new();
        group.bench_with_input(BenchmarkId::new("plan", k), &k, |bch, _| {
            bch.iter(|| {
                sweep_all_blocks_plan(&kernel, black_box(&x), &mut out, &mut scratch);
                black_box(&out);
            })
        });
        group.bench_with_input(BenchmarkId::new("reference", k), &k, |bch, _| {
            bch.iter(|| {
                sweep_all_blocks_reference(&kernel, black_box(&x), &mut out);
                black_box(&out);
            })
        });
    }
    group.finish();
}

/// The acceptance-criterion system: 100x100 grid, n = 10_000.
pub fn bench_laplacian(c: &mut Criterion) {
    let a = laplacian_2d_5pt(100);
    let p = bench_partition(a.n_rows(), 100);
    bench_one_system(c, "laplacian_100x100", &a, &p);
}

/// A random strictly diagonally dominant system.
pub fn bench_random(c: &mut Criterion) {
    let a = random_diag_dominant(10_000, 6, 1.4, 42);
    let p = bench_partition(a.n_rows(), 100);
    bench_one_system(c, "random_dd_10k", &a, &p);
}

/// The whole suite.
pub fn all(c: &mut Criterion) {
    bench_laplacian(c);
    bench_random(c);
}
