//! Sweep-tier shootout on the async-(k) hot loop: the span-sliced
//! `reference`, the packed-CSR `csr` tier, the scalar-ELL `plan` tier
//! (PR 1's headline path, kept under its old name so the JSON stays
//! comparable), the four-lane `simd` tier, and the matrix-free `stencil`
//! tier where a verified descriptor exists.
//!
//! For each system and each k in {1, 5}, one "iteration" updates
//! **every** block once against a fixed iterate through
//! `update_block_with` with a reused scratch (the executor hot path);
//! `reference` goes through the old allocating span-sliced
//! implementation. Tiers are pinned per kernel via
//! [`AsyncJacobiKernel::force_tier`], so the same plan data is measured
//! under every loop shape.
//!
//! Every JSON line (set `CRITERION_JSON=BENCH_block_plan.json`) carries
//! `n`, `nnz`, and a modelled roofline `bytes_per_update` — the memory
//! traffic one component update costs under that tier, see
//! [`bytes_per_update`]. `plan` and `simd` move the same bytes; the
//! speedup between them is pure data-level parallelism, while `stencil`
//! shows up as an actual traffic drop (no stored operator).

use crate::bench_partition;
use abr_core::async_block::{AsyncJacobiKernel, LocalSweep};
use abr_gpu::{BlockKernel, BlockScratch, XView};
use abr_sparse::gen::{laplacian_2d_5pt_stencil, random_diag_dominant};
use abr_sparse::stencil::StencilDescriptor;
use abr_sparse::{CsrMatrix, RowPartition, SweepTier};
use criterion::{black_box, BenchmarkId, Criterion, Throughput};

fn varied_iterate(n: usize) -> Vec<f64> {
    (0..n).map(|i| (i as f64 * 0.37).sin() + 0.1).collect()
}

fn sweep_all_blocks_plan(
    kernel: &AsyncJacobiKernel<'_>,
    x: &[f64],
    out: &mut [f64],
    scratch: &mut BlockScratch,
) {
    for b in 0..kernel.n_blocks() {
        let (s, e) = kernel.block_range(b);
        kernel.update_block_with(b, &XView::Plain(x), &mut out[..e - s], scratch);
    }
}

fn sweep_all_blocks_reference(kernel: &AsyncJacobiKernel<'_>, x: &[f64], out: &mut [f64]) {
    for b in 0..kernel.n_blocks() {
        let (s, e) = kernel.block_range(b);
        kernel.update_block_reference(b, &XView::Plain(x), &mut out[..e - s]);
    }
}

/// Modelled memory traffic per component update (bytes), the roofline
/// denominator recorded next to each timing.
///
/// Per full pass over the blocks, every tier pays the same fixed costs:
/// iterate snapshot (`n * 16` read+write), halo freeze (`nnz_halo * 24`:
/// 8-byte value + 8-byte column + 8-byte gathered iterate, plus `n * 16`
/// rhs read + frozen write), and the result copy-out (`n * 16`). Each of
/// the `k` local sweeps then adds per-row overhead (`n * 24`: frozen +
/// pre-inverted diagonal + next write) plus the tier's per-entry traffic:
///
/// * `reference` — full CSR rows: 24 B/entry (8 value + 8 `usize` column
///   + 8 iterate) over **all** `nnz`, diagonal included (it re-skips it);
/// * `csr` — packed local off-diagonals: 20 B/entry (8 + 4 `u32` + 8);
/// * `plan`/`simd` — ELL slots **including padding**: 20 B/slot; the two
///   tiers move identical bytes, by construction;
/// * `stencil` — 8 B/tap (the contiguous iterate load; coefficients and
///   offsets live in registers, zero index loads).
fn bytes_per_update(kernel: &AsyncJacobiKernel<'_>, variant: SweepTier, reference: bool, k: usize) -> f64 {
    let plan = kernel.plan();
    let n = plan.n() as f64;
    let a_nnz: f64 = (0..plan.n_blocks()).map(|b| plan.block_nnz(b)).sum();
    let fixed = n * 16.0 + plan.nnz_halo() as f64 * 24.0 + n * 16.0 + n * 16.0;
    let local_offdiag = (plan.nnz_local() - plan.n()) as f64;
    let per_sweep = if reference {
        a_nnz * 24.0 + n * 24.0
    } else {
        let entries = match variant {
            SweepTier::Csr => local_offdiag * 20.0,
            SweepTier::Ell | SweepTier::EllSimd => {
                let slots: usize = (0..plan.n_blocks())
                    .filter_map(|b| plan.ell(b))
                    .map(|e| e.rows() * e.width())
                    .sum();
                slots as f64 * 20.0
            }
            SweepTier::Stencil => {
                let taps: usize = (0..plan.n_blocks())
                    .filter_map(|b| plan.stencil_block(b))
                    .map(|sb| sb.nnz_local_offdiag())
                    .sum();
                taps as f64 * 8.0
            }
        };
        entries + n * 24.0
    };
    (fixed + k as f64 * per_sweep) / n
}

fn bench_one_system(
    c: &mut Criterion,
    label: &str,
    a: &CsrMatrix,
    p: &RowPartition,
    descriptor: Option<&StencilDescriptor>,
) {
    let n = a.n_rows();
    let rhs = a.mul_vec(&vec![1.0; n]).expect("square");
    let x = varied_iterate(n);
    let widest = p.blocks().iter().map(|b| b.len()).max().unwrap();
    let mut out = vec![0.0; widest];

    let mut group = c.benchmark_group(format!("block_update/{label}"));
    group.throughput(Throughput::Elements(a.nnz() as u64));
    for k in [1usize, 5] {
        let kernel = AsyncJacobiKernel::new(a, &rhs, p, k, 1.0).expect("diag dominant");
        let stencil_kernel = descriptor.map(|d| {
            AsyncJacobiKernel::with_sweep_and_stencil(
                a,
                &rhs,
                p,
                k,
                1.0,
                LocalSweep::Jacobi,
                Some(d),
            )
            .expect("verified stencil")
        });
        let meta = |tier: SweepTier, reference: bool| {
            let krn = if tier == SweepTier::Stencil {
                stencil_kernel.as_ref().expect("stencil variant needs a descriptor")
            } else {
                &kernel
            };
            [
                ("n", n as f64),
                ("nnz", a.nnz() as f64),
                ("k", k as f64),
                ("bytes_per_update", bytes_per_update(krn, tier, reference, k)),
            ]
        };

        group.meta(&meta(SweepTier::Csr, true));
        group.bench_with_input(BenchmarkId::new("reference", k), &k, |bch, _| {
            bch.iter(|| {
                sweep_all_blocks_reference(&kernel, black_box(&x), &mut out);
                black_box(&out);
            })
        });
        // pinned tiers over identical plan data; `plan` = PR 1's scalar ELL
        for (name, tier) in
            [("csr", SweepTier::Csr), ("plan", SweepTier::Ell), ("simd", SweepTier::EllSimd)]
        {
            let mut pinned = AsyncJacobiKernel::new(a, &rhs, p, k, 1.0).expect("diag dominant");
            pinned.force_tier(Some(tier));
            let mut scratch = BlockScratch::new();
            group.meta(&meta(tier, false));
            group.bench_with_input(BenchmarkId::new(name, k), &k, |bch, _| {
                bch.iter(|| {
                    sweep_all_blocks_plan(&pinned, black_box(&x), &mut out, &mut scratch);
                    black_box(&out);
                })
            });
        }
        if let Some(sk) = &stencil_kernel {
            let mut scratch = BlockScratch::new();
            group.meta(&meta(SweepTier::Stencil, false));
            group.bench_with_input(BenchmarkId::new("stencil", k), &k, |bch, _| {
                bch.iter(|| {
                    sweep_all_blocks_plan(sk, black_box(&x), &mut out, &mut scratch);
                    black_box(&out);
                })
            });
        }
    }
    group.finish();
}

/// The acceptance-criterion system: 100x100 grid, n = 10_000, with the
/// verified 5-point descriptor enabling the `stencil` variant.
pub fn bench_laplacian(c: &mut Criterion) {
    let (a, d) = laplacian_2d_5pt_stencil(100);
    let p = bench_partition(a.n_rows(), 100);
    bench_one_system(c, "laplacian_100x100", &a, &p, Some(&d));
}

/// A random strictly diagonally dominant system — no stencil structure,
/// so it exercises exactly the non-stencil tiers.
pub fn bench_random(c: &mut Criterion) {
    let a = random_diag_dominant(10_000, 6, 1.4, 42);
    let p = bench_partition(a.n_rows(), 100);
    bench_one_system(c, "random_dd_10k", &a, &p, None);
}

/// The whole suite.
pub fn all(c: &mut Criterion) {
    bench_laplacian(c);
    bench_random(c);
}
