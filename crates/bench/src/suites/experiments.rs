//! One bench per paper artifact: each regenerates the corresponding
//! table/figure at reduced scale, so `cargo bench` exercises the complete
//! reproduction pipeline end to end and tracks its cost over time.

use abr_exp::experiments::{
    ablation, convergence_figs, fault_exp, fig11, fig9, nondet, table1, timing_tables,
};
use abr_exp::{ExpOptions, Scale};
use criterion::{black_box, Criterion};

fn small_opts() -> ExpOptions {
    ExpOptions { scale: Scale::Small, runs: 4, seed: 11 }
}

/// Every reduced-scale paper artifact, one bench each.
pub fn bench_artifacts(c: &mut Criterion) {
    let opts = small_opts();
    let mut group = c.benchmark_group("repro_small");
    group.sample_size(10);

    group.bench_function("table1", |b| {
        b.iter(|| black_box(table1::run(&opts).expect("table1")))
    });
    group.bench_function("tables2_3_fig5_nondet", |b| {
        b.iter(|| black_box(nondet::run(&opts).expect("nondet")))
    });
    group.bench_function("fig6_fig7_convergence", |b| {
        b.iter(|| black_box(convergence_figs::run(&opts).expect("convergence")))
    });
    group.bench_function("table4_local_sweeps", |b| {
        b.iter(|| black_box(timing_tables::table4(&opts).expect("table4")))
    });
    group.bench_function("table5_avg_timings", |b| {
        b.iter(|| black_box(timing_tables::table5(&opts).expect("table5")))
    });
    group.bench_function("fig8_avg_per_iteration", |b| {
        b.iter(|| black_box(timing_tables::fig8(&opts).expect("fig8")))
    });
    group.bench_function("fig9_residual_vs_time", |b| {
        b.iter(|| black_box(fig9::run(&opts).expect("fig9")))
    });
    group.bench_function("fig10_table6_faults", |b| {
        b.iter(|| black_box(fault_exp::run(&opts).expect("fault")))
    });
    group.bench_function("fig11_multigpu", |b| {
        b.iter(|| black_box(fig11::run(&opts).expect("fig11")))
    });
    group.bench_function("ablations", |b| {
        b.iter(|| black_box(ablation::run(&opts).expect("ablation")))
    });
    group.finish();
}

/// The whole suite.
pub fn all(c: &mut Criterion) {
    bench_artifacts(c);
}
