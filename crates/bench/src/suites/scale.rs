//! The multi-million-row scaling suite: setup → solve → converge on the
//! paper's finite-volume family at `n` in the millions, on the
//! persistent-worker executor.
//!
//! The system is the screened 9-point FEM/FV Poisson operator
//! (`fv_stencil(m, sigma)`, `n = m^2`): with `sigma = 1.0` its Jacobi
//! spectral radius is `(8/3) / (8/3 + 1) ≈ 0.73`, so async-(5) reaches
//! `1e-8` in tens of global rounds — a *solvable* million-row problem,
//! unlike the pure Laplacian whose `rho -> 1` puts the tolerance out of
//! any benchmark's reach. Four groups:
//!
//! 1. `scale_solve_1e-8` — the worker-count curve (fused monitoring) plus
//!    the fused-vs-exact monitor comparison at 8 and 16 workers: the
//!    acceptance claim that worker-side residual fusion beats the
//!    exact-SpMV monitor baseline wall-clock at scale.
//! 2. `scale_shards` — the shard-count curve at a fixed worker count.
//! 3. `scale_poll_cost` — one monitor poll, priced directly: the fused
//!    O(n_blocks) slot reduce at a fixed 256 blocks against the exact
//!    O(nnz) residual, at two grid sizes. The fused cost is flat while
//!    nnz quadruples — the "monitor poll cost independent of nnz" claim.
//! 4. `scale_compile` — plan compilation, sequential vs parallel.
//!
//! `ABR_SCALE_GRID` overrides the grid edge `m` (default 1024, i.e.
//! `n = 1_048_576`); CI smoke sets it small. Set
//! `CRITERION_JSON=BENCH_scale.json` to record the numbers.

use abr_core::async_block::AsyncJacobiKernel;
use abr_core::convergence::relative_residual_with;
use abr_core::{LocalSweep, ResidualMonitor};
use abr_gpu::kernel::AllowAll;
use abr_gpu::schedule::RoundRobin;
use abr_gpu::{
    PersistentExecutor, PersistentOptions, PersistentWorkspace, ResidualSlots, ShardPlan,
};
use abr_sparse::gen::fv_stencil;
use abr_sparse::{BlockPlan, CsrMatrix, ParContext, RowPartition, StencilDescriptor};
use criterion::{black_box, BenchmarkId, Criterion};

const SIGMA: f64 = 1.0;
const TOL: f64 = 1e-8;
const MAX_ROUNDS: usize = 50_000;
/// Fixed block count across grid sizes, so the fused monitor's per-poll
/// work is identical at every size in the poll-cost group.
const N_BLOCKS: usize = 256;

/// Grid edge `m` (`n = m^2`), reduced via `ABR_SCALE_GRID` for smoke runs.
pub fn grid_m() -> usize {
    std::env::var("ABR_SCALE_GRID")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1024)
        .max(8)
}

fn system(m: usize) -> (CsrMatrix, StencilDescriptor, Vec<f64>, RowPartition) {
    let (a, d) = fv_stencil(m, SIGMA).expect("fv stencil");
    let n = a.n_rows();
    let rhs = a.mul_vec(&vec![1.0; n]).expect("square");
    let block = (n / N_BLOCKS).max(1);
    let p = RowPartition::uniform(n, block).expect("partition");
    (a, d, rhs, p)
}

/// One persistent solve to `TOL`, fused or exact-monitored; panics if the
/// tolerance is not reached, so a silently diverging bench cannot record
/// a fantasy timing.
#[allow(clippy::too_many_arguments)]
fn solve_once(
    a: &CsrMatrix,
    rhs: &[f64],
    kernel: &AsyncJacobiKernel<'_>,
    workers: usize,
    fused: bool,
    ws: &mut PersistentWorkspace,
    x: &mut Vec<f64>,
    shards: Option<&ShardPlan>,
) -> usize {
    let exec = PersistentExecutor::new(PersistentOptions {
        n_workers: workers,
        fuse_residuals: fused,
        ..PersistentOptions::default()
    });
    let mut monitor = ResidualMonitor::new(a, rhs, TOL, 1);
    if !fused {
        monitor = monitor.exact_only();
    }
    x.clear();
    x.resize(a.n_rows(), 0.0);
    let mut schedule = RoundRobin;
    let (_, report) = exec.run_sharded(
        kernel,
        x,
        MAX_ROUNDS,
        &mut schedule,
        &AllowAll,
        &mut monitor,
        ws,
        shards,
        None,
    );
    let stopped = report.stopped_at.expect("scale solve must converge within the budget");
    let mut rbuf = monitor.into_scratch();
    let rr = relative_residual_with(&mut rbuf, a, rhs, x);
    assert!(rr <= TOL, "stopped at {stopped} with residual {rr} above {TOL}");
    stopped
}

/// Worker-count scaling plus the fused-vs-exact monitor comparison.
pub fn bench_solve_scaling(c: &mut Criterion) {
    let m = grid_m();
    let (a, d, rhs, p) = system(m);
    let n = a.n_rows() as f64;
    let nnz = a.nnz() as f64;
    let kernel =
        AsyncJacobiKernel::with_sweep_and_stencil(&a, &rhs, &p, 5, 1.0, LocalSweep::Jacobi, Some(&d))
            .expect("kernel");
    let mut ws = PersistentWorkspace::new();
    let mut x = Vec::new();
    let mut group = c.benchmark_group("scale_solve_1e-8");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8, 16] {
        group.meta(&[("n", n), ("nnz", nnz), ("workers", workers as f64)]);
        group.bench_with_input(BenchmarkId::new("fused", workers), &workers, |bch, &w| {
            bch.iter(|| {
                black_box(solve_once(&a, &rhs, &kernel, w, true, &mut ws, &mut x, None))
            })
        });
    }
    // The exact-SpMV monitor baseline at the headline worker counts: the
    // pre-fusion configuration (every poll snapshots and runs an O(nnz)
    // residual), which fusion must beat wall-clock.
    for workers in [8usize, 16] {
        group.meta(&[("n", n), ("nnz", nnz), ("workers", workers as f64)]);
        group.bench_with_input(BenchmarkId::new("exact_monitor", workers), &workers, |bch, &w| {
            bch.iter(|| {
                black_box(solve_once(&a, &rhs, &kernel, w, false, &mut ws, &mut x, None))
            })
        });
    }
    group.finish();
}

/// Shard-count scaling at a fixed worker count (even block splits).
pub fn bench_shard_scaling(c: &mut Criterion) {
    let m = grid_m();
    let (a, d, rhs, p) = system(m);
    let n = a.n_rows() as f64;
    let kernel =
        AsyncJacobiKernel::with_sweep_and_stencil(&a, &rhs, &p, 5, 1.0, LocalSweep::Jacobi, Some(&d))
            .expect("kernel");
    let nb = p.blocks().len();
    let mut ws = PersistentWorkspace::new();
    let mut x = Vec::new();
    let mut group = c.benchmark_group("scale_shards");
    group.sample_size(10);
    for shards in [2usize, 4, 8] {
        let shards = shards.min(nb);
        let offsets: Vec<usize> = (0..=shards).map(|s| s * nb / shards).collect();
        let plan = ShardPlan::from_offsets(&offsets);
        group.meta(&[("n", n), ("shards", shards as f64), ("workers", 8.0)]);
        group.bench_with_input(BenchmarkId::new("even", shards), &shards, |bch, _| {
            bch.iter(|| {
                black_box(solve_once(&a, &rhs, &kernel, 8, true, &mut ws, &mut x, Some(&plan)))
            })
        });
    }
    group.finish();
}

/// One monitor poll, priced directly at two grid sizes with the block
/// count pinned: the fused reduce touches `N_BLOCKS` slots either way
/// (flat cost), the exact residual touches every nonzero (quadrupling
/// cost) — nnz-independence of the fused poll, measured.
pub fn bench_poll_cost(c: &mut Criterion) {
    let m = grid_m();
    let mut group = c.benchmark_group("scale_poll_cost");
    group.sample_size(40);
    for edge in [m / 2, m] {
        let (a, _, rhs, _) = system(edge);
        let n = a.n_rows();
        let x = vec![0.5; n];
        let mut slots = ResidualSlots::new();
        slots.reset(N_BLOCKS);
        for b in 0..N_BLOCKS {
            slots.publish(b, 1e-4 * (b + 1) as f64);
        }
        let mut rbuf = Vec::new();
        group.meta(&[("n", n as f64), ("nnz", a.nnz() as f64), ("n_blocks", N_BLOCKS as f64)]);
        group.bench_with_input(BenchmarkId::new("fused_reduce", n), &n, |bch, _| {
            bch.iter(|| black_box(slots.reduce().expect("all published")))
        });
        group.bench_with_input(BenchmarkId::new("exact_residual", n), &n, |bch, _| {
            bch.iter(|| black_box(relative_residual_with(&mut rbuf, &a, &rhs, &x)))
        });
    }
    group.finish();
}

/// Plan compilation: sequential vs parallel fan-out (streaming-ingestion
/// sibling — the other half of the setup pipeline).
pub fn bench_compile(c: &mut Criterion) {
    let m = grid_m();
    let (a, d, _, p) = system(m);
    let threads = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1).min(8);
    let mut group = c.benchmark_group("scale_compile");
    group.sample_size(10);
    group.meta(&[("n", a.n_rows() as f64), ("nnz", a.nnz() as f64), ("threads", 1.0)]);
    group.bench_function("sequential", |bch| {
        bch.iter(|| {
            black_box(
                BlockPlan::compile_with_ctx(&a, &p, Some(&d), ParContext::new(1)).expect("compile"),
            )
        })
    });
    group.meta(&[("n", a.n_rows() as f64), ("nnz", a.nnz() as f64), ("threads", threads as f64)]);
    group.bench_function("parallel", |bch| {
        bch.iter(|| {
            black_box(
                BlockPlan::compile_with_ctx(&a, &p, Some(&d), ParContext::new(threads))
                    .expect("compile"),
            )
        })
    });
    group.finish();
}

/// The whole suite.
pub fn all(c: &mut Criterion) {
    bench_solve_scaling(c);
    bench_shard_scaling(c);
    bench_poll_cost(c);
    bench_compile(c);
}
