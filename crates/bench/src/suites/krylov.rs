//! Krylov solvers and preconditioners: wall cost of a fixed-tolerance
//! solve on the Poisson model problem, by method and preconditioner.

use crate::bench_system;
use abr_core::bicgstab::bicgstab;
use abr_core::chebyshev::auto_chebyshev;
use abr_core::ilu::Ilu0;
use abr_core::pcg::{pcg, BlockJacobiPreconditioner, IdentityPreconditioner, JacobiPreconditioner};
use abr_core::SolveOptions;
use abr_sparse::gen::convection_diffusion_2d;
use abr_sparse::RowPartition;
use criterion::{black_box, Criterion};

/// PCG by preconditioner.
pub fn bench_pcg_preconditioners(c: &mut Criterion) {
    let (a, b, x0) = bench_system(40); // n = 1600
    let opts = SolveOptions::to_tolerance(1e-8, 5_000);
    let mut group = c.benchmark_group("pcg_to_1e-8");
    group.sample_size(20);
    group.bench_function("identity", |bch| {
        bch.iter(|| black_box(pcg(&a, &b, &x0, &IdentityPreconditioner, &opts).expect("solve")))
    });
    group.bench_function("jacobi", |bch| {
        let p = JacobiPreconditioner::new(&a).expect("SPD");
        bch.iter(|| black_box(pcg(&a, &b, &x0, &p, &opts).expect("solve")))
    });
    group.bench_function("block_jacobi_64", |bch| {
        let part = RowPartition::uniform(a.n_rows(), 64).expect("partition");
        let p = BlockJacobiPreconditioner::new(&a, &part).expect("blocks");
        bch.iter(|| black_box(pcg(&a, &b, &x0, &p, &opts).expect("solve")))
    });
    group.bench_function("ilu0", |bch| {
        let p = Ilu0::new(&a).expect("factorise");
        bch.iter(|| black_box(pcg(&a, &b, &x0, &p, &opts).expect("solve")))
    });
    group.finish();
}

/// ILU(0) factorisation alone.
pub fn bench_ilu_factorisation(c: &mut Criterion) {
    let (a, _, _) = bench_system(40);
    c.bench_function("ilu0_factorise_1600", |bch| {
        bch.iter(|| black_box(Ilu0::new(&a).expect("factorise")))
    });
}

/// BiCGSTAB on a nonsymmetric convection-diffusion system.
pub fn bench_nonsymmetric(c: &mut Criterion) {
    let a = convection_diffusion_2d(32, 0.05, 1.0, 0.3);
    let n = a.n_rows();
    let b = a.mul_vec(&vec![1.0; n]).expect("square");
    let x0 = vec![0.0; n];
    let opts = SolveOptions::to_tolerance(1e-8, 5_000);
    let mut group = c.benchmark_group("nonsymmetric_to_1e-8");
    group.sample_size(20);
    group.bench_function("bicgstab_plain", |bch| {
        bch.iter(|| {
            black_box(bicgstab(&a, &b, &x0, &IdentityPreconditioner, &opts).expect("solve"))
        })
    });
    group.bench_function("bicgstab_ilu0", |bch| {
        let p = Ilu0::new(&a).expect("factorise");
        bch.iter(|| black_box(bicgstab(&a, &b, &x0, &p, &opts).expect("solve")))
    });
    group.finish();
}

/// Chebyshev semi-iteration with automatic spectral bounds.
pub fn bench_chebyshev(c: &mut Criterion) {
    let (a, b, x0) = bench_system(40);
    let opts = SolveOptions::to_tolerance(1e-8, 20_000);
    c.bench_function("chebyshev_to_1e-8", |bch| {
        bch.iter(|| black_box(auto_chebyshev(&a, &b, &x0, &opts).expect("solve")))
    });
}

/// The whole suite.
pub fn all(c: &mut Criterion) {
    bench_pcg_preconditioners(c);
    bench_ilu_factorisation(c);
    bench_nonsymmetric(c);
    bench_chebyshev(c);
}
