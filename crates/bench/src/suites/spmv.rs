//! Sparse matrix–vector product throughput across the paper's matrix
//! structures.

use abr_sparse::gen::{chem_ztz, laplacian_2d_9pt, trefethen};
use abr_sparse::EllMatrix;
use criterion::{black_box, BenchmarkId, Criterion, Throughput};

/// CSR SpMV over the fv-like 9-point, Trefethen, and Chem97ZtZ structures.
pub fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv");
    let cases = vec![
        ("fv-like-9pt", laplacian_2d_9pt(60)),
        ("trefethen", trefethen(2000).expect("generator")),
        ("chem-ztz", chem_ztz(2541, 0.7889).expect("generator")),
    ];
    for (name, a) in cases {
        let x: Vec<f64> = (0..a.n_cols()).map(|i| 1.0 + (i as f64 * 0.01).sin()).collect();
        let mut y = vec![0.0; a.n_rows()];
        group.throughput(Throughput::Elements(a.nnz() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &a, |b, a| {
            b.iter(|| {
                a.spmv(black_box(&x), &mut y).expect("dims");
                black_box(&y);
            })
        });
    }
    group.finish();
}

/// CSR versus ELL storage on the same operator.
pub fn bench_ell_spmv(c: &mut Criterion) {
    let a = laplacian_2d_9pt(60);
    let e = EllMatrix::from_csr(&a);
    let x: Vec<f64> = (0..a.n_cols()).map(|i| 1.0 + (i as f64 * 0.01).sin()).collect();
    let mut y = vec![0.0; a.n_rows()];
    let mut group = c.benchmark_group("spmv_format");
    group.throughput(Throughput::Elements(a.nnz() as u64));
    group.bench_function("csr", |b| {
        b.iter(|| {
            a.spmv(black_box(&x), &mut y).expect("dims");
            black_box(&y);
        })
    });
    group.bench_function("ell", |b| {
        b.iter(|| {
            e.spmv(black_box(&x), &mut y).expect("dims");
            black_box(&y);
        })
    });
    group.finish();
}

/// Thread scaling of the chunked parallel SpMV.
pub fn bench_par_spmv(c: &mut Criterion) {
    let a = trefethen(20000).expect("generator");
    let x: Vec<f64> = (0..a.n_cols()).map(|i| 1.0 + (i as f64 * 0.001).sin()).collect();
    let mut y = vec![0.0; a.n_rows()];
    let mut group = c.benchmark_group("spmv_threads_trefethen_20000");
    group.sample_size(20);
    for threads in [1usize, 2, 4] {
        let ctx = abr_sparse::par::ParContext::new(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| {
                ctx.spmv(&a, black_box(&x), &mut y).expect("dims");
                black_box(&y);
            })
        });
    }
    group.finish();
}

/// Sparse matrix–matrix product (Laplacian squared).
pub fn bench_spgemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spgemm");
    for m in [20usize, 40] {
        let l = abr_sparse::gen::laplacian_2d_5pt(m);
        group.bench_with_input(BenchmarkId::new("laplacian_squared", m), &l, |b, l| {
            b.iter(|| black_box(l.spgemm(l).expect("square")))
        });
    }
    group.finish();
}

/// The whole suite.
pub fn all(c: &mut Criterion) {
    bench_spmv(c);
    bench_ell_spmv(c);
    bench_par_spmv(c);
    bench_spgemm(c);
}
