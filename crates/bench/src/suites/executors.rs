//! Executor throughput: the persistent-worker fabric against the legacy
//! chunked-respawn driver, plus the discrete-event simulator for context.
//!
//! The headline comparison is **solve-to-tolerance** with the default
//! `check_every = 10`: the chunked path pays a full thread-scope respawn,
//! two whole-vector copies, and a synchronous host residual every ten
//! global iterations, while the persistent path spawns its workers once
//! and checks convergence concurrently. The system is deliberately small
//! (n = 256, 16 blocks) so dispatch overhead dominates per-round compute
//! — the regime the paper targets, where kernel-launch/host-sync cost is
//! what block-asynchronous execution amortises away. Chunked respawn cost
//! grows with the worker count (one spawn+join per worker per chunk);
//! the persistent fabric pays it once per solve. The persistent path may
//! run extra global iterations past the crossing point before the
//! concurrent monitor lands its check — the paper's async tradeoff:
//! more iterations, less wall time. Set
//! `CRITERION_JSON=BENCH_executors.json` to record the numbers.

use crate::{bench_partition, bench_system};
use abr_core::{AsyncBlockSolver, ExecutorKind, SolveOptions};
use abr_gpu::{SimOptions, ThreadedOptions};
use criterion::{black_box, BenchmarkId, Criterion};

/// Solve-to-tolerance: chunked-respawn vs persistent at equal worker
/// counts — the acceptance comparison of the persistent executor.
pub fn bench_solve_to_tolerance(c: &mut Criterion) {
    let (a, b, x0) = bench_system(16); // n = 256
    let p = bench_partition(a.n_rows(), 16);
    let opts = SolveOptions {
        max_iters: 20_000,
        tol: 1e-8,
        record_history: false,
        check_every: 10,
    };
    let mut group = c.benchmark_group("executors_solve_1e-8");
    group.sample_size(10);
    for workers in [8usize, 16] {
        let t_opts = ThreadedOptions { n_workers: workers, snapshot_rounds: false };
        let chunked = AsyncBlockSolver {
            executor: ExecutorKind::ThreadedChunked(t_opts.clone()),
            ..AsyncBlockSolver::async_k(5)
        };
        let persistent = AsyncBlockSolver {
            executor: ExecutorKind::Threaded(t_opts),
            ..AsyncBlockSolver::async_k(5)
        };
        group.bench_with_input(
            BenchmarkId::new("chunked_respawn", workers),
            &workers,
            |bch, _| {
                bch.iter(|| black_box(chunked.solve(&a, &b, &x0, &p, &opts).expect("solve")))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("persistent", workers),
            &workers,
            |bch, _| {
                bch.iter(|| black_box(persistent.solve(&a, &b, &x0, &p, &opts).expect("solve")))
            },
        );
    }
    group.finish();
}

/// Fixed global-iteration budget across all three fabrics (the original
/// throughput comparison, kept for continuity).
pub fn bench_fixed_budget(c: &mut Criterion) {
    let (a, b, x0) = bench_system(60);
    let p = bench_partition(a.n_rows(), 120);
    let opts = SolveOptions::fixed_iterations(10);
    let mut group = c.benchmark_group("executors_10_globals");
    group.sample_size(20);

    let sim = AsyncBlockSolver {
        executor: ExecutorKind::Sim(SimOptions::default()),
        ..AsyncBlockSolver::async_k(5)
    };
    group.bench_function("discrete_event", |bch| {
        bch.iter(|| black_box(sim.solve(&a, &b, &x0, &p, &opts).expect("solve")))
    });

    for workers in [2usize, 4, 8] {
        let thr = AsyncBlockSolver {
            executor: ExecutorKind::Threaded(ThreadedOptions {
                n_workers: workers,
                snapshot_rounds: false,
            }),
            ..AsyncBlockSolver::async_k(5)
        };
        group.bench_with_input(
            BenchmarkId::new("threads", workers),
            &workers,
            |bch, _| bch.iter(|| black_box(thr.solve(&a, &b, &x0, &p, &opts).expect("solve"))),
        );
    }
    group.finish();
}

/// The whole suite.
pub fn all(c: &mut Criterion) {
    bench_solve_to_tolerance(c);
    bench_fixed_budget(c);
}
