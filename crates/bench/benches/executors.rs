//! Throughput of the two execution fabrics: the discrete-event simulator
//! versus real threads, at equal global-iteration budgets.

use abr_bench::{bench_partition, bench_system};
use abr_core::{AsyncBlockSolver, ExecutorKind, SolveOptions};
use abr_gpu::{SimOptions, ThreadedOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_executors(c: &mut Criterion) {
    let (a, b, x0) = bench_system(60);
    let p = bench_partition(a.n_rows(), 120);
    let opts = SolveOptions::fixed_iterations(10);
    let mut group = c.benchmark_group("executors_10_globals");
    group.sample_size(20);

    let sim = AsyncBlockSolver {
        executor: ExecutorKind::Sim(SimOptions::default()),
        ..AsyncBlockSolver::async_k(5)
    };
    group.bench_function("discrete_event", |bch| {
        bch.iter(|| black_box(sim.solve(&a, &b, &x0, &p, &opts).expect("solve")))
    });

    for workers in [2usize, 4, 8] {
        let thr = AsyncBlockSolver {
            executor: ExecutorKind::Threaded(ThreadedOptions {
                n_workers: workers,
                snapshot_rounds: false,
            }),
            ..AsyncBlockSolver::async_k(5)
        };
        group.bench_with_input(
            BenchmarkId::new("threads", workers),
            &workers,
            |bch, _| bch.iter(|| black_box(thr.solve(&a, &b, &x0, &p, &opts).expect("solve"))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_executors);
criterion_main!(benches);
