//! Thin harness over [`abr_bench::suites::block_plan`] — the bodies live in
//! the library so `tests/bench_smoke.rs` can drive them under
//! `cargo test` too.

use criterion::{criterion_group, criterion_main, Criterion};

fn run(c: &mut Criterion) {
    abr_bench::suites::block_plan::all(c);
}

criterion_group!(benches, run);
criterion_main!(benches);
