//! Thin harness over [`abr_bench::suites::scale`] — the bodies live in
//! the library so `tests/bench_smoke.rs` can drive them under
//! `cargo test` too. `ABR_SCALE_GRID` shrinks the grid for smoke runs.

use criterion::{criterion_group, criterion_main, Criterion};

fn run(c: &mut Criterion) {
    abr_bench::suites::scale::all(c);
}

criterion_group!(benches, run);
criterion_main!(benches);
