//! Runs every bench suite for a single minimal sample under `cargo test`,
//! so bench code cannot silently rot between `cargo bench` runs.
//!
//! The criterion shim honours `CRITERION_SAMPLES`/`CRITERION_SAMPLE_MS`
//! to shrink each benchmark to one ~1 ms sample; `CRITERION_JSON` is
//! cleared so a smoke run never pollutes a committed baseline.

use abr_bench::suites;
use criterion::Criterion;

fn smoke_criterion() -> Criterion {
    // One sample, ~1 ms budget per bench: exercise every code path, don't
    // measure anything. Env setup is process-global, hence the single
    // #[test] running all suites sequentially.
    std::env::set_var("CRITERION_SAMPLES", "1");
    std::env::set_var("CRITERION_SAMPLE_MS", "1");
    // The scale suite defaults to a million-row grid; smoke it tiny.
    std::env::set_var("ABR_SCALE_GRID", "48");
    std::env::remove_var("CRITERION_JSON");
    Criterion::default()
}

#[test]
fn every_bench_suite_runs_one_iteration() {
    let mut c = smoke_criterion();
    suites::spmv::all(&mut c);
    suites::block_plan::all(&mut c);
    suites::sweeps::all(&mut c);
    suites::async_overhead::all(&mut c);
    suites::executors::all(&mut c);
    suites::extensions::all(&mut c);
    suites::krylov::all(&mut c);
    suites::scale::all(&mut c);
    suites::experiments::all(&mut c);
}
