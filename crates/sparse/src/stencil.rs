//! Constant-coefficient stencil descriptors and the matrix-free sweep
//! plans compiled from them.
//!
//! Following *Block-Relaxation Methods for 3D Constant-Coefficient
//! Stencils on GPUs and Multicore CPUs* (arXiv:1208.1975), a relaxation
//! sweep over a constant-coefficient stencil operator needs **no stored
//! matrix at all**: every row's entries are the same few coefficients at
//! arithmetically computable neighbour positions. A [`StencilDescriptor`]
//! states that structure — the grid shape, the constant centre, and the
//! off-centre taps — and [`StencilDescriptor::verify`] cross-checks it
//! entry-by-entry against an assembled [`CsrMatrix`], so generator-built
//! *and* hand-loaded matrices can opt into the matrix-free tier without
//! trusting anyone's word for the structure.
//!
//! [`StencilDescriptor::compile_block`] lowers the descriptor to a
//! [`StencilBlock`]: maximal runs of consecutive block rows that share
//! the same in-block tap set. Inside a run the sweep loop is branch-free
//! with **zero index loads** — the neighbour of local row `li` at tap
//! offset `d` is `cur[li + d]`, a contiguous vectorizable load — and the
//! taps are kept in ascending column order, so the floating-point
//! accumulation visits entries in exactly the source-CSR order. Rows
//! whose in-block neighbourhood is clipped by a grid edge or the block
//! boundary simply form their own (shorter-tap) runs; off-block taps are
//! the packed-halo entries the kernel freezes before sweeping, same as
//! every other tier.

use crate::{CsrMatrix, Result, SparseError};

/// The regular grid a constant-coefficient stencil matrix discretises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridShape {
    /// Row-major `m x m` 2D grid (`n = m²`; node `(i, j)` is row `i*m + j`).
    Square2d {
        /// Grid side length.
        m: usize,
    },
    /// Row-major `m x m x m` 3D grid (`n = m³`; node `(i, j, k)` is row
    /// `(i*m + j)*m + k`).
    Cube3d {
        /// Grid side length.
        m: usize,
    },
}

impl GridShape {
    /// Total number of grid nodes (= matrix rows).
    pub fn n(&self) -> usize {
        match *self {
            GridShape::Square2d { m } => m * m,
            GridShape::Cube3d { m } => m * m * m,
        }
    }
}

/// One off-centre stencil tap: a grid-coordinate offset and its constant
/// coefficient. `dk` is ignored (must be 0) on 2D grids.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StencilTap {
    /// Offset along the slowest (row-major outermost) grid axis.
    pub di: i32,
    /// Offset along the middle axis (the column axis on 2D grids).
    pub dj: i32,
    /// Offset along the fastest axis (3D grids only).
    pub dk: i32,
    /// The constant coefficient at this offset.
    pub coef: f64,
}

/// A verified-able description of a constant-coefficient stencil matrix.
///
/// # Examples
///
/// ```
/// use abr_sparse::gen::laplacian_2d_5pt;
/// use abr_sparse::stencil::StencilDescriptor;
///
/// let a = laplacian_2d_5pt(8);
/// let d = StencilDescriptor::poisson_2d_5pt(8);
/// assert!(d.verify(&a).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StencilDescriptor {
    shape: GridShape,
    center: f64,
    /// Sorted by signed row offset, ascending — the order sorted-column
    /// CSR assembly produces, which the sweeps must reproduce.
    taps: Vec<StencilTap>,
}

impl StencilDescriptor {
    /// Builds a descriptor from a grid shape, centre coefficient, and
    /// off-centre taps. Taps are sorted by their signed row offset;
    /// duplicate or zero offsets and a zero centre are rejected.
    pub fn new(shape: GridShape, center: f64, mut taps: Vec<StencilTap>) -> Result<Self> {
        if center == 0.0 {
            return Err(SparseError::Stencil("stencil centre must be nonzero".into()));
        }
        if let GridShape::Square2d { .. } = shape {
            if taps.iter().any(|t| t.dk != 0) {
                return Err(SparseError::Stencil("2D stencil taps must have dk = 0".into()));
            }
        }
        let d = StencilDescriptor { shape, center, taps: Vec::new() };
        taps.sort_by_key(|t| d.row_offset(t));
        for w in taps.windows(2) {
            if d.row_offset(&w[0]) == d.row_offset(&w[1]) {
                return Err(SparseError::Stencil("duplicate stencil tap offset".into()));
            }
        }
        if taps.iter().any(|t| d.row_offset(t) == 0) {
            return Err(SparseError::Stencil("tap at offset 0 duplicates the centre".into()));
        }
        Ok(StencilDescriptor { taps, ..d })
    }

    /// The 2D 5-point Poisson stencil (`gen::laplacian_2d_5pt`): centre
    /// `4`, the four axis neighbours `-1`.
    pub fn poisson_2d_5pt(m: usize) -> Self {
        let t = |di, dj| StencilTap { di, dj, dk: 0, coef: -1.0 };
        StencilDescriptor::new(
            GridShape::Square2d { m },
            4.0,
            vec![t(-1, 0), t(0, -1), t(0, 1), t(1, 0)],
        )
        .expect("static stencil is well-formed")
    }

    /// The 3D 7-point Poisson stencil (`gen::laplacian_3d_7pt`): centre
    /// `6`, the six axis neighbours `-1`.
    pub fn poisson_3d_7pt(m: usize) -> Self {
        let t = |di, dj, dk| StencilTap { di, dj, dk, coef: -1.0 };
        StencilDescriptor::new(
            GridShape::Cube3d { m },
            6.0,
            vec![t(-1, 0, 0), t(0, -1, 0), t(0, 0, -1), t(0, 0, 1), t(0, 1, 0), t(1, 0, 0)],
        )
        .expect("static stencil is well-formed")
    }

    /// The ungraded FV stencil (`gen::fv(m, sigma, 0.0)`): the 9-point
    /// Q1-FEM Laplacian with a diagonal shift — centre `8/3 + sigma`,
    /// all eight neighbours `-1/3`. (Graded FV matrices are *not*
    /// constant-coefficient; their verification fails, as it must.)
    pub fn fv_9pt(m: usize, sigma: f64) -> Self {
        let mut taps = Vec::with_capacity(8);
        for di in -1i32..=1 {
            for dj in -1i32..=1 {
                if di != 0 || dj != 0 {
                    taps.push(StencilTap { di, dj, dk: 0, coef: -1.0 / 3.0 });
                }
            }
        }
        StencilDescriptor::new(GridShape::Square2d { m }, 8.0 / 3.0 + sigma, taps)
            .expect("static stencil is well-formed")
    }

    /// The grid shape.
    pub fn shape(&self) -> GridShape {
        self.shape
    }

    /// Matrix rows the descriptor covers.
    pub fn n(&self) -> usize {
        self.shape.n()
    }

    /// The constant centre (diagonal) coefficient.
    pub fn center(&self) -> f64 {
        self.center
    }

    /// The off-centre taps, sorted by signed row offset.
    pub fn taps(&self) -> &[StencilTap] {
        &self.taps
    }

    /// Signed row-index offset of a tap under row-major ordering.
    fn row_offset(&self, t: &StencilTap) -> i64 {
        match self.shape {
            GridShape::Square2d { m } => t.di as i64 * m as i64 + t.dj as i64,
            GridShape::Cube3d { m } => {
                (t.di as i64 * m as i64 + t.dj as i64) * m as i64 + t.dk as i64
            }
        }
    }

    /// Whether tap `t` exists at row `r` — every offset coordinate must
    /// stay on the grid (no wrap-around across a grid edge).
    fn tap_valid_at(&self, t: &StencilTap, r: usize) -> bool {
        let on = |c: usize, d: i32, m: usize| {
            let v = c as i64 + d as i64;
            v >= 0 && v < m as i64
        };
        match self.shape {
            GridShape::Square2d { m } => {
                let (i, j) = (r / m, r % m);
                on(i, t.di, m) && on(j, t.dj, m)
            }
            GridShape::Cube3d { m } => {
                let (i, rem) = (r / (m * m), r % (m * m));
                let (j, k) = (rem / m, rem % m);
                on(i, t.di, m) && on(j, t.dj, m) && on(k, t.dk, m)
            }
        }
    }

    /// Cross-checks the descriptor against an assembled matrix, entry by
    /// entry: every row must hold exactly the valid taps plus the centre,
    /// in sorted column order, with **bit-equal** coefficient values
    /// (bit-equality is what makes the matrix-free sweep's arithmetic
    /// reproduce the stored-matrix sweep; a hand-loaded matrix that
    /// merely *approximates* the stencil must not opt in).
    pub fn verify(&self, a: &CsrMatrix) -> Result<()> {
        let n = self.n();
        if !a.is_square() || a.n_rows() != n {
            return Err(SparseError::Stencil(format!(
                "shape mismatch: descriptor covers {n} rows, matrix is {}x{}",
                a.n_rows(),
                a.n_cols()
            )));
        }
        let mismatch = |r: usize, why: String| Err(SparseError::Stencil(format!("row {r}: {why}")));
        for r in 0..n {
            let (cols, vals) = a.row(r);
            let mut k = 0usize;
            let check = |col: usize, coef: f64, k: &mut usize| -> Result<()> {
                if *k >= cols.len() || cols[*k] != col {
                    return mismatch(r, format!("expected an entry at column {col}"));
                }
                if vals[*k].to_bits() != coef.to_bits() {
                    return mismatch(
                        r,
                        format!("column {col} holds {} instead of {coef}", vals[*k]),
                    );
                }
                *k += 1;
                Ok(())
            };
            let mut center_done = false;
            for t in &self.taps {
                if !self.tap_valid_at(t, r) {
                    continue;
                }
                let off = self.row_offset(t);
                if !center_done && off > 0 {
                    check(r, self.center, &mut k)?;
                    center_done = true;
                }
                check((r as i64 + off) as usize, t.coef, &mut k)?;
            }
            if !center_done {
                check(r, self.center, &mut k)?;
            }
            if k != cols.len() {
                return mismatch(r, format!("{} extra stored entries", cols.len() - k));
            }
        }
        Ok(())
    }

    /// Lowers the descriptor to the matrix-free sweep plan of one block
    /// (rows `[start, end)`): maximal runs of consecutive rows sharing an
    /// in-block tap set. Off-block taps are excluded (the kernel freezes
    /// them through the packed halo); tap offsets become block-local.
    pub fn compile_block(&self, start: usize, end: usize) -> StencilBlock {
        let mut runs: Vec<StencilRun> = Vec::new();
        let mut taps_here: Vec<(isize, f64)> = Vec::new();
        for r in start..end {
            taps_here.clear();
            for t in &self.taps {
                if !self.tap_valid_at(t, r) {
                    continue;
                }
                let off = self.row_offset(t);
                let c = r as i64 + off;
                if c >= start as i64 && c < end as i64 {
                    taps_here.push((off as isize, t.coef));
                }
            }
            match runs.last_mut() {
                Some(run) if run.taps == taps_here => run.hi += 1,
                _ => runs.push(StencilRun {
                    lo: (r - start) as u32,
                    hi: (r - start + 1) as u32,
                    taps: taps_here.clone(),
                }),
            }
        }
        StencilBlock { runs }
    }
}

/// One maximal run of consecutive block-local rows sharing an in-block
/// tap set. For every row `li` in `[lo, hi)` and tap `(d, c)`, the local
/// operator entry is `c` at local column `li + d` — computed, never
/// loaded.
#[derive(Debug, Clone, PartialEq)]
pub struct StencilRun {
    /// First block-local row of the run.
    pub lo: u32,
    /// One past the last block-local row of the run.
    pub hi: u32,
    /// `(block-local row offset, coefficient)` pairs in ascending offset
    /// order (= the source-CSR accumulation order).
    pub taps: Vec<(isize, f64)>,
}

/// The compiled matrix-free sweep plan of one block: its rows partitioned
/// into [`StencilRun`]s. Every block row belongs to exactly one run.
#[derive(Debug, Clone, PartialEq)]
pub struct StencilBlock {
    runs: Vec<StencilRun>,
}

impl StencilBlock {
    /// The runs, in ascending row order, covering every block row once.
    pub fn runs(&self) -> &[StencilRun] {
        &self.runs
    }

    /// Total in-block taps across all rows (the per-sweep multiply count,
    /// which is also the roofline read traffic: one `cur` load per tap).
    pub fn nnz_local_offdiag(&self) -> usize {
        self.runs.iter().map(|r| (r.hi - r.lo) as usize * r.taps.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{laplacian_2d_5pt, laplacian_3d_7pt};

    #[test]
    fn poisson_2d_descriptor_verifies() {
        let a = laplacian_2d_5pt(7);
        StencilDescriptor::poisson_2d_5pt(7).verify(&a).unwrap();
    }

    #[test]
    fn poisson_3d_descriptor_verifies() {
        let a = laplacian_3d_7pt(5);
        StencilDescriptor::poisson_3d_7pt(5).verify(&a).unwrap();
    }

    #[test]
    fn wrong_size_rejected() {
        let a = laplacian_2d_5pt(6);
        assert!(StencilDescriptor::poisson_2d_5pt(7).verify(&a).is_err());
    }

    #[test]
    fn perturbed_matrix_rejected() {
        // a single flipped value must fail the cross-check: a matrix that
        // is *almost* the stencil cannot take the matrix-free tier
        let mut coo = crate::CooMatrix::new(16, 16);
        let a = laplacian_2d_5pt(4);
        for r in 0..16 {
            for (c, v) in a.row_iter(r) {
                let v = if r == 9 && c == 10 { v + 1e-12 } else { v };
                coo.push(r, c, v).unwrap();
            }
        }
        let b = coo.to_csr();
        let err = StencilDescriptor::poisson_2d_5pt(4).verify(&b).unwrap_err();
        assert!(matches!(err, SparseError::Stencil(ref s) if s.contains("row 9")), "{err}");
    }

    #[test]
    fn extra_entry_rejected() {
        let mut coo = crate::CooMatrix::new(16, 16);
        let a = laplacian_2d_5pt(4);
        for r in 0..16 {
            for (c, v) in a.row_iter(r) {
                coo.push(r, c, v).unwrap();
            }
        }
        coo.push(0, 7, 1e-30).unwrap(); // spurious coupling
        let b = coo.to_csr();
        assert!(StencilDescriptor::poisson_2d_5pt(4).verify(&b).is_err());
    }

    #[test]
    fn runs_cover_every_row_once_with_sorted_taps() {
        let d = StencilDescriptor::poisson_2d_5pt(6);
        // a block spanning 2.5 grid rows, starting mid-row
        let (start, end) = (9, 24);
        let sb = d.compile_block(start, end);
        let mut covered = 0usize;
        for run in sb.runs() {
            assert!(run.lo < run.hi);
            assert_eq!(run.lo as usize, covered, "runs must tile the block in order");
            covered = run.hi as usize;
            for w in run.taps.windows(2) {
                assert!(w[0].0 < w[1].0, "taps must stay in CSR column order");
            }
            for li in run.lo..run.hi {
                for &(off, _) in &run.taps {
                    let c = li as isize + off;
                    assert!(c >= 0 && (c as usize) < end - start, "tap escapes the block");
                }
            }
        }
        assert_eq!(covered, end - start);
    }

    #[test]
    fn in_block_taps_match_the_local_operator() {
        // cross-check run taps against the BlockPlan's packed local rows
        let a = laplacian_2d_5pt(6);
        let d = StencilDescriptor::poisson_2d_5pt(6);
        d.verify(&a).unwrap();
        let p = crate::RowPartition::uniform(36, 10).unwrap();
        let plan = crate::BlockPlan::compile(&a, &p).unwrap();
        for b in 0..plan.n_blocks() {
            let (s, e) = plan.block_rows(b);
            let sb = d.compile_block(s, e);
            for run in sb.runs() {
                for li in run.lo..run.hi {
                    let (lc, lv) = plan.local_row(s + li as usize);
                    assert_eq!(lc.len(), run.taps.len(), "row {}", s + li as usize);
                    for (k, &(off, coef)) in run.taps.iter().enumerate() {
                        assert_eq!(lc[k] as isize, li as isize + off);
                        assert_eq!(lv[k].to_bits(), coef.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn malformed_descriptors_rejected() {
        let t = |di, dj, coef| StencilTap { di, dj, dk: 0, coef };
        let shape = GridShape::Square2d { m: 4 };
        assert!(StencilDescriptor::new(shape, 0.0, vec![t(0, 1, -1.0)]).is_err());
        assert!(StencilDescriptor::new(shape, 1.0, vec![t(0, 0, -1.0)]).is_err());
        assert!(StencilDescriptor::new(shape, 1.0, vec![t(0, 1, -1.0), t(0, 1, -2.0)]).is_err());
        assert!(StencilDescriptor::new(
            shape,
            1.0,
            vec![StencilTap { di: 0, dj: 1, dk: 1, coef: -1.0 }]
        )
        .is_err());
    }
}
