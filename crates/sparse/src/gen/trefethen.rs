//! The Trefethen prime matrix — the one Table 1 matrix we can reproduce
//! **exactly**, since it is defined by a formula rather than application
//! data: `A[i][i]` is the `(i+1)`-th prime and `A[i][j] = 1` whenever
//! `|i - j|` is a power of two (1, 2, 4, 8, ...).

use super::primes::first_primes;
use crate::{CooMatrix, CsrMatrix};

/// Builds the `n x n` Trefethen matrix.
///
/// For `n = 2000` this is UFMC `Trefethen_2000` (nnz = 41906); for
/// `n = 20000` it is `Trefethen_20000` (nnz = 554466).
pub fn trefethen(n: usize) -> crate::Result<CsrMatrix> {
    let primes = first_primes(n);
    let mut coo = CooMatrix::new(n, n);
    for (i, &p) in primes.iter().enumerate() {
        coo.push(i, i, p as f64)?;
    }
    let mut d = 1usize;
    while d < n {
        for i in 0..(n - d) {
            coo.push_sym(i, i + d, 1.0)?;
        }
        d *= 2;
    }
    Ok(coo.to_csr())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IterationMatrix;

    #[test]
    fn matches_ufmc_nnz_2000() {
        let a = trefethen(2000).unwrap();
        assert_eq!(a.n_rows(), 2000);
        assert_eq!(a.nnz(), 41906, "UFMC Trefethen_2000 has 41906 entries");
        assert!(a.is_symmetric());
    }

    #[test]
    fn structure_small() {
        let a = trefethen(10).unwrap();
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(4, 4), 11.0);
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(0, 2), 1.0);
        assert_eq!(a.get(0, 3), 0.0);
        assert_eq!(a.get(0, 4), 1.0);
        assert_eq!(a.get(0, 8), 1.0);
        assert_eq!(a.get(0, 5), 0.0);
    }

    #[test]
    fn rho_near_paper_value() {
        // Paper Table 1: rho(M) = 0.8601 for both Trefethen matrices.
        let a = trefethen(2000).unwrap();
        let rho = IterationMatrix::new(&a).unwrap().spectral_radius().unwrap();
        assert!((rho - 0.8601).abs() < 5e-3, "rho = {rho}");
    }

    #[test]
    fn diagonally_dominant_fails_for_small_rows() {
        // Row 0 has diagonal 2 but ~log2(n) unit off-diagonals, so the
        // matrix is NOT diagonally dominant — convergence hinges on the
        // large prime diagonal of later rows (rho(B) < 1 nevertheless).
        let a = trefethen(64).unwrap();
        assert!(!a.is_diagonally_dominant());
    }
}
