//! Prime sieve, used by the Trefethen matrix generator (its diagonal is the
//! sequence of primes).

/// All primes `<= limit` via the sieve of Eratosthenes.
pub fn sieve_upto(limit: usize) -> Vec<usize> {
    if limit < 2 {
        return Vec::new();
    }
    let mut is_comp = vec![false; limit + 1];
    let mut primes = Vec::new();
    for p in 2..=limit {
        if !is_comp[p] {
            primes.push(p);
            let mut q = p * p;
            while q <= limit {
                is_comp[q] = true;
                q += p;
            }
        }
    }
    primes
}

/// The first `k` primes. Uses the prime-counting bound
/// `p_k < k (ln k + ln ln k)` for `k >= 6` to size the sieve.
pub fn first_primes(k: usize) -> Vec<usize> {
    if k == 0 {
        return Vec::new();
    }
    let mut limit = if k < 6 {
        13
    } else {
        let kf = k as f64;
        (kf * (kf.ln() + kf.ln().ln())).ceil() as usize + 16
    };
    loop {
        let primes = sieve_upto(limit);
        if primes.len() >= k {
            return primes[..k].to_vec();
        }
        limit *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes() {
        assert_eq!(sieve_upto(1), Vec::<usize>::new());
        assert_eq!(sieve_upto(2), vec![2]);
        assert_eq!(sieve_upto(20), vec![2, 3, 5, 7, 11, 13, 17, 19]);
    }

    #[test]
    fn first_primes_counts() {
        assert_eq!(first_primes(0), Vec::<usize>::new());
        assert_eq!(first_primes(1), vec![2]);
        assert_eq!(first_primes(5), vec![2, 3, 5, 7, 11]);
        let p = first_primes(2000);
        assert_eq!(p.len(), 2000);
        assert_eq!(p[1999], 17389); // the 2000th prime
    }

    #[test]
    fn twenty_thousandth_prime() {
        let p = first_primes(20000);
        assert_eq!(p[19999], 224737); // the 20000th prime
    }
}
