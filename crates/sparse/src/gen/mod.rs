//! Deterministic generators for the paper's test matrices and for
//! property-test inputs.
//!
//! The University of Florida collection is not reachable from this
//! environment, so each UFMC matrix used in the paper is replaced by a
//! generated matrix matching its *role*: size, sparsity structure,
//! diagonal-block mass, and — most importantly for the relaxation methods —
//! the spectral radius `rho(B)` of the Jacobi iteration matrix (Table 1).
//! See DESIGN.md §2 for the substitution table and the rationale.

mod chem;
mod fv;
mod poisson;
mod primes;
mod random;
mod structural;
mod trefethen;

pub use chem::chem_ztz;
pub use fv::{fv, fv_stencil, fv_with_target_rho};
pub use poisson::{
    convection_diffusion_2d, laplacian_1d, laplacian_2d_5pt, laplacian_2d_5pt_stencil,
    laplacian_2d_9pt, laplacian_3d_7pt, laplacian_3d_7pt_stencil,
};
pub use primes::{first_primes, sieve_upto};
pub use random::{random_diag_dominant, random_spd_tridiag_perturbed};
pub use structural::structural_biharmonic_sq;
pub use trefethen::trefethen;

use crate::{CsrMatrix, Result};

/// The seven test systems of the paper's Table 1, by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TestMatrix {
    /// `Chem97ZtZ` — statistical problem, n = 2541, rho(B) ≈ 0.7889.
    Chem97ZtZ,
    /// `fv1` — 2D FEM problem, n = 9604, rho(B) ≈ 0.8541.
    Fv1,
    /// `fv2` — 2D FEM problem, n = 9801, rho(B) ≈ 0.8541.
    Fv2,
    /// `fv3` — 2D FEM problem, n = 9801, rho(B) ≈ 0.9993.
    Fv3,
    /// `s1rmt3m1` — structural problem, n ≈ 5489, rho(B) ≈ 2.65 (Jacobi
    /// diverges; SPD, so tau-scaling applies).
    S1rmt3m1,
    /// `Trefethen_2000` — combinatorial problem, n = 2000, rho(B) ≈ 0.86.
    Trefethen2000,
    /// `Trefethen_20000` — combinatorial problem, n = 20000.
    Trefethen20000,
}

impl TestMatrix {
    /// All seven matrices in Table 1 order.
    pub const ALL: [TestMatrix; 7] = [
        TestMatrix::Chem97ZtZ,
        TestMatrix::Fv1,
        TestMatrix::Fv2,
        TestMatrix::Fv3,
        TestMatrix::S1rmt3m1,
        TestMatrix::Trefethen2000,
        TestMatrix::Trefethen20000,
    ];

    /// The UFMC name this matrix substitutes.
    pub fn name(&self) -> &'static str {
        match self {
            TestMatrix::Chem97ZtZ => "Chem97ZtZ",
            TestMatrix::Fv1 => "fv1",
            TestMatrix::Fv2 => "fv2",
            TestMatrix::Fv3 => "fv3",
            TestMatrix::S1rmt3m1 => "s1rmt3m1",
            TestMatrix::Trefethen2000 => "Trefethen_2000",
            TestMatrix::Trefethen20000 => "Trefethen_20000",
        }
    }

    /// Problem-kind description (Table 1 column).
    pub fn description(&self) -> &'static str {
        match self {
            TestMatrix::Chem97ZtZ => "statistical problem",
            TestMatrix::Fv1 | TestMatrix::Fv2 | TestMatrix::Fv3 => "2D/3D problem",
            TestMatrix::S1rmt3m1 => "structural problem",
            TestMatrix::Trefethen2000 | TestMatrix::Trefethen20000 => "combinatorial problem",
        }
    }

    /// The paper's reported `rho(M)` (Table 1), used as the generator's
    /// tuning target.
    pub fn paper_rho(&self) -> f64 {
        match self {
            TestMatrix::Chem97ZtZ => 0.7889,
            TestMatrix::Fv1 | TestMatrix::Fv2 => 0.8541,
            TestMatrix::Fv3 => 0.9993,
            TestMatrix::S1rmt3m1 => 2.65,
            TestMatrix::Trefethen2000 | TestMatrix::Trefethen20000 => 0.8601,
        }
    }

    /// The paper's reported dimension (Table 1). Generated dimensions match
    /// exactly except `s1rmt3m1` (5476 = 74^2 instead of 5489; the operator
    /// is grid-based).
    pub fn paper_n(&self) -> usize {
        match self {
            TestMatrix::Chem97ZtZ => 2541,
            TestMatrix::Fv1 => 9604,
            TestMatrix::Fv2 | TestMatrix::Fv3 => 9801,
            TestMatrix::S1rmt3m1 => 5489,
            TestMatrix::Trefethen2000 => 2000,
            TestMatrix::Trefethen20000 => 20000,
        }
    }

    /// Builds the substitute matrix. Deterministic: same output every call.
    pub fn build(&self) -> Result<CsrMatrix> {
        match self {
            TestMatrix::Chem97ZtZ => chem_ztz(2541, 0.7889),
            TestMatrix::Fv1 => fv_with_target_rho(98, 0.8541, 2.2),
            TestMatrix::Fv2 => fv_with_target_rho(99, 0.8541, 2.2),
            TestMatrix::Fv3 => fv_with_target_rho(99, 0.9993, 3.5),
            TestMatrix::S1rmt3m1 => structural_biharmonic_sq(74, 2.65),
            TestMatrix::Trefethen2000 => trefethen(2000),
            TestMatrix::Trefethen20000 => trefethen(20000),
        }
    }

    /// Builds a smaller variant with the same structure, for fast tests.
    pub fn build_small(&self) -> Result<CsrMatrix> {
        match self {
            TestMatrix::Chem97ZtZ => chem_ztz(301, 0.7889),
            TestMatrix::Fv1 => fv_with_target_rho(20, 0.8541, 1.5),
            TestMatrix::Fv2 => fv_with_target_rho(21, 0.8541, 1.5),
            TestMatrix::Fv3 => fv_with_target_rho(21, 0.995, 2.5),
            TestMatrix::S1rmt3m1 => structural_biharmonic_sq(18, 2.65),
            TestMatrix::Trefethen2000 => trefethen(200),
            TestMatrix::Trefethen20000 => trefethen(400),
        }
    }
}

/// Applies the smooth radial mesh grading `A -> S A S` with
/// `s(x, y) = 10^(decades * (r - 1/2))`, `r = (x² + y²)/2` over the unit
/// square of an `m x m` grid. The grading inflates `cond(A)` like a
/// graded mesh while leaving the Jacobi iteration matrix *similar*
/// (`D'⁻¹A' = S⁻¹(D⁻¹A)S`), so `rho(B)` and `cond(D⁻¹A)` are untouched —
/// the mechanism both the `fv` family and the structural substitute use.
pub(crate) fn grade_radial(a: CsrMatrix, m: usize, decades: f64) -> Result<CsrMatrix> {
    let n = m * m;
    debug_assert_eq!(a.n_rows(), n);
    let mut s = vec![0.0f64; n];
    for i in 0..m {
        for j in 0..m {
            let x = (i as f64 + 1.0) / (m as f64 + 1.0);
            let y = (j as f64 + 1.0) / (m as f64 + 1.0);
            let r = 0.5 * (x * x + y * y);
            s[i * m + j] = 10f64.powf(decades * (r - 0.5));
        }
    }
    let mut graded = a;
    graded.scale_rows(&s)?;
    let mut at = graded.transpose();
    at.scale_rows(&s)?;
    Ok(at.transpose())
}

/// The right-hand side used throughout the experiments: `b = A * ones`,
/// so the exact solution is the all-ones vector and the error is directly
/// observable. (The paper does not state its RHS; a known solution lets
/// EXPERIMENTS.md report true errors alongside residuals.)
pub fn unit_solution_rhs(a: &CsrMatrix) -> Vec<f64> {
    let ones = vec![1.0; a.n_cols()];
    a.mul_vec(&ones).expect("square matrix with matching vector")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IterationMatrix;

    #[test]
    fn all_small_variants_build_and_are_spd_shaped() {
        for tm in TestMatrix::ALL {
            let a = tm.build_small().unwrap_or_else(|e| panic!("{}: {e}", tm.name()));
            assert!(a.is_square(), "{}", tm.name());
            assert!(a.is_symmetric_within(1e-10), "{} not symmetric", tm.name());
            assert!(a.nonzero_diagonal().is_ok(), "{}", tm.name());
            assert!(a.validate().is_ok(), "{}", tm.name());
        }
    }

    #[test]
    fn small_variants_have_expected_convergence_class() {
        for tm in TestMatrix::ALL {
            let a = tm.build_small().unwrap();
            let rho = IterationMatrix::new(&a).unwrap().spectral_radius().unwrap();
            if tm == TestMatrix::S1rmt3m1 {
                assert!(rho > 1.0, "{} should be Jacobi-divergent, rho = {rho}", tm.name());
            } else {
                assert!(rho < 1.0, "{} should be Jacobi-convergent, rho = {rho}", tm.name());
            }
        }
    }

    #[test]
    fn unit_solution_rhs_gives_ones_solution() {
        let a = laplacian_1d(10);
        let b = unit_solution_rhs(&a);
        // residual of x = ones must vanish
        let r = a.residual(&b, &[1.0; 10]).unwrap();
        assert!(r.iter().all(|&v| v.abs() < 1e-14));
    }
}
