//! The `Chem97ZtZ` substitute: a "statistical problem" Gram matrix.
//!
//! UFMC `Chem97ZtZ` is a Z'Z Gram matrix from a statistics application
//! with only ~2.9 entries per row and — crucially for the paper's §4.3
//! analysis — its off-diagonal entries connect *distant* indices, so the
//! diagonal blocks of any moderate row partition are themselves diagonal
//! and local iterations cannot help ("the local matrices for Chem97ZtZ are
//! diagonal").
//!
//! The substitute keeps exactly those properties: varying positive
//! diagonal `d_i` (category counts), and a single symmetric coupling ring
//! `i ~ (i + stride) mod n` with `stride` far larger than any thread-block
//! size, with coupling strength `c_ij = r * sqrt(d_i d_j)`. Then
//! `D^{-1/2} A D^{-1/2} = I + r C` for the ring adjacency `C`, whose
//! spectrum is known: `rho(B) = 2 r` exactly — so `r` is chosen in closed
//! form from the target spectral radius.

use crate::{CooMatrix, CsrMatrix, Result, SparseError};

/// Stride of the coupling ring; must exceed the largest thread-block size
/// used in the experiments (512) so every diagonal block is diagonal.
const STRIDE: usize = 1021;

/// Builds the `n x n` Chem97ZtZ substitute with Jacobi spectral radius
/// `target_rho`.
pub fn chem_ztz(n: usize, target_rho: f64) -> Result<CsrMatrix> {
    if !(0.0..1.0).contains(&target_rho) {
        return Err(SparseError::Generator(format!(
            "chem_ztz target rho must be in (0, 1), got {target_rho}"
        )));
    }
    let stride = if n > 2 * STRIDE { STRIDE } else { (n / 2).max(1) | 1 };
    if gcd(stride, n) != 1 {
        return Err(SparseError::Generator(format!(
            "stride {stride} shares a factor with n = {n}; pick another n"
        )));
    }
    // Ring adjacency spectrum: eigenvalues 2 cos(2 pi k / n), k = 0..n-1,
    // with extreme magnitude exactly 2 (k = 0). The coupling ratio r thus
    // places rho(I - D^{-1}A) = 2 r.
    let r = target_rho / 2.0;
    // Deterministic pseudo-random positive diagonal spanning [1, 200] —
    // category counts in a statistics Gram matrix vary over orders of
    // magnitude, which is what gives the UFMC original its cond(A) ~ 1e3
    // while cond of the Jacobi-scaled operator stays small.
    let diag: Vec<f64> = (0..n)
        .map(|i| {
            let t = ((i as f64 * 12.9898).sin() * 43758.5453).fract().abs();
            200f64.powf(t)
        })
        .collect();
    let mut coo = CooMatrix::with_capacity(n, n, 3 * n);
    for (i, &d) in diag.iter().enumerate() {
        coo.push(i, i, d)?;
    }
    for i in 0..n {
        let j = (i + stride) % n;
        // push each undirected edge once
        if i < j {
            coo.push_sym(i, j, r * (diag[i] * diag[j]).sqrt())?;
        } else {
            coo.push_sym(j, i, r * (diag[i] * diag[j]).sqrt())?;
        }
    }
    Ok(coo.to_csr())
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IterationMatrix, RowPartition};

    #[test]
    fn rho_matches_target_exactly() {
        let a = chem_ztz(2541, 0.7889).unwrap();
        let rho = IterationMatrix::new(&a).unwrap().spectral_radius().unwrap();
        assert!((rho - 0.7889).abs() < 1e-4, "rho = {rho}");
    }

    #[test]
    fn nnz_per_row_close_to_ufmc() {
        let a = chem_ztz(2541, 0.7889).unwrap();
        let per_row = a.nnz() as f64 / a.n_rows() as f64;
        // UFMC: 7361 / 2541 = 2.90; the ring gives exactly 3.0.
        assert!((per_row - 3.0).abs() < 1e-9, "{per_row}");
        assert!(a.is_symmetric());
    }

    #[test]
    fn diagonal_blocks_are_diagonal() {
        // The defining property for §4.3: any 512-row diagonal block of a
        // partition contains no off-diagonal entries.
        let a = chem_ztz(2541, 0.7889).unwrap();
        let p = RowPartition::uniform(2541, 512).unwrap();
        for bi in 0..p.len() {
            let b = p.block(bi);
            let local = a.diagonal_block(b.start, b.end);
            assert_eq!(local.nnz(), b.len(), "block {bi} must be diagonal");
        }
    }

    #[test]
    fn spd_check_small() {
        let a = chem_ztz(301, 0.7889).unwrap();
        // rho(B) < 1 for a symmetric positive-diagonal matrix implies SPD.
        let rho = IterationMatrix::new(&a).unwrap().spectral_radius().unwrap();
        assert!(rho < 1.0);
        let dense = a.to_dense();
        let eigs = dense.symmetric_eigenvalues();
        assert!(eigs[0] > 0.0, "lambda_min = {}", eigs[0]);
    }

    #[test]
    fn bad_target_rejected() {
        assert!(chem_ztz(100, 1.5).is_err());
        assert!(chem_ztz(100, -0.1).is_err());
    }
}
