//! The `fv1`/`fv2`/`fv3` substitute family.
//!
//! The UFMC `fv*` matrices are 2D finite-element discretisations with ~9
//! entries per row whose Jacobi iteration matrices have spectral radii
//! 0.8541 (fv1, fv2) and 0.9993 (fv3), while `cond(A)` is several orders
//! of magnitude larger than `cond(D^{-1}A)` — the signature of a strongly
//! graded mesh.
//!
//! We reproduce all three signatures from the 9-point FEM Laplacian `K`:
//!
//! 1. a diagonal shift `A0 = K + sigma I` places `rho(B)` exactly at the
//!    target (closed form via one Lanczos run on `K`, since
//!    `rho(B) = max(d0 - lam_min, lam_max - d0) / (d0 + sigma)` for the
//!    constant stencil diagonal `d0 = 8/3`);
//! 2. a symmetric diagonal grading `A = S A0 S` with smoothly varying
//!    `s_i` spanning `grading_decades` orders of magnitude inflates
//!    `cond(A)` like a graded mesh would — and leaves the Jacobi iteration
//!    matrix *similar* (hence `rho(B)` and `cond(D^{-1}A)` unchanged),
//!    because `D'^{-1}A' = S^{-1} (D^{-1}A) S`.

use super::poisson::laplacian_2d_9pt;
use crate::spectra::lanczos_extreme;
use crate::stencil::StencilDescriptor;
use crate::{CsrMatrix, Result, SparseError};

/// The 9-point FEM Laplacian with diagonal shift `sigma` and symmetric
/// grading over `grading_decades` decades on an `m x m` grid.
pub fn fv(m: usize, sigma: f64, grading_decades: f64) -> Result<CsrMatrix> {
    let k = laplacian_2d_9pt(m);
    let n = m * m;
    let shifted = k.add_scaled(1.0, &CsrMatrix::identity(n), sigma)?;
    super::grade_radial(shifted, m, grading_decades)
}

/// The *ungraded* `fv` matrix (`grading_decades = 0`) paired with its
/// [`StencilDescriptor`]: centre `8/3 + sigma`, eight `-1/3` neighbours.
/// Graded variants are not constant-coefficient and have no stencil form;
/// the descriptor is verified against the assembled matrix here (an `Err`
/// would mean generator and descriptor drifted apart), so callers can
/// hand the pair straight to the matrix-free sweep tier.
pub fn fv_stencil(m: usize, sigma: f64) -> Result<(CsrMatrix, StencilDescriptor)> {
    let a = fv(m, sigma, 0.0)?;
    let d = StencilDescriptor::fv_9pt(m, sigma);
    d.verify(&a)?;
    Ok((a, d))
}

/// Builds an `fv` matrix whose measured `rho(B)` equals `target_rho`.
///
/// Any `target_rho` in `(0, 1)` is attainable: both branches of
/// `rho(B) = max(d0 - lam_min, lam_max - d0) / (d0 + sigma)` shrink as the
/// shift grows. Targets at or above 1 would require a shift that destroys
/// positive definiteness and are rejected.
pub fn fv_with_target_rho(m: usize, target_rho: f64, grading_decades: f64) -> Result<CsrMatrix> {
    let k = laplacian_2d_9pt(m);
    let d0 = 8.0 / 3.0;
    let est = lanczos_extreme(&k, 200.min(m * m))?;
    let numerator = (d0 - est.lambda_min).max(est.lambda_max - d0);
    // rho(B) = numerator / (d0 + sigma)  =>  sigma in closed form.
    let sigma = numerator / target_rho - d0;
    // Keep A positive definite: need sigma > -lambda_min(K).
    if sigma <= -0.9 * est.lambda_min {
        return Err(SparseError::Generator(format!(
            "target rho {target_rho} needs shift {sigma:.4} which would \
             destroy positive definiteness (lambda_min(K) = {:.2e})",
            est.lambda_min
        )));
    }
    // Verify the other branch of the max did not take over.
    let lam_max_shift = (est.lambda_max + sigma) / (d0 + sigma);
    if lam_max_shift - 1.0 > target_rho + 1e-9 {
        return Err(SparseError::Generator(
            "upper spectrum violates the requested rho; decrease target".into(),
        ));
    }
    fv(m, sigma, grading_decades)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spectra::cond_symmetric;
    use crate::IterationMatrix;

    #[test]
    fn fv_is_symmetric_spd_shaped() {
        let a = fv(10, 0.3, 1.0).unwrap();
        assert_eq!(a.n_rows(), 100);
        assert!(a.is_symmetric_within(1e-12));
        assert!(a.diagonal().iter().all(|&d| d > 0.0));
    }

    #[test]
    fn target_rho_hit_small() {
        let target = 0.8541;
        let a = fv_with_target_rho(16, target, 0.0).unwrap();
        let rho = IterationMatrix::new(&a).unwrap().spectral_radius().unwrap();
        assert!((rho - target).abs() < 2e-3, "rho = {rho}");
    }

    #[test]
    fn grading_preserves_rho() {
        let target = 0.9;
        let plain = fv_with_target_rho(12, target, 0.0).unwrap();
        let graded = fv_with_target_rho(12, target, 2.0).unwrap();
        let r1 = IterationMatrix::new(&plain).unwrap().spectral_radius().unwrap();
        let r2 = IterationMatrix::new(&graded).unwrap().spectral_radius().unwrap();
        assert!((r1 - r2).abs() < 1e-4, "{r1} vs {r2}");
    }

    #[test]
    fn grading_inflates_cond() {
        let plain = fv_with_target_rho(12, 0.9, 0.0).unwrap();
        let graded = fv_with_target_rho(12, 0.9, 2.0).unwrap();
        let c1 = cond_symmetric(&plain, 144).unwrap();
        let c2 = cond_symmetric(&graded, 144).unwrap();
        assert!(c2 > 10.0 * c1, "cond {c1} -> {c2}");
    }

    #[test]
    fn impossible_target_rejected() {
        // rho >= 1 requires a shift past the positive-definiteness limit.
        assert!(fv_with_target_rho(10, 1.0, 0.0).is_err());
        assert!(fv_with_target_rho(10, 1.3, 0.0).is_err());
    }

    #[test]
    fn small_targets_attainable_with_large_shift() {
        let a = fv_with_target_rho(10, 0.2, 0.0).unwrap();
        let rho = IterationMatrix::new(&a).unwrap().spectral_radius().unwrap();
        assert!((rho - 0.2).abs() < 2e-3, "rho = {rho}");
    }

    #[test]
    fn fv_stencil_pair_survives_its_bitwise_cross_check() {
        // proves the whole assembly pipeline (shift + zero-decade grading
        // + double transpose) leaves the constant coefficients bit-exact
        let (a, d) = fv_stencil(8, 0.37).unwrap();
        assert_eq!(d.n(), a.n_rows());
        assert_eq!(d.center(), 8.0 / 3.0 + 0.37);
    }

    #[test]
    fn nnz_about_nine_per_row() {
        let a = fv(20, 0.4, 1.0).unwrap();
        let per_row = a.nnz() as f64 / a.n_rows() as f64;
        assert!(per_row > 8.0 && per_row <= 9.0, "{per_row}");
    }
}
