//! Seeded random matrices for property-based tests.
//!
//! Both generators produce matrices in the convergence class the
//! asynchronous theory requires (`rho(|B|) < 1`), so proptest can explore
//! update orders and shift schedules while convergence remains guaranteed.

use crate::{CooMatrix, CsrMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random strictly diagonally dominant symmetric matrix:
/// `|a_ii| > sum |a_ij|` with dominance factor `margin > 1`.
///
/// Strict diagonal dominance implies `rho(|B|) < 1` (row sums of |B| are
/// `< 1/margin`), so these matrices satisfy the asynchronous-convergence
/// condition by construction.
pub fn random_diag_dominant(n: usize, avg_off_per_row: usize, margin: f64, seed: u64) -> CsrMatrix {
    assert!(margin > 1.0, "margin must exceed 1 for strict dominance");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooMatrix::with_capacity(n, n, n * (1 + 2 * avg_off_per_row));
    // accumulate |offdiag| row sums to size the diagonal afterwards
    let mut off_sum = vec![0.0f64; n];
    let n_edges = n * avg_off_per_row / 2;
    let mut edges = std::collections::HashSet::new();
    for _ in 0..n_edges {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i == j {
            continue;
        }
        let (a, b) = (i.min(j), i.max(j));
        if !edges.insert((a, b)) {
            continue;
        }
        let v: f64 = rng.gen_range(-1.0..1.0);
        if v == 0.0 {
            continue;
        }
        coo.push_sym(a, b, v).expect("in bounds");
        off_sum[a] += v.abs();
        off_sum[b] += v.abs();
    }
    for (i, &s) in off_sum.iter().enumerate() {
        coo.push(i, i, margin * s + 1.0).expect("in bounds");
    }
    coo.to_csr()
}

/// Random SPD matrix built as a 1D Laplacian with random positive weights
/// plus a positive diagonal shift — tridiagonal, with `rho(|B|) < 1`.
pub fn random_spd_tridiag_perturbed(n: usize, seed: u64) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooMatrix::with_capacity(n, n, 3 * n);
    let weights: Vec<f64> = (0..n.saturating_sub(1)).map(|_| rng.gen_range(0.1..2.0)).collect();
    for i in 0..n {
        let left = if i > 0 { weights[i - 1] } else { 0.0 };
        let right = if i + 1 < n { weights[i] } else { 0.0 };
        let shift: f64 = rng.gen_range(0.01..0.5);
        coo.push(i, i, left + right + shift).expect("in bounds");
        if i + 1 < n {
            coo.push_sym(i, i + 1, -weights[i]).expect("in bounds");
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IterationMatrix;

    #[test]
    fn diag_dominant_has_small_abs_radius() {
        for seed in 0..5 {
            let a = random_diag_dominant(60, 4, 1.5, seed);
            assert!(a.is_diagonally_dominant(), "seed {seed}");
            let rho = IterationMatrix::new(&a).unwrap().spectral_radius_abs().unwrap();
            assert!(rho < 1.0 / 1.5 + 1e-9, "seed {seed}: rho_abs = {rho}");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = random_diag_dominant(40, 3, 2.0, 7);
        let b = random_diag_dominant(40, 3, 2.0, 7);
        assert_eq!(a, b);
        let c = random_diag_dominant(40, 3, 2.0, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn tridiag_spd_converges_class() {
        for seed in 0..5 {
            let a = random_spd_tridiag_perturbed(50, seed);
            let it = IterationMatrix::new(&a).unwrap();
            assert!(it.spectral_radius_abs().unwrap() < 1.0, "seed {seed}");
            assert!(a.is_symmetric());
        }
    }
}
