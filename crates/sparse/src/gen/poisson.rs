//! Poisson-equation stencil matrices: the standard model problems of
//! iterative-solver analysis, used as building blocks by the `fv` and
//! `structural` generators and directly in tests/benches.

use crate::stencil::StencilDescriptor;
use crate::{CooMatrix, CsrMatrix};

/// 1D Laplacian `tridiag(-1, 2, -1)` with Dirichlet boundaries.
pub fn laplacian_1d(n: usize) -> CsrMatrix {
    let mut coo = CooMatrix::with_capacity(n, n, 3 * n);
    for i in 0..n {
        coo.push(i, i, 2.0).expect("in bounds");
        if i + 1 < n {
            coo.push_sym(i, i + 1, -1.0).expect("in bounds");
        }
    }
    coo.to_csr()
}

/// 2D 5-point Laplacian on an `m x m` grid (n = m^2), Dirichlet boundaries.
pub fn laplacian_2d_5pt(m: usize) -> CsrMatrix {
    let n = m * m;
    let idx = |i: usize, j: usize| i * m + j;
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    for i in 0..m {
        for j in 0..m {
            let c = idx(i, j);
            coo.push(c, c, 4.0).expect("in bounds");
            if i + 1 < m {
                coo.push_sym(c, idx(i + 1, j), -1.0).expect("in bounds");
            }
            if j + 1 < m {
                coo.push_sym(c, idx(i, j + 1), -1.0).expect("in bounds");
            }
        }
    }
    coo.to_csr()
}

/// [`laplacian_2d_5pt`] paired with its [`StencilDescriptor`], verified
/// against the assembled matrix — the input the matrix-free sweep tier
/// wants. The verification is a debug assertion here because generator
/// and descriptor are maintained together; hand-loaded matrices go
/// through [`StencilDescriptor::verify`] themselves.
pub fn laplacian_2d_5pt_stencil(m: usize) -> (CsrMatrix, StencilDescriptor) {
    let a = laplacian_2d_5pt(m);
    let d = StencilDescriptor::poisson_2d_5pt(m);
    debug_assert!(d.verify(&a).is_ok());
    (a, d)
}

/// [`laplacian_3d_7pt`] paired with its verified [`StencilDescriptor`]
/// (see [`laplacian_2d_5pt_stencil`]).
pub fn laplacian_3d_7pt_stencil(m: usize) -> (CsrMatrix, StencilDescriptor) {
    let a = laplacian_3d_7pt(m);
    let d = StencilDescriptor::poisson_3d_7pt(m);
    debug_assert!(d.verify(&a).is_ok());
    (a, d)
}

/// 2D 9-point (bilinear Q1 FEM) Laplacian on an `m x m` grid:
/// center `8/3`, all eight neighbours `-1/3`. This is the stencil the `fv`
/// generator perturbs; its nnz count (~9 per row) matches the UFMC `fv*`
/// family.
pub fn laplacian_2d_9pt(m: usize) -> CsrMatrix {
    let n = m * m;
    let idx = |i: usize, j: usize| i * m + j;
    let mut coo = CooMatrix::with_capacity(n, n, 9 * n);
    for i in 0..m {
        for j in 0..m {
            let c = idx(i, j);
            coo.push(c, c, 8.0 / 3.0).expect("in bounds");
            for di in -1i64..=1 {
                for dj in -1i64..=1 {
                    if di == 0 && dj == 0 {
                        continue;
                    }
                    let ni = i as i64 + di;
                    let nj = j as i64 + dj;
                    if ni >= 0 && nj >= 0 && (ni as usize) < m && (nj as usize) < m {
                        coo.push(c, idx(ni as usize, nj as usize), -1.0 / 3.0)
                            .expect("in bounds");
                    }
                }
            }
        }
    }
    coo.to_csr()
}

/// 2D convection-diffusion operator on an `m x m` grid:
/// `-eps * Laplacian + (wx, wy) . grad` with first-order upwinding —
/// the standard *nonsymmetric* model problem. Diagonally dominant for
/// every `eps > 0` and wind `(wx, wy)`, so the asynchronous convergence
/// condition `rho(|B|) < 1` holds and the chaotic solvers apply; the
/// Krylov baseline for it is BiCGstab rather than CG.
pub fn convection_diffusion_2d(m: usize, eps: f64, wx: f64, wy: f64) -> CsrMatrix {
    assert!(eps > 0.0, "diffusion must be positive");
    let n = m * m;
    let h = 1.0 / (m as f64 + 1.0);
    let idx = |i: usize, j: usize| i * m + j;
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    // upwind fluxes: wind +x takes from the left neighbour, etc.
    let (wxp, wxm) = (wx.max(0.0), (-wx).max(0.0));
    let (wyp, wym) = (wy.max(0.0), (-wy).max(0.0));
    let d = eps / (h * h);
    for i in 0..m {
        for j in 0..m {
            let c = idx(i, j);
            coo.push(c, c, 4.0 * d + (wxp + wxm + wyp + wym) / h).expect("in bounds");
            if i > 0 {
                coo.push(c, idx(i - 1, j), -d - wxp / h).expect("in bounds");
            }
            if i + 1 < m {
                coo.push(c, idx(i + 1, j), -d - wxm / h).expect("in bounds");
            }
            if j > 0 {
                coo.push(c, idx(i, j - 1), -d - wyp / h).expect("in bounds");
            }
            if j + 1 < m {
                coo.push(c, idx(i, j + 1), -d - wym / h).expect("in bounds");
            }
        }
    }
    coo.to_csr()
}

/// 3D 7-point Laplacian on an `m x m x m` grid (n = m^3).
pub fn laplacian_3d_7pt(m: usize) -> CsrMatrix {
    let n = m * m * m;
    let idx = |i: usize, j: usize, k: usize| (i * m + j) * m + k;
    let mut coo = CooMatrix::with_capacity(n, n, 7 * n);
    for i in 0..m {
        for j in 0..m {
            for k in 0..m {
                let c = idx(i, j, k);
                coo.push(c, c, 6.0).expect("in bounds");
                if i + 1 < m {
                    coo.push_sym(c, idx(i + 1, j, k), -1.0).expect("in bounds");
                }
                if j + 1 < m {
                    coo.push_sym(c, idx(i, j + 1, k), -1.0).expect("in bounds");
                }
                if k + 1 < m {
                    coo.push_sym(c, idx(i, j, k + 1), -1.0).expect("in bounds");
                }
            }
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IterationMatrix;

    #[test]
    fn laplacian_1d_shape() {
        let a = laplacian_1d(5);
        assert_eq!(a.nnz(), 5 + 2 * 4);
        assert!(a.is_symmetric());
        assert!(a.is_diagonally_dominant());
    }

    #[test]
    fn laplacian_2d_5pt_shape() {
        let m = 6;
        let a = laplacian_2d_5pt(m);
        assert_eq!(a.n_rows(), 36);
        // nnz = 5*interior + boundary adjustments = m^2 + 2*2*m*(m-1)
        assert_eq!(a.nnz(), m * m + 4 * m * (m - 1));
        assert!(a.is_symmetric());
    }

    #[test]
    fn laplacian_2d_5pt_rho_formula() {
        // rho(B) = cos(pi h), h = 1/(m+1) for the 5-point stencil.
        let m = 12;
        let a = laplacian_2d_5pt(m);
        let rho = IterationMatrix::new(&a).unwrap().spectral_radius().unwrap();
        let exact = (std::f64::consts::PI / (m as f64 + 1.0)).cos();
        assert!((rho - exact).abs() < 1e-6, "{rho} vs {exact}");
    }

    #[test]
    fn laplacian_2d_9pt_row_sums() {
        // Interior rows sum to zero (constant in the null space of the
        // stencil before boundary truncation).
        let m = 5;
        let a = laplacian_2d_9pt(m);
        assert!(a.is_symmetric());
        let center = 2 * m + 2; // node (2,2), fully interior
        let sum: f64 = a.row(center).1.iter().sum();
        assert!(sum.abs() < 1e-14, "{sum}");
        assert_eq!(a.row(center).0.len(), 9);
    }

    #[test]
    fn convection_diffusion_is_nonsymmetric_diag_dominant() {
        let a = convection_diffusion_2d(8, 0.01, 1.0, 0.5);
        assert!(!a.is_symmetric(), "wind breaks symmetry");
        assert!(a.is_diagonally_dominant(), "upwinding preserves dominance");
        let rho = IterationMatrix::new(&a).unwrap().spectral_radius_abs().unwrap();
        assert!(rho < 1.0, "rho(|B|) = {rho}");
    }

    #[test]
    fn convection_diffusion_zero_wind_is_scaled_laplacian() {
        let a = convection_diffusion_2d(6, 1.0, 0.0, 0.0);
        assert!(a.is_symmetric());
        let h = 1.0 / 7.0;
        assert!((a.get(0, 0) - 4.0 / (h * h)).abs() < 1e-9);
    }

    #[test]
    fn laplacian_3d_shape() {
        let a = laplacian_3d_7pt(4);
        assert_eq!(a.n_rows(), 64);
        assert!(a.is_symmetric());
        assert!(a.is_diagonally_dominant());
        let rho = IterationMatrix::new(&a).unwrap().spectral_radius().unwrap();
        let exact = (std::f64::consts::PI / 5.0).cos();
        assert!((rho - exact).abs() < 1e-6);
    }
}
