//! The `s1rmt3m1` substitute: an SPD "structural problem" on which plain
//! Jacobi (and hence all the relaxation schemes) **diverges**.
//!
//! UFMC `s1rmt3m1` is a shell/structural FEM matrix with
//! `rho(I - D^{-1}A) ≈ 2.65 > 1` despite being SPD (Table 1). The role it
//! plays in the paper is exactly "SPD but Jacobi-divergent" (Figures 6e,
//! 7e; §4.2 suggests tau-scaling as the remedy).
//!
//! Our substitute is the fourth power of the shifted 2D Laplacian,
//! `A = (L + w I)^4`, computed by repeated SpGEMM — a plate-bending-squared
//! operator, also structural in character, dense-ish at ~41 entries per
//! row. Powers of an SPD matrix are SPD, while the diagonal grows much
//! slower than the extreme eigenvalue, so `lambda_max(D^{-1}A)` exceeds 2
//! and Jacobi diverges. The shift `w` is the tuning knob: `rho(B)`
//! decreases continuously in `w`, and a bisection on the measured radius
//! places it at the paper's 2.65.

use super::poisson::laplacian_2d_5pt;
use crate::scaling::jacobi_operator_extremes;
use crate::{CsrMatrix, Result, SparseError};

/// Builds the structural substitute on an `m x m` grid (n = m^2) with
/// measured `rho(B)` ≈ `target_rho` (> 1).
pub fn structural_biharmonic_sq(m: usize, target_rho: f64) -> Result<CsrMatrix> {
    if target_rho <= 1.0 {
        return Err(SparseError::Generator(format!(
            "structural generator targets a divergent radius (> 1), got {target_rho}"
        )));
    }
    let l = laplacian_2d_5pt(m);
    let n = m * m;
    let eye = CsrMatrix::identity(n);

    let rho_of = |w: f64| -> Result<f64> {
        let a = l.add_scaled(1.0, &eye, w)?.pow(4)?;
        jacobi_radius_spd(&a)
    };

    // rho(w) is continuous and decreasing; bracket the target.
    let mut lo = 0.0;
    let mut hi = 8.0;
    let rho_lo = rho_of(lo)?;
    let rho_hi = rho_of(hi)?;
    if !(rho_hi <= target_rho && target_rho <= rho_lo) {
        return Err(SparseError::Generator(format!(
            "target rho {target_rho} outside attainable range [{rho_hi:.3}, {rho_lo:.3}]"
        )));
    }
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        let rho = rho_of(mid)?;
        if rho > target_rho {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo) < 1e-4 {
            break;
        }
    }
    let w = 0.5 * (lo + hi);
    let a = l.add_scaled(1.0, &eye, w)?.pow(4)?;
    // Symmetric diagonal grading (graded shell thickness): inflates
    // cond(A) toward the UFMC original's ~1e6 while leaving rho(B)
    // untouched (similarity; see grade_radial).
    super::grade_radial(a, m, 2.0)
}

/// `rho(I - D^{-1}A)` for SPD `A`, from the extreme eigenvalues of
/// `D^{-1}A` (see [`jacobi_operator_extremes`]).
fn jacobi_radius_spd(a: &CsrMatrix) -> Result<f64> {
    let (lo, hi) = jacobi_operator_extremes(a)?;
    Ok((1.0 - lo).abs().max((hi - 1.0).abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IterationMatrix;

    #[test]
    fn rho_hits_target() {
        let a = structural_biharmonic_sq(18, 2.65).unwrap();
        let rho = IterationMatrix::new(&a).unwrap().spectral_radius().unwrap();
        assert!((rho - 2.65).abs() < 0.05, "rho = {rho}");
    }

    #[test]
    fn matrix_is_spd() {
        let a = structural_biharmonic_sq(10, 2.65).unwrap();
        assert!(a.is_symmetric_within(1e-8));
        let eigs = a.to_dense().symmetric_eigenvalues();
        assert!(eigs[0] > 0.0, "lambda_min = {}", eigs[0]);
    }

    #[test]
    fn row_density_matches_structural_character() {
        let a = structural_biharmonic_sq(18, 2.65).unwrap();
        let per_row = a.nnz() as f64 / a.n_rows() as f64;
        // 41-point interior stencil, minus boundary truncation.
        assert!(per_row > 25.0 && per_row <= 41.0, "{per_row}");
    }

    #[test]
    fn convergent_target_rejected() {
        assert!(structural_biharmonic_sq(10, 0.9).is_err());
    }
}
