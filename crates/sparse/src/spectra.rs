//! Spectral estimation: power iteration and symmetric Lanczos.
//!
//! Used to reproduce the `cond(A)`, `cond(D^{-1}A)` and `rho(M)` columns of
//! the paper's Table 1, and by the generators to tune their free parameters
//! until the measured spectral radius of the Jacobi iteration matrix matches
//! the UFMC original.

use crate::{blas1, CsrMatrix, Result, SparseError};

/// Anything that can apply itself to a vector; lets the estimators work on
/// implicitly represented operators such as `B = I - D^{-1}A` without
/// forming them.
pub trait LinearOperator {
    /// Operator dimension (square).
    fn dim(&self) -> usize;
    /// `y = Op(x)`.
    fn apply(&self, x: &[f64], y: &mut [f64]);
}

impl LinearOperator for CsrMatrix {
    fn dim(&self) -> usize {
        self.n_rows()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.spmv(x, y).expect("operator dimensions verified by caller");
    }
}

/// Options for [`power_iteration`].
#[derive(Debug, Clone, Copy)]
pub struct PowerOptions {
    /// Maximum number of iterations.
    pub max_iters: usize,
    /// Relative change in the eigenvalue estimate below which we stop.
    pub tol: f64,
}

impl Default for PowerOptions {
    fn default() -> Self {
        PowerOptions { max_iters: 5000, tol: 1e-10 }
    }
}

/// Estimates the spectral radius (dominant eigenvalue magnitude) of `op`
/// with the power method, starting from a fixed deterministic vector.
///
/// Converges to `rho(op)` whenever the dominant eigenvalue is simple and the
/// start vector has a component in its direction; the deterministic start
/// (all-ones plus a small sine perturbation) is adequate for the structured
/// matrices in this workspace. For operators with complex dominant pairs
/// (possible for general `B`), the Rayleigh-quotient magnitude still
/// oscillates; we return the maximum over the last 10% of iterations, a
/// standard safeguard.
pub fn power_iteration<O: LinearOperator>(op: &O, opts: PowerOptions) -> Result<f64> {
    let n = op.dim();
    if n == 0 {
        return Ok(0.0);
    }
    if opts.max_iters == 0 {
        return Err(SparseError::NoConvergence { what: "power iteration with zero budget", iterations: 0 });
    }
    let mut x: Vec<f64> = (0..n).map(|i| 1.0 + 0.3 * ((i as f64) * 0.7).sin()).collect();
    let nx = blas1::norm2(&x);
    blas1::scale(1.0 / nx, &mut x);
    let mut y = vec![0.0; n];
    let mut prev = f64::INFINITY;
    let mut tail_max: f64 = 0.0;
    let tail_start = (opts.max_iters - opts.max_iters / 10).saturating_sub(1);
    for k in 0..opts.max_iters {
        op.apply(&x, &mut y);
        let norm = blas1::norm2(&y);
        if norm < 1e-300 {
            // x in the null space: the operator annihilated the iterate.
            return Ok(0.0);
        }
        let lambda = norm; // ||Op x|| with ||x|| = 1
        if k >= tail_start {
            tail_max = tail_max.max(lambda);
        }
        if (lambda - prev).abs() <= opts.tol * lambda.abs().max(1e-300) {
            return Ok(lambda);
        }
        prev = lambda;
        for (xi, &yi) in x.iter_mut().zip(&y) {
            *xi = yi / norm;
        }
    }
    // Did not meet tol; return the safeguarded tail estimate rather than
    // erroring — Table 1 values only need ~4 significant digits.
    Ok(if tail_max > 0.0 { tail_max } else { prev })
}

/// Result of a symmetric Lanczos run.
#[derive(Debug, Clone)]
pub struct LanczosEstimate {
    /// Estimated smallest eigenvalue.
    pub lambda_min: f64,
    /// Estimated largest eigenvalue.
    pub lambda_max: f64,
    /// Number of Lanczos steps actually performed.
    pub steps: usize,
}

impl LanczosEstimate {
    /// Condition-number estimate `lambda_max / lambda_min` for an SPD
    /// operator. Returns `f64::INFINITY` when `lambda_min <= 0` within
    /// rounding.
    pub fn cond(&self) -> f64 {
        if self.lambda_min <= 0.0 {
            f64::INFINITY
        } else {
            self.lambda_max / self.lambda_min
        }
    }
}

/// Estimates the extreme eigenvalues of a **symmetric** operator with the
/// Lanczos process (full reorthogonalisation, since our `m` is small).
///
/// `m` is the Krylov dimension; `m = 100` resolves the extreme eigenvalues
/// of all Table 1 matrices to the accuracy needed for condition-number
/// reporting.
pub fn lanczos_extreme<O: LinearOperator>(op: &O, m: usize) -> Result<LanczosEstimate> {
    let n = op.dim();
    if n == 0 {
        return Err(SparseError::NoConvergence { what: "lanczos on empty operator", iterations: 0 });
    }
    let m = m.min(n);
    let mut alphas: Vec<f64> = Vec::with_capacity(m);
    let mut betas: Vec<f64> = Vec::with_capacity(m);
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m);

    let mut q: Vec<f64> = (0..n).map(|i| 1.0 + 0.3 * ((i as f64) * 1.3).cos()).collect();
    let nq = blas1::norm2(&q);
    blas1::scale(1.0 / nq, &mut q);

    let mut w = vec![0.0; n];
    for j in 0..m {
        op.apply(&q, &mut w);
        let alpha = blas1::dot(&q, &w);
        alphas.push(alpha);
        blas1::axpy(-alpha, &q, &mut w);
        if let Some(prev) = basis.last() {
            let beta_prev = *betas.last().unwrap();
            blas1::axpy(-beta_prev, prev, &mut w);
        }
        // Full reorthogonalisation (twice is enough).
        for _ in 0..2 {
            for qb in &basis {
                let c = blas1::dot(qb, &w);
                blas1::axpy(-c, qb, &mut w);
            }
            let c = blas1::dot(&q, &w);
            blas1::axpy(-c, &q, &mut w);
        }
        let beta = blas1::norm2(&w);
        basis.push(q.clone());
        if beta < 1e-13 * alphas[0].abs().max(1.0) || j + 1 == m {
            // Krylov space exhausted (or budget reached): diagonalise T.
            let steps = j + 1;
            let (lo, hi) = tridiag_extreme_eigenvalues(&alphas, &betas);
            return Ok(LanczosEstimate { lambda_min: lo, lambda_max: hi, steps });
        }
        betas.push(beta);
        for (qi, &wi) in q.iter_mut().zip(&w) {
            *qi = wi / beta;
        }
    }
    unreachable!("loop always returns at j + 1 == m");
}

/// Extreme eigenvalues of the symmetric tridiagonal matrix with diagonal
/// `alphas` and off-diagonal `betas`, via bisection on the Sturm sequence.
fn tridiag_extreme_eigenvalues(alphas: &[f64], betas: &[f64]) -> (f64, f64) {
    let m = alphas.len();
    assert!(betas.len() + 1 >= m, "betas must have at least m - 1 entries");
    // Gershgorin bounds.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for i in 0..m {
        let b_prev = if i > 0 { betas[i - 1].abs() } else { 0.0 };
        let b_next = if i < m - 1 { betas[i].abs() } else { 0.0 };
        lo = lo.min(alphas[i] - b_prev - b_next);
        hi = hi.max(alphas[i] + b_prev + b_next);
    }
    if m == 1 {
        return (alphas[0], alphas[0]);
    }
    // Count of eigenvalues < x via the Sturm sequence of T - xI.
    let count_below = |x: f64| -> usize {
        let mut count = 0;
        let mut d = alphas[0] - x;
        if d < 0.0 {
            count += 1;
        }
        for i in 1..m {
            let b2 = betas[i - 1] * betas[i - 1];
            let denom = if d.abs() < 1e-300 { 1e-300_f64.copysign(d + 1e-300) } else { d };
            d = alphas[i] - x - b2 / denom;
            if d < 0.0 {
                count += 1;
            }
        }
        count
    };
    let bisect = |target: usize, mut a: f64, mut b: f64| -> f64 {
        for _ in 0..200 {
            let mid = 0.5 * (a + b);
            if count_below(mid) >= target {
                b = mid;
            } else {
                a = mid;
            }
            if (b - a).abs() <= 1e-14 * b.abs().max(1.0) {
                break;
            }
        }
        0.5 * (a + b)
    };
    let width = (hi - lo).abs().max(1.0) * 1e-6;
    let smallest = bisect(1, lo - width, hi + width);
    let largest = bisect(m, lo - width, hi + width);
    (smallest, largest)
}

/// Condition number estimate of a symmetric matrix `A` via Lanczos:
/// `|lambda|_max / |lambda|_min`.
pub fn cond_symmetric(a: &CsrMatrix, krylov_dim: usize) -> Result<f64> {
    let est = lanczos_extreme(a, krylov_dim)?;
    let lo = est.lambda_min.abs();
    let hi = est.lambda_max.abs().max(lo);
    if lo <= 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok(hi / lo)
}

/// `cond(D^{-1}A)` for SPD `A`, computed on the symmetrically scaled
/// similar operator `D^{-1/2} A D^{-1/2}` so Lanczos stays applicable.
pub fn cond_jacobi_scaled(a: &CsrMatrix) -> Result<f64> {
    let d = a.nonzero_diagonal()?;
    let dis: Vec<f64> = d.iter().map(|&v| 1.0 / v.abs().sqrt()).collect();
    let op = ScaledOperator { a, scale: &dis };
    let est = lanczos_extreme(&op, 160)?;
    let lo = est.lambda_min.abs();
    let hi = est.lambda_max.abs().max(lo);
    if lo <= 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok(hi / lo)
}

/// The symmetric operator `S A S` with `S = diag(scale)` — the
/// similarity transform that lets Lanczos handle `D^{-1}A`.
pub(crate) struct ScaledOperator<'a> {
    pub(crate) a: &'a CsrMatrix,
    pub(crate) scale: &'a [f64],
}

impl LinearOperator for ScaledOperator<'_> {
    fn dim(&self) -> usize {
        self.a.n_rows()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let sx: Vec<f64> = x.iter().zip(self.scale).map(|(&v, &s)| v * s).collect();
        self.a.spmv(&sx, y).expect("dimensions fixed");
        for (yi, &s) in y.iter_mut().zip(self.scale) {
            *yi *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::laplacian_1d;

    #[test]
    fn power_iteration_diagonal() {
        let a = CsrMatrix::from_diagonal(&[0.25, -0.75, 0.5]);
        let rho = power_iteration(&a, PowerOptions::default()).unwrap();
        assert!((rho - 0.75).abs() < 1e-8, "{rho}");
    }

    #[test]
    fn power_iteration_laplacian() {
        let n = 40;
        let a = laplacian_1d(n);
        let rho = power_iteration(&a, PowerOptions::default()).unwrap();
        let exact = 2.0 - 2.0 * ((n as f64) * std::f64::consts::PI / (n as f64 + 1.0)).cos();
        assert!((rho - exact).abs() < 1e-6, "{rho} vs {exact}");
    }

    #[test]
    fn power_iteration_zero_budget_is_an_error_not_a_panic() {
        // regression: max_iters == 0 used to underflow the tail window
        let a = CsrMatrix::from_diagonal(&[1.0, 2.0]);
        let r = power_iteration(&a, PowerOptions { max_iters: 0, tol: 1e-10 });
        assert!(r.is_err());
    }

    #[test]
    fn power_iteration_zero_matrix() {
        let a = CsrMatrix::from_raw(3, 3, vec![0, 0, 0, 0], vec![], vec![]).unwrap();
        assert_eq!(power_iteration(&a, PowerOptions::default()).unwrap(), 0.0);
    }

    #[test]
    fn lanczos_matches_exact_laplacian_spectrum() {
        let n = 60;
        let a = laplacian_1d(n);
        let est = lanczos_extreme(&a, n).unwrap();
        let pi = std::f64::consts::PI;
        let exact_min = 2.0 - 2.0 * (pi / (n as f64 + 1.0)).cos();
        let exact_max = 2.0 - 2.0 * ((n as f64) * pi / (n as f64 + 1.0)).cos();
        assert!((est.lambda_min - exact_min).abs() < 1e-8, "{} vs {exact_min}", est.lambda_min);
        assert!((est.lambda_max - exact_max).abs() < 1e-8, "{} vs {exact_max}", est.lambda_max);
        assert!(est.cond() > 1.0);
    }

    #[test]
    fn lanczos_identity_cond_is_one() {
        let a = CsrMatrix::identity(30);
        let est = lanczos_extreme(&a, 10).unwrap();
        assert!((est.lambda_min - 1.0).abs() < 1e-10);
        assert!((est.lambda_max - 1.0).abs() < 1e-10);
        assert!((est.cond() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn cond_jacobi_scaled_diagonal_matrix_is_one() {
        // For a diagonal matrix, D^{-1}A = I.
        let a = CsrMatrix::from_diagonal(&[2.0, 5.0, 9.0, 11.0]);
        let c = cond_jacobi_scaled(&a).unwrap();
        assert!((c - 1.0).abs() < 1e-9, "{c}");
    }

    #[test]
    fn cond_symmetric_diag() {
        let a = CsrMatrix::from_diagonal(&[1.0, 10.0]);
        let c = cond_symmetric(&a, 2).unwrap();
        assert!((c - 10.0).abs() < 1e-9);
    }

    #[test]
    fn tridiag_extremes_small() {
        // T = [[2, 1], [1, 2]] -> eigenvalues 1 and 3.
        let (lo, hi) = tridiag_extreme_eigenvalues(&[2.0, 2.0], &[1.0]);
        assert!((lo - 1.0).abs() < 1e-10);
        assert!((hi - 3.0).abs() < 1e-10);
    }
}
