//! Coordinate-format sparse matrices, used for assembly.
//!
//! [`CooMatrix`] is the mutable "builder" format: entries can be pushed in
//! any order and duplicates are summed on conversion to CSR, matching the
//! usual finite-element assembly workflow.

use crate::{CsrMatrix, Result, SparseError};

/// A sparse matrix in coordinate (triplet) format.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CooMatrix {
    n_rows: usize,
    n_cols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl CooMatrix {
    /// Creates an empty `n_rows x n_cols` matrix.
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        CooMatrix { n_rows, n_cols, rows: Vec::new(), cols: Vec::new(), vals: Vec::new() }
    }

    /// Creates an empty matrix with room for `cap` entries.
    pub fn with_capacity(n_rows: usize, n_cols: usize, cap: usize) -> Self {
        CooMatrix {
            n_rows,
            n_cols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored triplets (duplicates counted separately).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Adds `value` at `(row, col)`. Duplicate positions accumulate.
    ///
    /// Zero values are kept; they are dropped when converting to CSR.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        if row >= self.n_rows || col >= self.n_cols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                n_rows: self.n_rows,
                n_cols: self.n_cols,
            });
        }
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(value);
        Ok(())
    }

    /// Adds `value` at `(row, col)` and, if off-diagonal, also at `(col, row)`.
    pub fn push_sym(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        self.push(row, col, value)?;
        if row != col {
            self.push(col, row, value)?;
        }
        Ok(())
    }

    /// Iterates over the stored triplets.
    pub fn triplets(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.vals)
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Converts to CSR, summing duplicates and dropping explicit zeros
    /// produced by cancellation or pushed directly.
    pub fn to_csr(&self) -> CsrMatrix {
        // Counting sort by row, then sort each row segment by column and
        // compress duplicates. O(nnz log nnz_row) overall.
        let mut counts = vec![0usize; self.n_rows + 1];
        for &r in &self.rows {
            counts[r + 1] += 1;
        }
        for i in 0..self.n_rows {
            counts[i + 1] += counts[i];
        }
        let mut order: Vec<usize> = vec![0; self.vals.len()];
        {
            let mut next = counts.clone();
            for (k, &r) in self.rows.iter().enumerate() {
                order[next[r]] = k;
                next[r] += 1;
            }
        }

        let mut row_ptr = Vec::with_capacity(self.n_rows + 1);
        let mut col_idx = Vec::with_capacity(self.vals.len());
        let mut values = Vec::with_capacity(self.vals.len());
        row_ptr.push(0);

        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..self.n_rows {
            scratch.clear();
            for &k in &order[counts[r]..counts[r + 1]] {
                scratch.push((self.cols[k], self.vals[k]));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut v = 0.0;
                while i < scratch.len() && scratch[i].0 == c {
                    v += scratch[i].1;
                    i += 1;
                }
                if v != 0.0 {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }

        CsrMatrix::from_raw_unchecked(self.n_rows, self.n_cols, row_ptr, col_idx, values)
    }
}

impl From<&CsrMatrix> for CooMatrix {
    fn from(csr: &CsrMatrix) -> Self {
        let mut coo = CooMatrix::with_capacity(csr.n_rows(), csr.n_cols(), csr.nnz());
        for row in 0..csr.n_rows() {
            for (col, val) in csr.row_iter(row) {
                coo.push(row, col, val).expect("CSR indices are in bounds");
            }
        }
        coo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_convert() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 2.0).unwrap();
        coo.push(1, 1, 3.0).unwrap();
        coo.push(2, 2, 4.0).unwrap();
        coo.push(0, 2, 1.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 4);
        assert_eq!(csr.get(0, 0), 2.0);
        assert_eq!(csr.get(0, 2), 1.0);
        assert_eq!(csr.get(2, 2), 4.0);
        assert_eq!(csr.get(1, 0), 0.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.5).unwrap();
        coo.push(0, 1, 2.5).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.get(0, 1), 4.0);
    }

    #[test]
    fn cancelling_duplicates_are_dropped() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(1, 0, 1.0).unwrap();
        coo.push(1, 0, -1.0).unwrap();
        coo.push(1, 1, 5.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.get(1, 0), 0.0);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut coo = CooMatrix::new(2, 2);
        assert!(matches!(coo.push(2, 0, 1.0), Err(SparseError::IndexOutOfBounds { .. })));
        assert!(matches!(coo.push(0, 5, 1.0), Err(SparseError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn push_sym_mirrors_offdiagonal() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push_sym(0, 1, 7.0).unwrap();
        coo.push_sym(2, 2, 3.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.get(0, 1), 7.0);
        assert_eq!(csr.get(1, 0), 7.0);
        assert_eq!(csr.get(2, 2), 3.0);
        assert_eq!(csr.nnz(), 3);
    }

    #[test]
    fn unsorted_input_sorted_on_conversion() {
        let mut coo = CooMatrix::new(2, 4);
        coo.push(1, 3, 1.0).unwrap();
        coo.push(0, 2, 2.0).unwrap();
        coo.push(1, 0, 3.0).unwrap();
        coo.push(0, 0, 4.0).unwrap();
        let csr = coo.to_csr();
        assert!(csr.validate().is_ok());
        assert_eq!(csr.get(1, 0), 3.0);
        assert_eq!(csr.get(0, 0), 4.0);
    }

    #[test]
    fn roundtrip_csr_coo_csr() {
        let mut coo = CooMatrix::new(3, 3);
        for i in 0..3 {
            coo.push(i, i, (i + 1) as f64).unwrap();
        }
        coo.push(0, 2, -1.0).unwrap();
        let csr = coo.to_csr();
        let back = CooMatrix::from(&csr).to_csr();
        assert_eq!(csr, back);
    }
}
