//! Explicit four-lane `f64` vectors for the sweep and SpMV kernels.
//!
//! Stable-Rust data parallelism: [`f64x4`] is a `#[repr(transparent)]`
//! newtype over `[f64; 4]` whose fixed-length lane expressions LLVM's
//! autovectorizer reliably lowers to packed SSE2 instructions (and to
//! AVX under `-C target-cpu=native`) — no nightly `portable_simd`
//! required. The CI `bench-smoke` matrix runs the kernels built on this
//! module under both flag sets so a lowering regression fails loudly.
//!
//! # The accumulation-order contract
//!
//! The vectorized sweep tiers built on this type are required to be
//! **bit-identical** to their scalar counterparts: each lane is one row,
//! and a lane performs exactly the scalar op sequence in the scalar
//! order. That is why the hot loops use [`f64x4::mul`] followed by
//! [`f64x4::sub`] — two roundings, the same as the scalar
//! `acc -= v * x` — and *not* [`f64x4::mul_add`]: a fused multiply-add
//! rounds once, which changes the bits, and on targets without FMA
//! hardware it lowers to a libm soft-float call, which is also far
//! slower. `mul_add` is still provided for estimator-style callers that
//! tolerate contraction and compile with FMA enabled.

use std::ops::{Add, Mul, Sub};

/// Number of lanes in a [`f64x4`].
pub const LANES: usize = 4;

/// A four-lane `f64` vector. Named after the `std::simd` convention the
/// stable channel does not yet expose.
#[allow(non_camel_case_types)]
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(transparent)]
pub struct f64x4(pub [f64; 4]);

impl f64x4 {
    /// All lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: f64) -> Self {
        f64x4([v; 4])
    }

    /// Loads the first four elements of `s` (panics when `s.len() < 4`).
    #[inline(always)]
    pub fn load(s: &[f64]) -> Self {
        let a: &[f64; 4] = s[..4].try_into().expect("f64x4::load needs 4 lanes");
        f64x4(*a)
    }

    /// Stores the lanes into the first four elements of `out`.
    #[inline(always)]
    pub fn store(self, out: &mut [f64]) {
        out[..4].copy_from_slice(&self.0);
    }

    /// Gathers `src[idx[j]]` per lane from the first four indices of
    /// `idx` (the ELL column layout keeps indices as `u32`).
    #[inline(always)]
    pub fn gather_u32(src: &[f64], idx: &[u32]) -> Self {
        f64x4([
            src[idx[0] as usize],
            src[idx[1] as usize],
            src[idx[2] as usize],
            src[idx[3] as usize],
        ])
    }

    /// Lane-wise fused multiply-add `self * b + c` (one rounding per
    /// lane). **Not** used by the bit-exact sweep tiers — see the module
    /// docs — and only fast on targets compiled with FMA support.
    #[inline(always)]
    pub fn mul_add(self, b: Self, c: Self) -> Self {
        f64x4([
            self.0[0].mul_add(b.0[0], c.0[0]),
            self.0[1].mul_add(b.0[1], c.0[1]),
            self.0[2].mul_add(b.0[2], c.0[2]),
            self.0[3].mul_add(b.0[3], c.0[3]),
        ])
    }

    /// Horizontal sum, left to right (lane 0 first — the order a scalar
    /// loop over the lanes would use).
    #[inline(always)]
    pub fn reduce_sum(self) -> f64 {
        ((self.0[0] + self.0[1]) + self.0[2]) + self.0[3]
    }
}

impl Add for f64x4 {
    type Output = f64x4;
    #[inline(always)]
    fn add(self, o: f64x4) -> f64x4 {
        f64x4([
            self.0[0] + o.0[0],
            self.0[1] + o.0[1],
            self.0[2] + o.0[2],
            self.0[3] + o.0[3],
        ])
    }
}

impl Sub for f64x4 {
    type Output = f64x4;
    #[inline(always)]
    fn sub(self, o: f64x4) -> f64x4 {
        f64x4([
            self.0[0] - o.0[0],
            self.0[1] - o.0[1],
            self.0[2] - o.0[2],
            self.0[3] - o.0[3],
        ])
    }
}

impl Mul for f64x4 {
    type Output = f64x4;
    #[inline(always)]
    fn mul(self, o: f64x4) -> f64x4 {
        f64x4([
            self.0[0] * o.0[0],
            self.0[1] * o.0[1],
            self.0[2] * o.0[2],
            self.0[3] * o.0[3],
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_arithmetic_matches_scalar_bitwise() {
        let a = f64x4([1.5, -2.25, 1.0e-300, f64::INFINITY]);
        let b = f64x4([3.0, 0.1, 7.0e299, 2.0]);
        let c = f64x4([0.5, -0.5, 1.0, -1.0]);
        let fused = a.mul_add(b, c);
        let two_step = a * b + c;
        for j in 0..LANES {
            assert_eq!((a + b).0[j].to_bits(), (a.0[j] + b.0[j]).to_bits());
            assert_eq!((a - b).0[j].to_bits(), (a.0[j] - b.0[j]).to_bits());
            assert_eq!((a * b).0[j].to_bits(), (a.0[j] * b.0[j]).to_bits());
            assert_eq!(fused.0[j].to_bits(), a.0[j].mul_add(b.0[j], c.0[j]).to_bits());
            assert_eq!(two_step.0[j].to_bits(), (a.0[j] * b.0[j] + c.0[j]).to_bits());
        }
    }

    #[test]
    fn load_store_gather_roundtrip() {
        let src = [10.0, 20.0, 30.0, 40.0, 50.0];
        let v = f64x4::load(&src[1..]);
        assert_eq!(v.0, [20.0, 30.0, 40.0, 50.0]);
        let mut out = [0.0; 6];
        v.store(&mut out[2..]);
        assert_eq!(out, [0.0, 0.0, 20.0, 30.0, 40.0, 50.0]);
        let idx: [u32; 4] = [4, 0, 2, 2];
        let g = f64x4::gather_u32(&src, &idx);
        assert_eq!(g.0, [50.0, 10.0, 30.0, 30.0]);
    }

    #[test]
    fn splat_and_reduce() {
        assert_eq!(f64x4::splat(2.5).0, [2.5; 4]);
        // reduce order is ((l0 + l1) + l2) + l3, asserted bitwise
        let v = f64x4([1.0e16, 1.0, -1.0e16, 3.0]);
        assert_eq!(v.reduce_sum().to_bits(), (((1.0e16_f64 + 1.0) + -1.0e16) + 3.0).to_bits());
    }

    #[test]
    #[should_panic(expected = "range end index 4")]
    fn short_load_panics() {
        let _ = f64x4::load(&[1.0, 2.0, 3.0]);
    }
}
