//! Precompiled block-local kernel plans.
//!
//! The paper's core performance claim (§3.3, Algorithm 1) is that the `k`
//! local Jacobi sweeps of async-(k) are nearly free because the subdomain
//! lives in the multiprocessor's cache. Realising that on any hardware
//! requires the *data layout* to cooperate: the sweep loop must touch a
//! packed local operator, not re-slice the global matrix on every pass.
//!
//! A [`BlockPlan`] compiles a `(matrix, partition)` pair once, at kernel
//! construction, into per-block structures sized for exactly that:
//!
//! * a **packed local submatrix** per block — CSR over block-rebased
//!   column indices with the diagonal extracted and pre-inverted, so the
//!   inner sweep has no `col != row` branch and no division;
//! * an **ELL-packed variant** for short-row blocks — fixed-width,
//!   column-major, zero-padded — giving the Jacobi sweep a branch-free,
//!   SIMD-friendly inner loop (padding entries point at a dedicated
//!   always-zero slot so they are numerically inert for *every* input,
//!   including non-finite iterates of divergent runs);
//! * a **packed halo segment** per block — the off-block `(column, value)`
//!   pairs of its rows, contiguous in memory — so freezing the off-block
//!   contribution `s_i = b_i − Σ_{j∉block} a_ij x_j` is a single linear
//!   gather instead of two span-sliced passes over the global CSR.
//!
//! Entry order within each row is preserved from the source CSR, so a
//! sweep over the plan is **bit-identical** to the same sweep over the
//! global matrix (floating-point accumulation order is unchanged). The
//! equivalence proptests in the workspace root assert exactly this.

use crate::par::ParContext;
use crate::partition::{RowBlock, RowPartition};
use crate::stencil::{StencilBlock, StencilDescriptor};
use crate::{CsrMatrix, Result, SparseError};

/// Local-row widths up to this many off-diagonal entries get an
/// ELL-packed variant of their block (beyond it, padding waste and cache
/// pressure outweigh the branch-free loop). Raised from 8 when the
/// four-lane vectorized sweep landed: with four rows per iteration the
/// padding slots ride along in lanes that were already paid for, so wider
/// rows amortize — e.g. the 9-point FV stencil (width 8, previously right
/// at the edge) and moderately filled random rows now stay on the packed
/// path.
pub const ELL_MAX_WIDTH: usize = 12;

/// Below this many source nonzeros [`BlockPlan::compile`] stays on one
/// thread — scoped-thread spawn overhead would dominate the compile.
pub const PAR_COMPILE_MIN_NNZ: usize = 200_000;

/// Which sweep implementation a block's local operator dispatches to.
/// Selected per block at [`BlockPlan`] compile time; the kernels match on
/// it once per block update, outside the hot loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepTier {
    /// Packed local CSR rows — the fallback every block supports.
    Csr,
    /// Scalar loop over the ELL layout (blocks too narrow to fill
    /// four-lane groups).
    Ell,
    /// Four-row [`crate::simd::f64x4`] lanes over the ELL layout.
    EllSimd,
    /// Matrix-free constant-coefficient stencil runs — no index loads.
    Stencil,
}

/// A fixed-width, column-major, zero-padded copy of one block's local
/// operator (diagonal excluded), for branch-free Jacobi sweeps.
///
/// Layout: `cols[k * rows + r]` / `vals[k * rows + r]` hold row `r`'s
/// `k`-th local off-diagonal entry, in source CSR order. Padding slots
/// have value `0.0` and column index `rows` — one past the local range —
/// which the sweep kernel maps to a scratch slot it keeps at `0.0`, so a
/// padded entry contributes exactly `acc -= 0.0 * 0.0` and never perturbs
/// the accumulation, even when the iterate holds `inf`/`NaN`.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockEll {
    rows: usize,
    width: usize,
    cols: Vec<u32>,
    vals: Vec<f64>,
}

impl BlockEll {
    /// Rows in the block.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Padded entries per row.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Column-major, block-rebased column indices (padding = `rows`).
    #[inline]
    pub fn cols(&self) -> &[u32] {
        &self.cols
    }

    /// Column-major values (padding = `0.0`).
    #[inline]
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }
}

/// A compiled `(matrix, partition)` pair: packed local operators, packed
/// halos, pre-inverted diagonal, coupling topology, per-block costs.
///
/// # Examples
///
/// ```
/// use abr_sparse::{gen, BlockPlan, RowPartition};
///
/// let a = gen::laplacian_2d_5pt(4);
/// let p = RowPartition::uniform(16, 4).unwrap();
/// let plan = BlockPlan::compile(&a, &p).unwrap();
/// assert_eq!(plan.n_blocks(), 4);
/// // 16 diagonal + 2*3*4 in-block couplings
/// assert_eq!(plan.nnz_local(), 40);
/// assert_eq!(plan.nnz_local() + plan.nnz_halo(), a.nnz());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BlockPlan {
    n: usize,
    /// Row range starts per block, length `n_blocks + 1`.
    block_offsets: Vec<usize>,
    /// Pre-inverted diagonal, `1 / a_rr` per row.
    inv_diag: Vec<f64>,
    /// Packed local operator (diagonal excluded), block-rebased `u32`
    /// columns, rows concatenated in global row order.
    local_row_ptr: Vec<usize>,
    local_cols: Vec<u32>,
    local_vals: Vec<f64>,
    /// Packed halo: off-block entries with global columns, rows
    /// concatenated in global row order.
    halo_row_ptr: Vec<usize>,
    halo_cols: Vec<usize>,
    halo_vals: Vec<f64>,
    /// Per block: ELL-packed local operator for short-row blocks.
    ell: Vec<Option<BlockEll>>,
    /// Per block: matrix-free stencil runs, when compiled against a
    /// verified [`StencilDescriptor`].
    stencil: Vec<Option<StencilBlock>>,
    /// Per block: the sweep implementation selected at compile time.
    tier: Vec<SweepTier>,
    /// Per block: total source nonzeros of its rows (virtual cost).
    block_nnz: Vec<f64>,
    /// Per block: sorted indices of the other blocks it reads.
    neighbors: Vec<Vec<usize>>,
    /// Offsets into the flattened `neighbors` — kept as Vec<Vec> for
    /// simple borrowing; blocks are few compared to rows.
    widest_block: usize,
}

/// One block's compiled structures with block-relative row pointers,
/// produced independently of every other block and concatenated in block
/// order by the merge in [`BlockPlan::compile_with_ctx`].
struct CompiledBlock {
    inv_diag: Vec<f64>,
    local_ptr: Vec<usize>,
    local_cols: Vec<u32>,
    local_vals: Vec<f64>,
    halo_ptr: Vec<usize>,
    halo_cols: Vec<usize>,
    halo_vals: Vec<f64>,
    ell: Option<BlockEll>,
    stencil: Option<StencilBlock>,
    tier: SweepTier,
    nnz: f64,
    neighbors: Vec<usize>,
}

impl BlockPlan {
    /// Compiles the plan. Fails with [`SparseError::ZeroDiagonal`] when a
    /// row has no (or a zero) diagonal entry, like the kernels it feeds.
    pub fn compile(a: &CsrMatrix, partition: &RowPartition) -> Result<BlockPlan> {
        Self::compile_with_stencil(a, partition, None)
    }

    /// Compiles the plan with an optional matrix-free stencil tier. The
    /// descriptor is [`StencilDescriptor::verify`]-ed against `a` first —
    /// an `Err` (rather than a silent fallback) when it does not describe
    /// the matrix exactly, so a caller opting a hand-loaded matrix in
    /// learns immediately that the fast path would have been wrong.
    ///
    /// Large matrices (≥ [`PAR_COMPILE_MIN_NNZ`] nonzeros) compile their
    /// blocks concurrently on one thread per available core; the result is
    /// bit-identical to the sequential compile (see
    /// [`BlockPlan::compile_with_ctx`] for the argument).
    pub fn compile_with_stencil(
        a: &CsrMatrix,
        partition: &RowPartition,
        descriptor: Option<&StencilDescriptor>,
    ) -> Result<BlockPlan> {
        let threads = if a.nnz() >= PAR_COMPILE_MIN_NNZ {
            std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1).min(8)
        } else {
            1
        };
        Self::compile_with_ctx(a, partition, descriptor, ParContext::new(threads))
    }

    /// Compiles the plan with an explicit [`ParContext`] for the per-block
    /// compile fan-out.
    ///
    /// Each block's packed structures depend only on `(a, partition,
    /// descriptor)` restricted to that block's rows, so blocks compile
    /// independently (in parallel) and are concatenated **in block order**
    /// with their row pointers rebased. Every array in the result is
    /// therefore byte-for-byte identical for every thread count, and the
    /// first error in block order matches the sequential compile's first
    /// error (each block reports its own lowest failing row).
    pub fn compile_with_ctx(
        a: &CsrMatrix,
        partition: &RowPartition,
        descriptor: Option<&StencilDescriptor>,
        ctx: ParContext,
    ) -> Result<BlockPlan> {
        if let Some(d) = descriptor {
            d.verify(a)?;
        }
        assert!(a.is_square(), "block plans need a square matrix");
        assert_eq!(partition.n(), a.n_rows(), "partition must cover the matrix");
        let n = a.n_rows();
        let blocks = partition.blocks();
        let n_blocks = partition.len();

        let mut block_offsets = Vec::with_capacity(n_blocks + 1);
        block_offsets.extend(blocks.iter().map(|b| b.start));
        block_offsets.push(n);

        let compiled = ctx.map_indexed(n_blocks, |b| {
            Self::compile_block(a, partition, &blocks[b], descriptor)
        });

        // Deterministic merge: blocks concatenate in block order with row
        // pointers rebased by the running totals, reproducing exactly the
        // arrays the single-pass sequential loop would have built.
        let total_local: usize =
            compiled.iter().map(|c| c.as_ref().map_or(0, |c| c.local_cols.len())).sum();
        let total_halo: usize =
            compiled.iter().map(|c| c.as_ref().map_or(0, |c| c.halo_cols.len())).sum();
        let mut inv_diag = vec![0.0f64; n];
        let mut local_row_ptr = Vec::with_capacity(n + 1);
        let mut local_cols: Vec<u32> = Vec::with_capacity(total_local);
        let mut local_vals: Vec<f64> = Vec::with_capacity(total_local);
        let mut halo_row_ptr = Vec::with_capacity(n + 1);
        let mut halo_cols: Vec<usize> = Vec::with_capacity(total_halo);
        let mut halo_vals: Vec<f64> = Vec::with_capacity(total_halo);
        let mut ell = Vec::with_capacity(n_blocks);
        let mut stencil = Vec::with_capacity(n_blocks);
        let mut tier = Vec::with_capacity(n_blocks);
        let mut block_nnz = Vec::with_capacity(n_blocks);
        let mut neighbors: Vec<Vec<usize>> = Vec::with_capacity(n_blocks);
        let mut widest_block = 0usize;

        local_row_ptr.push(0);
        halo_row_ptr.push(0);

        for (blk, part) in blocks.iter().zip(compiled) {
            let part = part?;
            let nb = blk.len();
            widest_block = widest_block.max(nb);
            inv_diag[blk.start..blk.end].copy_from_slice(&part.inv_diag);
            let local_base = local_cols.len();
            let halo_base = halo_cols.len();
            for i in 1..=nb {
                local_row_ptr.push(local_base + part.local_ptr[i]);
                halo_row_ptr.push(halo_base + part.halo_ptr[i]);
            }
            local_cols.extend_from_slice(&part.local_cols);
            local_vals.extend_from_slice(&part.local_vals);
            halo_cols.extend_from_slice(&part.halo_cols);
            halo_vals.extend_from_slice(&part.halo_vals);
            ell.push(part.ell);
            stencil.push(part.stencil);
            tier.push(part.tier);
            block_nnz.push(part.nnz);
            neighbors.push(part.neighbors);
        }

        Ok(BlockPlan {
            n,
            block_offsets,
            inv_diag,
            local_row_ptr,
            local_cols,
            local_vals,
            halo_row_ptr,
            halo_cols,
            halo_vals,
            ell,
            stencil,
            tier,
            block_nnz,
            neighbors,
            widest_block,
        })
    }

    /// Compiles one block's packed structures, self-contained: row
    /// pointers are block-relative (rebased during the merge) and the
    /// content per row is computed exactly as the sequential loop did, so
    /// concatenation in block order reproduces it bit-for-bit.
    fn compile_block(
        a: &CsrMatrix,
        partition: &RowPartition,
        blk: &RowBlock,
        descriptor: Option<&StencilDescriptor>,
    ) -> Result<CompiledBlock> {
        let nb = blk.len();
        let mut inv_diag = vec![0.0f64; nb];
        let mut local_ptr = Vec::with_capacity(nb + 1);
        let mut local_cols: Vec<u32> = Vec::new();
        let mut local_vals: Vec<f64> = Vec::new();
        let mut halo_ptr = Vec::with_capacity(nb + 1);
        let mut halo_cols: Vec<usize> = Vec::new();
        let mut halo_vals: Vec<f64> = Vec::new();
        local_ptr.push(0);
        halo_ptr.push(0);
        let mut nnz = 0usize;
        let mut max_local_width = 0usize;
        let mut nbr_seen = std::collections::BTreeSet::new();

        for r in blk.start..blk.end {
            let (cols, vals) = a.row(r);
            nnz += cols.len();
            let mut found_diag = false;
            let local_start = local_cols.len();
            for (&c, &v) in cols.iter().zip(vals) {
                if c == r {
                    if v != 0.0 {
                        inv_diag[r - blk.start] = 1.0 / v;
                        found_diag = true;
                    }
                } else if blk.contains(c) {
                    local_cols.push((c - blk.start) as u32);
                    local_vals.push(v);
                } else {
                    halo_cols.push(c);
                    halo_vals.push(v);
                    nbr_seen.insert(partition.block_of(c));
                }
            }
            if !found_diag {
                return Err(SparseError::ZeroDiagonal { row: r });
            }
            max_local_width = max_local_width.max(local_cols.len() - local_start);
            local_ptr.push(local_cols.len());
            halo_ptr.push(halo_cols.len());
        }

        let ell = if max_local_width <= ELL_MAX_WIDTH && nb > 0 {
            Some(Self::pack_ell(&local_ptr, &local_cols, &local_vals, nb, max_local_width))
        } else {
            None
        };
        let stencil = descriptor.map(|d| d.compile_block(blk.start, blk.end));
        let tier = match (&stencil, &ell) {
            (Some(_), _) => SweepTier::Stencil,
            (None, Some(_)) if nb >= crate::simd::LANES => SweepTier::EllSimd,
            (None, Some(_)) => SweepTier::Ell,
            (None, None) => SweepTier::Csr,
        };
        Ok(CompiledBlock {
            inv_diag,
            local_ptr,
            local_cols,
            local_vals,
            halo_ptr,
            halo_cols,
            halo_vals,
            ell,
            stencil,
            tier,
            nnz: nnz as f64,
            neighbors: nbr_seen.into_iter().collect(),
        })
    }

    fn pack_ell(
        row_ptr: &[usize],
        all_cols: &[u32],
        all_vals: &[f64],
        rows: usize,
        width: usize,
    ) -> BlockEll {
        // Padding: value 0.0, column `rows` (the sweep scratch keeps an
        // always-zero slot there, see module docs).
        let mut cols = vec![rows as u32; rows * width];
        let mut vals = vec![0.0f64; rows * width];
        for r in 0..rows {
            let (lo, hi) = (row_ptr[r], row_ptr[r + 1]);
            for (k, j) in (lo..hi).enumerate() {
                cols[k * rows + r] = all_cols[j];
                vals[k * rows + r] = all_vals[j];
            }
        }
        BlockEll { rows, width, cols, vals }
    }

    /// Number of rows covered.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of blocks.
    #[inline]
    pub fn n_blocks(&self) -> usize {
        self.block_offsets.len() - 1
    }

    /// Half-open row range of block `b`.
    #[inline]
    pub fn block_rows(&self, b: usize) -> (usize, usize) {
        (self.block_offsets[b], self.block_offsets[b + 1])
    }

    /// Rows of the widest block (sizes every per-update scratch buffer).
    #[inline]
    pub fn widest_block(&self) -> usize {
        self.widest_block
    }

    /// Pre-inverted diagonal, indexed by global row.
    #[inline]
    pub fn inv_diag(&self) -> &[f64] {
        &self.inv_diag
    }

    /// Packed local entries of global row `r` (diagonal excluded):
    /// block-rebased columns and values, in source CSR order.
    #[inline]
    pub fn local_row(&self, r: usize) -> (&[u32], &[f64]) {
        let (lo, hi) = (self.local_row_ptr[r], self.local_row_ptr[r + 1]);
        (&self.local_cols[lo..hi], &self.local_vals[lo..hi])
    }

    /// Packed halo entries of global row `r`: global columns and values,
    /// in source CSR order.
    #[inline]
    pub fn halo_row(&self, r: usize) -> (&[usize], &[f64]) {
        let (lo, hi) = (self.halo_row_ptr[r], self.halo_row_ptr[r + 1]);
        (&self.halo_cols[lo..hi], &self.halo_vals[lo..hi])
    }

    /// ELL-packed local operator of block `b`, when the block qualifies
    /// (all local rows at most [`ELL_MAX_WIDTH`] off-diagonal entries).
    #[inline]
    pub fn ell(&self, b: usize) -> Option<&BlockEll> {
        self.ell[b].as_ref()
    }

    /// Matrix-free stencil runs of block `b`, when the plan was compiled
    /// with a verified [`StencilDescriptor`].
    #[inline]
    pub fn stencil_block(&self, b: usize) -> Option<&StencilBlock> {
        self.stencil[b].as_ref()
    }

    /// The sweep tier selected for block `b` at compile time.
    #[inline]
    pub fn tier(&self, b: usize) -> SweepTier {
        self.tier[b]
    }

    /// Total source nonzeros of block `b`'s rows (virtual update cost).
    #[inline]
    pub fn block_nnz(&self, b: usize) -> f64 {
        self.block_nnz[b]
    }

    /// Sorted indices of the blocks whose components block `b` reads.
    #[inline]
    pub fn neighbors(&self, b: usize) -> &[usize] {
        &self.neighbors[b]
    }

    /// Nonzeros inside the partition's diagonal blocks (the `nnz_local`
    /// input of the timing model); counts the diagonal.
    pub fn nnz_local(&self) -> usize {
        self.local_cols.len() + self.n
    }

    /// Off-block nonzeros (the gathered halo entries).
    pub fn nnz_halo(&self) -> usize {
        self.halo_cols.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{laplacian_2d_5pt, random_diag_dominant};

    #[test]
    fn splits_every_entry_exactly_once() {
        let a = laplacian_2d_5pt(6);
        let p = RowPartition::uniform(36, 7).unwrap();
        let plan = BlockPlan::compile(&a, &p).unwrap();
        assert_eq!(plan.nnz_local() + plan.nnz_halo(), a.nnz());
        // reassemble each row from diag + local + halo and compare
        for r in 0..36 {
            let (cols, vals) = a.row(r);
            let blk = p.block(p.block_of(r));
            let (lc, lv) = plan.local_row(r);
            let (hc, hv) = plan.halo_row(r);
            let mut rebuilt: Vec<(usize, f64)> = Vec::new();
            rebuilt.push((r, 1.0 / plan.inv_diag()[r]));
            rebuilt.extend(lc.iter().zip(lv).map(|(&c, &v)| (blk.start + c as usize, v)));
            rebuilt.extend(hc.iter().zip(hv).map(|(&c, &v)| (c, v)));
            rebuilt.sort_by_key(|&(c, _)| c);
            let original: Vec<(usize, f64)> = cols.iter().copied().zip(vals.iter().copied()).collect();
            assert_eq!(rebuilt.len(), original.len(), "row {r}");
            for ((c1, v1), &(c2, v2)) in rebuilt.into_iter().zip(&original) {
                assert_eq!(c1, c2, "row {r}");
                assert!((v1 - v2).abs() < 1e-15, "row {r}: {v1} vs {v2}");
            }
        }
    }

    #[test]
    fn halo_preserves_source_order() {
        // halo of a row = its global CSR entries outside the block, in
        // the same order (this is what makes the frozen-part gather
        // bit-identical to the span-sliced original)
        let a = random_diag_dominant(50, 6, 1.5, 3);
        let p = RowPartition::uniform(50, 11).unwrap();
        let plan = BlockPlan::compile(&a, &p).unwrap();
        for r in 0..50 {
            let blk = p.block(p.block_of(r));
            let (cols, vals) = a.row(r);
            let expect: Vec<(usize, f64)> = cols
                .iter()
                .zip(vals)
                .filter(|&(&c, _)| !blk.contains(c))
                .map(|(&c, &v)| (c, v))
                .collect();
            let (hc, hv) = plan.halo_row(r);
            let got: Vec<(usize, f64)> = hc.iter().copied().zip(hv.iter().copied()).collect();
            assert_eq!(got, expect, "row {r}");
        }
    }

    #[test]
    fn ell_packs_short_blocks_and_matches_csr() {
        let a = laplacian_2d_5pt(5); // local widths <= 2 within grid-row blocks
        let p = RowPartition::uniform(25, 5).unwrap();
        let plan = BlockPlan::compile(&a, &p).unwrap();
        for b in 0..plan.n_blocks() {
            let ell = plan.ell(b).expect("5-pt stencil rows are short");
            let (s, e) = plan.block_rows(b);
            let nb = e - s;
            assert_eq!(ell.rows(), nb);
            // every CSR entry appears at its (row, k) slot
            for (li, r) in (s..e).enumerate() {
                let (lc, lv) = plan.local_row(r);
                for (k, (&c, &v)) in lc.iter().zip(lv).enumerate() {
                    assert_eq!(ell.cols()[k * nb + li], c);
                    assert_eq!(ell.vals()[k * nb + li], v);
                }
                // the rest of the row is inert padding
                for k in lc.len()..ell.width() {
                    assert_eq!(ell.cols()[k * nb + li], nb as u32);
                    assert_eq!(ell.vals()[k * nb + li], 0.0);
                }
            }
        }
    }

    #[test]
    fn wide_blocks_skip_ell() {
        // one big block: local width = full row population of a dense-ish
        // random matrix exceeds ELL_MAX_WIDTH somewhere
        let a = random_diag_dominant(64, 16, 1.5, 1);
        let p = RowPartition::uniform(64, 64).unwrap();
        let plan = BlockPlan::compile(&a, &p).unwrap();
        assert!(plan.ell(0).is_none(), "wide rows must not ELL-pack");
        assert_eq!(plan.tier(0), SweepTier::Csr);
    }

    #[test]
    fn tier_selection_fires_in_order() {
        // ELL-packable block of >= 4 rows: the vectorized tier
        let a = laplacian_2d_5pt(5);
        let p = RowPartition::uniform(25, 5).unwrap();
        let plan = BlockPlan::compile(&a, &p).unwrap();
        for b in 0..plan.n_blocks() {
            assert_eq!(plan.tier(b), SweepTier::EllSimd);
            assert!(plan.stencil_block(b).is_none());
        }
        // blocks too narrow for a four-lane group: the scalar ELL tier
        let p = RowPartition::uniform(25, 3).unwrap();
        let plan = BlockPlan::compile(&a, &p).unwrap();
        assert!((0..plan.n_blocks())
            .any(|b| plan.tier(b) == SweepTier::Ell && plan.block_rows(b).1 - plan.block_rows(b).0 < 4));
        // a verified descriptor beats both
        let d = crate::stencil::StencilDescriptor::poisson_2d_5pt(5);
        let p = RowPartition::uniform(25, 5).unwrap();
        let plan = BlockPlan::compile_with_stencil(&a, &p, Some(&d)).unwrap();
        for b in 0..plan.n_blocks() {
            assert_eq!(plan.tier(b), SweepTier::Stencil);
            assert!(plan.stencil_block(b).is_some(), "stencil runs must be compiled");
        }
    }

    #[test]
    fn stencil_compile_rejects_mismatched_descriptor() {
        let a = laplacian_2d_5pt(5);
        let p = RowPartition::uniform(25, 5).unwrap();
        let d = crate::stencil::StencilDescriptor::fv_9pt(5, 0.0); // wrong stencil
        assert!(matches!(
            BlockPlan::compile_with_stencil(&a, &p, Some(&d)).unwrap_err(),
            SparseError::Stencil(_)
        ));
    }

    #[test]
    fn neighbors_match_coupling() {
        let a = laplacian_2d_5pt(4);
        let p = RowPartition::uniform(16, 4).unwrap();
        let plan = BlockPlan::compile(&a, &p).unwrap();
        assert_eq!(plan.neighbors(0), &[1]);
        assert_eq!(plan.neighbors(1), &[0, 2]);
        assert_eq!(plan.neighbors(3), &[2]);
    }

    #[test]
    fn zero_diagonal_rejected() {
        let mut coo = crate::CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 1, 2.0).unwrap();
        coo.push(1, 0, 3.0).unwrap(); // no (1,1) entry
        let a = coo.to_csr();
        let p = RowPartition::uniform(2, 1).unwrap();
        assert_eq!(
            BlockPlan::compile(&a, &p).unwrap_err(),
            SparseError::ZeroDiagonal { row: 1 }
        );
    }

    #[test]
    fn parallel_compile_is_bit_identical_to_sequential() {
        let a = laplacian_2d_5pt(12);
        let d = crate::stencil::StencilDescriptor::poisson_2d_5pt(12);
        for block in [5usize, 12, 31, 144] {
            let p = RowPartition::uniform(144, block).unwrap();
            for desc in [None, Some(&d)] {
                let seq =
                    BlockPlan::compile_with_ctx(&a, &p, desc, ParContext::new(1)).unwrap();
                for threads in [2usize, 3, 7, 16] {
                    let par =
                        BlockPlan::compile_with_ctx(&a, &p, desc, ParContext::new(threads))
                            .unwrap();
                    assert_eq!(seq, par, "block {block} threads {threads}");
                }
            }
        }
    }

    #[test]
    fn parallel_compile_reports_the_sequential_first_error() {
        // rows 5 and 9 both lack a diagonal; every thread count must
        // report row 5 (the sequential first failure)
        let mut coo = crate::CooMatrix::new(12, 12);
        for r in 0..12 {
            if r != 5 && r != 9 {
                coo.push(r, r, 2.0).unwrap();
            }
            if r + 1 < 12 {
                coo.push(r, r + 1, -1.0).unwrap();
            }
        }
        let a = coo.to_csr();
        let p = RowPartition::uniform(12, 2).unwrap();
        for threads in [1usize, 2, 4, 8] {
            assert_eq!(
                BlockPlan::compile_with_ctx(&a, &p, None, ParContext::new(threads))
                    .unwrap_err(),
                SparseError::ZeroDiagonal { row: 5 },
                "threads {threads}"
            );
        }
    }

    #[test]
    fn widest_block_and_costs() {
        let a = laplacian_2d_5pt(4);
        let p = RowPartition::uniform(16, 5).unwrap();
        let plan = BlockPlan::compile(&a, &p).unwrap();
        assert_eq!(plan.widest_block(), 5);
        let total: f64 = (0..plan.n_blocks()).map(|b| plan.block_nnz(b)).sum();
        assert_eq!(total, a.nnz() as f64);
    }
}
