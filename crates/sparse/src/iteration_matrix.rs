//! The Jacobi iteration matrix `B = I - D^{-1}A` and its `|B|` companion.
//!
//! The paper's convergence conditions (Section 2) are stated on these
//! operators: Jacobi converges iff `rho(B) < 1`; the asynchronous iteration
//! converges for *every* admissible update/shift schedule iff
//! `rho(|B|) < 1` (Strikwerda). This module provides both as implicit
//! operators plus explicit CSR construction, and the two spectral radii.

use crate::spectra::{power_iteration, LinearOperator, PowerOptions};
use crate::{CsrMatrix, Result};

/// The Jacobi iteration operator `B = I - D^{-1} A` of a square matrix,
/// stored implicitly as `A` plus the inverse diagonal.
#[derive(Debug, Clone)]
pub struct IterationMatrix {
    a: CsrMatrix,
    inv_diag: Vec<f64>,
}

impl IterationMatrix {
    /// Builds the operator; fails if any diagonal entry is zero/missing.
    pub fn new(a: &CsrMatrix) -> Result<Self> {
        let d = a.nonzero_diagonal()?;
        Ok(IterationMatrix {
            a: a.clone(),
            inv_diag: d.iter().map(|&v| 1.0 / v).collect(),
        })
    }

    /// The inverse diagonal `D^{-1}` entries.
    pub fn inv_diag(&self) -> &[f64] {
        &self.inv_diag
    }

    /// Materialises `B = I - D^{-1}A` as an explicit CSR matrix.
    ///
    /// Note the diagonal of `B` is exactly zero (1 - a_ii / a_ii), so the
    /// resulting matrix has `nnz(A) - n` entries.
    pub fn to_csr(&self) -> CsrMatrix {
        let n = self.a.n_rows();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::with_capacity(self.a.nnz());
        let mut values = Vec::with_capacity(self.a.nnz());
        row_ptr.push(0);
        for r in 0..n {
            for (c, v) in self.a.row_iter(r) {
                if c != r {
                    col_idx.push(c);
                    values.push(-v * self.inv_diag[r]);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix::from_raw(n, n, row_ptr, col_idx, values)
            .expect("constructed rows keep CSR invariants")
    }

    /// Materialises `|B|` (entry-wise absolute values).
    pub fn to_csr_abs(&self) -> CsrMatrix {
        self.to_csr().abs()
    }

    /// Spectral radius `rho(B)`: the Jacobi convergence factor.
    ///
    /// For symmetric `A` with positive diagonal, `B` is similar to the
    /// symmetric `I - D^{-1/2} A D^{-1/2}`, so the radius is computed
    /// accurately from a Lanczos run (`max(|1 - lam_min|, |1 - lam_max|)`
    /// over the spectrum of `D^{-1}A`). Otherwise falls back to power
    /// iteration, whose norm-based estimate can overshoot slightly for
    /// non-normal `B`.
    pub fn spectral_radius(&self) -> Result<f64> {
        if self.inv_diag.iter().all(|&v| v > 0.0) && self.a.is_symmetric_within(1e-12) {
            let (lo, hi) = crate::scaling::jacobi_operator_extremes(&self.a)?;
            return Ok((1.0 - lo).abs().max((hi - 1.0).abs()));
        }
        power_iteration(self, PowerOptions::default())
    }

    /// Spectral radius `rho(|B|)`: the asynchronous-convergence bound.
    ///
    /// `|B|` is entry-wise non-negative, so the power method converges to
    /// its Perron root monotonically from a positive start vector.
    pub fn spectral_radius_abs(&self) -> Result<f64> {
        let b_abs = self.to_csr_abs();
        power_iteration(&b_abs, PowerOptions::default())
    }
}

impl LinearOperator for IterationMatrix {
    fn dim(&self) -> usize {
        self.a.n_rows()
    }

    /// `y = x - D^{-1} (A x)`.
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.a.spmv(x, y).expect("square operator, caller provides matching x");
        for i in 0..y.len() {
            y[i] = x[i] - self.inv_diag[i] * y[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::laplacian_1d;

    #[test]
    fn explicit_matches_implicit() {
        let a = laplacian_1d(12);
        let it = IterationMatrix::new(&a).unwrap();
        let b = it.to_csr();
        let x: Vec<f64> = (0..12).map(|i| (i as f64).sin() + 1.0).collect();
        let mut y1 = vec![0.0; 12];
        it.apply(&x, &mut y1);
        let y2 = b.mul_vec(&x).unwrap();
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn laplacian_rho_matches_cosine_formula() {
        // For tridiag(-1,2,-1): rho(B) = cos(pi / (n + 1)).
        let n = 25;
        let a = laplacian_1d(n);
        let it = IterationMatrix::new(&a).unwrap();
        let rho = it.spectral_radius().unwrap();
        let exact = (std::f64::consts::PI / (n as f64 + 1.0)).cos();
        assert!((rho - exact).abs() < 1e-6, "{rho} vs {exact}");
        // For this matrix B already has non-negative spectral structure:
        // |B| = B in magnitude pattern, same rho.
        let rho_abs = it.spectral_radius_abs().unwrap();
        assert!((rho_abs - exact).abs() < 1e-6, "{rho_abs} vs {exact}");
    }

    #[test]
    fn diag_dominant_rho_below_one_weak_not() {
        let a = laplacian_1d(10);
        let it = IterationMatrix::new(&a).unwrap();
        assert!(it.spectral_radius().unwrap() < 1.0);
    }

    #[test]
    fn zero_diagonal_rejected() {
        let a = CsrMatrix::from_diagonal(&[1.0, 0.0, 3.0]);
        assert!(IterationMatrix::new(&a).is_err());
    }

    #[test]
    fn b_has_zero_diagonal() {
        let a = laplacian_1d(6);
        let b = IterationMatrix::new(&a).unwrap().to_csr();
        for i in 0..6 {
            assert_eq!(b.get(i, i), 0.0);
        }
        assert_eq!(b.nnz(), a.nnz() - 6);
    }

    #[test]
    fn abs_matrix_nonneg() {
        let a = laplacian_1d(6);
        let b = IterationMatrix::new(&a).unwrap().to_csr_abs();
        assert!(b.values().iter().all(|&v| v >= 0.0));
        assert_eq!(b.get(0, 1), 0.5);
    }
}
