//! Compressed-sparse-row matrices: the workhorse format of the library.
//!
//! All solvers operate on [`CsrMatrix`]. Rows are stored contiguously with
//! sorted, duplicate-free column indices — [`CsrMatrix::validate`] checks
//! this invariant and every constructor that accepts raw parts enforces it
//! (except `from_raw_unchecked`, used by trusted internal builders).

use crate::{DenseMatrix, Result, SparseError};

/// A sparse matrix in compressed-sparse-row format.
///
/// # Examples
///
/// ```
/// use abr_sparse::CooMatrix;
///
/// // assemble [2 -1; -1 2] and multiply by [1, 1]
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 0, 2.0).unwrap();
/// coo.push(1, 1, 2.0).unwrap();
/// coo.push_sym(0, 1, -1.0).unwrap();
/// let a = coo.to_csr();
/// assert_eq!(a.mul_vec(&[1.0, 1.0]).unwrap(), vec![1.0, 1.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw parts, validating the invariants:
    /// monotone `row_ptr` of length `n_rows + 1`, in-bounds sorted
    /// duplicate-free column indices, matching array lengths.
    pub fn from_raw(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        let m = CsrMatrix { n_rows, n_cols, row_ptr, col_idx, values };
        m.validate()?;
        Ok(m)
    }

    /// Builds a CSR matrix from raw parts without validation.
    ///
    /// Callers must guarantee the CSR invariants; internal builders
    /// (COO conversion, SpGEMM, transpose) do so by construction. Debug
    /// builds still validate.
    pub(crate) fn from_raw_unchecked(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        let m = CsrMatrix { n_rows, n_cols, row_ptr, col_idx, values };
        debug_assert!(m.validate().is_ok());
        m
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            n_rows: n,
            n_cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// A square matrix with `diag` on the diagonal.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        CsrMatrix {
            n_rows: n,
            n_cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: diag.to_vec(),
        }
    }

    /// Checks the CSR structural invariants.
    pub fn validate(&self) -> Result<()> {
        if self.row_ptr.len() != self.n_rows + 1 {
            return Err(SparseError::DimensionMismatch {
                op: "csr row_ptr length",
                expected: self.n_rows + 1,
                found: self.row_ptr.len(),
            });
        }
        if self.col_idx.len() != self.values.len() {
            return Err(SparseError::DimensionMismatch {
                op: "csr col_idx/values length",
                expected: self.values.len(),
                found: self.col_idx.len(),
            });
        }
        if *self.row_ptr.first().unwrap_or(&0) != 0
            || *self.row_ptr.last().unwrap_or(&0) != self.col_idx.len()
        {
            return Err(SparseError::Parse("row_ptr must start at 0 and end at nnz".into()));
        }
        for r in 0..self.n_rows {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            if lo > hi {
                return Err(SparseError::Parse(format!("row_ptr not monotone at row {r}")));
            }
            let cols = &self.col_idx[lo..hi];
            for w in cols.windows(2) {
                if w[0] >= w[1] {
                    return Err(SparseError::Parse(format!(
                        "columns not strictly increasing in row {r}"
                    )));
                }
            }
            if let Some(&c) = cols.last() {
                if c >= self.n_cols {
                    return Err(SparseError::IndexOutOfBounds {
                        row: r,
                        col: c,
                        n_rows: self.n_rows,
                        n_cols: self.n_cols,
                    });
                }
            }
        }
        Ok(())
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.n_rows == self.n_cols
    }

    /// Raw row pointer array (length `n_rows + 1`).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Raw column index array.
    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Raw value array.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the values (structure is fixed).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// The entries of row `row` as `(columns, values)` slices.
    #[inline]
    pub fn row(&self, row: usize) -> (&[usize], &[f64]) {
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Iterates over `(col, value)` pairs of one row.
    pub fn row_iter(&self, row: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (cols, vals) = self.row(row);
        cols.iter().zip(vals).map(|(&c, &v)| (c, v))
    }

    /// Value at `(row, col)`, zero if not stored. Binary search per call.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        let (cols, vals) = self.row(row);
        match cols.binary_search(&col) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Extracts the diagonal. Missing entries are returned as `0.0`.
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.n_rows.min(self.n_cols);
        (0..n).map(|i| self.get(i, i)).collect()
    }

    /// Extracts the diagonal, failing on any zero/missing diagonal entry.
    pub fn nonzero_diagonal(&self) -> Result<Vec<f64>> {
        let d = self.diagonal();
        for (i, &v) in d.iter().enumerate() {
            if v == 0.0 {
                return Err(SparseError::ZeroDiagonal { row: i });
            }
        }
        Ok(d)
    }

    /// Sparse matrix–vector product `y = A x`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) -> Result<()> {
        if x.len() != self.n_cols {
            return Err(SparseError::DimensionMismatch {
                op: "spmv x",
                expected: self.n_cols,
                found: x.len(),
            });
        }
        if y.len() != self.n_rows {
            return Err(SparseError::DimensionMismatch {
                op: "spmv y",
                expected: self.n_rows,
                found: y.len(),
            });
        }
        self.spmv_range(0, x, y);
        Ok(())
    }

    /// SpMV over the row range `[start, start + y.len())`, four rows per
    /// [`crate::simd::f64x4`] iteration — one row per lane, so each row
    /// still accumulates its entries in source order from `0.0` and the
    /// result is **bit-identical** to the sequential per-row loop, however
    /// the rows are grouped into lanes or chunks. This is the kernel both
    /// [`CsrMatrix::spmv`] and the chunked [`crate::par::ParContext::spmv`]
    /// bottom out in, which keeps residual monitoring off the scalar tail
    /// without perturbing a single reported residual bit.
    ///
    /// Bounds are the caller's job (`spmv` checks them; the parallel
    /// driver derives them from chunking), hence no `Result` here.
    pub fn spmv_range(&self, start: usize, x: &[f64], y: &mut [f64]) {
        use crate::simd::{f64x4, LANES};
        let rows = y.len();
        let quads = rows - rows % LANES;
        for q in (0..quads).step_by(LANES) {
            let ptr = &self.row_ptr[start + q..start + q + LANES + 1];
            let kmin =
                (ptr[1] - ptr[0]).min(ptr[2] - ptr[1]).min(ptr[3] - ptr[2]).min(ptr[4] - ptr[3]);
            let (p0, p1, p2, p3) = (ptr[0], ptr[1], ptr[2], ptr[3]);
            let mut acc = f64x4::splat(0.0);
            for k in 0..kmin {
                // product then add: the scalar `acc += v * x[c]`, per lane
                acc = acc
                    + f64x4([
                        self.values[p0 + k] * x[self.col_idx[p0 + k]],
                        self.values[p1 + k] * x[self.col_idx[p1 + k]],
                        self.values[p2 + k] * x[self.col_idx[p2 + k]],
                        self.values[p3 + k] * x[self.col_idx[p3 + k]],
                    ]);
            }
            let mut out = acc.0;
            for (j, o) in out.iter_mut().enumerate() {
                for k in ptr[j] + kmin..ptr[j + 1] {
                    *o += self.values[k] * x[self.col_idx[k]];
                }
            }
            y[q..q + LANES].copy_from_slice(&out);
        }
        for (q, yi) in y.iter_mut().enumerate().skip(quads) {
            let mut acc = 0.0;
            for k in self.row_ptr[start + q]..self.row_ptr[start + q + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *yi = acc;
        }
    }

    /// Allocating variant of [`CsrMatrix::spmv`].
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut y = vec![0.0; self.n_rows];
        self.spmv(x, &mut y)?;
        Ok(y)
    }

    /// Residual `r = b - A x`.
    pub fn residual(&self, b: &[f64], x: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.n_rows {
            return Err(SparseError::DimensionMismatch {
                op: "residual b",
                expected: self.n_rows,
                found: b.len(),
            });
        }
        let ax = self.mul_vec(x)?;
        Ok(b.iter().zip(&ax).map(|(&bi, &axi)| bi - axi).collect())
    }

    /// Transpose (sorted-column CSR out).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.n_cols + 1];
        for &c in &self.col_idx {
            counts[c + 1] += 1;
        }
        for i in 0..self.n_cols {
            counts[i + 1] += counts[i];
        }
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = counts.clone();
        for r in 0..self.n_rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k];
                col_idx[next[c]] = r;
                values[next[c]] = self.values[k];
                next[c] += 1;
            }
        }
        CsrMatrix::from_raw_unchecked(self.n_cols, self.n_rows, counts, col_idx, values)
    }

    /// Returns `true` if `self` equals its transpose exactly.
    pub fn is_symmetric(&self) -> bool {
        self.is_square() && *self == self.transpose()
    }

    /// Returns `true` if `self` is symmetric within absolute tolerance `tol`.
    pub fn is_symmetric_within(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let t = self.transpose();
        if t.row_ptr != self.row_ptr || t.col_idx != self.col_idx {
            // Structure can differ while values still match within tol only
            // if near-zero entries exist on one side; fall back to gets.
            for r in 0..self.n_rows {
                for (c, v) in self.row_iter(r) {
                    if (v - self.get(c, r)).abs() > tol {
                        return false;
                    }
                }
            }
            return true;
        }
        self.values
            .iter()
            .zip(&t.values)
            .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// Sparse general matrix–matrix product `C = A B` (Gustavson's algorithm).
    pub fn spgemm(&self, other: &CsrMatrix) -> Result<CsrMatrix> {
        if self.n_cols != other.n_rows {
            return Err(SparseError::DimensionMismatch {
                op: "spgemm inner dimension",
                expected: self.n_cols,
                found: other.n_rows,
            });
        }
        let n = self.n_rows;
        let m = other.n_cols;
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx: Vec<usize> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        row_ptr.push(0);

        // Dense accumulator with a "touched" marker list.
        let mut acc = vec![0.0f64; m];
        let mut marker = vec![usize::MAX; m];
        let mut touched: Vec<usize> = Vec::new();

        for i in 0..n {
            touched.clear();
            for ka in self.row_ptr[i]..self.row_ptr[i + 1] {
                let k = self.col_idx[ka];
                let av = self.values[ka];
                for kb in other.row_ptr[k]..other.row_ptr[k + 1] {
                    let j = other.col_idx[kb];
                    if marker[j] != i {
                        marker[j] = i;
                        acc[j] = 0.0;
                        touched.push(j);
                    }
                    acc[j] += av * other.values[kb];
                }
            }
            touched.sort_unstable();
            for &j in &touched {
                if acc[j] != 0.0 {
                    col_idx.push(j);
                    values.push(acc[j]);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Ok(CsrMatrix::from_raw_unchecked(n, m, row_ptr, col_idx, values))
    }

    /// `A^p` for a square matrix, by repeated SpGEMM (p >= 1).
    pub fn pow(&self, p: u32) -> Result<CsrMatrix> {
        if !self.is_square() {
            return Err(SparseError::DimensionMismatch {
                op: "pow requires square",
                expected: self.n_rows,
                found: self.n_cols,
            });
        }
        if p == 0 {
            return Ok(CsrMatrix::identity(self.n_rows));
        }
        let mut out = self.clone();
        for _ in 1..p {
            out = out.spgemm(self)?;
        }
        Ok(out)
    }

    /// Linear combination `alpha * self + beta * other` (same shape).
    pub fn add_scaled(&self, alpha: f64, other: &CsrMatrix, beta: f64) -> Result<CsrMatrix> {
        if self.n_rows != other.n_rows || self.n_cols != other.n_cols {
            return Err(SparseError::DimensionMismatch {
                op: "add_scaled shape",
                expected: self.n_rows,
                found: other.n_rows,
            });
        }
        let mut row_ptr = Vec::with_capacity(self.n_rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..self.n_rows {
            let (ca, va) = self.row(r);
            let (cb, vb) = other.row(r);
            let (mut i, mut j) = (0, 0);
            while i < ca.len() || j < cb.len() {
                let (c, v) = if j >= cb.len() || (i < ca.len() && ca[i] < cb[j]) {
                    let out = (ca[i], alpha * va[i]);
                    i += 1;
                    out
                } else if i >= ca.len() || cb[j] < ca[i] {
                    let out = (cb[j], beta * vb[j]);
                    j += 1;
                    out
                } else {
                    let out = (ca[i], alpha * va[i] + beta * vb[j]);
                    i += 1;
                    j += 1;
                    out
                };
                if v != 0.0 {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Ok(CsrMatrix::from_raw_unchecked(self.n_rows, self.n_cols, row_ptr, col_idx, values))
    }

    /// Scales row `i` by `s[i]` in place (i.e. computes `diag(s) * A`).
    #[allow(clippy::needless_range_loop)] // row index drives ptr and s together
    pub fn scale_rows(&mut self, s: &[f64]) -> Result<()> {
        if s.len() != self.n_rows {
            return Err(SparseError::DimensionMismatch {
                op: "scale_rows",
                expected: self.n_rows,
                found: s.len(),
            });
        }
        for r in 0..self.n_rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                self.values[k] *= s[r];
            }
        }
        Ok(())
    }

    /// Entry-wise absolute value `|A|`.
    pub fn abs(&self) -> CsrMatrix {
        let mut out = self.clone();
        for v in &mut out.values {
            *v = v.abs();
        }
        out
    }

    /// Extracts the square diagonal block `A[rows, rows]` for a contiguous
    /// row range, re-indexed to local indices. Used by the block-asynchronous
    /// solver for the per-subdomain local systems.
    pub fn diagonal_block(&self, start: usize, end: usize) -> CsrMatrix {
        let nb = end - start;
        let mut row_ptr = Vec::with_capacity(nb + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in start..end {
            for (c, v) in self.row_iter(r) {
                if c >= start && c < end {
                    col_idx.push(c - start);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix::from_raw_unchecked(nb, nb, row_ptr, col_idx, values)
    }

    /// Applies a symmetric permutation `B = P A P^T`, where row/col `i` of
    /// `B` is row/col `perm[i]` of `A` (i.e. `perm` is the new-to-old map).
    pub fn permute_sym(&self, perm: &[usize]) -> Result<CsrMatrix> {
        if !self.is_square() || perm.len() != self.n_rows {
            return Err(SparseError::DimensionMismatch {
                op: "permute_sym",
                expected: self.n_rows,
                found: perm.len(),
            });
        }
        let n = self.n_rows;
        let mut inv = vec![usize::MAX; n];
        for (new, &old) in perm.iter().enumerate() {
            if old >= n || inv[old] != usize::MAX {
                return Err(SparseError::Generator("invalid permutation".into()));
            }
            inv[old] = new;
        }
        let mut coo = crate::CooMatrix::with_capacity(n, n, self.nnz());
        for r in 0..n {
            for (c, v) in self.row_iter(r) {
                coo.push(inv[r], inv[c], v)?;
            }
        }
        Ok(coo.to_csr())
    }

    /// Converts to a dense matrix (small matrices / tests only).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.n_rows, self.n_cols);
        for r in 0..self.n_rows {
            for (c, v) in self.row_iter(r) {
                d[(r, c)] = v;
            }
        }
        d
    }

    /// Maximum row sum of absolute values (infinity norm).
    pub fn norm_inf(&self) -> f64 {
        (0..self.n_rows)
            .map(|r| self.row(r).1.iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// `true` if every row satisfies weak diagonal dominance
    /// `|a_ii| >= sum_{j != i} |a_ij|`, with at least one strict row.
    pub fn is_diagonally_dominant(&self) -> bool {
        if !self.is_square() {
            return false;
        }
        let mut any_strict = false;
        for r in 0..self.n_rows {
            let mut diag = 0.0;
            let mut off = 0.0;
            for (c, v) in self.row_iter(r) {
                if c == r {
                    diag = v.abs();
                } else {
                    off += v.abs();
                }
            }
            if diag < off {
                return false;
            }
            if diag > off {
                any_strict = true;
            }
        }
        any_strict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    #[test]
    fn spmv_range_is_bit_identical_to_per_row_loop() {
        // ragged rows (0..=6 entries) exercise the lane tails; bits must
        // match the naive loop for every start offset mod 4
        let a = crate::gen::random_diag_dominant(53, 6, 1.2, 9);
        let x: Vec<f64> = (0..53).map(|i| ((i * 29) % 17) as f64 * 0.37 - 2.0).collect();
        let naive: Vec<f64> = (0..53)
            .map(|r| a.row_iter(r).fold(0.0, |acc, (c, v)| acc + v * x[c]))
            .collect();
        let mut y = vec![0.0; 53];
        a.spmv(&x, &mut y).unwrap();
        for r in 0..53 {
            assert_eq!(y[r].to_bits(), naive[r].to_bits(), "row {r}");
        }
        for start in [0usize, 1, 2, 3, 7, 50] {
            let mut part = vec![0.0; 53 - start];
            a.spmv_range(start, &x, &mut part);
            for (k, v) in part.iter().enumerate() {
                assert_eq!(v.to_bits(), naive[start + k].to_bits(), "start {start} row {k}");
            }
        }
    }

    fn sample() -> CsrMatrix {
        // [ 4 -1  0]
        // [-1  4 -1]
        // [ 0 -1  4]
        let mut coo = CooMatrix::new(3, 3);
        for i in 0..3 {
            coo.push(i, i, 4.0).unwrap();
        }
        coo.push_sym(0, 1, -1.0).unwrap();
        coo.push_sym(1, 2, -1.0).unwrap();
        coo.to_csr()
    }

    #[test]
    fn spmv_matches_hand_computation() {
        let a = sample();
        let y = a.mul_vec(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(y, vec![2.0, 4.0, 10.0]);
    }

    #[test]
    fn spmv_dimension_checked() {
        let a = sample();
        assert!(a.mul_vec(&[1.0, 2.0]).is_err());
        let mut y = vec![0.0; 2];
        assert!(a.spmv(&[1.0, 2.0, 3.0], &mut y).is_err());
    }

    #[test]
    fn identity_is_identity() {
        let i = CsrMatrix::identity(4);
        let x = vec![1.0, -2.0, 3.5, 0.0];
        assert_eq!(i.mul_vec(&x).unwrap(), x);
        assert!(i.validate().is_ok());
    }

    #[test]
    fn diagonal_extraction() {
        let a = sample();
        assert_eq!(a.diagonal(), vec![4.0, 4.0, 4.0]);
        assert!(a.nonzero_diagonal().is_ok());
        let z = CsrMatrix::from_diagonal(&[1.0, 0.0]);
        assert!(matches!(z.nonzero_diagonal(), Err(SparseError::ZeroDiagonal { row: 1 })));
    }

    #[test]
    fn transpose_of_symmetric_is_identical() {
        let a = sample();
        assert_eq!(a.transpose(), a);
        assert!(a.is_symmetric());
    }

    #[test]
    fn transpose_nonsquare() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 2, 1.0).unwrap();
        coo.push(1, 0, 2.0).unwrap();
        let a = coo.to_csr();
        let t = a.transpose();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.get(2, 0), 1.0);
        assert_eq!(t.get(0, 1), 2.0);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn spgemm_matches_dense() {
        let a = sample();
        let b = sample();
        let c = a.spgemm(&b).unwrap();
        let dense = a.to_dense().matmul(&b.to_dense());
        for r in 0..3 {
            for cc in 0..3 {
                assert!((c.get(r, cc) - dense[(r, cc)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn pow_squares() {
        let a = sample();
        let a2 = a.pow(2).unwrap();
        let ref2 = a.spgemm(&a).unwrap();
        assert_eq!(a2, ref2);
        assert_eq!(a.pow(0).unwrap(), CsrMatrix::identity(3));
        assert_eq!(a.pow(1).unwrap(), a);
    }

    #[test]
    fn add_scaled_cancels() {
        let a = sample();
        let z = a.add_scaled(1.0, &a, -1.0).unwrap();
        assert_eq!(z.nnz(), 0);
        let two_a = a.add_scaled(1.0, &a, 1.0).unwrap();
        assert_eq!(two_a.get(0, 0), 8.0);
    }

    #[test]
    fn abs_takes_magnitudes() {
        let a = sample().abs();
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(0, 0), 4.0);
    }

    #[test]
    fn diagonal_block_reindexes() {
        let a = sample();
        let b = a.diagonal_block(1, 3);
        assert_eq!(b.n_rows(), 2);
        assert_eq!(b.get(0, 0), 4.0);
        assert_eq!(b.get(0, 1), -1.0);
        assert_eq!(b.get(1, 0), -1.0);
    }

    #[test]
    fn permute_sym_reverse() {
        let a = sample();
        let p = a.permute_sym(&[2, 1, 0]).unwrap();
        // Tridiagonal symmetric with constant bands is invariant under
        // reversal.
        assert_eq!(p, a);
        // An invalid permutation is rejected.
        assert!(a.permute_sym(&[0, 0, 1]).is_err());
    }

    #[test]
    fn diagonal_dominance() {
        assert!(sample().is_diagonally_dominant());
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 1, 5.0).unwrap();
        coo.push(1, 1, 1.0).unwrap();
        assert!(!coo.to_csr().is_diagonally_dominant());
    }

    #[test]
    fn norms() {
        let a = sample();
        assert_eq!(a.norm_inf(), 6.0);
        assert!((a.norm_fro() - (3.0f64 * 16.0 + 4.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn residual_zero_at_solution() {
        let a = CsrMatrix::from_diagonal(&[2.0, 4.0]);
        let r = a.residual(&[2.0, 8.0], &[1.0, 2.0]).unwrap();
        assert_eq!(r, vec![0.0, 0.0]);
    }

    #[test]
    fn from_raw_validates() {
        // bad: column out of bounds
        assert!(CsrMatrix::from_raw(1, 1, vec![0, 1], vec![3], vec![1.0]).is_err());
        // bad: unsorted columns
        assert!(CsrMatrix::from_raw(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).is_err());
        // good
        assert!(CsrMatrix::from_raw(1, 3, vec![0, 2], vec![0, 2], vec![1.0, 2.0]).is_ok());
    }
}
