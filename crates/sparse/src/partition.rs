//! Contiguous row-block partitions.
//!
//! The block-asynchronous method decomposes the linear system "into blocks
//! of rows, and the computations for each block are assigned to one thread
//! block on the GPU" (paper §3.3). On multi-GPU systems the same is done at
//! the device level first (§3.4). A [`RowPartition`] records such a
//! decomposition; nesting a partition inside another gives the device →
//! thread-block hierarchy.

use crate::{Result, SparseError};

/// A half-open range of rows `[start, end)` handled as one unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowBlock {
    /// First row of the block.
    pub start: usize,
    /// One past the last row.
    pub end: usize,
}

impl RowBlock {
    /// Number of rows in the block.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` for an empty block (never produced by the constructors).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// `true` if `row` lies in the block.
    #[inline]
    pub fn contains(&self, row: usize) -> bool {
        row >= self.start && row < self.end
    }
}

/// A partition of `0..n` into contiguous, non-empty row blocks.
///
/// # Examples
///
/// ```
/// use abr_sparse::RowPartition;
///
/// let p = RowPartition::uniform(1000, 448).unwrap();
/// assert_eq!(p.len(), 3);
/// assert_eq!(p.block(2).len(), 104);
/// assert_eq!(p.block_of(447), 0);
/// assert_eq!(p.block_of(448), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowPartition {
    n: usize,
    blocks: Vec<RowBlock>,
}

impl RowPartition {
    /// Splits `0..n` into blocks of `block_size` rows (last block may be
    /// smaller). This mirrors the paper's fixed thread-block size (448 for
    /// the main experiments, 128 for the non-determinism study).
    pub fn uniform(n: usize, block_size: usize) -> Result<Self> {
        if block_size == 0 {
            return Err(SparseError::Generator("block_size must be positive".into()));
        }
        if n == 0 {
            return Err(SparseError::Generator("cannot partition an empty system".into()));
        }
        let mut blocks = Vec::with_capacity(n.div_ceil(block_size));
        let mut start = 0;
        while start < n {
            let end = (start + block_size).min(n);
            blocks.push(RowBlock { start, end });
            start = end;
        }
        Ok(RowPartition { n, blocks })
    }

    /// Splits `0..n` into exactly `k` near-equal contiguous blocks
    /// (used for the per-device split on multi-GPU systems).
    pub fn equal_count(n: usize, k: usize) -> Result<Self> {
        if k == 0 || k > n {
            return Err(SparseError::Generator(format!(
                "cannot split {n} rows into {k} blocks"
            )));
        }
        let base = n / k;
        let extra = n % k;
        let mut blocks = Vec::with_capacity(k);
        let mut start = 0;
        for i in 0..k {
            let len = base + usize::from(i < extra);
            blocks.push(RowBlock { start, end: start + len });
            start += len;
        }
        Ok(RowPartition { n, blocks })
    }

    /// Builds from explicit block boundaries `[0, b1, b2, ..., n]`.
    pub fn from_offsets(offsets: &[usize]) -> Result<Self> {
        if offsets.len() < 2 || offsets[0] != 0 {
            return Err(SparseError::Generator("offsets must start at 0 and have >= 2 entries".into()));
        }
        for w in offsets.windows(2) {
            if w[0] >= w[1] {
                return Err(SparseError::Generator("offsets must be strictly increasing".into()));
            }
        }
        let n = *offsets.last().unwrap();
        let blocks = offsets
            .windows(2)
            .map(|w| RowBlock { start: w[0], end: w[1] })
            .collect();
        Ok(RowPartition { n, blocks })
    }

    /// Total number of rows covered.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of blocks.
    #[inline]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` if there are no blocks (cannot happen via constructors).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The blocks in row order.
    #[inline]
    pub fn blocks(&self) -> &[RowBlock] {
        &self.blocks
    }

    /// The block with index `i`.
    #[inline]
    pub fn block(&self, i: usize) -> RowBlock {
        self.blocks[i]
    }

    /// Index of the block containing `row` (binary search).
    pub fn block_of(&self, row: usize) -> usize {
        debug_assert!(row < self.n);
        self.blocks
            .partition_point(|b| b.end <= row)
    }

    /// Splits each block of `self` by a target sub-block size, producing the
    /// nested thread-block partition inside a device partition.
    pub fn refine(&self, sub_block_size: usize) -> Result<RowPartition> {
        if sub_block_size == 0 {
            return Err(SparseError::Generator("sub_block_size must be positive".into()));
        }
        let mut blocks = Vec::new();
        for b in &self.blocks {
            let mut start = b.start;
            while start < b.end {
                let end = (start + sub_block_size).min(b.end);
                blocks.push(RowBlock { start, end });
                start = end;
            }
        }
        Ok(RowPartition { n: self.n, blocks })
    }

    /// Checks the partition invariant: blocks tile `0..n` exactly.
    pub fn validate(&self) -> Result<()> {
        let mut expect = 0;
        for b in &self.blocks {
            if b.start != expect || b.is_empty() {
                return Err(SparseError::Generator(format!(
                    "partition gap/overlap at row {expect}"
                )));
            }
            expect = b.end;
        }
        if expect != self.n {
            return Err(SparseError::Generator("partition does not cover all rows".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_exactly() {
        let p = RowPartition::uniform(100, 32).unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.block(0), RowBlock { start: 0, end: 32 });
        assert_eq!(p.block(3), RowBlock { start: 96, end: 100 });
        p.validate().unwrap();
    }

    #[test]
    fn uniform_exact_multiple() {
        let p = RowPartition::uniform(96, 32).unwrap();
        assert_eq!(p.len(), 3);
        assert!(p.blocks().iter().all(|b| b.len() == 32));
    }

    #[test]
    fn uniform_block_bigger_than_n() {
        let p = RowPartition::uniform(10, 1000).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.block(0).len(), 10);
    }

    #[test]
    fn uniform_rejects_zero() {
        assert!(RowPartition::uniform(10, 0).is_err());
        assert!(RowPartition::uniform(0, 4).is_err());
    }

    #[test]
    fn equal_count_distributes_remainder() {
        let p = RowPartition::equal_count(10, 3).unwrap();
        let lens: Vec<usize> = p.blocks().iter().map(|b| b.len()).collect();
        assert_eq!(lens, vec![4, 3, 3]);
        p.validate().unwrap();
    }

    #[test]
    fn equal_count_rejects_bad_k() {
        assert!(RowPartition::equal_count(3, 0).is_err());
        assert!(RowPartition::equal_count(3, 4).is_err());
    }

    #[test]
    fn block_of_finds_owner() {
        let p = RowPartition::uniform(100, 30).unwrap();
        assert_eq!(p.block_of(0), 0);
        assert_eq!(p.block_of(29), 0);
        assert_eq!(p.block_of(30), 1);
        assert_eq!(p.block_of(99), 3);
        for row in 0..100 {
            assert!(p.block(p.block_of(row)).contains(row));
        }
    }

    #[test]
    fn refine_nests() {
        let devices = RowPartition::equal_count(100, 2).unwrap();
        let tb = devices.refine(16).unwrap();
        tb.validate().unwrap();
        // No thread block crosses a device boundary.
        for b in tb.blocks() {
            let d0 = devices.block_of(b.start);
            let d1 = devices.block_of(b.end - 1);
            assert_eq!(d0, d1);
        }
    }

    #[test]
    fn from_offsets_roundtrip() {
        let p = RowPartition::from_offsets(&[0, 5, 9, 20]).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.n(), 20);
        p.validate().unwrap();
        assert!(RowPartition::from_offsets(&[0, 5, 5]).is_err());
        assert!(RowPartition::from_offsets(&[1, 5]).is_err());
        assert!(RowPartition::from_offsets(&[0]).is_err());
    }
}
