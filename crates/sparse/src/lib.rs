#![warn(missing_docs)]

//! # abr-sparse
//!
//! Sparse linear-algebra substrate for the `block-async-relax` workspace.
//!
//! This crate provides everything the relaxation solvers in `abr-core` need
//! from a linear-algebra library:
//!
//! * matrix formats ([`CooMatrix`], [`CsrMatrix`], [`DenseMatrix`], the
//!   GPU-layout [`EllMatrix`]) with conversions, transposition, and
//!   sparse matrix–matrix products ([`csr::CsrMatrix::spgemm`]),
//! * level-1 vector kernels ([`blas1`]),
//! * deterministic generators reproducing the structure and iteration-matrix
//!   properties of the University of Florida test matrices used by the paper
//!   ([`gen`]),
//! * spectral estimation — power iteration and symmetric Lanczos — used to
//!   compute the `rho(B)` / condition-number columns of Table 1 ([`spectra`]),
//! * row-block partitioning for the block-asynchronous method ([`partition`]),
//! * precompiled block-local kernel plans — packed local/halo operators
//!   with pre-inverted diagonals — for allocation-free sweeps ([`block_plan`]),
//! * reverse Cuthill–McKee reordering ([`reorder`]),
//! * diagonal and tau-scaling ([`scaling`]),
//! * MatrixMarket I/O ([`io`]).
//!
//! All floating-point work is `f64`; indices are `usize`.

pub mod blas1;
pub mod block_plan;
pub mod coloring;
pub mod coo;
pub mod csr;
pub mod dense;
pub mod ell;
pub mod gen;
pub mod io;
pub mod iteration_matrix;
pub mod par;
pub mod partition;
pub mod reorder;
pub mod scaling;
pub mod simd;
pub mod spectra;
pub mod stats;
pub mod stencil;

pub use block_plan::{BlockEll, BlockPlan, SweepTier};
pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use ell::EllMatrix;
pub use iteration_matrix::IterationMatrix;
pub use par::ParContext;
pub use partition::RowPartition;
pub use stencil::{GridShape, StencilBlock, StencilDescriptor, StencilTap};

use std::fmt;

/// Errors produced by the sparse substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// A matrix/vector dimension did not match what the operation required.
    DimensionMismatch {
        /// human-readable description of the operation
        op: &'static str,
        /// expected size
        expected: usize,
        /// size that was found
        found: usize,
    },
    /// An entry index was outside the matrix.
    IndexOutOfBounds {
        /// offending row index
        row: usize,
        /// offending column index
        col: usize,
        /// matrix row count
        n_rows: usize,
        /// matrix column count
        n_cols: usize,
    },
    /// The matrix has a zero (or missing) diagonal entry where one is needed.
    ZeroDiagonal {
        /// the row whose diagonal entry is zero/missing
        row: usize,
    },
    /// Parsing a MatrixMarket file failed.
    Parse(String),
    /// An iterative estimator failed to converge.
    NoConvergence {
        /// which estimator gave up
        what: &'static str,
        /// the iteration budget it exhausted
        iterations: usize,
    },
    /// Generator parameter search failed (e.g. bisection bracket invalid).
    Generator(String),
    /// A stencil descriptor was malformed or failed the cross-check
    /// against an assembled matrix.
    Stencil(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::DimensionMismatch { op, expected, found } => {
                write!(f, "dimension mismatch in {op}: expected {expected}, found {found}")
            }
            SparseError::IndexOutOfBounds { row, col, n_rows, n_cols } => {
                write!(f, "index ({row}, {col}) out of bounds for {n_rows}x{n_cols} matrix")
            }
            SparseError::ZeroDiagonal { row } => {
                write!(f, "zero or missing diagonal entry at row {row}")
            }
            SparseError::Parse(msg) => write!(f, "parse error: {msg}"),
            SparseError::NoConvergence { what, iterations } => {
                write!(f, "{what} did not converge within {iterations} iterations")
            }
            SparseError::Generator(msg) => write!(f, "generator error: {msg}"),
            SparseError::Stencil(msg) => write!(f, "stencil error: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

/// Convenient result alias for the crate.
pub type Result<T> = std::result::Result<T, SparseError>;
