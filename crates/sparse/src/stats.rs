//! Matrix characteristics for the paper's Table 1:
//! dimension, nnz, `cond(A)`, `cond(D^{-1}A)`, and `rho(M)` for the Jacobi
//! iteration matrix `M = I - D^{-1}A`, plus `rho(|M|)` (the asynchronous
//! convergence bound the paper discusses in §3.1).

use crate::spectra::{cond_jacobi_scaled, cond_symmetric};
use crate::{CsrMatrix, IterationMatrix, Result};

/// The Table 1 row for one matrix.
#[derive(Debug, Clone)]
pub struct MatrixStats {
    /// Dimension `n`.
    pub n: usize,
    /// Stored nonzeros.
    pub nnz: usize,
    /// Condition-number estimate of `A` (symmetric Lanczos).
    pub cond_a: f64,
    /// Condition-number estimate of `D^{-1}A`.
    pub cond_jacobi: f64,
    /// Spectral radius of the Jacobi iteration matrix `B = I - D^{-1}A`.
    pub rho: f64,
    /// Spectral radius of `|B|` — the asynchronous convergence bound.
    pub rho_abs: f64,
    /// Whether the matrix is symmetric (within 1e-10 absolute).
    pub symmetric: bool,
    /// Whether the matrix is (weakly) diagonally dominant.
    pub diag_dominant: bool,
}

/// Computes the full statistics row for a square matrix with nonzero
/// diagonal.
pub fn matrix_stats(a: &CsrMatrix) -> Result<MatrixStats> {
    let it = IterationMatrix::new(a)?;
    Ok(MatrixStats {
        n: a.n_rows(),
        nnz: a.nnz(),
        cond_a: cond_symmetric(a, 160)?,
        cond_jacobi: cond_jacobi_scaled(a)?,
        rho: it.spectral_radius()?,
        rho_abs: it.spectral_radius_abs()?,
        symmetric: a.is_symmetric_within(1e-10),
        diag_dominant: a.is_diagonally_dominant(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::laplacian_1d;

    #[test]
    fn laplacian_stats() {
        let n = 40;
        let a = laplacian_1d(n);
        let s = matrix_stats(&a).unwrap();
        assert_eq!(s.n, n);
        assert_eq!(s.nnz, 3 * n - 2);
        assert!(s.symmetric);
        assert!(s.diag_dominant);
        let exact_rho = (std::f64::consts::PI / (n as f64 + 1.0)).cos();
        assert!((s.rho - exact_rho).abs() < 1e-5);
        assert!((s.rho_abs - exact_rho).abs() < 1e-5);
        // cond(A) = cond(D^{-1}A) for constant diagonal
        assert!((s.cond_a - s.cond_jacobi).abs() / s.cond_a < 1e-6);
        // exact cond: (1+cos)/(1-cos)
        let exact_cond = (1.0 + exact_rho) / (1.0 - exact_rho);
        assert!((s.cond_a - exact_cond).abs() / exact_cond < 1e-6, "{}", s.cond_a);
    }

    #[test]
    fn identity_stats() {
        let a = CsrMatrix::identity(10);
        let s = matrix_stats(&a).unwrap();
        assert!((s.cond_a - 1.0).abs() < 1e-9);
        assert!(s.rho.abs() < 1e-9);
        assert!(s.rho_abs.abs() < 1e-9);
    }
}
