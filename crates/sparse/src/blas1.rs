//! Level-1 vector kernels used throughout the solvers.
//!
//! These are deliberately plain sequential loops: the matrices in the paper
//! are small enough (n <= 20000) that threading level-1 ops would only add
//! noise, and keeping them scalar makes the virtual-timing accounting of the
//! GPU simulator unambiguous.

/// Dot product `x . y`.
///
/// # Panics
/// Panics if the slices differ in length (programming error, not data error).
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(&a, &b)| a * b).sum()
}

/// Euclidean norm `||x||_2`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Infinity norm `||x||_inf`.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, &v| m.max(v.abs()))
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y = x + beta * y` (the BLAS `xpay` used by CG).
#[inline]
pub fn xpay(x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "xpay: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = xi + beta * *yi;
    }
}

/// `x *= alpha`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for v in x {
        *v *= alpha;
    }
}

/// `z = x - y`.
#[inline]
pub fn sub(x: &[f64], y: &[f64], z: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    assert_eq!(x.len(), z.len(), "sub: output length mismatch");
    for ((zi, &xi), &yi) in z.iter_mut().zip(x).zip(y) {
        *zi = xi - yi;
    }
}

/// Relative l2 error `||x - y|| / max(||y||, eps)`.
#[inline]
pub fn rel_l2_error(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "rel_l2_error: length mismatch");
    let mut num = 0.0;
    let mut den = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        num += (a - b) * (a - b);
        den += b * b;
    }
    num.sqrt() / den.sqrt().max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_orthogonal() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn norms() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_inf(&[-7.0, 3.0]), 7.0);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn xpay_formula() {
        let mut y = vec![10.0, 20.0];
        xpay(&[1.0, 2.0], 0.5, &mut y);
        assert_eq!(y, vec![6.0, 12.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![2.0, -4.0];
        scale(-0.5, &mut x);
        assert_eq!(x, vec![-1.0, 2.0]);
    }

    #[test]
    fn sub_componentwise() {
        let mut z = vec![0.0; 2];
        sub(&[5.0, 3.0], &[2.0, 4.0], &mut z);
        assert_eq!(z, vec![3.0, -1.0]);
    }

    #[test]
    fn rel_error_zero_at_equality() {
        assert_eq!(rel_l2_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((rel_l2_error(&[2.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
