//! Small dense matrices, used as reference implementations in tests and for
//! the dense eigen-solves inside the generators' parameter tuning.

use std::ops::{Index, IndexMut};

/// A row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n_rows: usize,
    n_cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Zero matrix of the given shape.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        DenseMatrix { n_rows, n_cols, data: vec![0.0; n_rows * n_cols] }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a row-major data vector.
    pub fn from_rows(n_rows: usize, n_cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n_rows * n_cols, "data length must be n_rows * n_cols");
        DenseMatrix { n_rows, n_cols, data }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Dense mat-vec `y = A x`.
    #[allow(clippy::needless_range_loop)] // row index drives data stride and y together
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n_cols);
        let mut y = vec![0.0; self.n_rows];
        for r in 0..self.n_rows {
            let row = &self.data[r * self.n_cols..(r + 1) * self.n_cols];
            y[r] = row.iter().zip(x).map(|(&a, &b)| a * b).sum();
        }
        y
    }

    /// Dense mat-mat product.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.n_cols, other.n_rows);
        let mut out = DenseMatrix::zeros(self.n_rows, other.n_cols);
        for i in 0..self.n_rows {
            for k in 0..self.n_cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.n_cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Solves `A x = b` by Gaussian elimination with partial pivoting.
    /// Returns `None` if the matrix is numerically singular.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.n_rows, self.n_cols);
        assert_eq!(b.len(), self.n_rows);
        let n = self.n_rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // pivot
            let mut p = col;
            let mut best = a[col * n + col].abs();
            for r in (col + 1)..n {
                let v = a[r * n + col].abs();
                if v > best {
                    best = v;
                    p = r;
                }
            }
            if best < 1e-300 {
                return None;
            }
            if p != col {
                for j in 0..n {
                    a.swap(col * n + j, p * n + j);
                }
                x.swap(col, p);
            }
            let piv = a[col * n + col];
            for r in (col + 1)..n {
                let f = a[r * n + col] / piv;
                if f == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[r * n + j] -= f * a[col * n + j];
                }
                x[r] -= f * x[col];
            }
        }
        for col in (0..n).rev() {
            let mut acc = x[col];
            for j in (col + 1)..n {
                acc -= a[col * n + j] * x[j];
            }
            x[col] = acc / a[col * n + col];
        }
        Some(x)
    }

    /// All eigenvalues of a **symmetric** matrix via the cyclic Jacobi
    /// rotation method. Only intended for the small systems used in tests
    /// and generator tuning (O(n^3) per sweep).
    pub fn symmetric_eigenvalues(&self) -> Vec<f64> {
        assert_eq!(self.n_rows, self.n_cols);
        let n = self.n_rows;
        let mut a = self.data.clone();
        let off = |a: &[f64]| -> f64 {
            let mut s = 0.0;
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        s += a[i * n + j] * a[i * n + j];
                    }
                }
            }
            s
        };
        let scale: f64 = self.data.iter().map(|v| v * v).sum::<f64>().max(1e-300);
        let mut sweeps = 0;
        while off(&a) > 1e-24 * scale && sweeps < 100 {
            sweeps += 1;
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = a[p * n + q];
                    if apq.abs() < 1e-300 {
                        continue;
                    }
                    let app = a[p * n + p];
                    let aqq = a[q * n + q];
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        1.0 / (theta - (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;
                    for k in 0..n {
                        let akp = a[k * n + p];
                        let akq = a[k * n + q];
                        a[k * n + p] = c * akp - s * akq;
                        a[k * n + q] = s * akp + c * akq;
                    }
                    for k in 0..n {
                        let apk = a[p * n + k];
                        let aqk = a[q * n + k];
                        a[p * n + k] = c * apk - s * aqk;
                        a[q * n + k] = s * apk + c * aqk;
                    }
                }
            }
        }
        let mut eig: Vec<f64> = (0..n).map(|i| a[i * n + i]).collect();
        eig.sort_by(|x, y| x.partial_cmp(y).unwrap());
        eig
    }

    /// Spectral radius (largest |eigenvalue|) of a **general** small matrix,
    /// computed robustly through the symmetric eigen-solve of the 2n x 2n
    /// embedding would be wasteful; instead we run a dense power iteration
    /// with deflation-free restarts, adequate for our generator tuning.
    pub fn spectral_radius_power(&self, iters: usize) -> f64 {
        assert_eq!(self.n_rows, self.n_cols);
        let n = self.n_rows;
        if n == 0 {
            return 0.0;
        }
        let mut x: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.7).sin()).collect();
        let mut lambda = 0.0;
        for _ in 0..iters {
            let y = self.mul_vec(&x);
            let norm = y.iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm < 1e-300 {
                return 0.0;
            }
            lambda = norm / x.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-300);
            x = y.iter().map(|v| v / norm).collect();
        }
        lambda
    }
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.n_cols + c]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.n_cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_vec_identity() {
        let i = DenseMatrix::identity(3);
        assert_eq!(i.mul_vec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solve_small_system() {
        let a = DenseMatrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_singular_returns_none() {
        let a = DenseMatrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(a.solve(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn solve_with_pivoting_needed() {
        // leading zero pivot forces a row swap
        let a = DenseMatrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = a.solve(&[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric_eigenvalues_of_diag() {
        let mut a = DenseMatrix::zeros(3, 3);
        a[(0, 0)] = 3.0;
        a[(1, 1)] = -1.0;
        a[(2, 2)] = 2.0;
        let e = a.symmetric_eigenvalues();
        assert!((e[0] + 1.0).abs() < 1e-10);
        assert!((e[1] - 2.0).abs() < 1e-10);
        assert!((e[2] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn symmetric_eigenvalues_tridiag() {
        // 1D Laplacian tridiag(-1, 2, -1), n = 4: eigenvalues
        // 2 - 2cos(k pi / 5), k = 1..4.
        let n = 4;
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = 2.0;
            if i + 1 < n {
                a[(i, i + 1)] = -1.0;
                a[(i + 1, i)] = -1.0;
            }
        }
        let e = a.symmetric_eigenvalues();
        for (k, ev) in (1..=n).zip(&e) {
            let exact = 2.0 - 2.0 * (k as f64 * std::f64::consts::PI / 5.0).cos();
            assert!((ev - exact).abs() < 1e-9, "k={k}: {ev} vs {exact}");
        }
    }

    #[test]
    fn matmul_identity() {
        let a = DenseMatrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = DenseMatrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn power_iteration_diag() {
        let mut a = DenseMatrix::zeros(2, 2);
        a[(0, 0)] = 0.5;
        a[(1, 1)] = -0.9;
        let rho = a.spectral_radius_power(500);
        assert!((rho - 0.9).abs() < 1e-6);
    }
}
