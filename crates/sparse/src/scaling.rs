//! Diagonal and tau-scaling.
//!
//! Section 4.2 of the paper notes that for `s1rmt3m1` the plain Jacobi
//! iteration matrix has `rho(B) ≈ 2.65 > 1`, but SPD matrices can still be
//! handled "after a proper scaling is added, e.g., taking
//! `B = I − τ D^{-1}A` with `τ = 2 / (λ1 + λn)`", where `λ1`, `λn` are the
//! extreme eigenvalues of `D^{-1}A`. This module implements that remedy.

use crate::spectra::lanczos_extreme;
use crate::{CsrMatrix, Result, SparseError};

/// The optimal damping factor `τ = 2 / (λ1 + λn)` for the damped Jacobi
/// iteration on an SPD matrix, estimated via Lanczos on the symmetrised
/// operator `D^{-1/2} A D^{-1/2}` (similar to `D^{-1}A`).
pub fn optimal_tau(a: &CsrMatrix) -> Result<f64> {
    let extremes = jacobi_operator_extremes(a)?;
    let sum = extremes.0 + extremes.1;
    if sum <= 0.0 {
        return Err(SparseError::Generator(
            "optimal_tau requires a positive-definite D^{-1}A".into(),
        ));
    }
    Ok(2.0 / sum)
}

/// Extreme eigenvalues `(λ_min, λ_max)` of `D^{-1}A` for SPD `A`.
pub fn jacobi_operator_extremes(a: &CsrMatrix) -> Result<(f64, f64)> {
    let d = a.nonzero_diagonal()?;
    if d.iter().any(|&v| v <= 0.0) {
        return Err(SparseError::Generator(
            "jacobi_operator_extremes requires a positive diagonal".into(),
        ));
    }
    let s: Vec<f64> = d.iter().map(|&v| 1.0 / v.sqrt()).collect();
    let op = crate::spectra::ScaledOperator { a, scale: &s };
    let est = lanczos_extreme(&op, 200)?;
    Ok((est.lambda_min, est.lambda_max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::laplacian_1d;

    #[test]
    fn extremes_of_laplacian() {
        let n = 30;
        let a = laplacian_1d(n);
        let (lo, hi) = jacobi_operator_extremes(&a).unwrap();
        let pi = std::f64::consts::PI;
        // D^{-1}A eigenvalues: 1 - cos(k pi/(n+1)).
        let exact_lo = 1.0 - (pi / (n as f64 + 1.0)).cos();
        let exact_hi = 1.0 - ((n as f64) * pi / (n as f64 + 1.0)).cos();
        assert!((lo - exact_lo).abs() < 1e-8, "{lo} vs {exact_lo}");
        assert!((hi - exact_hi).abs() < 1e-8, "{hi} vs {exact_hi}");
    }

    #[test]
    fn optimal_tau_laplacian_is_one() {
        // lambda_min + lambda_max = 2 for the 1D Laplacian, so tau = 1.
        let a = laplacian_1d(20);
        let tau = optimal_tau(&a).unwrap();
        assert!((tau - 1.0).abs() < 1e-8, "{tau}");
    }

    #[test]
    fn optimal_tau_shifted() {
        // A = L + I: D^{-1}A spectrum in [(3 - 2cos)/3], sum of extremes
        // = 2, tau = 1 again by symmetry of the cosine spectrum around 1.
        let a = laplacian_1d(16)
            .add_scaled(1.0, &CsrMatrix::identity(16), 1.0)
            .unwrap();
        let tau = optimal_tau(&a).unwrap();
        assert!((tau - 1.0).abs() < 1e-8);
    }

    #[test]
    fn negative_diagonal_rejected() {
        let a = CsrMatrix::from_diagonal(&[1.0, -2.0]);
        assert!(jacobi_operator_extremes(&a).is_err());
    }


}
