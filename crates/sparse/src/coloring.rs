//! Greedy graph colouring of a matrix's adjacency structure.
//!
//! Rows with distinct colours have no direct coupling, so all rows of one
//! colour can update *simultaneously* while still using each other's
//! freshest values — the multi-colour generalisation of red-black
//! Gauss-Seidel, and the classical synchronous answer to the parallelism
//! problem the paper solves with asynchrony instead. `abr-core` provides
//! the matching multi-colour sweep; the comparison is part of the
//! ablation story.

use crate::CsrMatrix;

/// Greedy first-fit colouring in natural row order. Returns one colour id
/// per row; the number of colours is at most `max_degree + 1`.
pub fn greedy_coloring(a: &CsrMatrix) -> Vec<usize> {
    let n = a.n_rows();
    let mut colors = vec![usize::MAX; n];
    let mut forbidden: Vec<usize> = Vec::new();
    for i in 0..n {
        forbidden.clear();
        for (j, _) in a.row_iter(i) {
            if j != i && colors.get(j).copied().unwrap_or(usize::MAX) != usize::MAX {
                forbidden.push(colors[j]);
            }
        }
        // also respect the transpose couplings for nonsymmetric patterns:
        // a row must not share a colour with rows that read it. For
        // symmetric patterns this adds nothing; for nonsymmetric ones the
        // caller should colour A + A^T instead (see `coloring_symmetric`).
        let mut c = 0;
        while forbidden.contains(&c) {
            c += 1;
        }
        colors[i] = c;
    }
    colors
}

/// Colours the symmetrised pattern `A + A^T` — safe for nonsymmetric
/// matrices, where both read and write dependencies must be separated.
pub fn coloring_symmetric(a: &CsrMatrix) -> Vec<usize> {
    let sym = a
        .add_scaled(1.0, &a.transpose(), 1.0)
        .expect("square matrix added to its transpose");
    greedy_coloring(&sym)
}

/// Number of colours used by a colouring.
pub fn n_colors(colors: &[usize]) -> usize {
    colors.iter().copied().max().map_or(0, |m| m + 1)
}

/// Verifies the colouring invariant: no stored off-diagonal entry couples
/// two rows of the same colour.
pub fn is_valid_coloring(a: &CsrMatrix, colors: &[usize]) -> bool {
    if colors.len() != a.n_rows() {
        return false;
    }
    for i in 0..a.n_rows() {
        for (j, _) in a.row_iter(i) {
            if j != i && colors[i] == colors[j] {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{convection_diffusion_2d, laplacian_2d_5pt, trefethen};

    #[test]
    fn five_point_stencil_gets_two_colors() {
        let a = laplacian_2d_5pt(8);
        let colors = greedy_coloring(&a);
        assert!(is_valid_coloring(&a, &colors));
        assert_eq!(n_colors(&colors), 2, "checkerboard");
    }

    #[test]
    fn trefethen_colored_validly_with_at_least_a_triangle() {
        let a = trefethen(128).unwrap();
        let colors = greedy_coloring(&a);
        assert!(is_valid_coloring(&a, &colors));
        // {i, i+1, i+2} is a triangle (distances 1, 2, 1 are all powers
        // of two), so at least 3 colours are forced.
        assert!(n_colors(&colors) >= 3, "got {}", n_colors(&colors));
    }

    #[test]
    fn nonsymmetric_pattern_colored_via_symmetrisation() {
        let a = convection_diffusion_2d(6, 0.05, 1.0, 0.0);
        let colors = coloring_symmetric(&a);
        assert!(is_valid_coloring(&a, &colors));
        assert!(is_valid_coloring(&a.transpose(), &colors));
    }

    #[test]
    fn diagonal_matrix_one_color() {
        let a = CsrMatrix::from_diagonal(&[1.0; 10]);
        let colors = greedy_coloring(&a);
        assert_eq!(n_colors(&colors), 1);
    }

    #[test]
    fn rejects_wrong_length() {
        let a = laplacian_2d_5pt(3);
        assert!(!is_valid_coloring(&a, &[0, 1]));
    }
}
