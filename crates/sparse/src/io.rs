//! MatrixMarket coordinate-format I/O.
//!
//! Supports the subset of the format used by the University of Florida
//! collection: `matrix coordinate {real|integer} {general|symmetric}`.
//! Symmetric files store only the lower triangle; reading expands them.
//!
//! The reader is built for multi-million-entry files: the stream is
//! slurped once into a byte buffer, the entry region is split into
//! line-aligned chunks that parse concurrently on a [`ParContext`], and
//! the per-chunk triplets are merged back **in file order** before a
//! single CSR build. Because the merge is stable, the resulting matrix is
//! bit-identical for every thread count (duplicate entries sum in file
//! order either way).

use crate::{CooMatrix, CsrMatrix, ParContext, Result, SparseError};
use std::io::{Read, Write};
use std::path::Path;

/// Reads a MatrixMarket coordinate file into CSR.
///
/// Uses one parse thread per available core (capped at 8); see
/// [`read_matrix_market_with`] to pin the thread count. The result is
/// identical for every thread count.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<CsrMatrix> {
    let threads =
        std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1).min(8);
    read_matrix_market_with(reader, ParContext::new(threads))
}

/// Reads a MatrixMarket file from `path` (buffered, chunk-parallel).
pub fn read_matrix_market_path<P: AsRef<Path>>(path: P) -> Result<CsrMatrix> {
    let file = std::fs::File::open(path.as_ref())
        .map_err(|e| SparseError::Parse(format!("open {:?}: {e}", path.as_ref())))?;
    read_matrix_market(file)
}

/// Reads a MatrixMarket coordinate file into CSR with an explicit
/// [`ParContext`] for the chunk-parallel entry parse.
pub fn read_matrix_market_with<R: Read>(mut reader: R, ctx: ParContext) -> Result<CsrMatrix> {
    // One buffered slurp: a single large read beats line-at-a-time
    // BufReader traffic and gives the chunk splitter random access.
    let mut bytes = Vec::new();
    reader
        .read_to_end(&mut bytes)
        .map_err(|e| SparseError::Parse(e.to_string()))?;
    let mut pos = 0usize;

    let header = next_line(&bytes, &mut pos)
        .ok_or_else(|| SparseError::Parse("empty file".into()))?;
    let header = std::str::from_utf8(header)
        .map_err(|_| SparseError::Parse("header is not valid UTF-8".into()))?
        .to_string();
    let head = header.to_ascii_lowercase();
    if !head.starts_with("%%matrixmarket") {
        return Err(SparseError::Parse("missing %%MatrixMarket header".into()));
    }
    let fields: Vec<&str> = head.split_whitespace().collect();
    if fields.len() < 5 || fields[1] != "matrix" || fields[2] != "coordinate" {
        return Err(SparseError::Parse(format!("unsupported header: {header}")));
    }
    match fields[3] {
        "real" | "integer" => {}
        "pattern" => {
            return Err(SparseError::Parse(
                "unsupported MatrixMarket field qualifier `pattern`: the file \
                 stores structure only (no numeric values); only `real` and \
                 `integer` coordinate matrices are supported"
                    .into(),
            ))
        }
        "complex" => {
            return Err(SparseError::Parse(
                "unsupported MatrixMarket field qualifier `complex`: entries \
                 carry two values (re, im); only `real` and `integer` \
                 coordinate matrices are supported"
                    .into(),
            ))
        }
        other => {
            return Err(SparseError::Parse(format!("unsupported field type: {other}")))
        }
    }
    let symmetric = match fields[4] {
        "general" => false,
        "symmetric" => true,
        q @ ("skew-symmetric" | "hermitian") => {
            return Err(SparseError::Parse(format!(
                "unsupported MatrixMarket symmetry qualifier `{q}`: only \
                 `general` and `symmetric` are supported"
            )))
        }
        other => return Err(SparseError::Parse(format!("unsupported symmetry: {other}"))),
    };

    // Skip comments, read size line.
    let mut size_line = None;
    while let Some(line) = next_line(&bytes, &mut pos) {
        let t = trim_ascii(line);
        if t.is_empty() || t[0] == b'%' {
            continue;
        }
        size_line = Some(
            std::str::from_utf8(t)
                .map_err(|_| SparseError::Parse("size line is not valid UTF-8".into()))?
                .to_string(),
        );
        break;
    }
    let size_line = size_line.ok_or_else(|| SparseError::Parse("missing size line".into()))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| SparseError::Parse(format!("bad size token {t}"))))
        .collect::<Result<_>>()?;
    if dims.len() != 3 {
        return Err(SparseError::Parse("size line must have 3 numbers".into()));
    }
    let (n_rows, n_cols, nnz) = (dims[0], dims[1], dims[2]);

    // Chunk the entry region on line boundaries and parse concurrently.
    let ranges = chunk_ranges(&bytes, pos, ctx.n_threads.max(1));
    let cap_hint = if ranges.is_empty() {
        0
    } else {
        (if symmetric { 2 * nnz } else { nnz }).div_ceil(ranges.len())
    };
    let mut chunks = ctx.map_indexed(ranges.len(), |i| {
        let (s, e) = ranges[i];
        parse_entry_chunk(&bytes[s..e], symmetric, n_rows, n_cols, cap_hint)
    });

    // Stable merge: first error in file order wins, triplets concatenate
    // in chunk (= file) order, exactly as the sequential parse would see
    // them.
    for ch in chunks.iter_mut() {
        if let Some(err) = ch.err.take() {
            return Err(err);
        }
    }
    let read: usize = chunks.iter().map(|c| c.read).sum();
    if read != nnz {
        return Err(SparseError::Parse(format!("expected {nnz} entries, found {read}")));
    }
    let stored: usize = chunks.iter().map(|c| c.rows.len()).sum();
    let mut coo = CooMatrix::with_capacity(n_rows, n_cols, stored);
    for ch in &chunks {
        for k in 0..ch.rows.len() {
            // Bounds were validated during the chunk parse.
            coo.push(ch.rows[k], ch.cols[k], ch.vals[k])?;
        }
    }
    Ok(coo.to_csr())
}

/// Writes a CSR matrix in MatrixMarket `general` coordinate format.
pub fn write_matrix_market<W: Write>(a: &CsrMatrix, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(writer, "% written by block-async-relax")?;
    writeln!(writer, "{} {} {}", a.n_rows(), a.n_cols(), a.nnz())?;
    for r in 0..a.n_rows() {
        for (c, v) in a.row_iter(r) {
            writeln!(writer, "{} {} {:.17e}", r + 1, c + 1, v)?;
        }
    }
    Ok(())
}

/// Returns the next line (without its `\n`) and advances `pos` past it.
fn next_line<'a>(bytes: &'a [u8], pos: &mut usize) -> Option<&'a [u8]> {
    if *pos >= bytes.len() {
        return None;
    }
    let start = *pos;
    match bytes[start..].iter().position(|&b| b == b'\n') {
        Some(i) => {
            *pos = start + i + 1;
            Some(&bytes[start..start + i])
        }
        None => {
            *pos = bytes.len();
            Some(&bytes[start..])
        }
    }
}

fn trim_ascii(mut s: &[u8]) -> &[u8] {
    while let [first, rest @ ..] = s {
        if first.is_ascii_whitespace() {
            s = rest;
        } else {
            break;
        }
    }
    while let [rest @ .., last] = s {
        if last.is_ascii_whitespace() {
            s = rest;
        } else {
            break;
        }
    }
    s
}

/// Splits `bytes[start..]` into at most `n_chunks` ranges that all end on
/// a line boundary (or the end of the buffer).
fn chunk_ranges(bytes: &[u8], start: usize, n_chunks: usize) -> Vec<(usize, usize)> {
    let len = bytes.len();
    let mut ranges = Vec::new();
    if start >= len {
        return ranges;
    }
    let target = (len - start).div_ceil(n_chunks.max(1));
    let mut s = start;
    while s < len {
        let mut e = (s + target).min(len);
        while e < len && bytes[e - 1] != b'\n' {
            e += 1;
        }
        ranges.push((s, e));
        s = e;
    }
    ranges
}

/// Triplets parsed from one chunk, in file order (symmetric mirrors are
/// interleaved right after their source entry, matching the sequential
/// `push_sym` order).
struct ParsedChunk {
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
    /// Entry lines consumed (mirrors not counted), for the nnz check.
    read: usize,
    /// First parse error in this chunk, if any.
    err: Option<SparseError>,
}

fn parse_entry_chunk(
    bytes: &[u8],
    symmetric: bool,
    n_rows: usize,
    n_cols: usize,
    cap_hint: usize,
) -> ParsedChunk {
    let mut out = ParsedChunk {
        rows: Vec::with_capacity(cap_hint),
        cols: Vec::with_capacity(cap_hint),
        vals: Vec::with_capacity(cap_hint),
        read: 0,
        err: None,
    };
    let mut pos = 0usize;
    while let Some(line) = next_line(bytes, &mut pos) {
        let t = trim_ascii(line);
        if t.is_empty() || t[0] == b'%' {
            continue;
        }
        let (r, c, v) = match parse_entry(t) {
            Ok(e) => e,
            Err(err) => {
                out.err = Some(err);
                return out;
            }
        };
        if r == 0 || c == 0 {
            out.err = Some(SparseError::Parse("MatrixMarket indices are 1-based".into()));
            return out;
        }
        let (r, c) = (r - 1, c - 1);
        if r >= n_rows || c >= n_cols {
            out.err =
                Some(SparseError::IndexOutOfBounds { row: r, col: c, n_rows, n_cols });
            return out;
        }
        out.rows.push(r);
        out.cols.push(c);
        out.vals.push(v);
        if symmetric && r != c {
            if c >= n_rows || r >= n_cols {
                out.err =
                    Some(SparseError::IndexOutOfBounds { row: c, col: r, n_rows, n_cols });
                return out;
            }
            out.rows.push(c);
            out.cols.push(r);
            out.vals.push(v);
        }
        out.read += 1;
    }
    out
}

fn parse_entry(t: &[u8]) -> Result<(usize, usize, f64)> {
    let bad = || SparseError::Parse(format!("bad entry line: {}", String::from_utf8_lossy(t)));
    let mut it = t
        .split(|b| b.is_ascii_whitespace())
        .filter(|tok| !tok.is_empty())
        .map(|tok| std::str::from_utf8(tok).ok());
    let r: usize = it.next().flatten().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
    let c: usize = it.next().flatten().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
    let v: f64 = it.next().flatten().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
    Ok((r, c, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::laplacian_2d_5pt;

    #[test]
    fn roundtrip_general() {
        let mut coo = CooMatrix::new(3, 4);
        coo.push(0, 0, 1.5).unwrap();
        coo.push(2, 3, -2.25).unwrap();
        coo.push(1, 1, 1e-30).unwrap();
        let a = coo.to_csr();
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let b = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn read_symmetric_expands() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    % comment\n\
                    2 2 2\n\
                    1 1 4.0\n\
                    2 1 -1.0\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.get(0, 0), 4.0);
        assert_eq!(a.nnz(), 3);
    }

    #[test]
    fn symmetric_roundtrips_against_full_matrix() {
        // Write only the lower triangle of a symmetric Laplacian by hand;
        // the reader must expand it to exactly the assembled full matrix.
        let a = laplacian_2d_5pt(7);
        let mut text = String::from("%%MatrixMarket matrix coordinate real symmetric\n");
        let mut count = 0usize;
        let mut body = String::new();
        for r in 0..a.n_rows() {
            for (c, v) in a.row_iter(r) {
                if c <= r {
                    body.push_str(&format!("{} {} {:.17e}\n", r + 1, c + 1, v));
                    count += 1;
                }
            }
        }
        text.push_str(&format!("{} {} {}\n", a.n_rows(), a.n_cols(), count));
        text.push_str(&body);
        let b = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_matrix_market("not a matrix\n".as_bytes()).is_err());
        assert!(read_matrix_market(
            "%%MatrixMarket matrix array real general\n1 1\n1.0\n".as_bytes()
        )
        .is_err());
        assert!(read_matrix_market("%%MatrixMarket matrix coordinate\n".as_bytes()).is_err());
        assert!(read_matrix_market("".as_bytes()).is_err());
    }

    #[test]
    fn rejects_pattern_and_complex_naming_the_qualifier() {
        let pat = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 1\n";
        let err = read_matrix_market(pat.as_bytes()).unwrap_err().to_string();
        assert!(err.contains("`pattern`"), "error must name the qualifier: {err}");

        let cx = "%%MatrixMarket matrix coordinate complex general\n2 2 1\n1 1 1.0 0.0\n";
        let err = read_matrix_market(cx.as_bytes()).unwrap_err().to_string();
        assert!(err.contains("`complex`"), "error must name the qualifier: {err}");

        let skew = "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 1.0\n";
        let err = read_matrix_market(skew.as_bytes()).unwrap_err().to_string();
        assert!(err.contains("`skew-symmetric`"), "error must name the qualifier: {err}");
    }

    #[test]
    fn rejects_wrong_count() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_zero_based_indices() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_bounds_indices() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a\n\n% b\n\
                    1 1 1\n\n\
                    1 1 3.5\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.get(0, 0), 3.5);
    }

    #[test]
    fn chunk_parallel_parse_is_bit_identical_to_sequential() {
        // Big enough that every thread count actually splits into
        // multiple chunks; duplicates exercise the stable-merge ordering.
        let a = laplacian_2d_5pt(24);
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        buf.extend_from_slice(b"% trailing comment\n");
        let seq = read_matrix_market_with(&buf[..], ParContext::new(1)).unwrap();
        for threads in [2usize, 3, 4, 8] {
            let par = read_matrix_market_with(&buf[..], ParContext::new(threads)).unwrap();
            assert_eq!(seq, par, "threads {threads}");
        }
        assert_eq!(seq, a);
    }

    #[test]
    fn error_in_late_chunk_still_reported() {
        let a = laplacian_2d_5pt(16);
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        buf.extend_from_slice(b"1 1 not-a-number\n");
        for threads in [1usize, 4] {
            let err = read_matrix_market_with(&buf[..], ParContext::new(threads))
                .unwrap_err()
                .to_string();
            assert!(err.contains("bad entry line"), "threads {threads}: {err}");
        }
    }

    #[test]
    fn path_reader_roundtrips() {
        let a = laplacian_2d_5pt(5);
        let path = std::env::temp_dir().join(format!(
            "abr_io_test_{}_{:?}.mtx",
            std::process::id(),
            std::thread::current().id()
        ));
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        std::fs::write(&path, &buf).unwrap();
        let b = read_matrix_market_path(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(a, b);
        assert!(read_matrix_market_path("/nonexistent/abr.mtx").is_err());
    }
}
