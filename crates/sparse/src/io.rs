//! MatrixMarket coordinate-format I/O.
//!
//! Supports the subset of the format used by the University of Florida
//! collection: `matrix coordinate real {general|symmetric}`. Symmetric
//! files store only the lower triangle; reading expands them.

use crate::{CooMatrix, CsrMatrix, Result, SparseError};
use std::io::{BufRead, BufReader, Read, Write};

/// Reads a MatrixMarket coordinate file into CSR.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<CsrMatrix> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or_else(|| SparseError::Parse("empty file".into()))?
        .map_err(|e| SparseError::Parse(e.to_string()))?;
    let head = header.to_ascii_lowercase();
    if !head.starts_with("%%matrixmarket") {
        return Err(SparseError::Parse("missing %%MatrixMarket header".into()));
    }
    let fields: Vec<&str> = head.split_whitespace().collect();
    if fields.len() < 5 || fields[1] != "matrix" || fields[2] != "coordinate" {
        return Err(SparseError::Parse(format!("unsupported header: {header}")));
    }
    if fields[3] != "real" && fields[3] != "integer" {
        return Err(SparseError::Parse(format!("unsupported field type: {}", fields[3])));
    }
    let symmetric = match fields[4] {
        "general" => false,
        "symmetric" => true,
        other => return Err(SparseError::Parse(format!("unsupported symmetry: {other}"))),
    };

    // Skip comments, read size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line.map_err(|e| SparseError::Parse(e.to_string()))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| SparseError::Parse("missing size line".into()))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| SparseError::Parse(format!("bad size token {t}"))))
        .collect::<Result<_>>()?;
    if dims.len() != 3 {
        return Err(SparseError::Parse("size line must have 3 numbers".into()));
    }
    let (n_rows, n_cols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = CooMatrix::with_capacity(n_rows, n_cols, if symmetric { 2 * nnz } else { nnz });
    let mut read = 0usize;
    for line in lines {
        let line = line.map_err(|e| SparseError::Parse(e.to_string()))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let r: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| SparseError::Parse(format!("bad entry line: {t}")))?;
        let c: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| SparseError::Parse(format!("bad entry line: {t}")))?;
        let v: f64 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| SparseError::Parse(format!("bad entry line: {t}")))?;
        if r == 0 || c == 0 {
            return Err(SparseError::Parse("MatrixMarket indices are 1-based".into()));
        }
        if symmetric {
            coo.push_sym(r - 1, c - 1, v)?;
        } else {
            coo.push(r - 1, c - 1, v)?;
        }
        read += 1;
    }
    if read != nnz {
        return Err(SparseError::Parse(format!("expected {nnz} entries, found {read}")));
    }
    Ok(coo.to_csr())
}

/// Writes a CSR matrix in MatrixMarket `general` coordinate format.
pub fn write_matrix_market<W: Write>(a: &CsrMatrix, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(writer, "% written by block-async-relax")?;
    writeln!(writer, "{} {} {}", a.n_rows(), a.n_cols(), a.nnz())?;
    for r in 0..a.n_rows() {
        for (c, v) in a.row_iter(r) {
            writeln!(writer, "{} {} {:.17e}", r + 1, c + 1, v)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_general() {
        let mut coo = CooMatrix::new(3, 4);
        coo.push(0, 0, 1.5).unwrap();
        coo.push(2, 3, -2.25).unwrap();
        coo.push(1, 1, 1e-30).unwrap();
        let a = coo.to_csr();
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let b = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn read_symmetric_expands() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    % comment\n\
                    2 2 2\n\
                    1 1 4.0\n\
                    2 1 -1.0\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.get(0, 0), 4.0);
        assert_eq!(a.nnz(), 3);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_matrix_market("not a matrix\n".as_bytes()).is_err());
        assert!(read_matrix_market(
            "%%MatrixMarket matrix array real general\n1 1\n1.0\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn rejects_wrong_count() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_zero_based_indices() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a\n\n% b\n\
                    1 1 1\n\n\
                    1 1 3.5\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.get(0, 0), 3.5);
    }
}
