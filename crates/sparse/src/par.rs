//! Threaded CPU kernels: row-chunked SpMV and reduction-based dot
//! products over `std::thread::scope`.
//!
//! The paper's CPU Gauss-Seidel reference uses "4 cores … for the
//! matrix-vector operations that can be parallelized" (§3.2); this module
//! is that capability for our CPU-side baselines and for large-matrix
//! utility work (spectra estimation on the 20 000-row Trefethen system).
//! The solvers themselves stay sequential by default — determinism of the
//! numerics is worth more to the experiments than CPU speed — so these
//! kernels are opt-in.

use crate::{CsrMatrix, Result, SparseError};

/// A fixed thread-count context for the parallel kernels.
#[derive(Debug, Clone, Copy)]
pub struct ParContext {
    /// Worker threads used per operation.
    pub n_threads: usize,
}

impl ParContext {
    /// Context with the given thread count (at least 1).
    pub fn new(n_threads: usize) -> ParContext {
        ParContext { n_threads: n_threads.max(1) }
    }

    /// The paper's CPU configuration: 4 cores.
    pub fn paper_cpu() -> ParContext {
        ParContext { n_threads: 4 }
    }

    /// Parallel SpMV `y = A x`, rows split into contiguous chunks.
    pub fn spmv(&self, a: &CsrMatrix, x: &[f64], y: &mut [f64]) -> Result<()> {
        if x.len() != a.n_cols() {
            return Err(SparseError::DimensionMismatch {
                op: "par spmv x",
                expected: a.n_cols(),
                found: x.len(),
            });
        }
        if y.len() != a.n_rows() {
            return Err(SparseError::DimensionMismatch {
                op: "par spmv y",
                expected: a.n_rows(),
                found: y.len(),
            });
        }
        let n = a.n_rows();
        let threads = self.n_threads.min(n.max(1));
        if threads <= 1 || n < 256 {
            return a.spmv(x, y);
        }
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, y_chunk) in y.chunks_mut(chunk).enumerate() {
                let start = t * chunk;
                // the same four-row-lane kernel as sequential spmv, so the
                // chunked result is bit-identical to it for any chunking
                scope.spawn(move || a.spmv_range(start, x, y_chunk));
            }
        });
        Ok(())
    }

    /// Parallel dot product with per-chunk partial sums.
    pub fn dot(&self, x: &[f64], y: &[f64]) -> f64 {
        assert_eq!(x.len(), y.len(), "dot: length mismatch");
        let n = x.len();
        let threads = self.n_threads.min(n.max(1));
        if threads <= 1 || n < 4096 {
            return crate::blas1::dot(x, y);
        }
        let chunk = n.div_ceil(threads);
        let mut partials = vec![0.0f64; threads];
        std::thread::scope(|scope| {
            for ((xc, yc), p) in
                x.chunks(chunk).zip(y.chunks(chunk)).zip(partials.iter_mut())
            {
                scope.spawn(move || {
                    *p = xc.iter().zip(yc).map(|(&a, &b)| a * b).sum();
                });
            }
        });
        partials.iter().sum()
    }

    /// Parallel Euclidean norm.
    pub fn norm2(&self, x: &[f64]) -> f64 {
        self.dot(x, x).sqrt()
    }

    /// Applies `f` to every index in `0..len` across `n_threads` scoped
    /// threads and returns the results **in index order**.
    ///
    /// Each index is computed exactly once and lands in its own slot, so
    /// the output is identical for every thread count — this is the
    /// primitive behind the deterministic parallel plan compile and the
    /// chunk-parallel MatrixMarket parse. `f` must be pure with respect to
    /// the order of invocation (indices within a chunk run in order, but
    /// chunks run concurrently).
    pub fn map_indexed<T, F>(&self, len: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if len == 0 {
            return Vec::new();
        }
        let threads = self.n_threads.min(len);
        if threads <= 1 {
            return (0..len).map(f).collect();
        }
        let mut out: Vec<Option<T>> = Vec::new();
        out.resize_with(len, || None);
        let chunk = len.div_ceil(threads);
        let f = &f;
        std::thread::scope(|scope| {
            for (t, slots) in out.chunks_mut(chunk).enumerate() {
                let start = t * chunk;
                scope.spawn(move || {
                    for (i, slot) in slots.iter_mut().enumerate() {
                        *slot = Some(f(start + i));
                    }
                });
            }
        });
        out.into_iter().map(|s| s.expect("every index filled")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{laplacian_2d_5pt, trefethen};

    #[test]
    fn spmv_matches_sequential() {
        let a = trefethen(1000).unwrap();
        let x: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.01).sin() + 1.0).collect();
        let seq = a.mul_vec(&x).unwrap();
        for threads in [1usize, 2, 3, 8] {
            let ctx = ParContext::new(threads);
            let mut y = vec![0.0; 1000];
            ctx.spmv(&a, &x, &mut y).unwrap();
            for (p, q) in y.iter().zip(&seq) {
                assert!((p - q).abs() < 1e-14, "threads {threads}");
            }
        }
    }

    #[test]
    fn spmv_small_matrix_falls_back() {
        let a = laplacian_2d_5pt(4);
        let mut y = vec![0.0; 16];
        ParContext::new(8).spmv(&a, &[1.0; 16], &mut y).unwrap();
        let seq = a.mul_vec(&[1.0; 16]).unwrap();
        assert_eq!(y, seq);
    }

    #[test]
    fn spmv_dimension_checked() {
        let a = laplacian_2d_5pt(4);
        let mut y = vec![0.0; 16];
        assert!(ParContext::new(2).spmv(&a, &[1.0; 3], &mut y).is_err());
        let mut bad = vec![0.0; 3];
        assert!(ParContext::new(2).spmv(&a, &[1.0; 16], &mut bad).is_err());
    }

    #[test]
    fn dot_matches_sequential_and_is_deterministic() {
        let x: Vec<f64> = (0..10_000).map(|i| ((i * 37) % 101) as f64 * 0.01).collect();
        let y: Vec<f64> = (0..10_000).map(|i| ((i * 17) % 97) as f64 * 0.02 - 1.0).collect();
        let seq = crate::blas1::dot(&x, &y);
        let ctx = ParContext::new(4);
        let a = ctx.dot(&x, &y);
        let b = ctx.dot(&x, &y);
        assert_eq!(a, b, "chunked reduction must be deterministic");
        assert!((a - seq).abs() < 1e-9 * seq.abs().max(1.0));
        assert!((ctx.norm2(&x) - crate::blas1::norm2(&x)).abs() < 1e-9);
    }

    #[test]
    fn zero_threads_clamped() {
        let ctx = ParContext::new(0);
        assert_eq!(ctx.n_threads, 1);
    }

    #[test]
    fn map_indexed_preserves_index_order() {
        for threads in [1usize, 2, 3, 7, 16] {
            let got = ParContext::new(threads).map_indexed(37, |i| i * i);
            let want: Vec<usize> = (0..37).map(|i| i * i).collect();
            assert_eq!(got, want, "threads {threads}");
        }
        assert!(ParContext::new(4).map_indexed(0, |i| i).is_empty());
    }
}
