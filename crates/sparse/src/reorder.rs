//! Reverse Cuthill–McKee reordering.
//!
//! The paper observes (§4.3) that matrices whose mass sits far from the
//! diagonal — `Chem97ZtZ`, `Trefethen` — gain little from local iterations
//! because the diagonal blocks are (nearly) diagonal, and suggests that "an
//! improvement for this case could potentially be obtained by reordering."
//! RCM concentrates entries near the diagonal, which increases the fraction
//! of `nnz` captured by the diagonal blocks of a row partition; the ablation
//! experiment `repro ablation` quantifies this.

use crate::{CsrMatrix, RowPartition};
use std::collections::VecDeque;

/// Computes a reverse Cuthill–McKee ordering of a symmetric-pattern matrix.
///
/// The returned vector is a *new-to-old* map: row `i` of the reordered
/// matrix is row `perm[i]` of the original, suitable for
/// [`CsrMatrix::permute_sym`]. Disconnected components are each ordered
/// from a minimum-degree start node.
pub fn reverse_cuthill_mckee(a: &CsrMatrix) -> Vec<usize> {
    let n = a.n_rows();
    let degree = |v: usize| -> usize { a.row(v).0.len() };
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = VecDeque::new();

    // Process components from nodes of increasing degree.
    let mut nodes: Vec<usize> = (0..n).collect();
    nodes.sort_by_key(|&v| degree(v));

    for &start in &nodes {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut nbrs: Vec<usize> = a
                .row(v)
                .0
                .iter()
                .copied()
                .filter(|&u| u != v && !visited[u])
                .collect();
            nbrs.sort_by_key(|&u| degree(u));
            for u in nbrs {
                if !visited[u] {
                    visited[u] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    order.reverse();
    order
}

/// Bandwidth of a matrix: `max |i - j|` over stored entries.
pub fn bandwidth(a: &CsrMatrix) -> usize {
    let mut bw = 0;
    for r in 0..a.n_rows() {
        for (c, _) in a.row_iter(r) {
            bw = bw.max(r.abs_diff(c));
        }
    }
    bw
}

/// Fraction of the matrix's entry magnitude captured inside the diagonal
/// blocks of `partition`: `sum |a_ij| over (i,j) in same block / sum |a_ij|`.
///
/// This is the quantity that governs how much the async-(k) local sweeps
/// help (paper §4.3): close to 1 for `fv*`, close to the diagonal fraction
/// for `Chem97ZtZ`.
pub fn block_diagonal_mass(a: &CsrMatrix, partition: &RowPartition) -> f64 {
    let mut inside = 0.0;
    let mut total = 0.0;
    for r in 0..a.n_rows() {
        let b = partition.block(partition.block_of(r));
        for (c, v) in a.row_iter(r) {
            total += v.abs();
            if b.contains(c) {
                inside += v.abs();
            }
        }
    }
    if total == 0.0 {
        0.0
    } else {
        inside / total
    }
}

/// Same as [`block_diagonal_mass`] but excluding the diagonal itself, i.e.
/// how much *off-diagonal* mass the local sweeps can see.
pub fn block_offdiagonal_mass(a: &CsrMatrix, partition: &RowPartition) -> f64 {
    let mut inside = 0.0;
    let mut total = 0.0;
    for r in 0..a.n_rows() {
        let b = partition.block(partition.block_of(r));
        for (c, v) in a.row_iter(r) {
            if c == r {
                continue;
            }
            total += v.abs();
            if b.contains(c) {
                inside += v.abs();
            }
        }
    }
    if total == 0.0 {
        0.0
    } else {
        inside / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn path_graph_shuffled(n: usize) -> CsrMatrix {
        // A path graph 0-1-2-...-n-1 but with node labels reversed in an
        // interleaved way to create large bandwidth.
        let relabel = |i: usize| -> usize {
            if i.is_multiple_of(2) {
                i / 2
            } else {
                n - 1 - i / 2
            }
        };
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(relabel(i), relabel(i), 2.0).unwrap();
            if i + 1 < n {
                coo.push_sym(relabel(i), relabel(i + 1), -1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn rcm_is_a_permutation() {
        let a = path_graph_shuffled(37);
        let p = reverse_cuthill_mckee(&a);
        let mut seen = [false; 37];
        for &v in &p {
            assert!(!seen[v]);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn rcm_reduces_bandwidth_of_shuffled_path() {
        let a = path_graph_shuffled(64);
        let before = bandwidth(&a);
        let p = reverse_cuthill_mckee(&a);
        let reordered = a.permute_sym(&p).unwrap();
        let after = bandwidth(&reordered);
        assert!(after < before, "bandwidth {before} -> {after}");
        assert_eq!(after, 1, "a path graph has an ordering with bandwidth 1");
    }

    #[test]
    fn rcm_handles_disconnected_graph() {
        // two disjoint edges + an isolated vertex
        let mut coo = CooMatrix::new(5, 5);
        for i in 0..5 {
            coo.push(i, i, 1.0).unwrap();
        }
        coo.push_sym(0, 3, -1.0).unwrap();
        coo.push_sym(1, 4, -1.0).unwrap();
        let a = coo.to_csr();
        let p = reverse_cuthill_mckee(&a);
        assert_eq!(p.len(), 5);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn block_mass_tridiagonal() {
        // Tridiagonal matrix, blocks of 4: only the couplings across block
        // boundaries are outside.
        let n = 16;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            if i + 1 < n {
                coo.push_sym(i, i + 1, -1.0).unwrap();
            }
        }
        let a = coo.to_csr();
        let p = RowPartition::uniform(n, 4).unwrap();
        let inside = block_diagonal_mass(&a, &p);
        // total mass = 16*2 + 30*1 = 62; outside = 2 entries per internal
        // boundary * 3 boundaries = 6. inside = 56/62.
        assert!((inside - 56.0 / 62.0).abs() < 1e-12, "{inside}");
        let off = block_offdiagonal_mass(&a, &p);
        assert!((off - 24.0 / 30.0).abs() < 1e-12, "{off}");
    }

    #[test]
    fn block_mass_diagonal_matrix_is_one() {
        let a = CsrMatrix::from_diagonal(&[1.0; 8]);
        let p = RowPartition::uniform(8, 3).unwrap();
        assert_eq!(block_diagonal_mass(&a, &p), 1.0);
        assert_eq!(block_offdiagonal_mass(&a, &p), 0.0);
    }
}
