//! ELLPACK sparse storage — the GPU-friendly fixed-width layout the
//! paper's CUDA kernels (and their later MAGMA incarnation) operate on.
//!
//! Every row is padded to the same width and the entries are stored
//! column-major, so consecutive GPU threads (one per row) read
//! consecutive memory — coalesced access, the property that makes the
//! memory-bound SpMV kernels of the paper run at bandwidth. On the CPU
//! the layout is usually *slower* than CSR; it exists here because the
//! simulator's cost accounting (bytes touched per kernel) is defined on
//! it, and to document the padding overhead each test matrix incurs.

use crate::{CsrMatrix, Result, SparseError};

/// A sparse matrix in ELLPACK format (column-major, zero-padded rows).
#[derive(Debug, Clone, PartialEq)]
pub struct EllMatrix {
    n_rows: usize,
    n_cols: usize,
    /// Stored entries of the source matrix (excludes padding; counts
    /// explicitly stored zeros).
    nnz: usize,
    /// Entries per padded row.
    width: usize,
    /// `col_idx[k * n_rows + r]` = column of row `r`'s `k`-th entry
    /// (its own row index when padding).
    col_idx: Vec<usize>,
    /// Values, same layout; zero when padding.
    values: Vec<f64>,
}

impl EllMatrix {
    /// Converts from CSR. The width is the maximum row population.
    pub fn from_csr(a: &CsrMatrix) -> EllMatrix {
        let n_rows = a.n_rows();
        let width = (0..n_rows).map(|r| a.row(r).0.len()).max().unwrap_or(0);
        let mut col_idx = vec![0usize; width * n_rows];
        let mut values = vec![0.0f64; width * n_rows];
        for r in 0..n_rows {
            let (cols, vals) = a.row(r);
            for k in 0..width {
                let slot = k * n_rows + r;
                if k < cols.len() {
                    col_idx[slot] = cols[k];
                    values[slot] = vals[k];
                } else {
                    // self-referencing pad with zero value: always a
                    // valid index, contributes nothing
                    col_idx[slot] = r.min(a.n_cols().saturating_sub(1));
                }
            }
        }
        EllMatrix { n_rows, n_cols: a.n_cols(), nnz: a.nnz(), width, col_idx, values }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Padded row width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Stored slots including padding.
    pub fn padded_len(&self) -> usize {
        self.values.len()
    }

    /// Fraction of stored slots that are padding (0 = perfectly regular
    /// rows). Counted from the source matrix's entry count, so explicitly
    /// stored zeros are *not* mistaken for padding.
    pub fn padding_ratio(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        1.0 - self.nnz as f64 / self.values.len() as f64
    }

    /// SpMV `y = A x` over the ELL layout.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) -> Result<()> {
        if x.len() != self.n_cols {
            return Err(SparseError::DimensionMismatch {
                op: "ell spmv x",
                expected: self.n_cols,
                found: x.len(),
            });
        }
        if y.len() != self.n_rows {
            return Err(SparseError::DimensionMismatch {
                op: "ell spmv y",
                expected: self.n_rows,
                found: y.len(),
            });
        }
        y.fill(0.0);
        for k in 0..self.width {
            let base = k * self.n_rows;
            for r in 0..self.n_rows {
                y[r] += self.values[base + r] * x[self.col_idx[base + r]];
            }
        }
        Ok(())
    }

    /// Bytes a bandwidth-bound GPU kernel touches per SpMV (values +
    /// indices + output), the quantity the timing model charges for.
    pub fn kernel_bytes(&self) -> usize {
        self.padded_len() * (8 + 4) + self.n_rows * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{laplacian_2d_5pt, trefethen};
    use crate::CooMatrix;

    #[test]
    fn spmv_matches_csr() {
        let a = laplacian_2d_5pt(7);
        let e = EllMatrix::from_csr(&a);
        let x: Vec<f64> = (0..49).map(|i| (i as f64 * 0.3).sin()).collect();
        let y_csr = a.mul_vec(&x).unwrap();
        let mut y_ell = vec![0.0; 49];
        e.spmv(&x, &mut y_ell).unwrap();
        for (p, q) in y_csr.iter().zip(&y_ell) {
            assert!((p - q).abs() < 1e-14);
        }
    }

    #[test]
    fn width_is_max_row_population() {
        let a = laplacian_2d_5pt(5);
        let e = EllMatrix::from_csr(&a);
        assert_eq!(e.width(), 5);
        assert_eq!(e.padded_len(), 5 * 25);
    }

    #[test]
    fn padding_ratio_reflects_row_regularity() {
        // 5-point stencil on 10x10: width 5, nnz = 100 + 4*90 = 460 of
        // 500 slots -> padding 0.08 exactly.
        let stencil = EllMatrix::from_csr(&laplacian_2d_5pt(10));
        assert!((stencil.padding_ratio() - 0.08).abs() < 1e-12, "{}", stencil.padding_ratio());
        // Trefethen rows are near-uniformly wide (1 + ~2 log2 n): small
        // but nonzero padding.
        let t = EllMatrix::from_csr(&trefethen(256).unwrap());
        assert!(t.padding_ratio() > 0.0 && t.padding_ratio() < 0.25, "{}", t.padding_ratio());
    }

    #[test]
    fn empty_and_irregular_rows() {
        let mut coo = CooMatrix::new(3, 4);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 3, 2.0).unwrap();
        coo.push(2, 1, 3.0).unwrap();
        let a = coo.to_csr();
        let e = EllMatrix::from_csr(&a);
        assert_eq!(e.width(), 2);
        let mut y = vec![0.0; 3];
        e.spmv(&[1.0, 1.0, 1.0, 1.0], &mut y).unwrap();
        assert_eq!(y, vec![3.0, 0.0, 3.0]);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let e = EllMatrix::from_csr(&laplacian_2d_5pt(3));
        let mut y = vec![0.0; 9];
        assert!(e.spmv(&[0.0; 4], &mut y).is_err());
        let mut y_bad = vec![0.0; 4];
        assert!(e.spmv(&[0.0; 9], &mut y_bad).is_err());
    }

    #[test]
    fn explicit_zeros_are_not_padding() {
        // a stored zero entry is data, not padding
        let a = CsrMatrix::from_raw(2, 2, vec![0, 2, 3], vec![0, 1, 1], vec![1.0, 0.0, 2.0])
            .unwrap();
        let e = EllMatrix::from_csr(&a);
        assert_eq!(e.width(), 2);
        // 3 stored entries in 4 slots -> 25 % padding
        assert!((e.padding_ratio() - 0.25).abs() < 1e-12, "{}", e.padding_ratio());
    }

    #[test]
    fn kernel_bytes_accounting() {
        let e = EllMatrix::from_csr(&laplacian_2d_5pt(4));
        assert_eq!(e.kernel_bytes(), 5 * 16 * 12 + 16 * 8);
    }
}
