//! The solve-service daemon: accept loop, admission control, request
//! lifecycle, chaos injection, and graceful drain.
//!
//! One daemon owns one shared [`WorkerPool`]; every concurrent pooled
//! solve runs on threads *leased* from it, so tenant count and thread
//! count are decoupled — the paper's block-asynchronous tolerance for
//! uneven per-worker progress is what makes multiplexing unrelated
//! systems onto one pool numerically safe. The robustness surface:
//!
//! * **Admission control** — at most `max_inflight` requests admitted at
//!   once; beyond that the daemon sheds load with a structured
//!   [`Response::Overloaded`] carrying a `retry_after_ms` hint derived
//!   from an EWMA of recent solve wall-times. A pooled request that
//!   cannot obtain its lease within `admission_timeout_ms` is shed the
//!   same way. Requests larger than `max_rows` are rejected with a typed
//!   [`Response::Failed`] (retrying cannot help those).
//! * **Deadlines and cancellation** — each request gets a
//!   [`CancelToken`] (deadline from `deadline_ms`, cancel from a
//!   `cancel` frame on any connection); the executor's monitor loop
//!   polls it and raises the ordinary Release stop flag, so an expired
//!   request frees its leased shards within one monitor poll.
//! * **Fault isolation** — a panicking request (poisoned sweep under
//!   `--chaos`, validation assert, anything) is contained: pool workers
//!   wrap job slices in `catch_unwind`, and the connection thread wraps
//!   the whole request in `catch_unwind`, converting the unwind into a
//!   typed [`Response::Failed`] frame. The daemon never dies with a
//!   tenant.
//! * **Graceful drain** — [`Daemon::shutdown`] stops accepting, lets
//!   in-flight solves finish (or cancels them after the grace period, at
//!   which point they deadline out within one monitor poll), joins every
//!   connection thread, flushes metrics, and joins every pool worker,
//!   returning the counts as a [`DrainReport`] — the structural
//!   zero-leaked-threads accounting.

use crate::cache::{solve_key, Begin, CachedSolve, SolveCache};
use crate::wire::{write_frame, MatrixSpec, Mode, Request, Response, SolveSpec};
use abr_core::{
    fingerprint_matrix, fingerprint_vec, AsyncBlockSolver, ExecutorKind, LeasedRun,
    ScheduleKind, SolveOptions,
};
use abr_exp::metrics::{JsonlFileSink, MetricsSink, NullSink, RunMetrics};
use abr_gpu::{
    CancelCause, CancelToken, FaultPlan, PersistentOptions, RunOutcome, SimOptions, WorkerPool,
};
use abr_sparse::{gen, CsrMatrix, RowPartition};
use abr_sync::{Ordering, SyncBool};
use std::collections::HashMap;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-request chaos-injection probabilities (`--chaos`).
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Probability a given pooled worker is killed mid-request.
    pub p_kill: f64,
    /// Probability a given pooled worker hangs mid-request.
    pub p_hang: f64,
    /// Probability a given pooled worker's sweep is poisoned (panics).
    pub p_poison: f64,
    /// Recovery-(t_r) adoption delay handed to the fault plan.
    pub recovery: usize,
    /// Chaos RNG seed (per-request streams derive from it).
    pub seed: u64,
}

impl ChaosConfig {
    /// Parses the `--chaos KILL,HANG,POISON` flag value.
    pub fn parse(s: &str) -> Result<ChaosConfig, String> {
        let parts: Vec<&str> = s.split(',').collect();
        if parts.len() != 3 {
            return Err(format!("--chaos wants KILL,HANG,POISON probabilities, got `{s}`"));
        }
        let p = |t: &str| -> Result<f64, String> {
            let v: f64 = t.trim().parse().map_err(|_| format!("bad probability `{t}`"))?;
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("probability `{t}` outside [0,1]"));
            }
            Ok(v)
        };
        Ok(ChaosConfig {
            p_kill: p(parts[0])?,
            p_hang: p(parts[1])?,
            p_poison: p(parts[2])?,
            recovery: 10,
            seed: 0xc4a0_5,
        })
    }
}

/// Daemon tuning. `Default` is sized for tests: a small pool on an
/// ephemeral localhost port.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Shared worker-pool size.
    pub workers: usize,
    /// Admission bound: max requests admitted (queued-for-lease or
    /// solving) at once; beyond it, load is shed.
    pub max_inflight: usize,
    /// How long a pooled request may wait for its lease before being
    /// shed with `Overloaded`.
    pub admission_timeout_ms: u64,
    /// Hard per-system row cap; larger requests get a typed rejection.
    pub max_rows: usize,
    /// Chaos injection, when the daemon runs with `--chaos`.
    pub chaos: Option<ChaosConfig>,
    /// Per-request JSONL metrics stream (line-buffered, tailable).
    pub metrics_path: Option<PathBuf>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            max_inflight: 8,
            admission_timeout_ms: 500,
            max_rows: 1 << 20,
            chaos: None,
            metrics_path: None,
        }
    }
}

/// Lifecycle counters, snapshotted into the [`DrainReport`].
#[derive(Debug, Default, Clone)]
pub struct ServiceCounters {
    /// Requests past admission control.
    pub admitted: u64,
    /// Solves answered `done`.
    pub completed: u64,
    /// Requests shed with `overloaded`.
    pub shed: u64,
    /// Requests ended by client cancellation.
    pub cancelled: u64,
    /// Requests ended by deadline expiry.
    pub deadline_exceeded: u64,
    /// Requests answered `failed`.
    pub failed: u64,
    /// Direct cache hits.
    pub cache_hits: u64,
    /// Requests coalesced onto an in-flight identical solve.
    pub coalesced: u64,
}

/// What [`Daemon::shutdown`] observed while draining.
#[derive(Debug)]
pub struct DrainReport {
    /// Pool worker threads joined (must equal the configured pool size
    /// the first time; 0 on repeat drains).
    pub workers_joined: usize,
    /// Connection threads joined.
    pub connections_joined: usize,
    /// Final lifecycle counters.
    pub counters: ServiceCounters,
}

struct Shared {
    cfg: DaemonConfig,
    addr: SocketAddr,
    pool: WorkerPool,
    shutdown: SyncBool,
    inflight: Mutex<usize>,
    ewma_ms: Mutex<f64>,
    registry: Mutex<HashMap<u64, Arc<CancelToken>>>,
    cache: SolveCache,
    metrics: Mutex<Box<dyn MetricsSink + Send>>,
    counters: Mutex<ServiceCounters>,
    chaos_counter: Mutex<u64>,
}

/// A running solve-service daemon. Dropping it without calling
/// [`shutdown`](Self::shutdown) leaks the accept thread — always drain.
pub struct Daemon {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<Vec<JoinHandle<()>>>>,
}

impl Daemon {
    /// Binds, spawns the accept loop, and returns the running daemon.
    pub fn start(cfg: DaemonConfig) -> io::Result<Daemon> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let metrics: Box<dyn MetricsSink + Send> = match &cfg.metrics_path {
            Some(p) => Box::new(JsonlFileSink::create(p)?),
            None => Box::new(NullSink),
        };
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            addr,
            pool: WorkerPool::new(workers),
            shutdown: SyncBool::new(false),
            inflight: Mutex::new(0),
            ewma_ms: Mutex::new(50.0),
            registry: Mutex::new(HashMap::new()),
            cache: SolveCache::new(),
            metrics: Mutex::new(metrics),
            counters: Mutex::new(ServiceCounters::default()),
            chaos_counter: Mutex::new(0),
            cfg,
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("abr-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Daemon { shared, accept: Some(accept) })
    }

    /// The bound address (connect clients here).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Whether a `shutdown` frame (or [`begin_shutdown`](Self::begin_shutdown))
    /// has initiated drain.
    pub fn shutdown_requested(&self) -> bool {
        // sync: Acquire pairs with `begin_shutdown`'s Release store.
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Snapshot of the lifecycle counters.
    pub fn counters(&self) -> ServiceCounters {
        self.shared.counters.lock().unwrap().clone()
    }

    /// Stops accepting new connections (idempotent; does not join).
    pub fn begin_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Graceful drain: stop accepting, give in-flight solves `grace` to
    /// finish, then cancel the stragglers (they stop within one monitor
    /// poll), join every connection thread, flush metrics, and join
    /// every pool worker.
    pub fn shutdown(mut self, grace: Duration) -> DrainReport {
        self.shared.begin_shutdown();
        let conns = match self.accept.take() {
            Some(h) => h.join().expect("accept loop must not panic"),
            None => Vec::new(),
        };
        // Grace window: wait for the cancel registry (live solves) to
        // empty on its own before forcing the stragglers out.
        let t0 = Instant::now();
        while t0.elapsed() < grace {
            if self.shared.registry.lock().unwrap().is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        for token in self.shared.registry.lock().unwrap().values() {
            token.cancel();
        }
        let connections_joined = conns.len();
        for c in conns {
            let _ = c.join(); // a panicked conn thread already sent Failed
        }
        self.shared.metrics.lock().unwrap().flush();
        let workers_joined = self.shared.pool.drain();
        DrainReport {
            workers_joined,
            connections_joined,
            counters: self.shared.counters.lock().unwrap().clone(),
        }
    }
}

impl Shared {
    fn begin_shutdown(&self) {
        // sync: Release publishes everything written before the drain
        // decision to the accept loop's and conn threads' Acquire loads.
        self.shutdown.store(true, Ordering::Release);
        // Wake the (blocking) accept call so it observes the flag.
        let _ = TcpStream::connect(self.addr);
    }

    fn shutting_down(&self) -> bool {
        // sync: Acquire pairs with `begin_shutdown`'s Release store.
        self.shutdown.load(Ordering::Acquire)
    }

    fn retry_hint_ms(&self) -> u64 {
        (self.ewma_ms.lock().unwrap().max(10.0)) as u64
    }

    fn observe_solve_ms(&self, ms: f64) {
        let mut e = self.ewma_ms.lock().unwrap();
        *e = 0.7 * *e + 0.3 * ms;
    }

    fn count(&self, f: impl FnOnce(&mut ServiceCounters)) {
        f(&mut self.counters.lock().unwrap());
    }

    /// Samples a per-request fault plan from the chaos config. Worker 0
    /// is always spared so a fully-faulted request can still converge
    /// through recovery instead of stalling.
    fn sample_chaos(&self, workers: usize) -> Option<FaultPlan> {
        let chaos = self.cfg.chaos.as_ref()?;
        let stream = {
            let mut ctr = self.chaos_counter.lock().unwrap();
            *ctr += 1;
            *ctr
        };
        let mut state = chaos.seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut unit = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut plan = FaultPlan::new().with_recovery(chaos.recovery);
        let mut any = false;
        for w in 1..workers {
            let r = unit();
            let at_round = 3 + 2 * w;
            if r < chaos.p_kill {
                plan = plan.kill(w, at_round);
                any = true;
            } else if r < chaos.p_kill + chaos.p_hang {
                plan = plan.hang(w, at_round);
                any = true;
            } else if r < chaos.p_kill + chaos.p_hang + chaos.p_poison {
                plan = plan.poison(w, at_round);
                any = true;
            }
        }
        any.then_some(plan)
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) -> Vec<JoinHandle<()>> {
    let mut conns = Vec::new();
    for stream in listener.incoming() {
        if shared.shutting_down() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_shared = Arc::clone(&shared);
        match std::thread::Builder::new()
            .name("abr-conn".into())
            .spawn(move || handle_conn(stream, &conn_shared))
        {
            Ok(h) => conns.push(h),
            Err(e) => eprintln!("abr-serve: could not spawn connection thread: {e}"),
        }
    }
    conns
}

/// Reads one frame, polling the shutdown flag while the connection is
/// idle. Returns `Ok(None)` on peer close *or* daemon drain.
///
/// The idle wait reads the first header byte with a short timeout so a
/// drained daemon's connection threads exit promptly; once any byte of a
/// frame has arrived, the rest is read blocking (a frame mid-flight is
/// never abandoned to a poll tick).
fn read_frame_idle(stream: &mut TcpStream, shared: &Shared) -> io::Result<Option<String>> {
    let mut first = [0u8; 1];
    loop {
        if shared.shutting_down() {
            return Ok(None);
        }
        match stream.read(&mut first) {
            Ok(0) => return Ok(None), // clean EOF
            Ok(_) => break,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => return Err(e),
        }
    }
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut rest = [0u8; 3];
    stream.read_exact(&mut rest)?;
    let len = u32::from_be_bytes([first[0], rest[0], rest[1], rest[2]]) as usize;
    if len > crate::wire::MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame too large"));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

fn handle_conn(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(Duration::from_millis(50))).is_err() {
        return;
    }
    loop {
        let payload = match read_frame_idle(&mut stream, shared) {
            Ok(Some(p)) => p,
            Ok(None) => return,
            Err(_) => return,
        };
        let response = match Request::parse(&payload) {
            Err(e) => Response::Failed { id: 0, error: format!("bad request: {e}") },
            Ok(Request::Ping) => Response::Pong,
            Ok(Request::Shutdown) => {
                // Flag first, ack second: a client that has seen the ack
                // must be able to observe the daemon as draining.
                shared.begin_shutdown();
                let _ = write_frame(&mut stream, &Response::ShuttingDown.render());
                return;
            }
            Ok(Request::Cancel { id }) => {
                if let Some(token) = shared.registry.lock().unwrap().get(&id) {
                    token.cancel();
                }
                Response::Ok
            }
            Ok(Request::Solve(spec)) => {
                if shared.shutting_down() {
                    Response::ShuttingDown
                } else {
                    let id = spec.id;
                    // Fault isolation: any panic inside the request —
                    // validation assert, poisoned sweep surfacing through
                    // the solve, anything — becomes this request's typed
                    // error frame, never the daemon's death.
                    std::panic::catch_unwind(AssertUnwindSafe(|| solve_request(shared, spec)))
                        .unwrap_or_else(|p| {
                            shared.count(|c| c.failed += 1);
                            Response::Failed { id, error: format!("panic: {}", panic_msg(&p)) }
                        })
                }
            }
        };
        if write_frame(&mut stream, &response.render()).is_err() {
            return;
        }
    }
}

fn panic_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).into()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".into()
    }
}

/// Decrements the inflight count on scope exit (including unwinds).
struct AdmissionSlot<'a>(&'a Shared);

impl Drop for AdmissionSlot<'_> {
    fn drop(&mut self) {
        *self.0.inflight.lock().unwrap() -= 1;
    }
}

/// Deregisters the request's cancel token on scope exit.
struct Registered<'a>(&'a Shared, u64);

impl Drop for Registered<'_> {
    fn drop(&mut self) {
        self.0.registry.lock().unwrap().remove(&self.1);
    }
}

fn solve_request(shared: &Shared, spec: SolveSpec) -> Response {
    let id = spec.id;

    // -- Validation (typed failures; retrying cannot help) --------------
    let n = spec.matrix.n_rows();
    if n == 0 {
        shared.count(|c| c.failed += 1);
        return Response::Failed { id, error: "empty system".into() };
    }
    if n > shared.cfg.max_rows {
        shared.count(|c| c.failed += 1);
        return Response::Failed {
            id,
            error: format!(
                "admission: system of {n} rows exceeds this daemon's max_rows {}",
                shared.cfg.max_rows
            ),
        };
    }
    let a: CsrMatrix = match &spec.matrix {
        MatrixSpec::Lap2d { g } => gen::laplacian_2d_5pt(*g),
        MatrixSpec::Csr { n_rows, n_cols, row_ptr, col_idx, values } => {
            match CsrMatrix::from_raw(
                *n_rows,
                *n_cols,
                row_ptr.clone(),
                col_idx.clone(),
                values.clone(),
            ) {
                Ok(a) => a,
                Err(e) => {
                    shared.count(|c| c.failed += 1);
                    return Response::Failed { id, error: format!("bad matrix: {e}") };
                }
            }
        }
    };
    if a.n_rows() != a.n_cols() {
        shared.count(|c| c.failed += 1);
        return Response::Failed {
            id,
            error: format!("system must be square, got {} x {}", a.n_rows(), a.n_cols()),
        };
    }
    let rhs = match &spec.rhs {
        Some(r) if r.len() == n => r.clone(),
        Some(r) => {
            shared.count(|c| c.failed += 1);
            return Response::Failed {
                id,
                error: format!("rhs length {} does not match {n} rows", r.len()),
            };
        }
        None => match a.mul_vec(&vec![1.0; n]) {
            Ok(b) => b,
            Err(e) => {
                shared.count(|c| c.failed += 1);
                return Response::Failed { id, error: format!("default rhs: {e}") };
            }
        },
    };

    // -- Admission (bounded; shed with a retry hint) ---------------------
    let _slot = {
        let mut inflight = shared.inflight.lock().unwrap();
        if *inflight >= shared.cfg.max_inflight {
            drop(inflight);
            shared.count(|c| c.shed += 1);
            return Response::Overloaded { id, retry_after_ms: shared.retry_hint_ms() };
        }
        *inflight += 1;
        AdmissionSlot(shared)
    };
    shared.count(|c| c.admitted += 1);

    // -- Request-scoped cancellation / deadline --------------------------
    let token = Arc::new(match spec.deadline_ms {
        Some(ms) => CancelToken::with_deadline(Instant::now() + Duration::from_millis(ms)),
        None => CancelToken::new(),
    });
    shared.registry.lock().unwrap().insert(id, Arc::clone(&token));
    let _registered = Registered(shared, id);

    // -- Chaos + cache resolution ---------------------------------------
    let workers = spec.workers.clamp(1, shared.pool_workers());
    let chaos = match spec.mode {
        Mode::Pooled => shared.sample_chaos(workers),
        Mode::Sim => None,
    };
    let x0 = vec![0.0; n];
    let use_cache = spec.cache && chaos.is_none();
    let lead = if use_cache {
        let key = solve_key(
            fingerprint_matrix(&a),
            fingerprint_vec(&rhs),
            fingerprint_vec(&x0),
            spec.tol,
            spec.local_iters.max(1),
            spec.block.max(1),
            spec.mode,
            spec.seed,
        );
        match shared.cache.begin(key, Some(&token)) {
            Begin::Ready(r, coalesced) => {
                shared.count(|c| {
                    c.completed += 1;
                    if coalesced {
                        c.coalesced += 1;
                    } else {
                        c.cache_hits += 1;
                    }
                });
                return Response::Done {
                    id,
                    x: r.x.clone(),
                    iterations: r.iterations,
                    converged: true,
                    final_residual: r.final_residual,
                    cached: !coalesced,
                    coalesced,
                    chaos: false,
                };
            }
            Begin::Aborted(cause) => return abort_response(shared, id, 0, cause),
            Begin::Lead(guard) => Some(guard),
        }
    } else {
        None
    };

    // -- Solve -----------------------------------------------------------
    let t0 = Instant::now();
    let outcome = run_solve(shared, &spec, &a, &rhs, &x0, workers, &token, chaos.as_ref());
    let (resp, publish) = match outcome {
        Err(e) => {
            shared.count(|c| c.failed += 1);
            (Response::Failed { id, error: e }, None)
        }
        Ok(Solved::Interrupted(cause, iterations)) => {
            (abort_response(shared, id, iterations, cause), None)
        }
        Ok(Solved::Shed) => {
            shared.count(|c| c.shed += 1);
            (Response::Overloaded { id, retry_after_ms: shared.retry_hint_ms() }, None)
        }
        Ok(Solved::Finished { x, iterations, converged, final_residual, residuals, fault }) => {
            shared.observe_solve_ms(t0.elapsed().as_secs_f64() * 1e3);
            shared.count(|c| c.completed += 1);
            record_metrics(shared, &spec, n, iterations, converged, final_residual, residuals, fault);
            let publish = (converged && chaos.is_none()).then(|| CachedSolve {
                x: x.clone(),
                iterations,
                final_residual,
            });
            (
                Response::Done {
                    id,
                    x,
                    iterations,
                    converged,
                    final_residual,
                    cached: false,
                    coalesced: false,
                    chaos: chaos.is_some(),
                },
                publish,
            )
        }
    };
    if let (Some(guard), Some(result)) = (lead, publish) {
        guard.publish(result);
    } // a guard dropped without publishing releases any coalesced waiters
    resp
}

fn abort_response(shared: &Shared, id: u64, iterations: usize, cause: CancelCause) -> Response {
    match cause {
        CancelCause::Cancelled => {
            shared.count(|c| c.cancelled += 1);
            Response::Cancelled { id, iterations }
        }
        CancelCause::DeadlineExceeded => {
            shared.count(|c| c.deadline_exceeded += 1);
            Response::DeadlineExceeded { id, iterations }
        }
    }
}

enum Solved {
    Finished {
        x: Vec<f64>,
        iterations: usize,
        converged: bool,
        final_residual: f64,
        residuals: Vec<(usize, f64)>,
        fault: Option<abr_gpu::FaultReport>,
    },
    Interrupted(CancelCause, usize),
    /// Admitted but could not obtain a lease in time — shed after all.
    Shed,
}

impl Shared {
    fn pool_workers(&self) -> usize {
        self.pool.n_workers()
    }
}

#[allow(clippy::too_many_arguments)] // the request's full environment
fn run_solve(
    shared: &Shared,
    spec: &SolveSpec,
    a: &CsrMatrix,
    rhs: &[f64],
    x0: &[f64],
    workers: usize,
    token: &CancelToken,
    chaos: Option<&FaultPlan>,
) -> Result<Solved, String> {
    let n = a.n_rows();
    let block = spec.block.clamp(1, n);
    let partition = RowPartition::uniform(n, block).map_err(|e| e.to_string())?;
    let opts = SolveOptions::to_tolerance(spec.tol, spec.max_iters.max(1));
    let solver = AsyncBlockSolver {
        local_iters: spec.local_iters.max(1),
        schedule: ScheduleKind::Recurring { seed: spec.seed },
        executor: ExecutorKind::Sim(SimOptions {
            seed: spec.seed ^ 0x9e37_79b9_7f4a_7c15,
            ..SimOptions::default()
        }),
        damping: 1.0,
        local_sweep: Default::default(),
    };
    match spec.mode {
        Mode::Sim => {
            // The simulator runs on this connection thread and is not
            // interruptible mid-solve; honor the token at the boundary.
            if let Some(cause) = token.should_stop() {
                return Ok(Solved::Interrupted(cause, 0));
            }
            let r = solver.solve(a, rhs, x0, &partition, &opts).map_err(|e| e.to_string())?;
            Ok(Solved::Finished {
                x: r.x,
                iterations: r.iterations,
                converged: r.converged,
                final_residual: r.final_residual,
                residuals: Vec::new(),
                fault: None,
            })
        }
        Mode::Pooled => {
            // Lease admission: bounded wait in short slices so the token
            // stays responsive while queued.
            let admission_deadline = Instant::now()
                + Duration::from_millis(shared.cfg.admission_timeout_ms.max(1));
            let lease = loop {
                if let Some(cause) = token.should_stop() {
                    return Ok(Solved::Interrupted(cause, 0));
                }
                if let Some(l) = shared.pool.lease_timeout(workers, Duration::from_millis(10))
                {
                    break l;
                }
                if Instant::now() >= admission_deadline {
                    return Ok(Solved::Shed);
                }
            };
            let solved = solver
                .solve_leased(
                    a,
                    rhs,
                    x0,
                    &partition,
                    &opts,
                    LeasedRun {
                        pool: &shared.pool,
                        lease,
                        cancel: Some(token),
                        faults: chaos,
                        exec_opts: PersistentOptions {
                            n_workers: workers,
                            ..PersistentOptions::default()
                        },
                    },
                )
                .map_err(|e| e.to_string())?;
            match solved.report.outcome {
                RunOutcome::Cancelled => {
                    Ok(Solved::Interrupted(CancelCause::Cancelled, solved.result.iterations))
                }
                RunOutcome::DeadlineExceeded => Ok(Solved::Interrupted(
                    CancelCause::DeadlineExceeded,
                    solved.result.iterations,
                )),
                _ => Ok(Solved::Finished {
                    x: solved.result.x,
                    iterations: solved.result.iterations,
                    converged: solved.result.converged,
                    final_residual: solved.result.final_residual,
                    residuals: solved.checks,
                    fault: solved.result.fault,
                }),
            }
        }
    }
}

#[allow(clippy::too_many_arguments)] // one metrics record's fields
fn record_metrics(
    shared: &Shared,
    spec: &SolveSpec,
    n: usize,
    iterations: usize,
    converged: bool,
    final_residual: f64,
    residuals: Vec<(usize, f64)>,
    fault: Option<abr_gpu::FaultReport>,
) {
    let matrix = match &spec.matrix {
        MatrixSpec::Lap2d { g } => format!("lap2d-g{g}"),
        MatrixSpec::Csr { .. } => format!("csr-{n}"),
    };
    let method = match spec.mode {
        Mode::Sim => format!("sim-async-({})", spec.local_iters.max(1)),
        Mode::Pooled => format!("pooled-async-({})", spec.local_iters.max(1)),
    };
    let record = RunMetrics {
        experiment: "service".into(),
        matrix,
        method,
        iterations,
        converged,
        final_residual,
        residuals,
        fault,
        ..RunMetrics::default()
    };
    let mut sink = shared.metrics.lock().unwrap();
    sink.record(&record);
    sink.flush();
}
