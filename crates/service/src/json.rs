//! A dependency-free JSON value: recursive-descent parser and renderer.
//!
//! The workspace bans external crates (no serde); `abr_exp::report`
//! already *writes* hand-rolled JSON, and the wire protocol additionally
//! needs to *read* it. This is the minimal complete JSON grammar —
//! objects, arrays, strings with escapes, numbers, booleans, null — with
//! two deliberate properties:
//!
//! * **Numbers round-trip bit-exactly.** Values parse with Rust's
//!   `str::parse::<f64>` and render with `Display`, which emits the
//!   shortest digits that re-parse to the same bits — so a solution
//!   vector survives daemon → client unchanged, which the soak test's
//!   bit-identity assertion depends on.
//! * **Objects preserve insertion order** (a `Vec` of pairs, not a map):
//!   rendering is deterministic and frames are diffable in tests.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parses a complete JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects / absent keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Num(v) => Some(v),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Num(v) if v >= 0.0 && v.fract() == 0.0 && v <= 2f64.powi(53) => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The array elements, if this is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// An array of numbers as a vector (`None` if any element is not a
    /// number).
    pub fn as_f64_vec(&self) -> Option<Vec<f64>> {
        self.as_arr()?.iter().map(Value::as_f64).collect()
    }

    /// An array of integers as a vector.
    pub fn as_usize_vec(&self) -> Option<Vec<usize>> {
        self.as_arr()?.iter().map(|v| v.as_u64().map(|u| u as usize)).collect()
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(v) => out.push_str(&render_f64(*v)),
            Value::Str(s) => {
                out.push('"');
                out.push_str(&abr_exp::report::json_escape(s));
                out.push('"');
            }
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&abr_exp::report::json_escape(k));
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Renders an `f64` as a JSON number. JSON has no inf/nan; they become
/// `null`, matching `abr_exp::report::json_f64`.
pub fn render_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number `{text}` at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // protocol (labels are ASCII-ish); lone
                            // surrogates degrade to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe): find the
                    // next char boundary from the raw bytes.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }
}

/// Builder shorthand: an object from key/value pairs.
pub fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Builder shorthand: a number array from a float slice.
pub fn num_arr(xs: &[f64]) -> Value {
    Value::Arr(xs.iter().map(|&x| Value::Num(x)).collect())
}

/// Builder shorthand: a number array from an index slice.
pub fn usize_arr(xs: &[usize]) -> Value {
    Value::Arr(xs.iter().map(|&x| Value::Num(x as f64)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_grammar() {
        let v = Value::parse(
            r#"{"a":[1,2.5,-3e-2],"b":"x\"y\n","c":true,"d":null,"e":{"k":0}}"#,
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_f64_vec().unwrap(), vec![1.0, 2.5, -0.03]);
        assert_eq!(v.get("b").unwrap().as_str().unwrap(), "x\"y\n");
        assert_eq!(v.get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("d"), Some(&Value::Null));
        assert_eq!(v.get("e").unwrap().get("k").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        let xs = [
            0.1 + 0.2,
            f64::MIN_POSITIVE,
            -1.0 / 3.0,
            9.869604401089358,
            1e-308,
            -0.0,
        ];
        let rendered = num_arr(&xs).render();
        let back = Value::parse(&rendered).unwrap().as_f64_vec().unwrap();
        for (a, b) in xs.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} -> {rendered} -> {b}");
        }
    }

    #[test]
    fn render_and_parse_are_inverse_on_nested_values() {
        let v = obj(vec![
            ("xs", num_arr(&[1.5, 2.25])),
            ("tag", Value::Str("solve".into())),
            ("n", Value::Num(64.0)),
        ]);
        assert_eq!(Value::parse(&v.render()).unwrap(), v);
    }
}
