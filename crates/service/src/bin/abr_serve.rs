//! `abr-serve` — the solve-service daemon binary.
//!
//! ```text
//! abr-serve [--addr HOST:PORT] [--workers N] [--max-inflight N]
//!           [--admission-timeout-ms N] [--max-rows N]
//!           [--chaos KILL,HANG,POISON] [--metrics FILE]
//! ```
//!
//! Serves until a client sends a `shutdown` frame (the SIGTERM-style
//! drain trigger), then drains gracefully: in-flight solves finish or
//! deadline out, metrics flush, and every worker thread is joined. The
//! drain report prints on exit.

use abr_service::daemon::{ChaosConfig, Daemon, DaemonConfig};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: abr-serve [--addr HOST:PORT] [--workers N] \
[--max-inflight N] [--admission-timeout-ms N] [--max-rows N] \
[--chaos KILL,HANG,POISON] [--metrics FILE]";

fn parse_args() -> Result<DaemonConfig, String> {
    let mut cfg = DaemonConfig { addr: "127.0.0.1:7414".into(), ..DaemonConfig::default() };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--workers" => {
                cfg.workers = value("--workers")?.parse().map_err(|_| "bad --workers")?
            }
            "--max-inflight" => {
                cfg.max_inflight =
                    value("--max-inflight")?.parse().map_err(|_| "bad --max-inflight")?
            }
            "--admission-timeout-ms" => {
                cfg.admission_timeout_ms = value("--admission-timeout-ms")?
                    .parse()
                    .map_err(|_| "bad --admission-timeout-ms")?
            }
            "--max-rows" => {
                cfg.max_rows = value("--max-rows")?.parse().map_err(|_| "bad --max-rows")?
            }
            "--chaos" => cfg.chaos = Some(ChaosConfig::parse(&value("--chaos")?)?),
            "--metrics" => cfg.metrics_path = Some(value("--metrics")?.into()),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let cfg = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let chaos = cfg.chaos.is_some();
    let daemon = match Daemon::start(cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("abr-serve: cannot start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "abr-serve: listening on {}{}",
        daemon.addr(),
        if chaos { " (chaos mode)" } else { "" }
    );
    while !daemon.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("abr-serve: draining...");
    let report = daemon.shutdown(Duration::from_secs(10));
    println!(
        "abr-serve: drained (workers joined: {}, connections joined: {}, \
         completed: {}, shed: {}, cancelled: {}, deadline: {}, failed: {})",
        report.workers_joined,
        report.connections_joined,
        report.counters.completed,
        report.counters.shed,
        report.counters.cancelled,
        report.counters.deadline_exceeded,
        report.counters.failed,
    );
    ExitCode::SUCCESS
}
