//! The client library: one connection per call, typed responses, and a
//! retry loop with exponential backoff + jitter that honors the daemon's
//! `retry_after_ms` hint.
//!
//! Shedding only helps if clients back off instead of hammering; the
//! retry policy here is the other half of the daemon's admission
//! control. The delay before attempt `k` is
//! `max(retry_after_ms, base * 2^k)` capped at `max_backoff_ms`, plus up
//! to 50% seeded jitter so a herd of rejected clients does not
//! resynchronise into the next overload spike.

use crate::wire::{read_frame, write_frame, Request, Response, SolveSpec};
use std::io::{self};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Retry/backoff tuning.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = single shot).
    pub max_retries: u32,
    /// First backoff step, milliseconds.
    pub base_backoff_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub max_backoff_ms: u64,
    /// Jitter RNG seed (deterministic per client for reproducible tests).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 4, base_backoff_ms: 10, max_backoff_ms: 1_000, jitter_seed: 7 }
    }
}

/// A solve-service client.
#[derive(Debug, Clone)]
pub struct Client {
    addr: SocketAddr,
    policy: RetryPolicy,
    jitter_state: u64,
}

impl Client {
    /// A client for the daemon at `addr` with the default retry policy.
    pub fn new(addr: SocketAddr) -> Client {
        Client::with_policy(addr, RetryPolicy::default())
    }

    /// A client with explicit retry tuning.
    pub fn with_policy(addr: SocketAddr, policy: RetryPolicy) -> Client {
        let jitter_state = policy.jitter_seed | 1;
        Client { addr, policy, jitter_state }
    }

    fn roundtrip(&self, req: &Request) -> io::Result<Response> {
        let mut stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        write_frame(&mut stream, &req.render())?;
        let payload = read_frame(&mut stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed"))?;
        Response::parse(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// One solve attempt, no retries.
    pub fn solve_once(&self, spec: &SolveSpec) -> io::Result<Response> {
        self.roundtrip(&Request::Solve(spec.clone()))
    }

    /// A solve with the retry loop: `Overloaded` responses are retried
    /// after `max(retry_after_ms, exponential backoff) + jitter`, up to
    /// `max_retries` times. Any other response returns immediately; the
    /// final `Overloaded` is returned if the budget runs out.
    pub fn solve(&mut self, spec: &SolveSpec) -> io::Result<Response> {
        let mut attempt = 0u32;
        loop {
            let resp = self.solve_once(spec)?;
            let retry_after_ms = match resp {
                Response::Overloaded { retry_after_ms, .. } => retry_after_ms,
                other => return Ok(other),
            };
            if attempt >= self.policy.max_retries {
                return Ok(resp);
            }
            std::thread::sleep(self.backoff(attempt, retry_after_ms));
            attempt += 1;
        }
    }

    /// The delay before retry `attempt` (0-based), honoring the hint.
    fn backoff(&mut self, attempt: u32, retry_after_ms: u64) -> Duration {
        let expo = self
            .policy
            .base_backoff_ms
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.policy.max_backoff_ms);
        let floor = expo.max(retry_after_ms).min(self.policy.max_backoff_ms);
        // xorshift64 jitter in [0, floor/2]: desynchronises a herd of
        // shed clients without inflating the worst case beyond 1.5x.
        self.jitter_state ^= self.jitter_state << 13;
        self.jitter_state ^= self.jitter_state >> 7;
        self.jitter_state ^= self.jitter_state << 17;
        let jitter = if floor == 0 { 0 } else { self.jitter_state % (floor / 2 + 1) };
        Duration::from_millis(floor + jitter)
    }

    /// Cancels the in-flight solve submitted under `id`.
    pub fn cancel(&self, id: u64) -> io::Result<Response> {
        self.roundtrip(&Request::Cancel { id })
    }

    /// Liveness probe.
    pub fn ping(&self) -> io::Result<Response> {
        self.roundtrip(&Request::Ping)
    }

    /// Asks the daemon to begin its graceful drain.
    pub fn shutdown_daemon(&self) -> io::Result<Response> {
        self.roundtrip(&Request::Shutdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client() -> Client {
        Client::with_policy(
            "127.0.0.1:1".parse().unwrap(),
            RetryPolicy { max_retries: 6, base_backoff_ms: 10, max_backoff_ms: 400, jitter_seed: 3 },
        )
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let mut c = client();
        let d0 = c.backoff(0, 0).as_millis() as u64;
        let d3 = c.backoff(3, 0).as_millis() as u64;
        let d9 = c.backoff(9, 0).as_millis() as u64;
        assert!((10..=15).contains(&d0), "base 10ms + <=50% jitter, got {d0}");
        assert!((80..=120).contains(&d3), "10*2^3 + jitter, got {d3}");
        assert!(d9 <= 600, "capped at 400ms + 50% jitter, got {d9}");
    }

    #[test]
    fn retry_after_hint_floors_the_backoff() {
        let mut c = client();
        let d = c.backoff(0, 200).as_millis() as u64;
        assert!(d >= 200, "hint must floor the delay, got {d}");
        assert!(d <= 300, "jitter bounded by 50% of the floor, got {d}");
    }

    #[test]
    fn jitter_is_deterministic_per_seed_but_varies_across_attempts() {
        let a: Vec<u64> = {
            let mut c = client();
            (0..4).map(|i| c.backoff(i, 100).as_millis() as u64).collect()
        };
        let b: Vec<u64> = {
            let mut c = client();
            (0..4).map(|i| c.backoff(i, 100).as_millis() as u64).collect()
        };
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.windows(2).any(|w| w[0] != w[1]), "jitter must actually vary: {a:?}");
    }
}
