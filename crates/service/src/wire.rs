//! The wire protocol: length-prefixed JSON frames and their typed
//! request/response forms.
//!
//! Every frame is a 4-byte **big-endian** payload length followed by
//! exactly that many bytes of UTF-8 JSON (one object per frame). The
//! length prefix makes framing independent of JSON content — no
//! delimiter scanning, no partial-parse states — and bounds allocation
//! up front: a prefix larger than [`MAX_FRAME`] is rejected before any
//! payload is read, so a malformed or hostile client cannot balloon the
//! daemon. See DESIGN.md §10 for the frame table.

use crate::json::{num_arr, obj, usize_arr, Value};
use std::io::{self, Read, Write};

/// Hard ceiling on a frame payload (64 MiB): large enough for a
/// several-million-nonzero CSR matrix in JSON, small enough that a bad
/// length prefix cannot trigger a giant allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// Writes one frame (length prefix + payload).
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "frame too large"));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one frame. Returns `Ok(None)` on clean EOF at a frame boundary
/// (the peer closed between requests — not an error).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {MAX_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

/// How a request's system reaches the daemon.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixSpec {
    /// The workspace generator's 2D 5-point Laplacian on a `g` x `g`
    /// grid — a few bytes on the wire instead of a serialized matrix,
    /// and reproducible client-side for bit-identity checks.
    Lap2d {
        /// Grid side length (the system has `g*g` rows).
        g: usize,
    },
    /// An explicit CSR triplet (arbitrary ingested systems).
    Csr {
        /// Row count.
        n_rows: usize,
        /// Column count.
        n_cols: usize,
        /// CSR row pointers (`n_rows + 1` entries).
        row_ptr: Vec<usize>,
        /// CSR column indices.
        col_idx: Vec<usize>,
        /// CSR values.
        values: Vec<f64>,
    },
}

impl MatrixSpec {
    /// Row count of the described system.
    pub fn n_rows(&self) -> usize {
        match self {
            MatrixSpec::Lap2d { g } => g * g,
            MatrixSpec::Csr { n_rows, .. } => *n_rows,
        }
    }

    fn to_value(&self) -> Value {
        match self {
            MatrixSpec::Lap2d { g } => obj(vec![
                ("gen", Value::Str("lap2d".into())),
                ("g", Value::Num(*g as f64)),
            ]),
            MatrixSpec::Csr { n_rows, n_cols, row_ptr, col_idx, values } => obj(vec![
                ("n_rows", Value::Num(*n_rows as f64)),
                ("n_cols", Value::Num(*n_cols as f64)),
                ("row_ptr", usize_arr(row_ptr)),
                ("col_idx", usize_arr(col_idx)),
                ("values", num_arr(values)),
            ]),
        }
    }

    fn from_value(v: &Value) -> Result<MatrixSpec, String> {
        if let Some(kind) = v.get("gen").and_then(Value::as_str) {
            return match kind {
                "lap2d" => {
                    let g = v
                        .get("g")
                        .and_then(Value::as_u64)
                        .ok_or("lap2d needs integer `g`")? as usize;
                    Ok(MatrixSpec::Lap2d { g })
                }
                other => Err(format!("unknown generator `{other}`")),
            };
        }
        let field = |k: &str| v.get(k).ok_or_else(|| format!("matrix missing `{k}`"));
        Ok(MatrixSpec::Csr {
            n_rows: field("n_rows")?.as_u64().ok_or("bad n_rows")? as usize,
            n_cols: field("n_cols")?.as_u64().ok_or("bad n_cols")? as usize,
            row_ptr: field("row_ptr")?.as_usize_vec().ok_or("bad row_ptr")?,
            col_idx: field("col_idx")?.as_usize_vec().ok_or("bad col_idx")?,
            values: field("values")?.as_f64_vec().ok_or("bad values")?,
        })
    }
}

/// Which execution fabric serves the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Seeded discrete-event simulation on the connection thread —
    /// deterministic, so a cached or repeated solve is bit-identical.
    Sim,
    /// Real threads leased from the daemon's shared worker pool —
    /// nondeterministic interleaving, converges to tolerance; the only
    /// mode where deadlines/cancellation can interrupt mid-solve.
    Pooled,
}

impl Mode {
    fn as_str(self) -> &'static str {
        match self {
            Mode::Sim => "sim",
            Mode::Pooled => "pooled",
        }
    }

    fn parse(s: &str) -> Result<Mode, String> {
        match s {
            "sim" => Ok(Mode::Sim),
            "pooled" => Ok(Mode::Pooled),
            other => Err(format!("unknown mode `{other}`")),
        }
    }
}

/// One solve request.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveSpec {
    /// Client-chosen request id; the handle for `cancel` and the echo
    /// key in every reply.
    pub id: u64,
    /// The system matrix.
    pub matrix: MatrixSpec,
    /// Right-hand side; `None` means `b = A·1` (exact solution = ones).
    pub rhs: Option<Vec<f64>>,
    /// Relative-residual stopping tolerance.
    pub tol: f64,
    /// Global iteration budget.
    pub max_iters: usize,
    /// Inner sweeps per block update (the paper's `k` in async-(k)).
    pub local_iters: usize,
    /// Row-partition block size.
    pub block: usize,
    /// Execution fabric.
    pub mode: Mode,
    /// Requested lease size for [`Mode::Pooled`] (clamped to the pool).
    pub workers: usize,
    /// Per-request deadline, milliseconds from admission.
    pub deadline_ms: Option<u64>,
    /// RNG seed for [`Mode::Sim`] scheduling.
    pub seed: u64,
    /// Whether the daemon may serve/populate its result cache.
    pub cache: bool,
}

impl SolveSpec {
    /// A small, fully-defaulted spec for tests and examples.
    pub fn lap2d(id: u64, g: usize) -> SolveSpec {
        SolveSpec {
            id,
            matrix: MatrixSpec::Lap2d { g },
            rhs: None,
            tol: 1e-9,
            max_iters: 20_000,
            local_iters: 5,
            block: 8,
            mode: Mode::Sim,
            workers: 2,
            deadline_ms: None,
            seed: 42,
            cache: true,
        }
    }
}

/// A client → daemon frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run a solve.
    Solve(SolveSpec),
    /// Cancel the in-flight solve with this id (from any connection).
    Cancel {
        /// The id the solve was submitted under.
        id: u64,
    },
    /// Liveness probe.
    Ping,
    /// Begin graceful drain (the SIGTERM-style frame).
    Shutdown,
}

impl Request {
    /// Renders the frame payload.
    pub fn render(&self) -> String {
        match self {
            Request::Ping => obj(vec![("type", Value::Str("ping".into()))]).render(),
            Request::Shutdown => obj(vec![("type", Value::Str("shutdown".into()))]).render(),
            Request::Cancel { id } => obj(vec![
                ("type", Value::Str("cancel".into())),
                ("id", Value::Num(*id as f64)),
            ])
            .render(),
            Request::Solve(s) => {
                let mut fields = vec![
                    ("type", Value::Str("solve".into())),
                    ("id", Value::Num(s.id as f64)),
                    ("matrix", s.matrix.to_value()),
                    ("tol", Value::Num(s.tol)),
                    ("max_iters", Value::Num(s.max_iters as f64)),
                    ("local_iters", Value::Num(s.local_iters as f64)),
                    ("block", Value::Num(s.block as f64)),
                    ("mode", Value::Str(s.mode.as_str().into())),
                    ("workers", Value::Num(s.workers as f64)),
                    ("seed", Value::Num(s.seed as f64)),
                    ("cache", Value::Bool(s.cache)),
                ];
                if let Some(rhs) = &s.rhs {
                    fields.push(("rhs", num_arr(rhs)));
                }
                if let Some(d) = s.deadline_ms {
                    fields.push(("deadline_ms", Value::Num(d as f64)));
                }
                obj(fields).render()
            }
        }
    }

    /// Parses a frame payload.
    pub fn parse(payload: &str) -> Result<Request, String> {
        let v = Value::parse(payload)?;
        let ty = v.get("type").and_then(Value::as_str).ok_or("frame missing `type`")?;
        match ty {
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            "cancel" => Ok(Request::Cancel {
                id: v.get("id").and_then(Value::as_u64).ok_or("cancel needs `id`")?,
            }),
            "solve" => {
                let num = |k: &str| v.get(k).and_then(Value::as_u64);
                Ok(Request::Solve(SolveSpec {
                    id: num("id").ok_or("solve needs `id`")?,
                    matrix: MatrixSpec::from_value(
                        v.get("matrix").ok_or("solve needs `matrix`")?,
                    )?,
                    rhs: match v.get("rhs") {
                        Some(r) => Some(r.as_f64_vec().ok_or("bad rhs")?),
                        None => None,
                    },
                    tol: v.get("tol").and_then(Value::as_f64).ok_or("solve needs `tol`")?,
                    max_iters: num("max_iters").ok_or("solve needs `max_iters`")? as usize,
                    local_iters: num("local_iters").unwrap_or(1) as usize,
                    block: num("block").ok_or("solve needs `block`")? as usize,
                    mode: Mode::parse(
                        v.get("mode").and_then(Value::as_str).unwrap_or("sim"),
                    )?,
                    workers: num("workers").unwrap_or(1) as usize,
                    deadline_ms: num("deadline_ms"),
                    seed: num("seed").unwrap_or(0),
                    cache: v.get("cache").and_then(Value::as_bool).unwrap_or(true),
                }))
            }
            other => Err(format!("unknown request type `{other}`")),
        }
    }
}

/// A daemon → client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The solve finished.
    Done {
        /// Echoed request id.
        id: u64,
        /// Solution vector.
        x: Vec<f64>,
        /// Iterations performed.
        iterations: usize,
        /// Whether the tolerance was reached.
        converged: bool,
        /// Final relative residual.
        final_residual: f64,
        /// Served from the result cache without solving.
        cached: bool,
        /// Coalesced onto an identical in-flight solve (single-flight).
        coalesced: bool,
        /// Chaos faults were injected into this request (`--chaos`).
        chaos: bool,
    },
    /// Shed by admission control; retry after the hinted delay.
    Overloaded {
        /// Echoed request id.
        id: u64,
        /// Backoff hint from the daemon's recent-solve-time estimate.
        retry_after_ms: u64,
    },
    /// Client cancellation observed mid-solve.
    Cancelled {
        /// Echoed request id.
        id: u64,
        /// Partial global iterations at the stop.
        iterations: usize,
    },
    /// The per-request deadline expired mid-solve.
    DeadlineExceeded {
        /// Echoed request id.
        id: u64,
        /// Partial global iterations at the stop.
        iterations: usize,
    },
    /// The request failed (validation, non-convergence, contained
    /// panic); the daemon itself is fine.
    Failed {
        /// Echoed request id.
        id: u64,
        /// Human-readable cause.
        error: String,
    },
    /// Acknowledgement for `cancel`.
    Ok,
    /// Reply to `ping`.
    Pong,
    /// The daemon is draining and accepts no new solves.
    ShuttingDown,
}

impl Response {
    /// Renders the frame payload.
    pub fn render(&self) -> String {
        let tagged = |t: &str, rest: Vec<(&str, Value)>| {
            let mut fields = vec![("type", Value::Str(t.into()))];
            fields.extend(rest);
            obj(fields).render()
        };
        match self {
            Response::Ok => tagged("ok", vec![]),
            Response::Pong => tagged("pong", vec![]),
            Response::ShuttingDown => tagged("shutting_down", vec![]),
            Response::Overloaded { id, retry_after_ms } => tagged(
                "overloaded",
                vec![
                    ("id", Value::Num(*id as f64)),
                    ("retry_after_ms", Value::Num(*retry_after_ms as f64)),
                ],
            ),
            Response::Cancelled { id, iterations } => tagged(
                "cancelled",
                vec![
                    ("id", Value::Num(*id as f64)),
                    ("iterations", Value::Num(*iterations as f64)),
                ],
            ),
            Response::DeadlineExceeded { id, iterations } => tagged(
                "deadline_exceeded",
                vec![
                    ("id", Value::Num(*id as f64)),
                    ("iterations", Value::Num(*iterations as f64)),
                ],
            ),
            Response::Failed { id, error } => tagged(
                "failed",
                vec![("id", Value::Num(*id as f64)), ("error", Value::Str(error.clone()))],
            ),
            Response::Done { id, x, iterations, converged, final_residual, cached, coalesced, chaos } => {
                tagged(
                    "done",
                    vec![
                        ("id", Value::Num(*id as f64)),
                        ("iterations", Value::Num(*iterations as f64)),
                        ("converged", Value::Bool(*converged)),
                        ("final_residual", Value::Num(*final_residual)),
                        ("cached", Value::Bool(*cached)),
                        ("coalesced", Value::Bool(*coalesced)),
                        ("chaos", Value::Bool(*chaos)),
                        ("x", num_arr(x)),
                    ],
                )
            }
        }
    }

    /// Parses a frame payload.
    pub fn parse(payload: &str) -> Result<Response, String> {
        let v = Value::parse(payload)?;
        let ty = v.get("type").and_then(Value::as_str).ok_or("frame missing `type`")?;
        let id = || v.get("id").and_then(Value::as_u64).ok_or("missing `id`");
        let iters =
            || v.get("iterations").and_then(Value::as_u64).map(|u| u as usize).ok_or("missing `iterations`");
        match ty {
            "ok" => Ok(Response::Ok),
            "pong" => Ok(Response::Pong),
            "shutting_down" => Ok(Response::ShuttingDown),
            "overloaded" => Ok(Response::Overloaded {
                id: id()?,
                retry_after_ms: v
                    .get("retry_after_ms")
                    .and_then(Value::as_u64)
                    .ok_or("overloaded needs `retry_after_ms`")?,
            }),
            "cancelled" => Ok(Response::Cancelled { id: id()?, iterations: iters()? }),
            "deadline_exceeded" => {
                Ok(Response::DeadlineExceeded { id: id()?, iterations: iters()? })
            }
            "failed" => Ok(Response::Failed {
                id: id()?,
                error: v
                    .get("error")
                    .and_then(Value::as_str)
                    .ok_or("failed needs `error`")?
                    .to_string(),
            }),
            "done" => Ok(Response::Done {
                id: id()?,
                iterations: iters()?,
                converged: v.get("converged").and_then(Value::as_bool).ok_or("missing `converged`")?,
                final_residual: v
                    .get("final_residual")
                    .and_then(Value::as_f64)
                    .unwrap_or(f64::NAN),
                cached: v.get("cached").and_then(Value::as_bool).unwrap_or(false),
                coalesced: v.get("coalesced").and_then(Value::as_bool).unwrap_or(false),
                chaos: v.get("chaos").and_then(Value::as_bool).unwrap_or(false),
                x: v.get("x").and_then(Value::as_f64_vec).ok_or("missing `x`")?,
            }),
            other => Err(format!("unknown response type `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_a_byte_stream() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello").unwrap();
        write_frame(&mut buf, "{\"a\":1}").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "{\"a\":1}");
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF is Ok(None)");
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        buf.extend_from_slice(b"whatever");
        assert!(read_frame(&mut &buf[..]).unwrap_err().to_string().contains("exceeds cap"));
    }

    #[test]
    fn requests_round_trip() {
        let mut spec = SolveSpec::lap2d(7, 8);
        spec.rhs = Some(vec![1.0, -2.5]);
        spec.deadline_ms = Some(250);
        spec.mode = Mode::Pooled;
        for req in [
            Request::Solve(spec),
            Request::Cancel { id: 9 },
            Request::Ping,
            Request::Shutdown,
        ] {
            assert_eq!(Request::parse(&req.render()).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Done {
                id: 3,
                x: vec![1.0, 0.1 + 0.2],
                iterations: 120,
                converged: true,
                final_residual: 3.2e-10,
                cached: true,
                coalesced: false,
                chaos: false,
            },
            Response::Overloaded { id: 4, retry_after_ms: 35 },
            Response::Cancelled { id: 5, iterations: 17 },
            Response::DeadlineExceeded { id: 6, iterations: 90 },
            Response::Failed { id: 7, error: "bad \"matrix\"".into() },
            Response::Ok,
            Response::Pong,
            Response::ShuttingDown,
        ] {
            assert_eq!(Response::parse(&resp.render()).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn explicit_csr_matrices_survive_the_wire() {
        let m = MatrixSpec::Csr {
            n_rows: 2,
            n_cols: 2,
            row_ptr: vec![0, 1, 2],
            col_idx: vec![0, 1],
            values: vec![4.0, 4.0],
        };
        let req = Request::Solve(SolveSpec { matrix: m, ..SolveSpec::lap2d(1, 2) });
        assert_eq!(Request::parse(&req.render()).unwrap(), req);
    }
}
