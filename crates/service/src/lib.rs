#![warn(missing_docs)]

//! # abr-service
//!
//! A multi-tenant solve service on top of the block-asynchronous
//! relaxation fabric: a long-lived daemon accepting concurrent solve
//! requests over a hand-rolled length-prefixed JSON wire protocol and
//! multiplexing them onto **one shared persistent-worker pool**
//! ([`abr_gpu::WorkerPool`]).
//!
//! The paper's method tolerates chaos *inside* a solve (stale reads,
//! uneven progress, dead workers — §4.5); this crate applies the same
//! philosophy one level up, where the chaos is concurrent tenants,
//! saturated queues, and deadlines:
//!
//! * bounded admission with structured `Overloaded { retry_after_ms }`
//!   shedding ([`daemon`]),
//! * per-request deadlines and cancellation riding the executor's
//!   Release/Acquire stop flag ([`abr_gpu::CancelToken`]),
//! * per-request fault isolation (`catch_unwind` at the pool slice and
//!   at the connection), so a poisoned tenant never kills the daemon,
//! * a solve-result cache with single-flight coalescing ([`cache`]),
//! * graceful drain with structural zero-leaked-thread accounting
//!   ([`daemon::DrainReport`]),
//! * a client with retry + exponential backoff + jitter ([`client`]).
//!
//! See DESIGN.md §10 for the wire-format frame table and the request
//! lifecycle state machine.

pub mod cache;
pub mod client;
pub mod daemon;
pub mod json;
pub mod wire;

pub use cache::{solve_key, Begin, CachedSolve, SolveCache};
pub use client::{Client, RetryPolicy};
pub use daemon::{ChaosConfig, Daemon, DaemonConfig, DrainReport, ServiceCounters};
pub use wire::{MatrixSpec, Mode, Request, Response, SolveSpec};
