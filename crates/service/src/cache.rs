//! The solve-result cache with single-flight coalescing.
//!
//! Keyed on the full solve identity — matrix fingerprint, rhs
//! fingerprint, tolerance bits, scheme (k, block size, mode, seed) — so
//! two requests share a slot only when their solves would be
//! interchangeable. Two behaviours fall out of one small state machine:
//!
//! * **Cache hit**: a completed result is returned without solving.
//! * **Single-flight**: while a solve for a key is in flight, identical
//!   requests *wait on it* instead of duplicating the work; when the
//!   leader publishes, every waiter gets the same result (marked
//!   `coalesced`). If the leader fails or is cancelled without
//!   publishing, the slot is cleared and one waiter promotes itself to
//!   leader — a dead leader never wedges the key.
//!
//! Waiters poll their own [`CancelToken`] between condvar timeouts, so a
//! coalesced request still honors its deadline and cancellation.

use crate::wire::Mode;
use abr_core::Fnv1a;
use abr_gpu::{CancelCause, CancelToken};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// The cached outcome of one converged solve.
#[derive(Debug, Clone)]
pub struct CachedSolve {
    /// Solution vector.
    pub x: Vec<f64>,
    /// Iterations the original solve took.
    pub iterations: usize,
    /// Final relative residual of the original solve.
    pub final_residual: f64,
}

/// Builds the cache key from the solve identity components.
#[allow(clippy::too_many_arguments)] // the key IS the full identity
pub fn solve_key(
    matrix_fp: u64,
    rhs_fp: u64,
    x0_fp: u64,
    tol: f64,
    local_iters: usize,
    block: usize,
    mode: Mode,
    seed: u64,
) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(matrix_fp)
        .write_u64(rhs_fp)
        .write_u64(x0_fp)
        .write_f64(tol)
        .write_usize(local_iters)
        .write_usize(block)
        .write_u64(match mode {
            Mode::Sim => 0,
            Mode::Pooled => 1,
        })
        // Scheduling seed matters only where it changes the result
        // (deterministic sim); pooled runs are nondeterministic anyway.
        .write_u64(match mode {
            Mode::Sim => seed,
            Mode::Pooled => 0,
        });
    h.finish()
}

enum Slot {
    InFlight,
    Ready(Arc<CachedSolve>),
}

/// What [`SolveCache::begin`] resolved to.
pub enum Begin<'a> {
    /// This request leads: solve, then [`LeadGuard::publish`] (or drop
    /// the guard on failure to release waiters).
    Lead(LeadGuard<'a>),
    /// A result was available (immediately — `coalesced == false` — or
    /// after waiting on an in-flight leader — `coalesced == true`).
    Ready(Arc<CachedSolve>, bool),
    /// The request's own token fired while waiting on a leader.
    Aborted(CancelCause),
}

/// The single-flight solve-result cache.
#[derive(Default)]
pub struct SolveCache {
    slots: Mutex<HashMap<u64, Slot>>,
    ready: Condvar,
}

impl SolveCache {
    /// A fresh, empty cache.
    pub fn new() -> SolveCache {
        SolveCache::default()
    }

    /// Number of completed entries (tests/metrics).
    pub fn len(&self) -> usize {
        self.slots
            .lock()
            .unwrap()
            .values()
            .filter(|s| matches!(s, Slot::Ready(_)))
            .count()
    }

    /// Whether the cache holds no completed entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resolves a key: immediate hit, wait-and-coalesce, or leadership.
    pub fn begin(&self, key: u64, cancel: Option<&CancelToken>) -> Begin<'_> {
        let mut slots = self.slots.lock().unwrap();
        let mut waited = false;
        loop {
            match slots.get(&key) {
                None => {
                    slots.insert(key, Slot::InFlight);
                    return Begin::Lead(LeadGuard { cache: self, key, published: false });
                }
                Some(Slot::Ready(r)) => return Begin::Ready(Arc::clone(r), waited),
                Some(Slot::InFlight) => {
                    if let Some(why) = cancel.and_then(CancelToken::should_stop) {
                        return Begin::Aborted(why);
                    }
                    waited = true;
                    // Short slices so a waiter notices its own deadline
                    // promptly even if the leader runs long.
                    let (guard, _timeout) = self
                        .ready
                        .wait_timeout(slots, Duration::from_millis(20))
                        .unwrap();
                    slots = guard;
                }
            }
        }
    }
}

/// Leadership over one in-flight cache key. Publishing stores the result
/// and wakes waiters; dropping without publishing clears the slot so a
/// waiter can take over — either way the key cannot wedge.
pub struct LeadGuard<'a> {
    cache: &'a SolveCache,
    key: u64,
    published: bool,
}

impl LeadGuard<'_> {
    /// Publishes the leader's result to every waiter and future hit.
    pub fn publish(mut self, result: CachedSolve) {
        let mut slots = self.cache.slots.lock().unwrap();
        slots.insert(self.key, Slot::Ready(Arc::new(result)));
        self.published = true;
        drop(slots);
        self.cache.ready.notify_all();
    }
}

impl Drop for LeadGuard<'_> {
    fn drop(&mut self) {
        if self.published {
            return;
        }
        let mut slots = self.cache.slots.lock().unwrap();
        slots.remove(&self.key);
        drop(slots);
        self.cache.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn sample() -> CachedSolve {
        CachedSolve { x: vec![1.0, 2.0], iterations: 10, final_residual: 1e-10 }
    }

    #[test]
    fn first_caller_leads_then_hits_are_served() {
        let cache = SolveCache::new();
        let lead = match cache.begin(7, None) {
            Begin::Lead(g) => g,
            _ => panic!("first caller must lead"),
        };
        lead.publish(sample());
        match cache.begin(7, None) {
            Begin::Ready(r, coalesced) => {
                assert_eq!(r.x, vec![1.0, 2.0]);
                assert!(!coalesced, "direct hit, no wait");
            }
            _ => panic!("second caller must hit"),
        }
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn waiters_coalesce_onto_the_leader() {
        let cache = SolveCache::new();
        let lead = match cache.begin(3, None) {
            Begin::Lead(g) => g,
            _ => panic!(),
        };
        std::thread::scope(|s| {
            let waiter = s.spawn(|| match cache.begin(3, None) {
                Begin::Ready(r, coalesced) => {
                    assert!(coalesced, "waiter must be marked coalesced");
                    r.iterations
                }
                _ => panic!("waiter must receive the leader's result"),
            });
            std::thread::sleep(Duration::from_millis(30));
            lead.publish(sample());
            assert_eq!(waiter.join().unwrap(), 10);
        });
    }

    #[test]
    fn failed_leader_promotes_a_waiter() {
        let cache = SolveCache::new();
        let lead = match cache.begin(5, None) {
            Begin::Lead(g) => g,
            _ => panic!(),
        };
        std::thread::scope(|s| {
            let waiter = s.spawn(|| match cache.begin(5, None) {
                Begin::Lead(g) => {
                    g.publish(sample());
                    true
                }
                _ => false,
            });
            std::thread::sleep(Duration::from_millis(30));
            drop(lead); // leader dies without publishing
            assert!(waiter.join().unwrap(), "waiter must inherit leadership");
        });
        assert_eq!(cache.len(), 1, "the promoted waiter's publish stuck");
    }

    #[test]
    fn waiting_respects_the_requests_own_deadline() {
        let cache = SolveCache::new();
        let _lead = match cache.begin(9, None) {
            Begin::Lead(g) => g,
            _ => panic!(),
        };
        let token = CancelToken::with_deadline(Instant::now() + Duration::from_millis(40));
        let t0 = Instant::now();
        match cache.begin(9, Some(&token)) {
            Begin::Aborted(CancelCause::DeadlineExceeded) => {}
            _ => panic!("waiter must abort on its own deadline"),
        }
        assert!(t0.elapsed() < Duration::from_secs(2), "abort must be prompt");
    }

    #[test]
    fn key_distinguishes_every_identity_component() {
        let base = solve_key(1, 2, 3, 1e-9, 5, 16, Mode::Sim, 42);
        assert_ne!(base, solve_key(9, 2, 3, 1e-9, 5, 16, Mode::Sim, 42));
        assert_ne!(base, solve_key(1, 9, 3, 1e-9, 5, 16, Mode::Sim, 42));
        assert_ne!(base, solve_key(1, 2, 9, 1e-9, 5, 16, Mode::Sim, 42));
        assert_ne!(base, solve_key(1, 2, 3, 1e-8, 5, 16, Mode::Sim, 42));
        assert_ne!(base, solve_key(1, 2, 3, 1e-9, 1, 16, Mode::Sim, 42));
        assert_ne!(base, solve_key(1, 2, 3, 1e-9, 5, 32, Mode::Sim, 42));
        assert_ne!(base, solve_key(1, 2, 3, 1e-9, 5, 16, Mode::Pooled, 42));
        assert_ne!(base, solve_key(1, 2, 3, 1e-9, 5, 16, Mode::Sim, 43));
        // Pooled runs are seed-insensitive by design.
        assert_eq!(
            solve_key(1, 2, 3, 1e-9, 5, 16, Mode::Pooled, 1),
            solve_key(1, 2, 3, 1e-9, 5, 16, Mode::Pooled, 2),
        );
    }
}
