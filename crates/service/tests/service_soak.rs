//! End-to-end soak tests for the solve-service daemon: many concurrent
//! tenants multiplexed onto one shared worker pool, exercising the full
//! robustness surface — admission shedding, deadlines, cancellation,
//! chaos faults, the result cache, and graceful drain with structural
//! zero-leaked-thread accounting.
//!
//! Determinism notes: sim-mode requests are bit-identical to a local
//! single-tenant solve (same seeds, same schedule), so the soak can
//! assert exact equality across the wire. Interrupt paths use
//! `tol = 1e-30` (unreachable) so the solve *cannot* end on its own —
//! only the cancel token (deadline or cancel frame) can stop it, which
//! makes the expected response type deterministic.

use abr_core::{AsyncBlockSolver, ExecutorKind, ScheduleKind, SolveOptions};
use abr_gpu::SimOptions;
use abr_service::{
    ChaosConfig, Client, Daemon, DaemonConfig, MatrixSpec, Mode, Response, RetryPolicy,
    SolveSpec,
};
use abr_sparse::{gen, RowPartition};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Replicates the daemon's sim-mode solve locally: the single-tenant
/// reference a multiplexed request must match bit-for-bit.
fn local_sim_solve(spec: &SolveSpec) -> (Vec<f64>, usize) {
    let a = match &spec.matrix {
        MatrixSpec::Lap2d { g } => gen::laplacian_2d_5pt(*g),
        MatrixSpec::Csr { .. } => unreachable!("tests use generated systems"),
    };
    let n = a.n_rows();
    let rhs = match &spec.rhs {
        Some(r) => r.clone(),
        None => a.mul_vec(&vec![1.0; n]).unwrap(),
    };
    let x0 = vec![0.0; n];
    let partition = RowPartition::uniform(n, spec.block.clamp(1, n)).unwrap();
    let opts = SolveOptions::to_tolerance(spec.tol, spec.max_iters.max(1));
    let solver = AsyncBlockSolver {
        local_iters: spec.local_iters.max(1),
        schedule: ScheduleKind::Recurring { seed: spec.seed },
        executor: ExecutorKind::Sim(SimOptions {
            seed: spec.seed ^ 0x9e37_79b9_7f4a_7c15,
            ..SimOptions::default()
        }),
        damping: 1.0,
        local_sweep: Default::default(),
    };
    let r = solver.solve(&a, &rhs, &x0, &partition, &opts).unwrap();
    (r.x, r.iterations)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn sim_spec(id: u64, g: usize, seed: u64, k: usize) -> SolveSpec {
    SolveSpec {
        seed,
        local_iters: k,
        ..SolveSpec::lap2d(id, g)
    }
}

/// A pooled request that can never converge (`tol = 1e-30`): only its
/// cancel token — deadline or cancel frame — can end it.
fn unconvergeable(id: u64, g: usize, deadline_ms: u64) -> SolveSpec {
    SolveSpec {
        mode: Mode::Pooled,
        workers: 1,
        tol: 1e-30,
        max_iters: 100_000_000,
        deadline_ms: Some(deadline_ms),
        cache: false,
        ..SolveSpec::lap2d(id, g)
    }
}

/// The acceptance soak: 8 concurrent tenants of mixed size and mode —
/// sim tenants checked bit-identical against their single-tenant solve,
/// pooled tenants to tolerance, one chaos-faulted, one cancelled, one
/// deadline-bound — all on ONE daemon with ONE 3-thread pool; then a
/// deterministic saturation phase asserting shed + retry_after_ms; then
/// post-interrupt pool health and drain accounting.
#[test]
fn soak_eight_concurrent_tenants_on_one_pool() {
    // Chaos kills every non-zero worker of any multi-worker pooled
    // request; single-worker pooled requests are structurally unfaultable
    // (worker 0 is always spared), which makes "the one chaos tenant"
    // deterministic: it is exactly the workers=3 request.
    let daemon = Daemon::start(DaemonConfig {
        workers: 3,
        max_inflight: 8,
        admission_timeout_ms: 2_000,
        max_rows: 1_000,
        chaos: Some(ChaosConfig {
            p_kill: 1.0,
            p_hang: 0.0,
            p_poison: 0.0,
            recovery: 10,
            seed: 0xc4a0_5,
        }),
        ..DaemonConfig::default()
    })
    .unwrap();
    let addr = daemon.addr();

    // Phase 0: liveness + typed rejection (retrying cannot help an
    // oversized system, so it must NOT be Overloaded).
    assert_eq!(Client::new(addr).ping().unwrap(), Response::Pong);
    match Client::new(addr).solve_once(&SolveSpec::lap2d(90, 40)).unwrap() {
        Response::Failed { id, error } => {
            assert_eq!(id, 90);
            assert!(error.contains("max_rows"), "typed admission error, got {error}");
        }
        other => panic!("1600 rows over a 1000-row cap must be a typed Failed, got {other:?}"),
    }

    // Phase 1: the 8-tenant concurrent wave.
    let sims = [sim_spec(1, 8, 42, 5), sim_spec(2, 10, 7, 1), sim_spec(3, 12, 9, 5)];
    let pooled_small = SolveSpec {
        mode: Mode::Pooled,
        workers: 1,
        tol: 1e-8,
        cache: false,
        ..SolveSpec::lap2d(4, 8)
    };
    let pooled_mid = SolveSpec { id: 5, matrix: MatrixSpec::Lap2d { g: 10 }, ..pooled_small.clone() };
    let chaos_tenant = SolveSpec {
        mode: Mode::Pooled,
        workers: 3,
        tol: 1e-8,
        cache: false,
        ..SolveSpec::lap2d(6, 8)
    };
    let cancel_tenant = unconvergeable(7, 16, 5_000); // deadline is a backstop; cancel lands first
    let deadline_tenant = unconvergeable(8, 16, 150);

    std::thread::scope(|s| {
        let sim_handles: Vec<_> = sims
            .iter()
            .map(|spec| s.spawn(move || Client::new(addr).solve_once(spec).unwrap()))
            .collect();
        let h4 = s.spawn(|| Client::new(addr).solve_once(&pooled_small).unwrap());
        let h5 = s.spawn(|| Client::new(addr).solve_once(&pooled_mid).unwrap());
        let h6 = s.spawn(|| Client::new(addr).solve_once(&chaos_tenant).unwrap());
        let h8 = s.spawn(|| Client::new(addr).solve_once(&deadline_tenant).unwrap());
        let (tx, rx) = mpsc::channel();
        let cancel_spec = &cancel_tenant;
        s.spawn(move || tx.send(Client::new(addr).solve_once(cancel_spec)).unwrap());

        // Cancel tenant 7 from a *different* connection. The cancel frame
        // may race the solve's registration, so resend until the solve
        // answers; cancellation is idempotent.
        let canceller = Client::new(addr);
        let resp7 = {
            let mut tries = 0;
            loop {
                match rx.recv_timeout(Duration::from_millis(50)) {
                    Ok(r) => break r.unwrap(),
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        tries += 1;
                        assert!(tries < 100, "cancel never landed");
                        let _ = canceller.cancel(7).unwrap();
                    }
                    Err(e) => panic!("cancel tenant channel died: {e}"),
                }
            }
        };
        match resp7 {
            Response::Cancelled { id, iterations } => {
                assert_eq!(id, 7);
                assert!(iterations < cancel_tenant.max_iters, "must be a partial stop");
            }
            other => panic!("tenant 7 must end Cancelled, got {other:?}"),
        }

        // Every sim tenant: bit-identical to its single-tenant solve.
        for (spec, h) in sims.iter().zip(sim_handles) {
            let (x_ref, iters_ref) = local_sim_solve(spec);
            match h.join().unwrap() {
                Response::Done { id, x, iterations, converged, chaos, .. } => {
                    assert_eq!(id, spec.id);
                    assert!(converged, "sim tenant {id} must converge");
                    assert!(!chaos, "sim tenants are never chaos-faulted");
                    assert_eq!(iterations, iters_ref, "tenant {id} iteration count");
                    assert_eq!(
                        bits(&x),
                        bits(&x_ref),
                        "tenant {id}: multiplexed solve must be bit-identical to its \
                         single-tenant solve"
                    );
                }
                other => panic!("sim tenant {} must finish, got {other:?}", spec.id),
            }
        }

        // Pooled single-worker tenants: to tolerance, unfaulted.
        for (spec, h) in [(&pooled_small, h4), (&pooled_mid, h5)] {
            match h.join().unwrap() {
                Response::Done { id, converged, final_residual, chaos, .. } => {
                    assert_eq!(id, spec.id);
                    assert!(!chaos, "single-worker pooled tenants are unfaultable");
                    assert!(converged && final_residual <= spec.tol, "tenant {id} to tolerance");
                }
                other => panic!("pooled tenant {} must finish, got {other:?}", spec.id),
            }
        }

        // The chaos tenant: workers 1 and 2 are killed mid-solve. The
        // outage is contained — recovery adopts the orphaned shards and
        // the request is answered with a typed frame flagged `chaos`,
        // the daemon and its pool unharmed. (An orphan's backlog replays
        // *after* the survivor drains its own budget — §4.5 budget
        // semantics — so a tight tolerance is not guaranteed under a
        // mid-solve kill; containment, not convergence, is the contract.)
        match h6.join().unwrap() {
            Response::Done { id, iterations, chaos, .. } => {
                assert_eq!(id, 6);
                assert!(chaos, "the workers=3 tenant must have been chaos-faulted");
                assert!(iterations > 0, "the faulted solve still made progress");
            }
            other => panic!("chaos tenant must get a typed answer, got {other:?}"),
        }

        // The deadline tenant: its 150ms budget expires while the solve
        // is either leased or queued; either way the typed answer is
        // DeadlineExceeded, never a hang or a generic failure.
        match h8.join().unwrap() {
            Response::DeadlineExceeded { id, .. } => assert_eq!(id, 8),
            other => panic!("tenant 8 must end DeadlineExceeded, got {other:?}"),
        }
    });

    // Phase 2: deterministic saturation. Eight unconvergeable blockers
    // fill every admission slot (three leased, five queued-for-lease —
    // queued requests count against the bound too); a ninth request must
    // be shed with a structured retry hint.
    let admitted_before = daemon.counters().admitted;
    std::thread::scope(|s| {
        let blockers: Vec<_> = (100..108)
            .map(|id| {
                let spec = unconvergeable(id, 12, 800);
                s.spawn(move || Client::new(addr).solve_once(&spec).unwrap())
            })
            .collect();

        let t0 = Instant::now();
        while daemon.counters().admitted - admitted_before < 8 {
            assert!(t0.elapsed() < Duration::from_secs(5), "blockers never all admitted");
            std::thread::sleep(Duration::from_millis(2));
        }
        match Client::new(addr).solve_once(&sim_spec(200, 4, 1, 5)).unwrap() {
            Response::Overloaded { id, retry_after_ms } => {
                assert_eq!(id, 200);
                assert!(retry_after_ms >= 10, "shed must carry a usable retry hint");
            }
            other => panic!("request into a full daemon must be shed, got {other:?}"),
        }

        // The client retry loop rides the hint: backoff past the
        // blockers' deadlines and the same request is admitted.
        let mut retrier = Client::with_policy(
            addr,
            RetryPolicy {
                max_retries: 12,
                base_backoff_ms: 30,
                max_backoff_ms: 250,
                jitter_seed: 11,
            },
        );
        match retrier.solve(&sim_spec(201, 4, 1, 5)).unwrap() {
            Response::Done { id, converged, .. } => {
                assert_eq!(id, 201);
                assert!(converged);
            }
            other => panic!("retry must outlive the overload, got {other:?}"),
        }

        for h in blockers {
            match h.join().unwrap() {
                Response::DeadlineExceeded { .. } => {}
                other => panic!("blockers can only end by deadline, got {other:?}"),
            }
        }
    });

    // Phase 3: the interrupted tenants must have freed their leases —
    // the pool serves fresh requests at the fault-free tolerance again.
    // Three concurrent single-worker requests (structurally unfaultable:
    // worker 0 is always spared and chaos only samples workers 1..n)
    // sweep every pool slot back into service.
    let health: Vec<SolveSpec> = (300..303)
        .map(|id| SolveSpec {
            mode: Mode::Pooled,
            workers: 1,
            tol: 1e-8,
            cache: false,
            ..SolveSpec::lap2d(id, 10)
        })
        .collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = health
            .iter()
            .map(|spec| s.spawn(move || Client::new(addr).solve_once(spec).unwrap()))
            .collect();
        for (spec, h) in health.iter().zip(handles) {
            match h.join().unwrap() {
                Response::Done { id, converged, final_residual, chaos, .. } => {
                    assert_eq!(id, spec.id);
                    assert!(!chaos);
                    assert!(
                        converged && final_residual <= spec.tol,
                        "post-interrupt pool must solve at the fault-free tolerance"
                    );
                }
                other => panic!("post-interrupt solve must converge, got {other:?}"),
            }
        }
    });

    // Cache check: re-issuing tenant 1's exact system under a new id is
    // served from the cache, bit-identical.
    let (x_ref, _) = local_sim_solve(&sims[0]);
    match Client::new(addr).solve_once(&SolveSpec { id: 400, ..sims[0].clone() }).unwrap() {
        Response::Done { cached, x, .. } => {
            assert!(cached, "identical re-issue must be a cache hit");
            assert_eq!(bits(&x), bits(&x_ref), "cached result must be bit-identical");
        }
        other => panic!("cache re-issue must finish, got {other:?}"),
    }

    // Drain: structural zero-leaked-threads accounting. Every pool
    // worker joins (exactly the configured 3) and every connection
    // thread joins.
    let counters = daemon.counters();
    assert!(counters.shed >= 1, "the saturation probe was shed");
    assert_eq!(counters.cancelled, 1, "exactly tenant 7 was cancelled");
    assert_eq!(counters.deadline_exceeded, 9, "tenant 8 plus the 8 blockers");
    assert!(counters.completed >= 10, "all surviving tenants answered: {counters:?}");
    assert!(counters.cache_hits >= 1);
    assert!(counters.failed >= 1, "the oversized request failed typed");
    let report = daemon.shutdown(Duration::from_secs(5));
    assert_eq!(report.workers_joined, 3, "every pool worker must be joined at drain");
    assert!(report.connections_joined > 0);
}

/// Satellite 3 end-to-end: a deadline expiring mid-solve yields a
/// DeadlineExceeded with *partial* iterations, the leased shards come
/// back, and the same pool then converges a normal request. Drain is
/// triggered by the wire `shutdown` frame (the SIGTERM path).
#[test]
fn deadline_expires_mid_solve_and_pool_recovers() {
    let daemon = Daemon::start(DaemonConfig { workers: 2, ..DaemonConfig::default() }).unwrap();
    let addr = daemon.addr();

    // Uncontended 2-worker lease: the solve is definitely *running* (not
    // queued) when the 150ms deadline fires, so the partial iteration
    // count must be positive.
    let doomed = SolveSpec { workers: 2, ..unconvergeable(1, 16, 150) };
    let t0 = Instant::now();
    match Client::new(addr).solve_once(&doomed).unwrap() {
        Response::DeadlineExceeded { id, iterations } => {
            assert_eq!(id, 1);
            assert!(iterations > 0, "deadline fired mid-solve: partial progress expected");
            assert!(iterations < doomed.max_iters);
        }
        other => panic!("unconvergeable solve must deadline out, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "the deadline must actually bound the request"
    );

    // Shards released: a fresh full-pool solve on the same daemon.
    let healthy = SolveSpec {
        mode: Mode::Pooled,
        workers: 2,
        tol: 1e-8,
        cache: false,
        ..SolveSpec::lap2d(2, 10)
    };
    match Client::new(addr).solve_once(&healthy).unwrap() {
        Response::Done { converged, final_residual, .. } => {
            assert!(converged && final_residual <= healthy.tol);
        }
        other => panic!("post-deadline solve must converge, got {other:?}"),
    }

    assert_eq!(Client::new(addr).shutdown_daemon().unwrap(), Response::ShuttingDown);
    assert!(daemon.shutdown_requested(), "the shutdown frame begins the drain");
    let report = daemon.shutdown(Duration::from_secs(5));
    assert_eq!(report.workers_joined, 2);
    assert_eq!(report.counters.deadline_exceeded, 1);
}

/// The result cache end-to-end: repeat solves hit, concurrent identical
/// solves single-flight (exactly one of N identical requests computes;
/// the rest coalesce or hit), `cache: false` bypasses, and every path
/// returns bit-identical bits.
#[test]
fn cache_hits_and_single_flight_coalescing() {
    let daemon = Daemon::start(DaemonConfig { workers: 2, ..DaemonConfig::default() }).unwrap();
    let addr = daemon.addr();

    let spec = sim_spec(1, 8, 5, 5);
    let (x_ref, _) = local_sim_solve(&spec);
    match Client::new(addr).solve_once(&spec).unwrap() {
        Response::Done { cached, coalesced, x, .. } => {
            assert!(!cached && !coalesced, "first solve computes");
            assert_eq!(bits(&x), bits(&x_ref));
        }
        other => panic!("{other:?}"),
    }
    match Client::new(addr).solve_once(&SolveSpec { id: 2, ..spec.clone() }).unwrap() {
        Response::Done { cached, x, .. } => {
            assert!(cached, "identical repeat must hit");
            assert_eq!(bits(&x), bits(&x_ref));
        }
        other => panic!("{other:?}"),
    }

    // Single flight: of three concurrent identical requests, exactly one
    // computes — the other two are answered from its result (coalesced
    // while in flight, or a hit if they arrive after it publishes).
    let before = daemon.counters();
    let big = sim_spec(10, 24, 13, 1);
    let xs: Vec<Vec<u64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..3)
            .map(|i| {
                let spec = SolveSpec { id: 10 + i, ..big.clone() };
                s.spawn(move || match Client::new(addr).solve_once(&spec).unwrap() {
                    Response::Done { x, converged, .. } => {
                        assert!(converged);
                        bits(&x)
                    }
                    other => panic!("identical request must finish, got {other:?}"),
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(xs.iter().all(|x| *x == xs[0]), "single-flighted answers must be identical");
    let after = daemon.counters();
    assert_eq!(
        (after.cache_hits + after.coalesced) - (before.cache_hits + before.coalesced),
        2,
        "exactly one of three identical requests computes"
    );

    // Opting out of the cache recomputes (still bit-identical, since the
    // sim is deterministic).
    match Client::new(addr)
        .solve_once(&SolveSpec { id: 20, cache: false, ..spec.clone() })
        .unwrap()
    {
        Response::Done { cached, coalesced, x, .. } => {
            assert!(!cached && !coalesced, "cache:false must bypass");
            assert_eq!(bits(&x), bits(&x_ref));
        }
        other => panic!("{other:?}"),
    }

    let report = daemon.shutdown(Duration::from_secs(5));
    assert_eq!(report.workers_joined, 2);
}

/// Satellite 2's chaos soak: with `--chaos`-style fault injection raging
/// (kill + hang + poison sampled per request), every non-faulted request
/// is still answered correctly — sim requests bit-identical, pooled
/// single-worker requests to tolerance — every faultable request gets a
/// typed answer (never a hang, never a daemon death), and the drain
/// still accounts for every thread.
#[test]
fn chaos_soak_answers_every_nonfaulted_request_correctly() {
    // p_kill + p_hang + p_poison = 1.0: every multi-worker pooled
    // request is guaranteed at least one injected fault.
    let daemon = Daemon::start(DaemonConfig {
        workers: 3,
        max_inflight: 16,
        admission_timeout_ms: 8_000,
        chaos: Some(ChaosConfig {
            p_kill: 0.5,
            p_hang: 0.25,
            p_poison: 0.25,
            recovery: 10,
            seed: 0xabc,
        }),
        ..DaemonConfig::default()
    })
    .unwrap();
    let addr = daemon.addr();

    let sims: Vec<SolveSpec> = [(1u64, 8usize, 3u64), (2, 10, 5), (3, 12, 7), (4, 8, 11)]
        .iter()
        .map(|&(id, g, seed)| sim_spec(id, g, seed, 5))
        .collect();
    let safe_pooled: Vec<SolveSpec> = [(5u64, 8usize), (6, 10), (7, 12), (8, 14)]
        .iter()
        .map(|&(id, g)| SolveSpec {
            mode: Mode::Pooled,
            workers: 1,
            tol: 1e-8,
            cache: false,
            ..SolveSpec::lap2d(id, g)
        })
        .collect();
    // Faultable: a poisoned worker's blocks are never reassigned (a
    // panic is not a death — §4.5 semantics), so a poisoned request may
    // legitimately not converge; the deadline backstop bounds it and a
    // typed answer is still required.
    let faultable: Vec<SolveSpec> = (9u64..13)
        .map(|id| SolveSpec {
            mode: Mode::Pooled,
            workers: 3,
            tol: 1e-6,
            max_iters: 3_000,
            deadline_ms: Some(2_500),
            cache: false,
            ..SolveSpec::lap2d(id, 10)
        })
        .collect();

    std::thread::scope(|s| {
        let sim_handles: Vec<_> = sims
            .iter()
            .map(|spec| s.spawn(move || Client::new(addr).solve_once(spec).unwrap()))
            .collect();
        let safe_handles: Vec<_> = safe_pooled
            .iter()
            .map(|spec| s.spawn(move || Client::new(addr).solve_once(spec).unwrap()))
            .collect();
        let faultable_handles: Vec<_> = faultable
            .iter()
            .map(|spec| s.spawn(move || Client::new(addr).solve_once(spec).unwrap()))
            .collect();

        for (spec, h) in sims.iter().zip(sim_handles) {
            let (x_ref, _) = local_sim_solve(spec);
            match h.join().unwrap() {
                Response::Done { id, x, converged, chaos, .. } => {
                    assert_eq!(id, spec.id);
                    assert!(converged && !chaos);
                    assert_eq!(bits(&x), bits(&x_ref), "sim tenant {id} under chaos");
                }
                other => panic!("sim tenant {} under chaos: {other:?}", spec.id),
            }
        }
        for (spec, h) in safe_pooled.iter().zip(safe_handles) {
            match h.join().unwrap() {
                Response::Done { id, converged, final_residual, chaos, .. } => {
                    assert_eq!(id, spec.id);
                    assert!(!chaos, "worker 0 is spared: single-worker requests unfaultable");
                    assert!(converged && final_residual <= spec.tol, "tenant {id}");
                }
                other => panic!("unfaulted pooled tenant {}: {other:?}", spec.id),
            }
        }
        for (spec, h) in faultable.iter().zip(faultable_handles) {
            match h.join().unwrap() {
                // A faulted solve may converge (kill/hang + recovery),
                // exhaust its budget degraded (poison), or hit its
                // deadline backstop — all typed, none fatal.
                Response::Done { id, .. } | Response::DeadlineExceeded { id, .. } => {
                    assert_eq!(id, spec.id)
                }
                other => panic!("faultable tenant {} must get a typed answer: {other:?}", spec.id),
            }
        }
    });

    let counters = daemon.counters();
    assert_eq!(counters.failed, 0, "chaos must never surface as a request failure");
    let report = daemon.shutdown(Duration::from_secs(10));
    assert_eq!(report.workers_joined, 3, "no pool thread may be lost to chaos");
}
