//! Shared matrix suite for the experiments: builds each Table 1 matrix at
//! the requested scale, with the standard right-hand side (exact solution
//! = all ones) and the paper's block sizes.

use crate::Scale;
use abr_sparse::gen::{unit_solution_rhs, TestMatrix};
use abr_sparse::{CsrMatrix, Result, RowPartition};

/// One ready-to-solve test system.
pub struct TestSystem {
    /// Which Table 1 matrix this is.
    pub which: TestMatrix,
    /// The matrix.
    pub a: CsrMatrix,
    /// Right-hand side (`A * ones`).
    pub rhs: Vec<f64>,
    /// Zero initial guess.
    pub x0: Vec<f64>,
}

impl TestSystem {
    /// Builds one system at the given scale.
    pub fn build(which: TestMatrix, scale: Scale) -> Result<TestSystem> {
        let a = match scale {
            Scale::Full => which.build()?,
            Scale::Small => which.build_small()?,
        };
        let rhs = unit_solution_rhs(&a);
        let x0 = vec![0.0; a.n_rows()];
        Ok(TestSystem { which, a, rhs, x0 })
    }

    /// The paper's thread-block row partition (448 rows per block for the
    /// main experiments), scaled down for small runs.
    pub fn partition(&self, scale: Scale) -> Result<RowPartition> {
        RowPartition::uniform(self.a.n_rows(), block_size(scale))
    }

    /// A partition with an explicit block size (the §4.1 study uses 128).
    pub fn partition_with(&self, block_size: usize) -> Result<RowPartition> {
        RowPartition::uniform(self.a.n_rows(), block_size.min(self.a.n_rows()))
    }

    /// Number of global iterations the paper's convergence figures use
    /// for this matrix.
    pub fn figure_iterations(&self, scale: Scale) -> usize {
        let full = match self.which {
            TestMatrix::Fv3 => 25000,
            _ => 200,
        };
        match scale {
            Scale::Full => full,
            Scale::Small => (full / 25).max(40),
        }
    }
}

/// The standard thread-block size at each scale.
pub fn block_size(scale: Scale) -> usize {
    match scale {
        Scale::Full => 448,
        Scale::Small => 32,
    }
}

/// Builds every Table 1 system at the given scale.
pub fn full_suite(scale: Scale) -> Result<Vec<TestSystem>> {
    TestMatrix::ALL
        .iter()
        .map(|&which| TestSystem::build(which, scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_builds() {
        let suite = full_suite(Scale::Small).unwrap();
        assert_eq!(suite.len(), 7);
        for s in &suite {
            assert_eq!(s.rhs.len(), s.a.n_rows());
            assert_eq!(s.x0.len(), s.a.n_rows());
            s.partition(Scale::Small).unwrap().validate().unwrap();
        }
    }

    #[test]
    fn figure_iterations_scaled() {
        let s = TestSystem::build(TestMatrix::Fv3, Scale::Small).unwrap();
        assert_eq!(s.figure_iterations(Scale::Full), 25000);
        assert_eq!(s.figure_iterations(Scale::Small), 1000);
        let t = TestSystem::build(TestMatrix::Trefethen2000, Scale::Small).unwrap();
        assert_eq!(t.figure_iterations(Scale::Full), 200);
        assert_eq!(t.figure_iterations(Scale::Small), 40);
    }
}
