//! **Figures 6 & 7** — residual versus global iterations.
//!
//! Figure 6 compares CPU Gauss-Seidel, GPU Jacobi, and async-(1) on every
//! test matrix; Figure 7 compares Gauss-Seidel against async-(5). The
//! paper's headline observations, asserted by the integration tests:
//!
//! * Gauss-Seidel converges in roughly half the iterations of Jacobi;
//! * async-(1) tracks Jacobi's rate (slightly worse, schedule-dependent);
//! * async-(5) roughly doubles the Gauss-Seidel rate on the `fv*` family
//!   (local sweeps see most of the matrix), matches Jacobi on `Chem97ZtZ`
//!   (diagonal local blocks), and lands in between on `Trefethen`;
//! * the Jacobi-type methods diverge on `s1rmt3m1` (`rho(B) = 2.65`).
//!   Gauss-Seidel, being convergent for every SPD matrix, merely crawls —
//!   the paper's Figure 6e shows it making no visible progress in 200
//!   iterations.

use crate::matrices::TestSystem;
use crate::report::{Figure, Series};
use crate::ExpOptions;
use abr_core::{gauss_seidel, jacobi, AsyncBlockSolver, SolveOptions};
use abr_sparse::gen::TestMatrix;
use abr_sparse::Result;

/// Both convergence figures.
pub struct ConvergenceFigures {
    /// Figure 6: GS vs Jacobi vs async-(1), one sub-figure per matrix.
    pub fig6: Vec<Figure>,
    /// Figure 7: GS vs async-(5).
    pub fig7: Vec<Figure>,
}

/// The matrices the figures cover (all seven systems, like the paper's
/// six panels plus Trefethen_20000 omitted there for space).
const FIGURE_MATRICES: [TestMatrix; 6] = [
    TestMatrix::Chem97ZtZ,
    TestMatrix::Fv1,
    TestMatrix::Fv2,
    TestMatrix::Fv3,
    TestMatrix::S1rmt3m1,
    TestMatrix::Trefethen2000,
];

/// Runs one matrix's convergence histories and returns
/// `(gs, jacobi, async1, async5)` residual series.
fn histories(
    sys: &TestSystem,
    opts: &ExpOptions,
) -> Result<(Series, Series, Series, Series)> {
    let iters = sys.figure_iterations(opts.scale).min(match sys.which {
        // the divergent system blows up past f64 range quickly; 60
        // iterations of growth are plenty to show the trend
        TestMatrix::S1rmt3m1 => 60,
        _ => usize::MAX,
    });
    let solve_opts = SolveOptions::fixed_iterations(iters);
    let partition = sys.partition(opts.scale)?;

    let to_series = |label: &str, h: &[f64]| {
        Series::new(
            label,
            h.iter().enumerate().map(|(k, &r)| ((k + 1) as f64, r)).collect(),
        )
    };

    let gs = gauss_seidel(&sys.a, &sys.rhs, &sys.x0, &solve_opts)?;
    let jac = jacobi(&sys.a, &sys.rhs, &sys.x0, &solve_opts)?;
    let a1 = AsyncBlockSolver { local_iters: 1, ..Default::default() }.solve(
        &sys.a,
        &sys.rhs,
        &sys.x0,
        &partition,
        &solve_opts,
    )?;
    let a5 = AsyncBlockSolver::async_k(5).solve(&sys.a, &sys.rhs, &sys.x0, &partition, &solve_opts)?;
    Ok((
        to_series("Gauss-Seidel (CPU)", &gs.history),
        to_series("Jacobi (GPU)", &jac.history),
        to_series("async-(1) (GPU)", &a1.history),
        to_series("async-(5) (GPU)", &a5.history),
    ))
}

/// Regenerates Figures 6 and 7.
pub fn run(opts: &ExpOptions) -> Result<ConvergenceFigures> {
    let mut fig6 = Vec::new();
    let mut fig7 = Vec::new();
    for which in FIGURE_MATRICES {
        let sys = TestSystem::build(which, opts.scale)?;
        let (gs, jac, a1, a5) = histories(&sys, opts)?;
        let mut f6 = Figure::new(
            format!("Figure 6 ({})", which.name()),
            "iterations",
            "relative residual",
        );
        f6.push(gs.clone());
        f6.push(jac);
        f6.push(a1);
        fig6.push(f6);

        let mut f7 = Figure::new(
            format!("Figure 7 ({})", which.name()),
            "iterations",
            "relative residual",
        );
        f7.push(gs);
        f7.push(a5);
        fig7.push(f7);
    }
    Ok(ConvergenceFigures { fig6, fig7 })
}

/// Asymptotic contraction rate of a residual series, from its last
/// quarter (geometric mean of the per-iteration ratios).
pub fn tail_rate(series: &Series) -> f64 {
    let n = series.points.len();
    assert!(n >= 8, "need a reasonable history");
    let (a, b) = (3 * n / 4, n - 1);
    let (ya, yb) = (series.points[a].1.max(1e-300), series.points[b].1.max(1e-300));
    if ya <= 1e-14 {
        // converged to the floor already: rate indistinguishable from 0
        return 0.0;
    }
    (yb / ya).powf(1.0 / (b - a) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    fn small() -> ExpOptions {
        ExpOptions { scale: Scale::Small, runs: 2, seed: 0 }
    }

    #[test]
    fn figures_have_expected_series() {
        let figs = run(&small()).unwrap();
        assert_eq!(figs.fig6.len(), 6);
        assert_eq!(figs.fig7.len(), 6);
        assert_eq!(figs.fig6[0].series.len(), 3);
        assert_eq!(figs.fig7[0].series.len(), 2);
    }

    #[test]
    fn s1rmt3m1_jacobi_type_methods_diverge() {
        let figs = run(&small()).unwrap();
        let f = figs.fig6.iter().find(|f| f.title.contains("s1rmt3m1")).unwrap();
        for s in &f.series {
            let first = s.points[2].1;
            let last = s.points.last().unwrap().1;
            if s.label.starts_with("Gauss-Seidel") {
                // GS converges for every SPD matrix — just slowly here.
                assert!(last <= first, "{}: {first} -> {last}", s.label);
            } else {
                assert!(last > first, "{} must diverge: {first} -> {last}", s.label);
            }
        }
    }

    #[test]
    fn gauss_seidel_beats_jacobi_on_fv1() {
        let figs = run(&small()).unwrap();
        let f = figs.fig6.iter().find(|f| f.title.contains("(fv1)")).unwrap();
        let gs = tail_rate(&f.series[0]);
        let jac = tail_rate(&f.series[1]);
        assert!(gs < jac, "GS rate {gs} vs Jacobi {jac}");
    }

    #[test]
    fn async5_improves_clearly_over_async1_on_fv1() {
        // The full-scale "async-(5) ≈ 2x Gauss-Seidel" claim needs the
        // paper's 448-row blocks on the 9604-row matrix (checked by the
        // full-scale integration suite); at unit-test scale we assert the
        // scale-independent part: local sweeps buy a large factor on the
        // diagonally-heavy fv matrices.
        let figs = run(&small()).unwrap();
        let f7 = figs.fig7.iter().find(|f| f.title.contains("(fv1)")).unwrap();
        let f6 = figs.fig6.iter().find(|f| f.title.contains("(fv1)")).unwrap();
        let a5 = f7.series[1].points.last().unwrap().1;
        let a1 = f6.series[2].points.last().unwrap().1;
        assert!(a5 < 0.1 * a1, "async-5 {a5} vs async-1 {a1}");
    }
}
