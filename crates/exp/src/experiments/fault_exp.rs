//! **Figure 10 & Table 6** — fault tolerance of async-(5) (§4.5).
//!
//! At global iteration `t0 = 10`, 25 % of the components stop updating.
//! Variants: recovery after `t_r = 10, 20, 30` iterations, or never.
//! Figure 10 plots the residual trajectories; Table 6 reports the extra
//! computation (in %) the recovering runs need to reach the no-failure
//! run's final accuracy.

use crate::matrices::TestSystem;
use crate::report::{Figure, Series, Table};
use crate::{ExpOptions, Scale};
use abr_core::{AsyncBlockSolver, SolveOptions};
use abr_fault::FailureScenario;
use abr_sparse::gen::TestMatrix;
use abr_sparse::Result;

/// Output of the fault-tolerance experiment.
pub struct FaultResult {
    /// Figure 10, one per matrix.
    pub figures: Vec<Figure>,
    /// Table 6.
    pub table: Table,
}

/// The recovery times examined (global iterations after `t0`).
pub const RECOVERY_TIMES: [usize; 3] = [10, 20, 30];

/// Regenerates Figure 10 and Table 6.
pub fn run(opts: &ExpOptions) -> Result<FaultResult> {
    let mut figures = Vec::new();
    let mut table = Table::new(
        "Table 6: additional computation [%] to reach the no-failure accuracy",
        &["Matrix", "recover-(10)", "recover-(20)", "recover-(30)"],
    );

    let configs = [(TestMatrix::Fv1, 100usize), (TestMatrix::Trefethen2000, 50)];
    for (which, fig_iters) in configs {
        let sys = TestSystem::build(which, opts.scale)?;
        let fig_iters = match opts.scale {
            Scale::Full => fig_iters,
            Scale::Small => fig_iters.max(60),
        };
        // generous horizon so every recovering variant reaches the target
        let horizon = fig_iters * 3;
        let partition = sys.partition(opts.scale)?;
        let solver = AsyncBlockSolver::async_k(5);
        let solve_opts = SolveOptions::fixed_iterations(horizon);

        let healthy = solver.solve(&sys.a, &sys.rhs, &sys.x0, &partition, &solve_opts)?;
        // Target accuracy: what the healthy run achieves at the figure's
        // end (its floor for these systems).
        let target = healthy.history[fig_iters - 1].max(1e-15);
        let healthy_iters = first_reaching(&healthy.history, target)
            .expect("healthy run reaches its own residual");

        let mut fig = Figure::new(
            format!("Figure 10 ({})", which.name()),
            "global iterations",
            "relative residual",
        );
        fig.push(history_series("no failure", &healthy.history, fig_iters));

        let mut row = vec![which.name().to_string()];
        for tr in RECOVERY_TIMES {
            let scenario = FailureScenario::paper_default(Some(tr), opts.seed).build(sys.a.n_rows());
            let r = solver.solve_filtered(
                &sys.a,
                &sys.rhs,
                &sys.x0,
                &partition,
                &solve_opts,
                &scenario,
            )?;
            let reached = first_reaching(&r.history, target);
            let extra = reached.map_or(f64::NAN, |k| {
                100.0 * (k as f64 - healthy_iters as f64) / healthy_iters as f64
            });
            row.push(format!("{extra:.2}"));
            fig.push(history_series(&format!("recovery-({tr})"), &r.history, fig_iters));
        }

        let broken =
            FailureScenario::paper_default(None, opts.seed).build(sys.a.n_rows());
        let r = solver.solve_filtered(
            &sys.a,
            &sys.rhs,
            &sys.x0,
            &partition,
            &solve_opts,
            &broken,
        )?;
        fig.push(history_series("no recovery", &r.history, fig_iters));

        figures.push(fig);
        table.push_row(row);
    }
    Ok(FaultResult { figures, table })
}

fn history_series(label: &str, history: &[f64], keep: usize) -> Series {
    Series::new(
        label,
        history
            .iter()
            .take(keep)
            .enumerate()
            .map(|(k, &r)| ((k + 1) as f64, r))
            .collect(),
    )
}

/// 1-based iteration at which the history first reaches `target`.
fn first_reaching(history: &[f64], target: f64) -> Option<usize> {
    history.iter().position(|&r| r <= target).map(|k| k + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ExpOptions {
        ExpOptions { scale: Scale::Small, runs: 2, seed: 7 }
    }

    #[test]
    fn figures_and_table_shape() {
        let out = run(&small()).unwrap();
        assert_eq!(out.figures.len(), 2);
        assert_eq!(out.table.rows.len(), 2);
        for f in &out.figures {
            assert_eq!(f.series.len(), 5); // no failure + 3 recoveries + none
        }
    }

    #[test]
    fn recovery_cost_monotone_in_recovery_time() {
        let out = run(&small()).unwrap();
        for row in &out.table.rows {
            let r10: f64 = row[1].parse().unwrap();
            let r20: f64 = row[2].parse().unwrap();
            let r30: f64 = row[3].parse().unwrap();
            assert!(r10.is_finite() && r20.is_finite() && r30.is_finite(), "{row:?}");
            assert!(r10 >= 0.0, "{row:?}");
            assert!(
                r10 <= r20 + 1e-9 && r20 <= r30 + 1e-9,
                "longer outages must cost more: {row:?}"
            );
        }
    }

    #[test]
    fn no_recovery_stagnates_above_recovered_runs() {
        let out = run(&small()).unwrap();
        for f in &out.figures {
            let last = |label: &str| {
                f.series
                    .iter()
                    .find(|s| s.label == label)
                    .unwrap()
                    .points
                    .last()
                    .unwrap()
                    .1
            };
            assert!(
                last("no recovery") > 1e3 * last("no failure"),
                "{}: no-recovery must stagnate",
                f.title
            );
            assert!(last("recovery-(10)") < last("no recovery"));
        }
    }
}
