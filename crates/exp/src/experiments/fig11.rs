//! **Figure 11** — time-to-convergence of the three multi-GPU schemes
//! (AMC, DC, DK) on `Trefethen_20000` with 1–4 GPUs (§4.6), with the
//! initialisation overhead subtracted like the paper does.
//!
//! Shape targets: AMC nearly halves from 1 to 2 GPUs, is *slower* with 3
//! (QPI crossing), and recovers with 4 without reaching 2x; DC and DK see
//! only small changes since all traffic serialises on the master GPU's
//! link.

use crate::matrices::TestSystem;
use crate::report::Table;
use crate::{ExpOptions, Scale};
use abr_core::SolveOptions;
use abr_multigpu::{CommStrategy, MultiGpuSolver};
use abr_sparse::gen::TestMatrix;
use abr_sparse::Result;

/// Regenerates Figure 11 as a table of bars: strategy x device count.
///
/// Like the paper (§4.6: "we can assume that for all implementations, the
/// solution approximation accuracy almost linearly depends on the
/// run-time"), every configuration is priced at the same global-iteration
/// count — the one the single-GPU run needs for the target accuracy — so
/// the bars isolate the communication-scheme cost rather than
/// convergence-check quantisation noise.
pub fn run(opts: &ExpOptions) -> Result<Table> {
    let sys = TestSystem::build(TestMatrix::Trefethen20000, opts.scale)?;
    let tol = 1e-12;
    let mut table = Table::new(
        "Figure 11: time to convergence [s] (setup subtracted), Trefethen_20000",
        &["strategy", "1 GPU", "2 GPUs", "3 GPUs", "4 GPUs"],
    );
    // Reference iteration count from the single-GPU run.
    let mut reference = MultiGpuSolver::supermicro(1, CommStrategy::Amc);
    if opts.scale == Scale::Small {
        reference.thread_block_size = 32;
    }
    let ref_run = reference.solve(
        &sys.a,
        &sys.rhs,
        &sys.x0,
        &SolveOptions { max_iters: 100000, tol, record_history: false, check_every: 5 },
    )?;
    assert!(ref_run.solve.converged, "reference run failed to converge");
    let iters = ref_run.solve.iterations;

    for strategy in CommStrategy::ALL {
        let mut row = vec![strategy.name().to_string()];
        for g in 1..=4 {
            let mut solver = MultiGpuSolver::supermicro(g, strategy);
            if opts.scale == Scale::Small {
                solver.thread_block_size = 32;
            }
            let r = solver.solve(
                &sys.a,
                &sys.rhs,
                &sys.x0,
                &SolveOptions::fixed_iterations(iters),
            )?;
            assert!(
                r.solve.final_residual <= tol * 1e3,
                "{strategy:?} x{g}: accuracy degraded to {}",
                r.solve.final_residual
            );
            row.push(format!("{:.4}", r.seconds_per_iteration * iters as f64));
        }
        table.push_row(row);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_configurations_converge_and_report_times() {
        // The paper's Figure 11 shape (AMC halving at 2 GPUs, QPI penalty
        // at 3) only emerges at the full n = 20000 problem size, where
        // the per-device compute dominates the fixed exchange overheads —
        // the full-scale integration suite asserts it. Here: structure
        // and positivity.
        let opts = ExpOptions { scale: Scale::Small, runs: 2, seed: 0 };
        let t = run(&opts).unwrap();
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            let v: Vec<f64> = row[1..].iter().map(|s| s.parse().unwrap()).collect();
            assert_eq!(v.len(), 4);
            assert!(v.iter().all(|&x| x > 0.0), "{}: {v:?}", row[0]);
        }
    }
}
