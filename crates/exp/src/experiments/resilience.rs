//! **Resilience economics** (extension of §4.5): the checkpoint/restart
//! cost a *synchronous* solver pays under shrinking mean-time-between-
//! failures, against the checkpoint-free asynchronous iteration under the
//! same failure process. This quantifies the paper's exascale argument:
//! below a critical MTBF the synchronous solver live-locks ("constantly
//! being restarted"), while async-(5) converges at every failure rate
//! with bounded extra work.

use crate::matrices::TestSystem;
use crate::report::Table;
use crate::{ExpOptions, Scale};
use abr_fault::{checkpoint_free_async, checkpointed_jacobi, CheckpointPolicy};
use abr_sparse::gen::TestMatrix;
use abr_sparse::Result;

/// Regenerates the resilience-economics table on fv1.
pub fn run(opts: &ExpOptions) -> Result<Table> {
    let sys = TestSystem::build(TestMatrix::Fv1, opts.scale)?;
    let partition = sys.partition(opts.scale)?;
    let tol = 1e-9;
    let policy = CheckpointPolicy::default();
    // budget scaled to the healthy iteration count
    let budget = match opts.scale {
        Scale::Full => 3_000.0,
        Scale::Small => 2_000.0,
    };

    let mut table = Table::new(
        "Resilience: work to 1e-9 under failures every MTBF iterations (fv1)",
        &[
            "MTBF",
            "sync+checkpoint work",
            "sync converged",
            "sync failures",
            "async work",
            "async converged",
        ],
    );
    for mtbf in [usize::MAX, 64, 32, 16, 8] {
        let sync = checkpointed_jacobi(
            &sys.a, &sys.rhs, &sys.x0, tol, mtbf, policy, budget,
        )?;
        let asynchronous = checkpoint_free_async(
            &sys.a,
            &sys.rhs,
            &sys.x0,
            &partition,
            tol,
            mtbf.min(1_000_000),
            (mtbf / 2).clamp(1, 20),
            opts.seed,
            budget,
        )?;
        let mtbf_label =
            if mtbf == usize::MAX { "none".to_string() } else { mtbf.to_string() };
        table.push_row(vec![
            mtbf_label,
            format!("{:.1}", sync.work),
            sync.converged.to_string(),
            sync.failures.to_string(),
            format!("{:.1}", asynchronous.work),
            asynchronous.converged.to_string(),
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn async_converges_at_every_failure_rate() {
        let opts = ExpOptions { scale: Scale::Small, runs: 2, seed: 3 };
        let t = run(&opts).unwrap();
        assert_eq!(t.rows.len(), 5);
        for row in &t.rows {
            assert_eq!(row[5], "true", "async must converge at MTBF {}: {row:?}", row[0]);
        }
        // the failure-free sync run converges too
        assert_eq!(t.rows[0][2], "true");
    }

    #[test]
    fn sync_work_grows_as_mtbf_shrinks() {
        let opts = ExpOptions { scale: Scale::Small, runs: 2, seed: 3 };
        let t = run(&opts).unwrap();
        let work: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(
            work.last().unwrap() > work.first().unwrap(),
            "harsher failures must cost the synchronous solver more: {work:?}"
        );
    }
}
