//! Ablations over the design choices DESIGN.md calls out: block size
//! (§4.1's discussion), schedule policy (recurring vs fresh-random vs
//! in-order), RCM reordering (§4.3's suggestion for matrices with distant
//! couplings), tau-scaling (§4.2's remedy for `rho(B) > 1`), and the
//! DES-vs-threads executor comparison.

use crate::matrices::TestSystem;
use crate::report::Table;
use crate::{ExpOptions, Scale};
use abr_core::async_block::measure_staleness;
use abr_core::block_jacobi::block_jacobi;
use abr_core::scaled::damped_async_solver;
use abr_core::{AsyncBlockSolver, ExecutorKind, ScheduleKind, SolveOptions};
use abr_gpu::{SimOptions, ThreadedOptions};
use abr_sparse::gen::TestMatrix;
use abr_sparse::reorder::{block_diagonal_mass, reverse_cuthill_mckee};
use abr_sparse::Result;

/// All ablation tables.
pub fn run(opts: &ExpOptions) -> Result<Vec<Table>> {
    Ok(vec![
        block_size_sweep(opts)?,
        schedule_comparison(opts)?,
        synchrony_spectrum(opts)?,
        shift_distribution(opts)?,
        damping_sweep(opts)?,
        rcm_reordering(opts)?,
        tau_scaling(opts)?,
        executor_comparison(opts)?,
    ])
}

fn iters_for(opts: &ExpOptions, full: usize) -> usize {
    match opts.scale {
        Scale::Full => full,
        Scale::Small => full / 2,
    }
}

/// async-(5) accuracy after a fixed iteration budget, as the block size
/// varies (paper §4.1: larger blocks capture more entries locally and
/// reduce scheduling freedom).
fn block_size_sweep(opts: &ExpOptions) -> Result<Table> {
    let mut table = Table::new(
        "Ablation: block size vs async-(5) residual after fixed iterations",
        &["Matrix", "block size", "local mass", "relative residual"],
    );
    for which in [TestMatrix::Fv1, TestMatrix::Trefethen2000] {
        let sys = TestSystem::build(which, opts.scale)?;
        // short budget: at full scale the floor is reached within ~60
        // iterations on fv1, which would hide the block-size differences
        let iters = iters_for(opts, 40);
        for bs in [32usize, 64, 128, 256, 448, 896] {
            if bs >= sys.a.n_rows() {
                continue;
            }
            let p = sys.partition_with(bs)?;
            let mass = block_diagonal_mass(&sys.a, &p);
            let r = AsyncBlockSolver::async_k(5).solve(
                &sys.a,
                &sys.rhs,
                &sys.x0,
                &p,
                &SolveOptions::fixed_iterations(iters),
            )?;
            table.push_row(vec![
                which.name().to_string(),
                bs.to_string(),
                format!("{mass:.4}"),
                format!("{:.4e}", r.final_residual),
            ]);
        }
    }
    Ok(table)
}

/// Residual after a fixed budget under the three dispatch policies.
fn schedule_comparison(opts: &ExpOptions) -> Result<Table> {
    let sys = TestSystem::build(TestMatrix::Fv1, opts.scale)?;
    let p = sys.partition(opts.scale)?;
    let iters = iters_for(opts, 40);
    let mut table = Table::new(
        "Ablation: dispatch schedule vs async-(5) residual (fv1)",
        &["schedule", "relative residual"],
    );
    for (name, schedule) in [
        ("round-robin", ScheduleKind::RoundRobin),
        ("random-per-round", ScheduleKind::Random { seed: opts.seed }),
        ("recurring-pattern", ScheduleKind::Recurring { seed: opts.seed }),
    ] {
        let solver = AsyncBlockSolver { schedule, ..AsyncBlockSolver::async_k(5) };
        let r = solver.solve(
            &sys.a,
            &sys.rhs,
            &sys.x0,
            &p,
            &SolveOptions::fixed_iterations(iters),
        )?;
        table.push_row(vec![name.to_string(), format!("{:.4e}", r.final_residual)]);
    }
    Ok(table)
}

/// The value of (a)synchrony isolated: the same block kernel (k local
/// sweeps over the same partition) driven three ways — barrier-
/// synchronised block-Jacobi, the asynchronous iteration at hardware
/// concurrency, and the fully sequential limit (block Gauss-Seidel).
/// Fresher reads help: sequential < async < synchronised residuals.
fn synchrony_spectrum(opts: &ExpOptions) -> Result<Table> {
    let sys = TestSystem::build(TestMatrix::Fv1, opts.scale)?;
    let p = sys.partition(opts.scale)?;
    let iters = iters_for(opts, 40);
    let solve_opts = SolveOptions::fixed_iterations(iters);
    let mut table = Table::new(
        "Ablation: synchrony spectrum (fv1, k = 5 local sweeps)",
        &["variant", "relative residual after budget"],
    );
    let sync = block_jacobi(&sys.a, &sys.rhs, &sys.x0, &p, 5, &solve_opts)?;
    table.push_row(vec![
        "synchronous block-Jacobi".into(),
        format!("{:.4e}", sync.final_residual),
    ]);
    let async_r = AsyncBlockSolver::async_k(5).solve(&sys.a, &sys.rhs, &sys.x0, &p, &solve_opts)?;
    table.push_row(vec![
        "async-(5), tuned concurrency".into(),
        format!("{:.4e}", async_r.final_residual),
    ]);
    let seq = AsyncBlockSolver {
        schedule: ScheduleKind::Random { seed: opts.seed },
        executor: ExecutorKind::Sim(SimOptions { n_workers: 1, jitter: 0.0, seed: 0 }),
        ..AsyncBlockSolver::async_k(5)
    }
    .solve(&sys.a, &sys.rhs, &sys.x0, &p, &solve_opts)?;
    table.push_row(vec![
        "sequential block-Gauss-Seidel".into(),
        format!("{:.4e}", seq.final_residual),
    ]);
    Ok(table)
}

/// The realised shift function of Eq. (3), measured: how stale/fresh
/// the neighbour values each block update reads actually are, as the
/// executor concurrency varies. At concurrency 1 every read is fresh
/// (pure block Gauss-Seidel); at high concurrency reads spread over a
/// few rounds but stay bounded — the admissibility condition the
/// convergence theory requires, verified empirically.
fn shift_distribution(opts: &ExpOptions) -> Result<Table> {
    let sys = TestSystem::build(TestMatrix::Fv1, opts.scale)?;
    let p = sys.partition(opts.scale)?;
    let rounds = iters_for(opts, 60);
    let mut table = Table::new(
        "Ablation: realised shift distribution (fv1, async-(5))",
        &["concurrency", "mean shift", "max shift", "fresh reads [%]"],
    );
    for workers in [1usize, 4, 14, 64] {
        let trace = measure_staleness(
            &sys.a,
            &sys.rhs,
            &p,
            5,
            SimOptions { n_workers: workers, jitter: 0.3, seed: opts.seed },
            ScheduleKind::Random { seed: opts.seed },
            rounds,
        )?;
        let h = &trace.staleness;
        table.push_row(vec![
            workers.to_string(),
            format!("{:.3}", h.mean_shift()),
            h.max_shift().map_or("-".into(), |m| m.to_string()),
            format!("{:.1}", 100.0 * h.fraction_fresh()),
        ]);
    }
    Ok(table)
}

/// Asynchronous over-/under-relaxation: the damping factor applied in
/// every local update (1.0 = plain async-(5); above 1 is an asynchronous
/// SOR). The paper leaves "scaling parameters" as an open tuning question
/// (§5); this sweep measures it on fv1.
fn damping_sweep(opts: &ExpOptions) -> Result<Table> {
    let sys = TestSystem::build(TestMatrix::Fv1, opts.scale)?;
    let p = sys.partition(opts.scale)?;
    let iters = iters_for(opts, 40);
    let mut table = Table::new(
        "Ablation: local damping/over-relaxation in async-(5) (fv1)",
        &["damping", "relative residual after budget"],
    );
    for damping in [0.8f64, 1.0, 1.2, 1.4, 1.6] {
        let solver = AsyncBlockSolver { damping, ..AsyncBlockSolver::async_k(5) };
        let r = solver.solve(
            &sys.a,
            &sys.rhs,
            &sys.x0,
            &p,
            &SolveOptions::fixed_iterations(iters),
        )?;
        table.push_row(vec![format!("{damping:.1}"), format!("{:.4e}", r.final_residual)]);
    }
    Ok(table)
}

/// RCM reordering: how much matrix mass the diagonal blocks capture
/// before/after, and the effect on async-(5) convergence (§4.3 suggested
/// this for Chem97ZtZ-type matrices).
fn rcm_reordering(opts: &ExpOptions) -> Result<Table> {
    let mut table = Table::new(
        "Ablation: RCM reordering (local mass and async-(5) residual)",
        &["Matrix", "variant", "local mass", "relative residual"],
    );
    for which in [TestMatrix::Chem97ZtZ, TestMatrix::Trefethen2000] {
        let sys = TestSystem::build(which, opts.scale)?;
        let iters = iters_for(opts, 60);
        let perm = reverse_cuthill_mckee(&sys.a);
        let a_rcm = sys.a.permute_sym(&perm)?;
        let rhs_rcm = abr_sparse::gen::unit_solution_rhs(&a_rcm);
        for (variant, a, rhs) in
            [("original", &sys.a, &sys.rhs), ("RCM", &a_rcm, &rhs_rcm)]
        {
            let p = sys.partition(opts.scale)?;
            let mass = block_diagonal_mass(a, &p);
            let r = AsyncBlockSolver::async_k(5).solve(
                a,
                rhs,
                &vec![0.0; a.n_rows()],
                &p,
                &SolveOptions::fixed_iterations(iters),
            )?;
            table.push_row(vec![
                which.name().to_string(),
                variant.to_string(),
                format!("{mass:.4}"),
                format!("{:.4e}", r.final_residual),
            ]);
        }
    }
    Ok(table)
}

/// tau-scaling on the Jacobi-divergent structural matrix.
fn tau_scaling(opts: &ExpOptions) -> Result<Table> {
    let sys = TestSystem::build(TestMatrix::S1rmt3m1, opts.scale)?;
    let p = sys.partition(opts.scale)?;
    let iters = iters_for(opts, 60);
    let mut table = Table::new(
        "Ablation: tau-scaling on s1rmt3m1 (async-(5) residual)",
        &["variant", "relative residual after budget"],
    );
    let plain = AsyncBlockSolver::async_k(5).solve(
        &sys.a,
        &sys.rhs,
        &sys.x0,
        &p,
        &SolveOptions::fixed_iterations(iters),
    )?;
    table.push_row(vec!["plain (diverges)".into(), format!("{:.4e}", plain.final_residual)]);
    let damped = damped_async_solver(&sys.a, 5)?;
    let r = damped.solve(
        &sys.a,
        &sys.rhs,
        &sys.x0,
        &p,
        &SolveOptions::fixed_iterations(iters * 10),
    )?;
    table.push_row(vec!["tau-damped".into(), format!("{:.4e}", r.final_residual)]);
    Ok(table)
}

/// DES vs real threads at equal global-iteration budget.
fn executor_comparison(opts: &ExpOptions) -> Result<Table> {
    let sys = TestSystem::build(TestMatrix::Fv1, opts.scale)?;
    let p = sys.partition(opts.scale)?;
    let iters = iters_for(opts, 40);
    let mut table = Table::new(
        "Ablation: executor comparison (fv1, async-(5))",
        &["executor", "relative residual"],
    );
    let sim = AsyncBlockSolver::async_k(5).solve(
        &sys.a,
        &sys.rhs,
        &sys.x0,
        &p,
        &SolveOptions::fixed_iterations(iters),
    )?;
    table.push_row(vec!["discrete-event sim".into(), format!("{:.4e}", sim.final_residual)]);
    let thr = AsyncBlockSolver {
        executor: ExecutorKind::Threaded(ThreadedOptions::default()),
        ..AsyncBlockSolver::async_k(5)
    }
    .solve(&sys.a, &sys.rhs, &sys.x0, &p, &SolveOptions::fixed_iterations(iters))?;
    table.push_row(vec!["real threads".into(), format!("{:.4e}", thr.final_residual)]);
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ExpOptions {
        ExpOptions { scale: Scale::Small, runs: 2, seed: 0 }
    }

    #[test]
    fn all_tables_produced() {
        let tables = run(&small()).unwrap();
        assert_eq!(tables.len(), 8);
        for t in &tables {
            assert!(!t.rows.is_empty(), "{}", t.title);
        }
    }

    #[test]
    fn shift_distribution_fresher_at_low_concurrency() {
        let t = shift_distribution(&small()).unwrap();
        let fresh: Vec<f64> = t.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        assert!(
            fresh[0] >= fresh[fresh.len() - 1],
            "sequential execution must read at least as fresh as concurrent: {fresh:?}"
        );
        for row in &t.rows {
            let max: i64 = row[2].parse().unwrap();
            assert!(max <= 10, "shifts must stay bounded: {row:?}");
        }
    }

    #[test]
    fn damping_one_is_sane_and_overrelaxation_changes_things() {
        let t = damping_sweep(&small()).unwrap();
        let vals: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(vals.iter().all(|v| v.is_finite()));
        // plain damping converges; the sweep must show a spread
        let (min, max) = vals.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
        assert!(max > min, "the damping factor must matter: {vals:?}");
    }

    #[test]
    fn synchrony_spectrum_is_ordered() {
        let t = synchrony_spectrum(&small()).unwrap();
        let sync: f64 = t.rows[0][1].parse().unwrap();
        let asyn: f64 = t.rows[1][1].parse().unwrap();
        let seq: f64 = t.rows[2][1].parse().unwrap();
        assert!(
            asyn <= sync * 1.5,
            "asynchrony must not lose badly to the barrier: async {asyn} vs sync {sync}"
        );
        assert!(seq <= asyn * 1.5, "sequential GS flavour is the freshest: {seq} vs {asyn}");
    }

    #[test]
    fn tau_scaling_converges_where_plain_diverges() {
        let t = tau_scaling(&small()).unwrap();
        let plain: f64 = t.rows[0][1].parse().unwrap();
        let damped: f64 = t.rows[1][1].parse().unwrap();
        assert!(plain > 1.0, "plain async must diverge: {plain}");
        assert!(damped < 1e-2, "damped async must converge: {damped}");
    }

    #[test]
    fn rcm_rows_present_and_mass_comparable() {
        // Whether RCM helps depends on the structure (the paper only
        // *suggests* it for Chem97ZtZ-like matrices); the ablation's job
        // is to measure it. Assert both variants are reported with sane
        // local-mass values.
        let t = rcm_reordering(&small()).unwrap();
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            let mass: f64 = row[2].parse().unwrap();
            assert!((0.0..=1.0).contains(&mass), "{row:?}");
            let rr: f64 = row[3].parse().unwrap();
            assert!(rr.is_finite() && rr >= 0.0, "{row:?}");
        }
    }
}
