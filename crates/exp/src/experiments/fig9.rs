//! **Figure 9** — relative residual versus solver runtime, including the
//! CG baseline (§4.4).
//!
//! The numerics (residual histories) are computed by the real solvers;
//! iteration indices are mapped to seconds with the calibrated timing
//! model (CPU sweep cost for Gauss-Seidel; warmup + marginal
//! per-iteration cost for the GPU methods — like the paper's figures,
//! the one-time context/allocation setup is subtracted). Shape targets
//! from the paper:
//!
//! * `fv1`: async-(5) ≈ 2x Jacobi, far ahead of CPU GS; CG ~1/3 faster
//!   than async-(5);
//! * `fv3`: CG wins big (high condition number);
//! * `Chem97ZtZ`: async-(5) ≈ Jacobi ≈ CG (diagonal local blocks), CG
//!   handicapped by its synchronising dot products;
//! * `Trefethen_2000`: async-(5) beats CG and Jacobi at every accuracy.

use crate::matrices::TestSystem;
use crate::report::{Figure, Series};
use crate::ExpOptions;
use abr_core::async_block::AsyncJacobiKernel;
use abr_core::pcg::{pcg, JacobiPreconditioner};
use abr_core::{gauss_seidel, jacobi, AsyncBlockSolver, SolveOptions};
use abr_gpu::TimingModel;
use abr_sparse::gen::TestMatrix;
use abr_sparse::Result;

/// The four matrices the paper plots (fv2 ~ fv1, s1rmt3m1 diverges).
pub const FIG9_MATRICES: [TestMatrix; 4] = [
    TestMatrix::Chem97ZtZ,
    TestMatrix::Fv1,
    TestMatrix::Fv3,
    TestMatrix::Trefethen2000,
];

/// Converts a residual history to a `(seconds, residual)` series.
fn timed_series(label: &str, history: &[f64], setup: f64, t_iter: f64) -> Series {
    Series::new(
        label,
        history
            .iter()
            .enumerate()
            .map(|(k, &r)| (setup + t_iter * (k + 1) as f64, r))
            .collect(),
    )
}

/// Regenerates Figure 9 (one sub-figure per matrix).
pub fn run(opts: &ExpOptions) -> Result<Vec<Figure>> {
    let model = TimingModel::calibrated();
    let mut figures = Vec::new();
    for which in FIG9_MATRICES {
        let sys = TestSystem::build(which, opts.scale)?;
        let iters = sys.figure_iterations(opts.scale);
        let solve_opts = SolveOptions::fixed_iterations(iters);
        let partition = sys.partition(opts.scale)?;
        let (n, nnz) = (sys.a.n_rows(), sys.a.nnz());
        let local =
            AsyncJacobiKernel::new(&sys.a, &sys.rhs, &partition, 1, 1.0)?.nnz_local();

        let gs = gauss_seidel(&sys.a, &sys.rhs, &sys.x0, &solve_opts)?;
        let jac = jacobi(&sys.a, &sys.rhs, &sys.x0, &solve_opts)?;
        let a5 =
            AsyncBlockSolver::async_k(5).solve(&sys.a, &sys.rhs, &sys.x0, &partition, &solve_opts)?;
        // The paper's "highly tuned" CG: its Figure 9 iteration counts
        // track cond(D^{-1}A), i.e. it is diagonally preconditioned.
        let prec = JacobiPreconditioner::new(&sys.a)?;
        let cg = pcg(
            &sys.a,
            &sys.rhs,
            &sys.x0,
            &prec,
            &SolveOptions { max_iters: iters, tol: 1e-16, record_history: true, check_every: 1 },
        )?;

        let mut fig = Figure::new(
            format!("Figure 9 ({})", which.name()),
            "time [s]",
            "relative residual",
        );
        fig.push(timed_series(
            "Gauss-Seidel",
            &gs.history,
            0.0,
            model.cpu_gauss_seidel_iteration(n, nnz),
        ));
        fig.push(timed_series(
            "Jacobi",
            &jac.history,
            model.kernel_warmup,
            model.gpu_jacobi_iteration(n, nnz),
        ));
        fig.push(timed_series(
            "async-(5)",
            &a5.history,
            model.kernel_warmup,
            model.gpu_async_iteration(n, nnz, local, 5),
        ));
        fig.push(timed_series(
            "CG",
            &cg.history,
            model.kernel_warmup,
            model.gpu_cg_iteration(n, nnz),
        ));
        figures.push(fig);
    }
    Ok(figures)
}

/// Time for a series to first reach `target` residual (`None` if never).
pub fn time_to_accuracy(series: &Series, target: f64) -> Option<f64> {
    series.points.iter().find(|&&(_, r)| r <= target).map(|&(t, _)| t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    fn small() -> ExpOptions {
        ExpOptions { scale: Scale::Small, runs: 2, seed: 0 }
    }

    #[test]
    fn four_figures_with_four_series() {
        let figs = run(&small()).unwrap();
        assert_eq!(figs.len(), 4);
        for f in &figs {
            assert_eq!(f.series.len(), 4);
            for s in &f.series {
                assert!(!s.points.is_empty(), "{} empty", s.label);
            }
        }
    }

    #[test]
    fn times_are_increasing_and_residuals_fall_on_fv1() {
        // The "async-(5) beats CPU GS in wall time" claim needs the full
        // problem sizes (at small n the fixed GPU setup dominates, just
        // as it would in reality) — asserted by the full-scale
        // integration suite. Structural checks here.
        let figs = run(&small()).unwrap();
        let f = figs.iter().find(|f| f.title.contains("(fv1)")).unwrap();
        for s in &f.series {
            for w in s.points.windows(2) {
                assert!(w[1].0 > w[0].0, "{}: time must increase", s.label);
            }
            let first = s.points.first().unwrap().1;
            let last = s.points.last().unwrap().1;
            assert!(last < first, "{}: residual must fall on fv1", s.label);
        }
    }

    #[test]
    fn time_to_accuracy_finds_first_crossing() {
        let s = Series::new("x", vec![(1.0, 0.5), (2.0, 0.1), (3.0, 0.01)]);
        assert_eq!(time_to_accuracy(&s, 0.1), Some(2.0));
        assert_eq!(time_to_accuracy(&s, 1e-9), None);
    }
}
