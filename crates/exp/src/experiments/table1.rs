//! **Table 1** — dimension and characteristics of the test matrices and
//! their iteration matrices: `n`, `nnz`, `cond(A)`, `cond(D^{-1}A)`,
//! `rho(M)`, plus our extra column `rho(|M|)` (the §3.1 asynchronous
//! convergence bound, which the paper discusses but does not tabulate).

use crate::matrices::full_suite;
use crate::report::Table;
use crate::ExpOptions;
use abr_sparse::stats::matrix_stats;
use abr_sparse::Result;

/// Regenerates Table 1.
pub fn run(opts: &ExpOptions) -> Result<Table> {
    let mut table = Table::new(
        "Table 1: test matrices and iteration-matrix characteristics",
        &[
            "Matrix",
            "Description",
            "n",
            "nnz",
            "cond(A)",
            "cond(D^-1 A)",
            "rho(M)",
            "rho(|M|)",
            "paper rho(M)",
        ],
    );
    for sys in full_suite(opts.scale)? {
        let s = matrix_stats(&sys.a)?;
        table.push_row(vec![
            sys.which.name().to_string(),
            sys.which.description().to_string(),
            s.n.to_string(),
            s.nnz.to_string(),
            format!("{:.1e}", s.cond_a),
            format!("{:.4e}", s.cond_jacobi),
            format!("{:.4}", s.rho),
            format!("{:.4}", s.rho_abs),
            format!("{:.4}", sys.which.paper_rho()),
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExpOptions, Scale};

    #[test]
    fn small_scale_table_has_all_rows() {
        let opts = ExpOptions { scale: Scale::Small, ..Default::default() };
        let t = run(&opts).unwrap();
        assert_eq!(t.rows.len(), 7);
        assert!(t.to_markdown().contains("Trefethen_2000"));
        // s1rmt3m1's rho column must exceed 1 even at small scale
        let s1 = t.rows.iter().find(|r| r[0] == "s1rmt3m1").unwrap();
        let rho: f64 = s1[6].parse().unwrap();
        assert!(rho > 1.0, "{rho}");
    }
}
