//! **Recovery-(t_r) on the live fault runtime** (§4.5 / Figure 10,
//! realised): where [`fault_exp`](crate::experiments::fault_exp) models a
//! core failure analytically (an `UpdateFilter` freezing components of a
//! chunked run), this experiment *kills real persistent workers* mid-solve
//! via [`FailureScenario::lower`] and lets the executor's heartbeat
//! detector and work-stealing adoption path do the recovery.
//!
//! Regimes, per the paper: a fault-free baseline; no-recovery (orphaned
//! blocks stay frozen — the residual plateaus and the run ends
//! [`Stalled`](abr_gpu::RunOutcome::Stalled) once the survivors drain
//! their budget); and recovery-(t_r) for growing reassignment delays,
//! which re-converge with a delay monotone in `t_r`.

use crate::metrics::{MetricsSink, NullSink, RunMetrics};
use crate::report::{Figure, Series, Table};
use crate::{ExpOptions, Scale};
use abr_core::{AsyncBlockSolver, SolveOptions};
use abr_fault::FailureScenario;
use abr_gpu::{FaultPlan, PersistentOptions};
use abr_sparse::gen::laplacian_2d_5pt;
use abr_sparse::{Result, RowPartition};
use std::time::Duration;

/// Reassignment delays swept, in floor rounds.
pub const RECOVERY_ROUNDS: [usize; 3] = [5, 15, 30];

/// The regenerated artifacts: a summary table plus the Figure-10-style
/// re-convergence curves (one series per regime, from the concurrent
/// monitor's residual checks).
#[derive(Debug, Clone)]
pub struct RecoveryRun {
    /// Per-regime outcome summary.
    pub table: Table,
    /// Residual trajectories (`global iteration` vs `relative residual`).
    pub figure: Figure,
}

/// Runs the sweep, discarding per-run metrics.
pub fn run(opts: &ExpOptions) -> Result<RecoveryRun> {
    run_with_sink(opts, &mut NullSink)
}

/// Runs the sweep, recording one [`RunMetrics`] line per regime.
pub fn run_with_sink(opts: &ExpOptions, sink: &mut dyn MetricsSink) -> Result<RecoveryRun> {
    // Small keeps the whole sweep (5 solves, each with a 4-worker
    // persistent executor) around a second of wall time. The budget is
    // sized with a large margin over the fault-free iteration count:
    // rounds take microseconds, only the non-converging regimes drain
    // it, and monitor scheduling jitter on an oversubscribed box can
    // push detection (hence release, hence re-convergence) hundreds of
    // floor rounds past t0 + t_r.
    let (side, block_rows, budget) = match opts.scale {
        Scale::Full => (16, 16, 12_000),
        Scale::Small => (10, 10, 3_000),
    };
    let a = laplacian_2d_5pt(side);
    let n = a.n_rows();
    let rhs = vec![1.0; n];
    let x0 = vec![0.0; n];
    let partition = RowPartition::uniform(n, block_rows)?;
    let solver = AsyncBlockSolver::async_k(5);
    let solve_opts =
        SolveOptions { max_iters: budget, tol: 1e-8, record_history: false, check_every: 10 };
    let tuning = PersistentOptions {
        n_workers: 4,
        detect_after_rounds: 4,
        // Long enough that scheduler starvation on an oversubscribed
        // box never reads as a wedge; the no-recovery regime pays
        // roughly two of these windows to reach its Stalled verdict.
        stall_timeout: Duration::from_millis(750),
        ..PersistentOptions::default()
    };

    // `None` = fault-free; `Some(recovery)` kills 25% of the workers at
    // t0 = 10 (the paper's scenario), with the given recovery-(t_r).
    let mut regimes: Vec<(String, Option<Option<usize>>)> = vec![
        ("fault-free".into(), None),
        ("no-recovery".into(), Some(None)),
    ];
    for t_r in RECOVERY_ROUNDS {
        regimes.push((format!("recovery-({t_r})"), Some(Some(t_r))));
    }

    let mut table = Table::new(
        format!("Recovery-(t_r) on the live runtime (Laplace 2D n={n}, async-(5), 4 workers)"),
        &[
            "regime",
            "outcome",
            "iterations",
            "converged",
            "final residual",
            "deaths",
            "reassigned",
            "released at",
            "max outage",
        ],
    );
    let mut figure = Figure::new(
        format!("Figure 10 (realised): core failure at t0=10, Laplace 2D n={n}"),
        "global iteration",
        "relative residual",
    );

    for (label, scenario) in &regimes {
        let plan = match scenario {
            None => FaultPlan::new(),
            Some(recovery) => {
                FailureScenario { t0: 10, fraction: 0.25, recovery: *recovery, seed: opts.seed }
                    .lower(tuning.n_workers)
            }
        };
        let fs = solver.solve_faulted(&a, &rhs, &x0, &partition, &solve_opts, &plan, Some(&tuning))?;
        let fault = fs.report.fault.clone();
        figure.push(Series::new(
            label.clone(),
            fs.checks.iter().map(|&(it, rr)| (it as f64, rr)).collect(),
        ));
        sink.record(
            &RunMetrics {
                experiment: "recovery".into(),
                matrix: format!("laplace2d-{n}"),
                method: label.clone(),
                iterations: fs.result.iterations,
                converged: fs.result.converged,
                final_residual: fs.result.final_residual,
                residuals: fs.checks.clone(),
                fault: fs.result.fault.clone().filter(|f| !f.is_empty()),
                ..RunMetrics::default()
            }
            .with_trace(&fs.trace),
        );
        table.push_row(vec![
            label.clone(),
            format!("{:?}", fs.report.outcome),
            fs.result.iterations.to_string(),
            fs.result.converged.to_string(),
            format!("{:.2e}", fs.result.final_residual),
            fault.deaths.len().to_string(),
            fault.reassignments.len().to_string(),
            fault
                .reassignments
                .first()
                .map_or_else(|| "-".into(), |r| r.at_floor.to_string()),
            fault.max_outage_rounds.to_string(),
        ]);
    }
    sink.flush();
    Ok(RecoveryRun { table, figure })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MemorySink;

    fn small() -> ExpOptions {
        ExpOptions { scale: Scale::Small, runs: 1, seed: 42 }
    }

    fn column(t: &Table, regime: &str, col: usize) -> String {
        t.rows
            .iter()
            .find(|r| r[0] == regime)
            .unwrap_or_else(|| panic!("missing regime {regime}"))[col]
            .clone()
    }

    #[test]
    fn no_recovery_plateaus_while_recovery_reconverges() {
        let out = run(&small()).unwrap();
        let t = &out.table;
        assert_eq!(t.rows.len(), 2 + RECOVERY_ROUNDS.len());

        assert_eq!(column(t, "fault-free", 3), "true");
        // No-recovery: frozen blocks pin the residual above tolerance and
        // the run ends Stalled, not Converged.
        assert_eq!(column(t, "no-recovery", 3), "false");
        assert_eq!(column(t, "no-recovery", 1), "Stalled");
        let plateau: f64 = column(t, "no-recovery", 4).parse().unwrap();
        assert!(plateau > 1e-6, "no-recovery must plateau above tolerance: {plateau:e}");
        let wedged_outage: usize = column(t, "no-recovery", 8).parse().unwrap();

        for t_r in RECOVERY_ROUNDS {
            let regime = format!("recovery-({t_r})");
            assert_eq!(column(t, &regime, 3), "true", "{regime} must re-converge");
            assert_eq!(column(t, &regime, 6), "1", "{regime} must reassign the orphaned shard");
            // The monotone-delay contract, on the quantity the runtime
            // controls: the shard is held back until at least `t_r`
            // floor rounds past the outage at t0 = 10, so the realised
            // release floor grows with t_r. (Raw iteration counts also
            // grow on average, but monitor poll granularity makes a
            // single sample too noisy to assert on.)
            let released: usize = column(t, &regime, 7).parse().unwrap();
            assert!(
                released >= 10 + t_r,
                "{regime} released at floor {released}, before t0 + t_r"
            );
            let outage: usize = column(t, &regime, 8).parse().unwrap();
            assert!(outage >= t_r, "{regime} outage {outage} shorter than t_r");
            assert!(
                outage < wedged_outage,
                "{regime} outage {outage} should end before the no-recovery wedge ({wedged_outage})"
            );
        }
    }

    #[test]
    fn sink_receives_one_line_per_regime() {
        let mut sink = MemorySink::default();
        let out = run_with_sink(&small(), &mut sink).unwrap();
        assert_eq!(sink.lines.len(), out.table.rows.len());
        assert!(sink.lines[0].contains("\"fault\":null"), "baseline is faultless");
        assert!(
            sink.lines[1].contains("\"deaths\":[{"),
            "faulted lines carry the fault report: {}",
            sink.lines[1]
        );
        // Every regime contributes a residual trajectory to the figure.
        assert_eq!(out.figure.series.len(), out.table.rows.len());
        for s in &out.figure.series {
            assert!(!s.points.is_empty(), "empty trajectory for {}", s.label);
        }
    }
}
