//! One module per paper artifact. Each exposes a `run(&ExpOptions)`
//! returning the tables/figures it regenerates; the `repro` binary prints
//! them.

pub mod ablation;
pub mod comm_staleness;
pub mod convergence_figs;
pub mod fault_exp;
pub mod fig11;
pub mod fig9;
pub mod ingest;
pub mod nondet;
pub mod recovery;
pub mod resilience;
pub mod table1;
pub mod theory;
pub mod timing_tables;
pub mod verify;
