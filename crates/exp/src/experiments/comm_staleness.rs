//! **Communication-staleness study** — the realised trade-off behind the
//! paper's §3.4/§4.6 multi-GPU schemes: AMC's host-staged halos are the
//! cheapest per iteration but the stalest, DC's master-GPU direct copies
//! sit in between, DK's kernel-side remote loads read live values at the
//! highest price. Run through the persistent threaded path, where the
//! halo exchange actually realises each scheme's staleness, this reports
//! per strategy the stage cadence, the realised shift distribution
//! (paper Eq. 3), the measured skew, and the final residual at an equal
//! round budget — the convergence-versus-price trade-off of Fig. 12–14.

use crate::matrices::{block_size, TestSystem};
use crate::report::Table;
use crate::ExpOptions;
use abr_core::{ExecutorKind, SolveOptions};
use abr_gpu::ThreadedOptions;
use abr_multigpu::{CommStrategy, MultiGpuSolver};
use abr_sparse::gen::TestMatrix;
use abr_sparse::Result;

/// Runs each strategy on 2 devices at an equal fixed round budget and
/// tabulates cadence, staleness, skew, accuracy and price.
pub fn run(opts: &ExpOptions) -> Result<Table> {
    let sys = TestSystem::build(TestMatrix::Trefethen20000, opts.scale)?;
    let iters = sys.figure_iterations(opts.scale);
    let solve_opts = SolveOptions {
        record_history: false,
        ..SolveOptions::fixed_iterations(iters)
    };
    let mut table = Table::new(
        format!(
            "Communication staleness: 2 GPUs, {} rounds, {}",
            iters,
            sys.which.name()
        ),
        &[
            "strategy",
            "epoch [rounds]",
            "mean shift",
            "max shift",
            "max skew",
            "final residual",
            "s/iter",
        ],
    );
    for strategy in CommStrategy::ALL {
        let mut solver = MultiGpuSolver::supermicro(2, strategy);
        solver.thread_block_size = block_size(opts.scale);
        solver.base.executor = ExecutorKind::Threaded(ThreadedOptions::default());
        let r = solver.solve(&sys.a, &sys.rhs, &sys.x0, &solve_opts)?;
        let trace = r.trace.as_ref().expect("the persistent path reports a trace");
        table.push_row(vec![
            strategy.name().to_string(),
            r.halo_epoch_rounds.to_string(),
            format!("{:.2}", trace.staleness.mean_shift()),
            trace.staleness.max_shift().unwrap_or(0).to_string(),
            trace.max_skew.to_string(),
            format!("{:.3e}", r.solve.final_residual),
            format!("{:.4e}", r.seconds_per_iteration),
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn strategies_order_by_staleness_and_price() {
        let opts = ExpOptions { scale: Scale::Small, runs: 1, seed: 0 };
        let t = run(&opts).unwrap();
        assert_eq!(t.rows.len(), 3);
        let col = |r: usize, c: usize| -> f64 { t.rows[r][c].parse().unwrap() };
        // Rows are AMC, DC, DK. DK has no epoch cadence; its live remote
        // reads keep the shift within the executor's skew window, while
        // AMC's double-hop staging realises epoch-scale staleness.
        assert_eq!(t.rows[2][1], "0");
        assert!(col(2, 3) <= 3.0, "DK shift must stay in the skew window: {}", t.rows[2][3]);
        assert!(col(0, 3) > col(2, 3), "AMC must be staler than DK: {} vs {}", t.rows[0][3], t.rows[2][3]);
        // Pricing keeps the paper's opposite order: AMC < DC < DK.
        assert!(col(0, 6) < col(1, 6) && col(1, 6) < col(2, 6));
    }
}
