//! **Reproduction self-check**: every headline claim of the paper,
//! evaluated against this build and reported PASS/FAIL — the CLI
//! counterpart of the `paper_shapes_full` test suite.

use crate::experiments::{convergence_figs, fig11, fig9, table1, timing_tables};
use crate::report::{Series, Table};
use crate::ExpOptions;
use abr_sparse::Result;

struct Check {
    claim: &'static str,
    expected: &'static str,
    measured: String,
    pass: bool,
}

fn iters_to(series: &Series, tol: f64) -> Option<f64> {
    series.points.iter().find(|&&(_, r)| r <= tol).map(|&(k, _)| k)
}

/// Runs the checklist. At `--scale small` the timing- and size-dependent
/// claims are skipped (they only hold at the paper's problem sizes).
pub fn run(opts: &ExpOptions) -> Result<Table> {
    let mut checks: Vec<Check> = Vec::new();

    // --- Table 1: spectral radii ---
    let t1 = table1::run(opts)?;
    let rho_ok = t1.rows.iter().all(|row| {
        let measured: f64 = row[6].parse().unwrap_or(f64::NAN);
        let paper: f64 = row[8].parse().unwrap_or(f64::NAN);
        (measured - paper).abs() < 0.01 * paper.max(1.0) + 5e-3
    });
    checks.push(Check {
        claim: "Table 1: rho(M) of every matrix matches the paper",
        expected: "within 1 %",
        measured: t1
            .rows
            .iter()
            .map(|r| r[6].clone())
            .collect::<Vec<_>>()
            .join(" "),
        pass: rho_ok,
    });

    // --- Figures 6/7: convergence orderings ---
    let figs = convergence_figs::run(opts)?;
    let fv1_6 = figs
        .fig6
        .iter()
        .find(|f| f.title.contains("(fv1)"))
        .expect("fv1 panel exists");
    // the small-scale runs are short; measure at a looser target there
    let tol = match opts.scale {
        crate::Scale::Full => 1e-8,
        crate::Scale::Small => 5e-3,
    };
    let k_gs = iters_to(&fv1_6.series[0], tol);
    let k_j = iters_to(&fv1_6.series[1], tol);
    let k_a1 = iters_to(&fv1_6.series[2], tol);
    if let (Some(k_gs), Some(k_j), Some(k_a1)) = (k_gs, k_j, k_a1) {
        let r = k_j / k_gs;
        checks.push(Check {
            claim: "Fig 6: Gauss-Seidel converges in ~half of Jacobi's iterations (fv1)",
            expected: "ratio 1.5..3.0",
            measured: format!("{r:.2}"),
            pass: (1.5..3.0).contains(&r),
        });
        let d = k_a1 / k_j;
        checks.push(Check {
            claim: "Fig 6: async-(1) tracks Jacobi's rate (fv1)",
            expected: "ratio 0.7..1.6",
            measured: format!("{d:.2}"),
            pass: (0.7..1.6).contains(&d),
        });
    }
    let fv1_7 = figs
        .fig7
        .iter()
        .find(|f| f.title.contains("(fv1)"))
        .expect("fv1 panel exists");
    if let (Some(k_gs), Some(k_a5)) =
        (iters_to(&fv1_7.series[0], tol), iters_to(&fv1_7.series[1], tol))
    {
        let s = k_gs / k_a5;
        // the ~2x factor needs the paper's 448-row blocks on the full
        // matrix; the small-scale blocks capture less and gain less
        let band = match opts.scale {
            crate::Scale::Full => 1.4..4.0,
            crate::Scale::Small => 1.05..4.0,
        };
        checks.push(Check {
            claim: "Fig 7: async-(5) converges faster than Gauss-Seidel (fv1, ~2x at full scale)",
            expected: "speedup above 1 (1.4..4.0 at full scale)",
            measured: format!("{s:.2}"),
            pass: band.contains(&s),
        });
    }
    let s1 = figs
        .fig6
        .iter()
        .find(|f| f.title.contains("s1rmt3m1"))
        .expect("s1rmt3m1 panel exists");
    let jacobi_diverges = {
        let s = &s1.series[1];
        s.points.last().map(|&(_, r)| r).unwrap_or(0.0)
            > s.points.get(2).map(|&(_, r)| r).unwrap_or(f64::INFINITY)
    };
    checks.push(Check {
        claim: "Fig 6e: Jacobi-type methods diverge on s1rmt3m1 (rho = 2.65)",
        expected: "residual grows",
        measured: if jacobi_diverges { "grows".into() } else { "shrinks".into() },
        pass: jacobi_diverges,
    });

    // --- Table 4: local sweeps nearly free ---
    let t4 = timing_tables::table4(opts)?;
    let t1v: f64 = t4.rows[0][1].parse().unwrap_or(f64::NAN);
    let t2v: f64 = t4.rows[1][1].parse().unwrap_or(f64::NAN);
    let t9v: f64 = t4.rows[8][1].parse().unwrap_or(f64::NAN);
    checks.push(Check {
        claim: "Table 4: async-(2) costs < 5 % over async-(1); async-(9) < 35 %",
        expected: "< 5 % / < 35 %",
        measured: format!(
            "{:.1} % / {:.1} %",
            100.0 * (t2v - t1v) / t1v,
            100.0 * (t9v - t1v) / t1v
        ),
        pass: (t2v - t1v) / t1v < 0.05 && (t9v - t1v) / t1v < 0.35,
    });

    // --- Table 5: per-iteration orderings ---
    let t5 = timing_tables::table5(opts)?;
    let a5_beats_jacobi = t5.rows.iter().all(|r| {
        let j: f64 = r[2].parse().unwrap_or(0.0);
        let a: f64 = r[3].parse().unwrap_or(f64::INFINITY);
        a < j
    });
    checks.push(Check {
        claim: "Table 5: async-(5) per global iteration cheaper than Jacobi, every matrix",
        expected: "a5 < Jacobi",
        measured: if a5_beats_jacobi { "holds on all rows".into() } else { "violated".into() },
        pass: a5_beats_jacobi,
    });

    // Size-dependent claims only make sense at full scale.
    if opts.scale == crate::Scale::Full {
        let gpu_speedups: Vec<f64> = t5
            .rows
            .iter()
            .map(|r| {
                let gs: f64 = r[1].parse().unwrap_or(0.0);
                let a: f64 = r[3].parse().unwrap_or(f64::INFINITY);
                gs / a
            })
            .collect();
        let in_band = gpu_speedups.iter().all(|&s| (3.0..25.0).contains(&s));
        checks.push(Check {
            claim: "Table 5: GPU async-(5) 5-10x faster than CPU Gauss-Seidel",
            expected: "3..25x each",
            measured: gpu_speedups.iter().map(|s| format!("{s:.1}")).collect::<Vec<_>>().join(" "),
            pass: in_band,
        });

        let f9 = fig9::run(opts)?;
        let fv1 = f9.iter().find(|f| f.title.contains("(fv1)")).expect("fv1 panel");
        let series = |label: &str| {
            fv1.series.iter().find(|s| s.label == label).expect("series").clone()
        };
        let target = 1e-10;
        let t_a5 = fig9::time_to_accuracy(&series("async-(5)"), target);
        let t_j = fig9::time_to_accuracy(&series("Jacobi"), target);
        let t_cg = fig9::time_to_accuracy(&series("CG"), target);
        if let (Some(a5), Some(j), Some(cg)) = (t_a5, t_j, t_cg) {
            checks.push(Check {
                claim: "Fig 9b: async-(5) beats Jacobi in runtime; CG modestly ahead (fv1)",
                expected: "a5 < Jacobi, CG < a5",
                measured: format!("a5 {a5:.2}s, Jacobi {j:.2}s, CG {cg:.2}s"),
                pass: a5 < j && cg < a5,
            });
        }

        let f11 = fig11::run(opts)?;
        let amc: Vec<f64> =
            f11.rows[0][1..].iter().map(|s| s.parse().unwrap_or(f64::NAN)).collect();
        checks.push(Check {
            claim: "Fig 11: AMC halves at 2 GPUs, slower at 3 (QPI), recovers at 4",
            expected: "t2 < 0.65 t1; t3 > t2; t4 in (t2/2, t2)",
            measured: format!("{amc:?}"),
            pass: amc[1] < 0.65 * amc[0]
                && amc[2] > amc[1]
                && amc[3] < amc[1]
                && amc[3] > 0.5 * amc[1],
        });
    }

    let mut table = Table::new(
        "Reproduction self-check",
        &["claim", "expected", "measured", "status"],
    );
    for c in checks {
        table.push_row(vec![
            c.claim.to_string(),
            c.expected.to_string(),
            c.measured,
            if c.pass { "PASS".into() } else { "FAIL".into() },
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn small_scale_checklist_passes() {
        let opts = ExpOptions { scale: Scale::Small, runs: 2, seed: 0 };
        let t = run(&opts).unwrap();
        assert!(t.rows.len() >= 6);
        for row in &t.rows {
            assert_eq!(row[3], "PASS", "{} measured {}", row[0], row[2]);
        }
    }
}
