//! **Theory check** (§2 made quantitative): the measured asymptotic
//! contraction rate of each method against the spectral predictions —
//! Jacobi's rate should equal `rho(B)`, Gauss-Seidel's should approach
//! `rho(B)^2` on these consistently-ordered-ish systems, and async-(k)'s
//! *effective radius* lands between `rho(B)` and the local-solve limit.

use crate::matrices::TestSystem;
use crate::report::Table;
use crate::{ExpOptions, Scale};
use abr_core::{gauss_seidel, jacobi, AsyncBlockSolver, SolveOptions};
use abr_sparse::gen::TestMatrix;
use abr_sparse::{IterationMatrix, Result};

/// Asymptotic per-iteration contraction of a residual history: geometric
/// mean over the last stretch *above the floating-point floor* (faster
/// methods reach the floor early; the informative window ends there).
/// `None` when fewer than 8 useful samples exist.
pub fn tail_contraction(history: &[f64]) -> Option<f64> {
    // last index still carrying signal
    let b = history.iter().rposition(|&r| r > 1e-13)?;
    if b < 8 {
        return None;
    }
    let a = 3 * b / 4;
    let (ya, yb) = (history[a], history[b]);
    if ya <= 0.0 || yb <= 0.0 || a == b {
        return None;
    }
    Some((yb / ya).powf(1.0 / (b - a) as f64))
}

/// Regenerates the theory-check table.
pub fn run(opts: &ExpOptions) -> Result<Table> {
    let mut table = Table::new(
        "Theory check: spectral predictions vs measured contraction rates",
        &[
            "Matrix",
            "rho(B)",
            "Jacobi measured",
            "rho(B)^2",
            "GS measured",
            "async-(1)",
            "async-(5)",
        ],
    );
    let convergent = [
        TestMatrix::Chem97ZtZ,
        TestMatrix::Fv1,
        TestMatrix::Fv2,
        TestMatrix::Trefethen2000,
    ];
    for which in convergent {
        let sys = TestSystem::build(which, opts.scale)?;
        let rho = IterationMatrix::new(&sys.a)?.spectral_radius()?;
        // enough iterations for the tail, short of the floor
        let iters = match opts.scale {
            Scale::Full => ((-28.0) / rho.ln()).ceil() as usize, // ~1e-12
            Scale::Small => 60,
        }
        .clamp(40, 400);
        let solve_opts = SolveOptions::fixed_iterations(iters);
        let partition = sys.partition(opts.scale)?;

        let j = jacobi(&sys.a, &sys.rhs, &sys.x0, &solve_opts)?;
        let g = gauss_seidel(&sys.a, &sys.rhs, &sys.x0, &solve_opts)?;
        let a1 = AsyncBlockSolver::async_k(1)
            .solve(&sys.a, &sys.rhs, &sys.x0, &partition, &solve_opts)?;
        let a5 = AsyncBlockSolver::async_k(5)
            .solve(&sys.a, &sys.rhs, &sys.x0, &partition, &solve_opts)?;

        let fmt = |h: &[f64]| {
            tail_contraction(h).map_or("(floor)".to_string(), |r| format!("{r:.4}"))
        };
        table.push_row(vec![
            which.name().to_string(),
            format!("{rho:.4}"),
            fmt(&j.history),
            format!("{:.4}", rho * rho),
            fmt(&g.history),
            fmt(&a1.history),
            fmt(&a5.history),
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobi_rate_matches_rho_at_small_scale() {
        let opts = ExpOptions { scale: Scale::Small, runs: 2, seed: 0 };
        let t = run(&opts).unwrap();
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            let rho: f64 = row[1].parse().unwrap();
            if let Ok(measured) = row[2].parse::<f64>() {
                assert!(
                    (measured - rho).abs() < 0.05,
                    "{}: Jacobi measured {measured} vs rho {rho}",
                    row[0]
                );
            }
        }
    }

    #[test]
    fn tail_contraction_basics() {
        let geometric: Vec<f64> = (0..40).map(|k| 0.8f64.powi(k)).collect();
        let r = tail_contraction(&geometric).unwrap();
        assert!((r - 0.8).abs() < 1e-12);
        assert!(tail_contraction(&[1.0, 0.5]).is_none(), "too short");
        let floored = vec![1e-16; 40];
        assert!(tail_contraction(&floored).is_none(), "no signal at the floor");
    }
}
