//! **Ingested-matrix convergence** (`repro --mtx PATH ingest`) — runs the
//! paper's convergence comparison on a user-supplied MatrixMarket file
//! instead of a generator-produced system, closing the ROADMAP gap left
//! by the ingestion pipeline PR: ingestion existed, but no experiment
//! consumed it.
//!
//! The system is `A x = b` with `b = A·1` (so the exact solution is the
//! ones vector and the relative residual is meaningful regardless of the
//! file's provenance). Three solvers run to the same tolerance: the
//! synchronous Gauss-Seidel baseline and async-(1)/async-(5) on the
//! seeded simulator — the paper's core comparison, §4.1.

use crate::metrics::{MetricsSink, RunMetrics};
use crate::report::Table;
use crate::{ExpOptions, Scale};
use abr_core::{gauss_seidel, AsyncBlockSolver, ExecutorKind, ScheduleKind, SolveOptions};
use abr_gpu::SimOptions;
use abr_sparse::{Result, RowPartition, SparseError};
use std::path::Path;

/// Reads `path` as MatrixMarket, solves it three ways, and returns the
/// comparison table. One [`RunMetrics`] record per solve goes to `sink`.
pub fn run_with_sink(
    opts: &ExpOptions,
    path: &Path,
    sink: &mut dyn MetricsSink,
) -> Result<Table> {
    let a = abr_sparse::io::read_matrix_market_path(path)?;
    if a.n_rows() != a.n_cols() {
        return Err(SparseError::Parse(format!(
            "--mtx needs a square system, got {} x {}",
            a.n_rows(),
            a.n_cols()
        )));
    }
    let n = a.n_rows();
    let label = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string());
    let rhs = a.mul_vec(&vec![1.0; n])?;
    let x0 = vec![0.0; n];
    // Blocks sized for >= 4 subdomains on anything non-trivial; tiny
    // systems degrade to one block per row-pair.
    let block = (n / 8).clamp(2.min(n), 256).max(1);
    let partition = RowPartition::uniform(n, block)?;
    let (tol, max_iters) = match opts.scale {
        Scale::Full => (1e-10, 50_000),
        Scale::Small => (1e-8, 5_000),
    };
    let solve_opts = SolveOptions::to_tolerance(tol, max_iters);

    let mut table = Table::new(
        format!("Ingested convergence: {label} (n={n}, nnz={}, tol={tol:.0e})", a.nnz()),
        &["Method", "iterations", "converged", "final residual"],
    );
    let mut emit = |method: &str, r: &abr_core::SolveResult, sink: &mut dyn MetricsSink| {
        table.push_row(vec![
            method.to_string(),
            r.iterations.to_string(),
            r.converged.to_string(),
            format!("{:.3e}", r.final_residual),
        ]);
        sink.record(&RunMetrics {
            experiment: "ingest".into(),
            matrix: label.clone(),
            method: method.into(),
            iterations: r.iterations,
            converged: r.converged,
            final_residual: r.final_residual,
            ..RunMetrics::default()
        });
    };

    let gs = gauss_seidel(&a, &rhs, &x0, &solve_opts)?;
    emit("gauss-seidel", &gs, sink);

    for k in [1usize, 5] {
        let solver = AsyncBlockSolver {
            local_iters: k,
            schedule: ScheduleKind::Recurring { seed: opts.seed },
            executor: ExecutorKind::Sim(SimOptions {
                seed: opts.seed ^ 0x9e37_79b9_7f4a_7c15,
                ..SimOptions::default()
            }),
            damping: 1.0,
            local_sweep: Default::default(),
        };
        let r = solver.solve(&a, &rhs, &x0, &partition, &solve_opts)?;
        emit(&format!("async-({k})"), &r, sink);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MemorySink;
    use crate::Scale;

    fn sample_path() -> std::path::PathBuf {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("data/lap8.mtx")
    }

    #[test]
    fn checked_in_sample_converges_for_all_three_methods() {
        let opts = ExpOptions { scale: Scale::Small, ..Default::default() };
        let mut sink = MemorySink::default();
        let t = run_with_sink(&opts, &sample_path(), &mut sink).unwrap();
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            assert_eq!(row[2], "true", "{} did not converge: {:?}", row[0], row);
        }
        assert_eq!(sink.lines.len(), 3, "one metrics record per solve");
        assert!(sink.lines[0].contains("\"experiment\":\"ingest\""));
        assert!(sink.lines[0].contains("\"matrix\":\"lap8\""));
    }

    #[test]
    fn non_square_input_is_rejected() {
        let path = std::env::temp_dir().join(format!("abr_rect_{}.mtx", std::process::id()));
        std::fs::write(
            &path,
            "%%MatrixMarket matrix coordinate real general\n2 3 1\n1 1 1.0\n",
        )
        .unwrap();
        let err = run_with_sink(
            &ExpOptions::default(),
            &path,
            &mut crate::metrics::NullSink,
        )
        .unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(err.to_string().contains("square"), "{err}");
    }
}
