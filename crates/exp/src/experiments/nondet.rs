//! **Tables 2 & 3, Figure 5** — the non-determinism study (§4.1):
//! repeated async-(5) runs with block size 128, all sharing one fixed
//! recurring dispatch pattern while the execution timing (jitter seed)
//! varies per run — the hardware's actual degree of freedom; aggregated
//! residual statistics per global-iteration checkpoint.
//!
//! The paper uses 1000 runs; the default here is 100 (`--runs 1000`
//! reproduces the original count).

use crate::matrices::TestSystem;
use crate::report::{Figure, Series, Table};
use crate::statistics::checkpoint_statistics;
use crate::{ExpOptions, Scale};
use abr_core::{AsyncBlockSolver, ExecutorKind, ScheduleKind, SolveOptions};
use abr_gpu::SimOptions;
use abr_sparse::gen::TestMatrix;
use abr_sparse::Result;

/// Output of the non-determinism study.
pub struct NondetResult {
    /// Table 2 (fv1) and Table 3 (Trefethen_2000).
    pub tables: Vec<Table>,
    /// Figure 5: average convergence + absolute/relative variations.
    pub figure: Figure,
}

/// Regenerates Tables 2/3 and Figure 5.
pub fn run(opts: &ExpOptions) -> Result<NondetResult> {
    let mut tables = Vec::new();
    let mut figure = Figure::new(
        "Figure 5: convergence variation of async-(5) across runs",
        "global iterations",
        "relative residual / variation",
    );

    let configs = [
        (TestMatrix::Fv1, "Table 2", 150usize, 10usize),
        (TestMatrix::Trefethen2000, "Table 3", 50, 5),
    ];
    for (which, table_name, full_iters, full_step) in configs {
        let sys = TestSystem::build(which, opts.scale)?;
        let (iters, step, runs) = match opts.scale {
            Scale::Full => (full_iters, full_step, opts.runs),
            Scale::Small => (full_iters / 5, full_step.max(2), opts.runs.min(12)),
        };
        // §4.1 uses a moderate block size of 128 to maximise scheduling
        // freedom.
        let block = match opts.scale {
            Scale::Full => 128,
            Scale::Small => 16,
        };
        let partition = sys.partition_with(block)?;
        let solve_opts = SolveOptions::fixed_iterations(iters);

        let mut histories = Vec::with_capacity(runs);
        for r in 0..runs {
            let run_seed = opts.seed.wrapping_mul(1009).wrapping_add(r as u64);
            // One fixed recurring dispatch pattern (the GPU scheduler's,
            // §4.1) shared by all runs; what varies run to run is only
            // the execution timing (jitter seed) — the same degree of
            // freedom the real hardware has. Giving every run its own
            // pattern would overstate the variation by orders of
            // magnitude on the schedule-insensitive fv1.
            let solver = AsyncBlockSolver {
                local_iters: 5,
                schedule: ScheduleKind::Recurring { seed: opts.seed },
                executor: ExecutorKind::Sim(SimOptions {
                    n_workers: 14,
                    // low jitter: real hardware block scheduling is
                    // nearly deterministic run to run
                    jitter: 0.1,
                    seed: run_seed ^ 0x9e37_79b9_7f4a_7c15,
                }),
                damping: 1.0,
                local_sweep: Default::default(),
            };
            let res = solver.solve(&sys.a, &sys.rhs, &sys.x0, &partition, &solve_opts)?;
            histories.push(res.history);
        }

        let checkpoints: Vec<usize> = (1..=iters / step).map(|j| j * step).collect();
        let stats = checkpoint_statistics(&histories, &checkpoints);

        let mut table = Table::new(
            format!("{table_name}: variation statistics, {} ({runs} runs)", which.name()),
            &[
                "# global iters",
                "averg. res.",
                "max. res.",
                "min. res.",
                "abs. var.",
                "rel. var.",
                "variance",
                "std. deviation",
                "std. error",
            ],
        );
        let mut avg_pts = Vec::new();
        let mut abs_pts = Vec::new();
        let mut rel_pts = Vec::new();
        for (cp, s) in &stats {
            table.push_row(vec![
                cp.to_string(),
                format!("{:.4e}", s.mean),
                format!("{:.4e}", s.max),
                format!("{:.4e}", s.min),
                format!("{:.4e}", s.abs_variation),
                format!("{:.4e}", s.rel_variation),
                format!("{:.4e}", s.variance),
                format!("{:.4e}", s.std_deviation),
                format!("{:.4e}", s.std_error),
            ]);
            avg_pts.push((*cp as f64, s.mean));
            abs_pts.push((*cp as f64, s.abs_variation));
            rel_pts.push((*cp as f64, s.rel_variation));
        }
        figure.push(Series::new(format!("{} average", which.name()), avg_pts));
        figure.push(Series::new(format!("{} abs. variation", which.name()), abs_pts));
        figure.push(Series::new(format!("{} rel. variation", which.name()), rel_pts));
        tables.push(table);
    }

    Ok(NondetResult { tables, figure })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_statistics_have_expected_shape() {
        let opts = ExpOptions { scale: Scale::Small, runs: 6, seed: 1 };
        let out = run(&opts).unwrap();
        assert_eq!(out.tables.len(), 2);
        assert!(!out.tables[0].rows.is_empty());
        assert_eq!(out.figure.series.len(), 6);
        // average residuals decrease along iterations for both matrices
        for series in out.figure.series.iter().filter(|s| s.label.contains("average")) {
            let first = series.points.first().unwrap().1;
            let last = series.points.last().unwrap().1;
            assert!(last < first, "{}: {first} -> {last}", series.label);
        }
    }

    #[test]
    fn variation_nonzero_across_runs() {
        let opts = ExpOptions { scale: Scale::Small, runs: 6, seed: 3 };
        let out = run(&opts).unwrap();
        let abs = out
            .figure
            .series
            .iter()
            .find(|s| s.label.contains("abs. variation"))
            .unwrap();
        assert!(
            abs.points.iter().any(|&(_, v)| v > 0.0),
            "different schedules must produce different residuals"
        );
    }
}
