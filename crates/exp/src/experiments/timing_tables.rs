//! **Table 4, Table 5, Figure 8** — the timing artifacts, produced by the
//! calibrated cost model of `abr-gpu` plus the actual per-matrix local
//! nonzero counts.
//!
//! * Table 4: total computation time of async-(1..9) for 100..500 global
//!   iterations on `fv3` — the "local sweeps are almost free" claim.
//! * Figure 8: average time per iteration versus total iteration count on
//!   `fv3` (setup amortisation makes the GPU curves decay).
//! * Table 5: average per-global-iteration seconds for Gauss-Seidel
//!   (CPU), Jacobi (GPU) and async-(5) (GPU) on every matrix, following
//!   the paper's 10..200-iteration averaging convention.

use crate::matrices::{full_suite, TestSystem};
use crate::report::{Figure, Series, Table};
use crate::ExpOptions;
use abr_core::async_block::AsyncJacobiKernel;
use abr_gpu::TimingModel;
use abr_sparse::gen::TestMatrix;
use abr_sparse::Result;

/// `nnz_local` of a system under its standard partition.
fn nnz_local(sys: &TestSystem, opts: &ExpOptions) -> Result<usize> {
    let p = sys.partition(opts.scale)?;
    let kernel = AsyncJacobiKernel::new(&sys.a, &sys.rhs, &p, 1, 1.0)?;
    Ok(kernel.nnz_local())
}

/// Regenerates Table 4.
pub fn table4(opts: &ExpOptions) -> Result<Table> {
    let model = TimingModel::calibrated();
    let sys = TestSystem::build(TestMatrix::Fv3, opts.scale)?;
    let (n, nnz) = (sys.a.n_rows(), sys.a.nnz());
    let local = nnz_local(&sys, opts)?;
    let iters = [100usize, 200, 300, 400, 500];
    let mut headers: Vec<String> = vec!["method".into()];
    headers.extend(iters.iter().map(|k| k.to_string()));
    let mut table = Table::new(
        "Table 4: total time [s] vs global iterations, fv3, varying local sweeps",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for k in 1..=9usize {
        let t_iter = model.gpu_async_iteration(n, nnz, local, k);
        let mut row = vec![format!("async-({k})")];
        row.extend(iters.iter().map(|&it| format!("{:.6}", model.gpu_total(t_iter, it))));
        table.push_row(row);
    }
    Ok(table)
}

/// Regenerates Table 5.
///
/// Reports the *marginal* per-global-iteration cost. (The paper describes
/// an averaging convention over 10..200-iteration runs, but its own
/// Table 5 numbers are inconsistent with amortising the setup cost its
/// Figure 8 exhibits — the fv3 row would exceed 0.05 s. The marginal
/// costs match the paper's Table 5 magnitudes within ~20 % on every
/// entry, so that is evidently what the table reports; `table5_average`
/// in `abr-gpu` implements the amortised convention for Figure 8.)
pub fn table5(opts: &ExpOptions) -> Result<Table> {
    let model = TimingModel::calibrated();
    let mut table = Table::new(
        "Table 5: average seconds per global iteration",
        &["Matrix", "G.-S. (CPU)", "Jacobi (GPU)", "async-(5) (GPU)"],
    );
    for sys in full_suite(opts.scale)? {
        if sys.which == TestMatrix::Trefethen20000 {
            continue; // the paper's Table 5 omits it too
        }
        let (n, nnz) = (sys.a.n_rows(), sys.a.nnz());
        let local = nnz_local(&sys, opts)?;
        let gs = model.cpu_gauss_seidel_iteration(n, nnz);
        let jac = model.gpu_jacobi_iteration(n, nnz);
        let a5 = model.gpu_async_iteration(n, nnz, local, 5);
        table.push_row(vec![
            sys.which.name().to_string(),
            format!("{gs:.6}"),
            format!("{jac:.6}"),
            format!("{a5:.6}"),
        ]);
    }
    Ok(table)
}

/// Regenerates Figure 8.
pub fn fig8(opts: &ExpOptions) -> Result<Figure> {
    let model = TimingModel::calibrated();
    let sys = TestSystem::build(TestMatrix::Fv3, opts.scale)?;
    let (n, nnz) = (sys.a.n_rows(), sys.a.nnz());
    let local = nnz_local(&sys, opts)?;
    let totals: Vec<usize> = (1..=20).map(|j| 10 * j).collect();

    let mut fig = Figure::new(
        "Figure 8: average time per iteration vs total iterations (fv3)",
        "total number of iterations",
        "average time per iteration [s]",
    );
    let gs = model.cpu_gauss_seidel_iteration(n, nnz);
    fig.push(Series::new(
        "Gauss-Seidel on CPU",
        totals.iter().map(|&k| (k as f64, gs)).collect(),
    ));
    let t_jac = model.gpu_jacobi_iteration(n, nnz);
    fig.push(Series::new(
        "Jacobi on GPU",
        totals
            .iter()
            .map(|&k| (k as f64, model.gpu_average_per_iteration(t_jac, k)))
            .collect(),
    ));
    let t_a1 = model.gpu_async_iteration(n, nnz, local, 1);
    fig.push(Series::new(
        "async-(1) on GPU",
        totals
            .iter()
            .map(|&k| (k as f64, model.gpu_average_per_iteration(t_a1, k)))
            .collect(),
    ));
    Ok(fig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    fn small() -> ExpOptions {
        ExpOptions { scale: Scale::Small, runs: 2, seed: 0 }
    }

    #[test]
    fn table4_overhead_shape() {
        let t = table4(&small()).unwrap();
        assert_eq!(t.rows.len(), 9);
        // async-(2) adds < 5 % over async-(1) at every column
        for c in 1..t.headers.len() {
            let t1: f64 = t.rows[0][c].parse().unwrap();
            let t2: f64 = t.rows[1][c].parse().unwrap();
            let t9: f64 = t.rows[8][c].parse().unwrap();
            assert!((t2 - t1) / t1 < 0.05, "col {c}: {t1} -> {t2}");
            assert!((t9 - t1) / t1 < 0.35, "col {c}: {t1} -> {t9}");
            assert!(t9 > t2 && t2 > t1);
        }
    }

    #[test]
    fn table5_structure_and_async_advantage() {
        // The GPU-vs-CPU ordering holds at the paper's problem sizes
        // (already asserted against paper constants in abr-gpu's timing
        // tests, and by the full-scale integration suite); at small n the
        // amortised setup legitimately dominates. Scale-independent here:
        // async-(5) averages below Jacobi (same setup, cheaper marginal).
        let t = table5(&small()).unwrap();
        assert_eq!(t.rows.len(), 6);
        for row in &t.rows {
            let jac: f64 = row[2].parse().unwrap();
            let a5: f64 = row[3].parse().unwrap();
            assert!(a5 < jac, "{}: async-(5) {a5} must beat Jacobi {jac}", row[0]);
        }
    }

    #[test]
    fn fig8_gpu_curves_decay_cpu_flat() {
        let f = fig8(&small()).unwrap();
        let gs = &f.series[0];
        assert_eq!(gs.points.first().unwrap().1, gs.points.last().unwrap().1);
        for s in &f.series[1..] {
            assert!(
                s.points.first().unwrap().1 > 2.0 * s.points.last().unwrap().1,
                "{} must decay",
                s.label
            );
        }
    }
}
