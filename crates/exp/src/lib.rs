#![warn(missing_docs)]

//! # abr-exp
//!
//! The experiment harness: one module per table and figure of the paper,
//! each regenerating the corresponding rows/series from this workspace's
//! implementation. The `repro` binary drives them
//! (`cargo run -p abr-exp --release -- <experiment>`); EXPERIMENTS.md
//! records paper-vs-measured for every artifact.
//!
//! Experiments accept a [`Scale`]: `Full` builds the paper-sized matrices
//! and iteration counts, `Small` shrinks everything so the whole suite
//! runs in seconds (used by integration tests).

pub mod experiments;
pub mod matrices;
pub mod metrics;
pub mod report;
pub mod statistics;
pub mod svg;

pub use metrics::{JsonlFileSink, MemorySink, MetricsSink, NullSink, RunMetrics};
pub use report::{Series, Table};
pub use statistics::RunStatistics;

/// Experiment sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-sized matrices and iteration counts.
    Full,
    /// Reduced sizes for fast smoke runs and integration tests.
    Small,
}

impl Scale {
    /// Parses `"full"` / `"small"`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "full" => Some(Scale::Full),
            "small" => Some(Scale::Small),
            _ => None,
        }
    }
}

/// Common options threaded through every experiment.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Experiment sizing.
    pub scale: Scale,
    /// Number of repeated solver runs for the statistics experiments.
    pub runs: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions { scale: Scale::Full, runs: 100, seed: 42 }
    }
}
