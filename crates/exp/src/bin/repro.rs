//! `repro` — regenerates every table and figure of the paper from this
//! workspace's implementation.
//!
//! ```text
//! repro [--scale full|small] [--runs N] [--seed S] [--out DIR]
//!       [--out-metrics FILE] [--mtx PATH] <experiment>...
//!
//! experiments:
//!   table1 nondet (= table2 table3 fig5) fig6 fig7 table4 fig8 table5
//!   fig9 fig10 (= table6) fig11 staleness ablation recovery ingest all
//!
//! `ingest` runs the convergence comparison on an externally supplied
//! MatrixMarket file (`--mtx PATH`; a small sample is checked in at
//! `crates/exp/data/lap8.mtx`) instead of the generator suite.
//! ```
//!
//! Results print as markdown/text; with `--out DIR` each artifact is also
//! written as CSV. `--out-metrics FILE` streams one JSONL record per
//! solve (for the experiments that produce them) to `FILE`.

use abr_exp::experiments::{
    ablation, comm_staleness, convergence_figs, fault_exp, fig11, fig9, ingest, nondet,
    recovery, resilience, table1, theory, timing_tables, verify,
};
use abr_exp::metrics::{JsonlFileSink, MetricsSink, NullSink};
use abr_exp::report::{Figure, Table};
use abr_exp::matrices::full_suite;
use abr_exp::{ExpOptions, Scale};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Cli {
    opts: ExpOptions,
    out: Option<PathBuf>,
    out_metrics: Option<PathBuf>,
    mtx: Option<PathBuf>,
    experiments: Vec<String>,
}

const USAGE: &str = "usage: repro [--scale full|small] [--runs N] [--seed S] \
[--out DIR] [--out-metrics FILE] [--mtx PATH] <experiment>...\nexperiments: table1 nondet \
fig6 fig7 table4 fig8 table5 fig9 fig10 fig11 staleness ablation recovery \
resilience theory verify ingest export-matrices all";

fn parse_args() -> Result<Cli, String> {
    let mut opts = ExpOptions::default();
    let mut out = None;
    let mut out_metrics = None;
    let mut mtx = None;
    let mut experiments = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                opts.scale = Scale::parse(&v).ok_or(format!("bad scale: {v}"))?;
            }
            "--runs" => {
                let v = args.next().ok_or("--runs needs a value")?;
                opts.runs = v.parse().map_err(|_| format!("bad runs: {v}"))?;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
            }
            "--out" => {
                out = Some(PathBuf::from(args.next().ok_or("--out needs a value")?));
            }
            "--out-metrics" => {
                out_metrics =
                    Some(PathBuf::from(args.next().ok_or("--out-metrics needs a value")?));
            }
            "--mtx" => {
                mtx = Some(PathBuf::from(args.next().ok_or("--mtx needs a value")?));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            e if e.starts_with('-') => return Err(format!("unknown flag {e}")),
            e => experiments.push(e.to_string()),
        }
    }
    if experiments.is_empty() {
        return Err(format!("no experiment given; try `repro all`\n{USAGE}"));
    }
    Ok(Cli { opts, out, out_metrics, mtx, experiments })
}

fn emit_table(t: &Table, out: Option<&Path>, stem: &str) {
    println!("{}", t.to_markdown());
    if let Some(dir) = out {
        for (ext, content) in [("csv", t.to_csv()), ("json", t.to_json())] {
            let path = dir.join(format!("{stem}.{ext}"));
            if let Err(e) = std::fs::write(&path, content) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
    }
}

fn emit_figure(f: &Figure, out: Option<&Path>, stem: &str) {
    println!("{}", f.to_text(12));
    if let Some(dir) = out {
        for (ext, content) in [
            ("csv", f.to_csv()),
            ("json", f.to_json()),
            ("svg", abr_exp::svg::figure_to_svg(f)),
        ] {
            let path = dir.join(format!("{stem}.{ext}"));
            if let Err(e) = std::fs::write(&path, content) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
    }
}

fn run_one(
    name: &str,
    opts: &ExpOptions,
    out: Option<&Path>,
    mtx: Option<&Path>,
    sink: &mut dyn MetricsSink,
) -> Result<(), String> {
    let err = |e: abr_sparse::SparseError| format!("{name}: {e}");
    match name {
        "table1" => emit_table(&table1::run(opts).map_err(err)?, out, "table1"),
        "nondet" | "table2" | "table3" | "fig5" => {
            let r = nondet::run(opts).map_err(err)?;
            for (i, t) in r.tables.iter().enumerate() {
                emit_table(t, out, &format!("table{}", i + 2));
            }
            emit_figure(&r.figure, out, "fig5");
        }
        "fig6" | "fig7" => {
            let r = convergence_figs::run(opts).map_err(err)?;
            let figs = if name == "fig6" { &r.fig6 } else { &r.fig7 };
            for (i, f) in figs.iter().enumerate() {
                emit_figure(f, out, &format!("{name}_{i}"));
            }
        }
        "table4" => emit_table(&timing_tables::table4(opts).map_err(err)?, out, "table4"),
        "table5" => emit_table(&timing_tables::table5(opts).map_err(err)?, out, "table5"),
        "fig8" => emit_figure(&timing_tables::fig8(opts).map_err(err)?, out, "fig8"),
        "fig9" => {
            for (i, f) in fig9::run(opts).map_err(err)?.iter().enumerate() {
                emit_figure(f, out, &format!("fig9_{i}"));
            }
        }
        "fig10" | "table6" => {
            let r = fault_exp::run(opts).map_err(err)?;
            for (i, f) in r.figures.iter().enumerate() {
                emit_figure(f, out, &format!("fig10_{i}"));
            }
            emit_table(&r.table, out, "table6");
        }
        "fig11" => emit_table(&fig11::run(opts).map_err(err)?, out, "fig11"),
        "staleness" => {
            emit_table(&comm_staleness::run(opts).map_err(err)?, out, "staleness")
        }
        "recovery" => {
            let r = recovery::run_with_sink(opts, sink).map_err(err)?;
            emit_table(&r.table, out, "recovery");
            emit_figure(&r.figure, out, "recovery_fig10");
        }
        "ingest" => {
            let path = mtx.ok_or("ingest needs --mtx PATH")?;
            emit_table(&ingest::run_with_sink(opts, path, sink).map_err(err)?, out, "ingest");
        }
        "resilience" => emit_table(&resilience::run(opts).map_err(err)?, out, "resilience"),
        "theory" => emit_table(&theory::run(opts).map_err(err)?, out, "theory"),
        "verify" => {
            let t = verify::run(opts).map_err(err)?;
            emit_table(&t, out, "verify");
            if t.rows.iter().any(|r| r[3] == "FAIL") {
                return Err("verify: at least one claim FAILED".into());
            }
        }
        "ablation" => {
            for (i, t) in ablation::run(opts).map_err(err)?.iter().enumerate() {
                emit_table(t, out, &format!("ablation_{i}"));
            }
        }
        "export-matrices" => {
            let dir = out.ok_or("export-matrices needs --out DIR")?;
            for sys in full_suite(opts.scale).map_err(err)? {
                let path = dir.join(format!("{}.mtx", sys.which.name()));
                let mut buf = Vec::new();
                abr_sparse::io::write_matrix_market(&sys.a, &mut buf)
                    .map_err(|e| format!("serialise {}: {e}", sys.which.name()))?;
                std::fs::write(&path, buf).map_err(|e| format!("{}: {e}", path.display()))?;
                println!("wrote {} ({} x {}, nnz {})", path.display(), sys.a.n_rows(),
                         sys.a.n_cols(), sys.a.nnz());
            }
        }
        // `verify` is intentionally not part of `all`: it re-runs the
        // heavy experiments to grade them and would double the runtime.
        "all" => {
            for e in [
                "table1", "nondet", "fig6", "fig7", "table4", "fig8", "table5", "fig9",
                "fig10", "fig11", "staleness", "ablation", "recovery", "resilience", "theory",
            ] {
                eprintln!("== running {e} ==");
                run_one(e, opts, out, mtx, sink)?;
            }
        }
        other => return Err(format!("unknown experiment: {other}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(dir) = &cli.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    let mut sink: Box<dyn MetricsSink> = match &cli.out_metrics {
        None => Box::new(NullSink),
        Some(path) => match JsonlFileSink::create(path) {
            Ok(s) => Box::new(s),
            Err(e) => {
                eprintln!("cannot create {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        },
    };
    for name in &cli.experiments {
        if let Err(e) =
            run_one(name, &cli.opts, cli.out.as_deref(), cli.mtx.as_deref(), sink.as_mut())
        {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    sink.flush();
    ExitCode::SUCCESS
}
