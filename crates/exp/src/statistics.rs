//! Across-run statistics — the columns of the paper's Tables 2 and 3.

/// Statistics of one observable (e.g. the relative residual at a fixed
/// global-iteration checkpoint) across repeated solver runs.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStatistics {
    /// Number of runs aggregated.
    pub runs: usize,
    /// Mean value.
    pub mean: f64,
    /// Largest observed value.
    pub max: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Absolute variation `max - min`.
    pub abs_variation: f64,
    /// Relative variation `(max - min) / mean`.
    pub rel_variation: f64,
    /// Population variance.
    pub variance: f64,
    /// Population standard deviation.
    pub std_deviation: f64,
    /// Standard error of the mean `sigma / sqrt(runs)`.
    pub std_error: f64,
}

impl RunStatistics {
    /// Aggregates a non-empty sample.
    pub fn from_samples(samples: &[f64]) -> RunStatistics {
        assert!(!samples.is_empty(), "statistics need at least one sample");
        let runs = samples.len();
        let mean = samples.iter().sum::<f64>() / runs as f64;
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let variance =
            samples.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / runs as f64;
        let std_deviation = variance.sqrt();
        RunStatistics {
            runs,
            mean,
            max,
            min,
            abs_variation: max - min,
            rel_variation: if mean != 0.0 { (max - min) / mean } else { 0.0 },
            variance,
            std_deviation,
            std_error: std_deviation / (runs as f64).sqrt(),
        }
    }
}

/// Aggregates residual histories from many runs at fixed checkpoints:
/// `histories[r][k]` is run `r`'s residual after global iteration `k + 1`;
/// the result holds one [`RunStatistics`] per requested checkpoint (1-based
/// iteration counts).
pub fn checkpoint_statistics(
    histories: &[Vec<f64>],
    checkpoints: &[usize],
) -> Vec<(usize, RunStatistics)> {
    checkpoints
        .iter()
        .filter_map(|&cp| {
            assert!(cp >= 1, "checkpoints are 1-based iteration counts");
            let samples: Vec<f64> =
                histories.iter().filter_map(|h| h.get(cp - 1).copied()).collect();
            (samples.len() == histories.len())
                .then(|| (cp, RunStatistics::from_samples(&samples)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_sample() {
        let s = RunStatistics::from_samples(&[2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.abs_variation, 0.0);
        assert_eq!(s.rel_variation, 0.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.std_error, 0.0);
    }

    #[test]
    fn simple_sample() {
        let s = RunStatistics::from_samples(&[1.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.abs_variation, 2.0);
        assert_eq!(s.rel_variation, 1.0);
        assert_eq!(s.variance, 1.0);
        assert_eq!(s.std_deviation, 1.0);
        assert!((s.std_error - 1.0 / 2.0f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn zero_mean_has_zero_rel_variation() {
        let s = RunStatistics::from_samples(&[-1.0, 1.0]);
        assert_eq!(s.rel_variation, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_sample_panics() {
        RunStatistics::from_samples(&[]);
    }

    #[test]
    fn checkpoints_pick_correct_iterations() {
        let h1 = vec![0.5, 0.25, 0.125];
        let h2 = vec![0.6, 0.30, 0.150];
        let stats = checkpoint_statistics(&[h1, h2], &[1, 3]);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].0, 1);
        assert!((stats[0].1.mean - 0.55).abs() < 1e-15);
        assert_eq!(stats[1].0, 3);
        assert!((stats[1].1.mean - 0.1375).abs() < 1e-15);
    }

    #[test]
    fn short_histories_skip_checkpoint() {
        let h1 = vec![0.5, 0.25];
        let h2 = vec![0.6];
        let stats = checkpoint_statistics(&[h1, h2], &[1, 2]);
        assert_eq!(stats.len(), 1, "iteration 2 missing from one run");
        assert_eq!(stats[0].0, 1);
    }
}
