//! Minimal SVG line-plot renderer for the experiment figures — no plotting
//! dependency, just enough to draw the paper's residual curves (log-scale
//! y-axis, legend, categorical colours) into standalone `.svg` files next
//! to the CSV output.

use crate::report::Figure;
use std::fmt::Write as _;

/// Plot dimensions and margins.
const WIDTH: f64 = 720.0;
const HEIGHT: f64 = 480.0;
const MARGIN_LEFT: f64 = 80.0;
const MARGIN_RIGHT: f64 = 180.0;
const MARGIN_TOP: f64 = 48.0;
const MARGIN_BOTTOM: f64 = 56.0;

/// Categorical colours (colour-blind-safe-ish).
const COLORS: [&str; 8] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
];

/// Renders the figure as an SVG document with a log10 y-axis (the natural
/// scale for residual plots). Non-positive y values are clamped to the
/// smallest positive value present.
pub fn figure_to_svg(fig: &Figure) -> String {
    let plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT;
    let plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM;

    // data ranges
    let mut x_min = f64::INFINITY;
    let mut x_max = f64::NEG_INFINITY;
    let mut y_min_pos = f64::INFINITY;
    let mut y_max = f64::NEG_INFINITY;
    for s in &fig.series {
        for &(x, y) in &s.points {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
            if y > 0.0 {
                y_min_pos = y_min_pos.min(y);
            }
            y_max = y_max.max(y);
        }
    }
    if !x_min.is_finite() || !y_min_pos.is_finite() || y_max <= 0.0 {
        // nothing plottable: emit an empty chart with the title
        return format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{HEIGHT}\">\
             <text x=\"20\" y=\"30\">{} (no data)</text></svg>",
            xml_escape(&fig.title)
        );
    }
    if x_max <= x_min {
        x_max = x_min + 1.0;
    }
    let ly_min = y_min_pos.log10().floor();
    let ly_max = y_max.log10().ceil().max(ly_min + 1.0);

    let sx = |x: f64| MARGIN_LEFT + (x - x_min) / (x_max - x_min) * plot_w;
    let sy = |y: f64| {
        let ly = y.max(y_min_pos).log10();
        MARGIN_TOP + (ly_max - ly) / (ly_max - ly_min) * plot_h
    };

    let mut out = String::new();
    let _ = write!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{HEIGHT}\" \
         font-family=\"sans-serif\" font-size=\"12\">\n\
         <rect width=\"{WIDTH}\" height=\"{HEIGHT}\" fill=\"white\"/>\n"
    );
    let _ = writeln!(
        out,
        "<text x=\"{}\" y=\"24\" font-size=\"15\" font-weight=\"bold\">{}</text>",
        MARGIN_LEFT,
        xml_escape(&fig.title)
    );

    // y grid lines at integer decades (cap at ~12 labels)
    let decades = (ly_max - ly_min) as i64;
    let stride = (decades / 12 + 1).max(1);
    let mut d = ly_min as i64;
    while d <= ly_max as i64 {
        let y = sy(10f64.powi(d as i32));
        let _ = writeln!(
            out,
            "<line x1=\"{MARGIN_LEFT}\" y1=\"{y:.1}\" x2=\"{:.1}\" y2=\"{y:.1}\" \
             stroke=\"#dddddd\"/>\n\
             <text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">1e{d}</text>",
            WIDTH - MARGIN_RIGHT,
            MARGIN_LEFT - 8.0,
            y + 4.0
        );
        d += stride;
    }
    // x axis ticks (5 of them)
    for t in 0..=4 {
        let x_val = x_min + (x_max - x_min) * t as f64 / 4.0;
        let x = sx(x_val);
        let _ = writeln!(
            out,
            "<line x1=\"{x:.1}\" y1=\"{:.1}\" x2=\"{x:.1}\" y2=\"{:.1}\" stroke=\"#999999\"/>\n\
             <text x=\"{x:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>",
            HEIGHT - MARGIN_BOTTOM,
            HEIGHT - MARGIN_BOTTOM + 6.0,
            HEIGHT - MARGIN_BOTTOM + 22.0,
            format_tick(x_val)
        );
    }
    // axis labels
    let _ = writeln!(
        out,
        "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>",
        MARGIN_LEFT + plot_w / 2.0,
        HEIGHT - 12.0,
        xml_escape(&fig.x_label)
    );
    let _ = writeln!(
        out,
        "<text x=\"16\" y=\"{:.1}\" transform=\"rotate(-90 16 {:.1})\" text-anchor=\"middle\">{}</text>",
        MARGIN_TOP + plot_h / 2.0,
        MARGIN_TOP + plot_h / 2.0,
        xml_escape(&fig.y_label)
    );
    // frame
    let _ = writeln!(
        out,
        "<rect x=\"{MARGIN_LEFT}\" y=\"{MARGIN_TOP}\" width=\"{plot_w:.1}\" height=\"{plot_h:.1}\" \
         fill=\"none\" stroke=\"#333333\"/>"
    );

    // series
    for (i, s) in fig.series.iter().enumerate() {
        let color = COLORS[i % COLORS.len()];
        if !s.points.is_empty() {
            let mut path = String::from("M");
            for (k, &(x, y)) in s.points.iter().enumerate() {
                if k > 0 {
                    path.push('L');
                }
                let _ = write!(path, "{:.1},{:.1}", sx(x), sy(y));
            }
            let _ = writeln!(
                out,
                "<path d=\"{path}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"1.8\"/>"
            );
        }
        // legend entry
        let ly = MARGIN_TOP + 16.0 + i as f64 * 20.0;
        let lx = WIDTH - MARGIN_RIGHT + 12.0;
        let _ = writeln!(
            out,
            "<line x1=\"{lx:.1}\" y1=\"{ly:.1}\" x2=\"{:.1}\" y2=\"{ly:.1}\" \
             stroke=\"{color}\" stroke-width=\"2.5\"/>\n\
             <text x=\"{:.1}\" y=\"{:.1}\">{}</text>",
            lx + 22.0,
            lx + 28.0,
            ly + 4.0,
            xml_escape(&s.label)
        );
    }
    out.push_str("</svg>\n");
    out
}

fn format_tick(v: f64) -> String {
    if v.abs() >= 1000.0 || (v.abs() < 0.01 && v != 0.0) {
        format!("{v:.1e}")
    } else if v.fract().abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.2}")
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Series;

    fn sample_figure() -> Figure {
        let mut f = Figure::new("Demo <figure>", "iterations", "residual");
        f.push(Series::new(
            "method & co",
            (1..=50).map(|k| (k as f64, 0.8f64.powi(k))).collect(),
        ));
        f.push(Series::new("flat", vec![(1.0, 1e-3), (50.0, 1e-3)]));
        f
    }

    #[test]
    fn renders_valid_looking_svg() {
        let svg = figure_to_svg(&sample_figure());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("Demo &lt;figure&gt;"), "title must be escaped");
        assert!(svg.contains("method &amp; co"), "legend must be escaped");
        assert!(svg.matches("<path").count() == 2, "one path per series");
        assert!(svg.contains("1e-3") || svg.contains("1e-4"), "log decade labels");
    }

    #[test]
    fn empty_figure_does_not_panic() {
        let f = Figure::new("empty", "x", "y");
        let svg = figure_to_svg(&f);
        assert!(svg.contains("no data"));
    }

    #[test]
    fn zero_and_negative_values_clamped() {
        let mut f = Figure::new("clamp", "x", "y");
        f.push(Series::new("s", vec![(0.0, 1.0), (1.0, 0.0), (2.0, -5.0), (3.0, 1e-8)]));
        let svg = figure_to_svg(&f);
        assert!(svg.contains("<path"), "series must still render");
    }

    #[test]
    fn single_point_series() {
        let mut f = Figure::new("dot", "x", "y");
        f.push(Series::new("p", vec![(1.0, 0.5)]));
        let svg = figure_to_svg(&f);
        assert!(svg.starts_with("<svg"));
    }
}
