//! Output plumbing: tables (for the paper's tables) and series (for its
//! figures), rendered as markdown/plain text and optionally CSV.

use std::fmt::Write as _;

/// Escapes a string for a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON number (JSON has no inf/nan; they render as
/// null, matching what a lossy serializer would emit).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A rectangular results table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table caption (e.g. "Table 5: average iteration timings \[s\]").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width must match headers");
        self.rows.push(cells);
    }

    /// Renders GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(out, "|{}|", self.headers.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Renders JSON (pretty, two-space indent).
    pub fn to_json(&self) -> String {
        let headers = self
            .headers
            .iter()
            .map(|h| format!("    \"{}\"", json_escape(h)))
            .collect::<Vec<_>>()
            .join(",\n");
        let rows = self
            .rows
            .iter()
            .map(|row| {
                let cells = row
                    .iter()
                    .map(|c| format!("      \"{}\"", json_escape(c)))
                    .collect::<Vec<_>>()
                    .join(",\n");
                format!("    [\n{cells}\n    ]")
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"title\": \"{}\",\n  \"headers\": [\n{}\n  ],\n  \"rows\": [\n{}\n  ]\n}}",
            json_escape(&self.title),
            headers,
            rows
        )
    }
}

/// One labelled data series of a figure: `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// The points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Series {
        Series { label: label.into(), points }
    }

    /// Linear interpolation of `y` at `x` (clamped to the data range).
    /// Points must be sorted by `x`.
    pub fn interpolate(&self, x: f64) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        if x <= self.points[0].0 {
            return Some(self.points[0].1);
        }
        if x >= self.points[self.points.len() - 1].0 {
            return Some(self.points[self.points.len() - 1].1);
        }
        let i = self.points.partition_point(|&(px, _)| px < x);
        let (x0, y0) = self.points[i - 1];
        let (x1, y1) = self.points[i];
        Some(y0 + (y1 - y0) * (x - x0) / (x1 - x0))
    }
}

/// A figure: several series plus axis labels; renders as a compact text
/// listing (for EXPERIMENTS.md) and CSV (one column per series).
#[derive(Debug, Clone)]
pub struct Figure {
    /// Figure caption.
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// y-axis label.
    pub y_label: String,
    /// The plotted series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Figure {
        Figure {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds one series.
    pub fn push(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Renders a text summary: per series, samples at up to `samples`
    /// evenly spaced points of its own x-range.
    pub fn to_text(&self, samples: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} ({} vs {})\n", self.title, self.y_label, self.x_label);
        for s in &self.series {
            let _ = writeln!(out, "  {}:", s.label);
            let n = s.points.len();
            if n == 0 {
                continue;
            }
            let step = (n / samples.max(1)).max(1);
            for (i, &(x, y)) in s.points.iter().enumerate() {
                if i % step == 0 || i + 1 == n {
                    let _ = writeln!(out, "    {x:>12.4}  {y:>14.6e}");
                }
            }
        }
        out
    }

    /// Renders long-form CSV: `series,x,y`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,x,y\n");
        for s in &self.series {
            for &(x, y) in &s.points {
                let _ = writeln!(out, "{},{x},{y}", s.label);
            }
        }
        out
    }

    /// Renders JSON (pretty, two-space indent).
    pub fn to_json(&self) -> String {
        let series = self
            .series
            .iter()
            .map(|s| {
                let points = s
                    .points
                    .iter()
                    .map(|&(x, y)| {
                        format!(
                            "        [\n          {},\n          {}\n        ]",
                            json_f64(x),
                            json_f64(y)
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(",\n");
                format!(
                    "    {{\n      \"label\": \"{}\",\n      \"points\": [\n{}\n      ]\n    }}",
                    json_escape(&s.label),
                    points
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"title\": \"{}\",\n  \"x_label\": \"{}\",\n  \"y_label\": \"{}\",\n  \"series\": [\n{}\n  ]\n}}",
            json_escape(&self.title),
            json_escape(&self.x_label),
            json_escape(&self.y_label),
            series
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_markdown_shape() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(t.to_csv().contains("a,b\n1,2\n"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn series_interpolation() {
        let s = Series::new("s", vec![(0.0, 0.0), (2.0, 4.0)]);
        assert_eq!(s.interpolate(1.0), Some(2.0));
        assert_eq!(s.interpolate(-1.0), Some(0.0));
        assert_eq!(s.interpolate(5.0), Some(4.0));
        assert_eq!(Series::new("e", vec![]).interpolate(1.0), None);
    }

    #[test]
    fn json_roundtrips_structure() {
        let mut t = Table::new("demo", &["a"]);
        t.push_row(vec!["1".into()]);
        let j = t.to_json();
        assert!(j.contains("\"title\": \"demo\""), "{j}");
        let mut f = Figure::new("fig", "x", "y");
        f.push(Series::new("s", vec![(1.0, 2.0)]));
        assert!(f.to_json().contains("\"points\""));
    }

    #[test]
    fn figure_csv_long_form() {
        let mut f = Figure::new("fig", "x", "y");
        f.push(Series::new("a", vec![(1.0, 2.0)]));
        let csv = f.to_csv();
        assert!(csv.starts_with("series,x,y\n"));
        assert!(csv.contains("a,1,2"));
        assert!(f.to_text(5).contains("### fig"));
    }
}
