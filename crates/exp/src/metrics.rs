//! JSONL run-metrics export (ROADMAP item): one JSON object per solve,
//! carrying iterations, the residual trajectory, staleness moments, and —
//! for faulted runs — the full [`FaultReport`]. Built on the same
//! hand-rolled JSON helpers as [`crate::report`] (no serde in this
//! workspace), behind a [`MetricsSink`] trait so experiments stay
//! agnostic of where the lines go (file, memory, nowhere).

use crate::report::{json_escape, json_f64};
use abr_gpu::{FaultReport, UpdateTrace};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The per-solve record a sink receives.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// Experiment name (e.g. `"recovery"`).
    pub experiment: String,
    /// Matrix / system label.
    pub matrix: String,
    /// Method / configuration label (e.g. `"recovery-(15)"`).
    pub method: String,
    /// Global iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was reached.
    pub converged: bool,
    /// Final relative residual.
    pub final_residual: f64,
    /// `(global_iteration, relative_residual)` checks, in order — the
    /// concurrent monitor's trajectory for persistent solves, or the
    /// recorded history for chunked ones.
    pub residuals: Vec<(usize, f64)>,
    /// Realised update skew watermark (`UpdateTrace::max_skew`).
    pub max_skew: usize,
    /// Mean neighbour-read staleness shift (Eq. 3 measured).
    pub mean_shift: f64,
    /// Fraction of fresh (shift <= 0) neighbour reads.
    pub fraction_fresh: f64,
    /// The live fault runtime's report, when the solve ran one.
    pub fault: Option<FaultReport>,
}

impl RunMetrics {
    /// Copies the staleness moments out of an executor trace.
    pub fn with_trace(mut self, trace: &UpdateTrace) -> RunMetrics {
        self.max_skew = trace.max_skew;
        self.mean_shift = trace.staleness.mean_shift();
        self.fraction_fresh = trace.staleness.fraction_fresh();
        self
    }

    /// Renders the record as one JSON object (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"experiment\":\"{}\",\"matrix\":\"{}\",\"method\":\"{}\",\
             \"iterations\":{},\"converged\":{},\"final_residual\":{}",
            json_escape(&self.experiment),
            json_escape(&self.matrix),
            json_escape(&self.method),
            self.iterations,
            self.converged,
            json_f64(self.final_residual),
        );
        out.push_str(",\"residuals\":[");
        for (i, &(it, rr)) in self.residuals.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{},{}]", it, json_f64(rr));
        }
        let _ = write!(
            out,
            "],\"max_skew\":{},\"mean_shift\":{},\"fraction_fresh\":{}",
            self.max_skew,
            json_f64(self.mean_shift),
            json_f64(self.fraction_fresh),
        );
        match &self.fault {
            None => out.push_str(",\"fault\":null"),
            Some(f) => {
                let _ = write!(
                    out,
                    ",\"fault\":{{\"caught_panics\":{},\"max_outage_rounds\":{}",
                    f.caught_panics, f.max_outage_rounds
                );
                out.push_str(",\"deaths\":[");
                for (i, d) in f.deaths.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{{\"worker\":{},\"declared_at\":{},\"detection_lag\":{}}}",
                        d.worker, d.declared_at, d.detection_lag
                    );
                }
                out.push_str("],\"reassignments\":[");
                for (i, r) in f.reassignments.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{{\"shard\":{},\"new_owner\":{},\"at_floor\":{}}}",
                        r.shard, r.new_owner, r.at_floor
                    );
                }
                out.push_str("],\"frozen_spans\":[");
                for (i, s) in f.frozen_spans.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{{\"block\":{},\"frozen_at\":{},\"outage_rounds\":{},\"thawed\":{}}}",
                        s.block, s.frozen_at, s.outage_rounds, s.thawed
                    );
                }
                out.push_str("]}");
            }
        }
        out.push('}');
        out
    }
}

/// Where run metrics go. Experiments call [`record`](Self::record) once
/// per solve; the driver decides the destination.
pub trait MetricsSink {
    /// Accepts one solve's record.
    fn record(&mut self, metrics: &RunMetrics);
    /// Flushes buffered output (a no-op for most sinks).
    fn flush(&mut self) {}
}

/// Discards everything (the default when no `--out-metrics` is given).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl MetricsSink for NullSink {
    fn record(&mut self, _metrics: &RunMetrics) {}
}

/// Collects rendered JSONL lines in memory (tests, programmatic use).
#[derive(Debug, Default, Clone)]
pub struct MemorySink {
    /// The recorded lines, one JSON object each.
    pub lines: Vec<String>,
}

impl MetricsSink for MemorySink {
    fn record(&mut self, metrics: &RunMetrics) {
        self.lines.push(metrics.to_json_line());
    }
}

/// Appends one JSON line per record to a file (the `--out-metrics FILE`
/// sink of the `repro` binary and the daemon's per-request stream).
///
/// Line-buffered: every record hits the file at the newline, so a
/// long-running daemon's metrics are tailable (`tail -f`) and every
/// completed record survives a crash mid-solve. The trailing-flush cost
/// is one small `write(2)` per solve — noise next to the solve itself.
#[derive(Debug)]
pub struct JsonlFileSink {
    path: PathBuf,
    writer: std::io::LineWriter<std::fs::File>,
}

impl JsonlFileSink {
    /// Creates (truncating) the metrics file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<JsonlFileSink> {
        let path = path.as_ref().to_path_buf();
        let file = std::fs::File::create(&path)?;
        Ok(JsonlFileSink { path, writer: std::io::LineWriter::new(file) })
    }

    /// The file being written.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl MetricsSink for JsonlFileSink {
    fn record(&mut self, metrics: &RunMetrics) {
        let line = metrics.to_json_line();
        if let Err(e) = writeln!(self.writer, "{line}") {
            eprintln!("warning: could not write metrics to {}: {e}", self.path.display());
        }
    }

    fn flush(&mut self) {
        if let Err(e) = self.writer.flush() {
            eprintln!("warning: could not flush metrics to {}: {e}", self.path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_gpu::persistent::{DeathRecord, FrozenSpan, Reassignment};

    fn sample() -> RunMetrics {
        RunMetrics {
            experiment: "recovery".into(),
            matrix: "L100".into(),
            method: "recovery-(15)".into(),
            iterations: 420,
            converged: true,
            final_residual: 3.5e-11,
            residuals: vec![(10, 0.5), (20, 0.25)],
            max_skew: 4,
            mean_shift: 0.75,
            fraction_fresh: 0.5,
            fault: Some(FaultReport {
                deaths: vec![DeathRecord { worker: 1, declared_at: 18, detection_lag: 8 }],
                reassignments: vec![Reassignment { shard: 1, new_owner: 0, at_floor: 33 }],
                frozen_spans: vec![FrozenSpan {
                    block: 3,
                    frozen_at: 10,
                    outage_rounds: 23,
                    thawed: true,
                }],
                caught_panics: 0,
                max_outage_rounds: 23,
            }),
        }
    }

    #[test]
    fn json_line_carries_every_section() {
        let line = sample().to_json_line();
        for needle in [
            "\"experiment\":\"recovery\"",
            "\"residuals\":[[10,0.5],[20,0.25]]",
            "\"max_skew\":4",
            "\"deaths\":[{\"worker\":1,\"declared_at\":18,\"detection_lag\":8}]",
            "\"reassignments\":[{\"shard\":1,\"new_owner\":0,\"at_floor\":33}]",
            "\"frozen_spans\":[{\"block\":3,\"frozen_at\":10,\"outage_rounds\":23,\"thawed\":true}]",
        ] {
            assert!(line.contains(needle), "missing {needle} in {line}");
        }
        assert!(!line.contains('\n'), "one line per record");
    }

    #[test]
    fn faultless_record_renders_null_fault() {
        let m = RunMetrics { fault: None, ..sample() };
        assert!(m.to_json_line().contains("\"fault\":null"));
    }

    #[test]
    fn memory_sink_collects_lines() {
        let mut sink = MemorySink::default();
        sink.record(&sample());
        sink.record(&sample());
        sink.flush();
        assert_eq!(sink.lines.len(), 2);
        assert!(sink.lines[0].starts_with('{') && sink.lines[0].ends_with('}'));
    }

    #[test]
    fn file_sink_writes_jsonl() {
        let path = std::env::temp_dir().join(format!("abr_metrics_{}.jsonl", std::process::id()));
        let mut sink = JsonlFileSink::create(&path).unwrap();
        sink.record(&sample());
        sink.record(&RunMetrics { fault: None, ..sample() });
        sink.flush();
        drop(sink);
        let body = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("\"fault\":null"));
    }

    #[test]
    fn file_sink_is_tailable_record_by_record() {
        // No explicit flush, sink still alive: each record must already
        // be on disk (the daemon-crash / `tail -f` guarantee).
        let path = std::env::temp_dir().join(format!("abr_tail_{}.jsonl", std::process::id()));
        let mut sink = JsonlFileSink::create(&path).unwrap();
        sink.record(&sample());
        let after_one = std::fs::read_to_string(&path).unwrap();
        sink.record(&sample());
        let after_two = std::fs::read_to_string(&path).unwrap();
        drop(sink);
        let _ = std::fs::remove_file(&path);
        assert_eq!(after_one.lines().count(), 1, "first record visible before flush");
        assert_eq!(after_two.lines().count(), 2, "second record visible before flush");
    }

    #[test]
    fn escaping_goes_through_the_shared_shim() {
        let m = RunMetrics { matrix: "a\"b\\c".into(), ..Default::default() };
        assert!(m.to_json_line().contains("a\\\"b\\\\c"));
    }
}
