//! Convergence-delay-based anomaly detection.
//!
//! §4.5: "for problems where convergence is expected, a convergence delay
//! or non-converging sequence of solution approximations indicates that a
//! silent error has occurred." The monitor learns the geometric residual
//! decay of the healthy method and flags iterations whose residual falls
//! outside the predicted envelope.

/// An online detector over a residual history.
///
/// After a learning window it extrapolates the expected geometric
/// trajectory and flags any residual above `slack` times that envelope —
/// this catches both sudden jumps (corruption) and creeping stagnation
/// (frozen components), which a one-step predictor would miss because a
/// plateau violates the expected ratio only slightly per step.
#[derive(Debug, Clone)]
pub struct ConvergenceMonitor {
    /// Learned per-iteration contraction factor.
    rate: Option<f64>,
    /// Extrapolated envelope value for the *next* observation.
    predicted: f64,
    /// Iterations used for learning before detection arms itself.
    warmup: usize,
    /// A residual more than `slack` times the envelope trips the alarm.
    slack: f64,
    /// Observations so far (during warmup only).
    seen: usize,
    first: f64,
}

impl ConvergenceMonitor {
    /// Creates a monitor that learns for `warmup` iterations and then
    /// flags residuals exceeding `slack` times the extrapolated envelope.
    pub fn new(warmup: usize, slack: f64) -> Self {
        assert!(warmup >= 2, "need at least two residuals to learn a rate");
        assert!(slack > 1.0, "slack must exceed 1");
        ConvergenceMonitor { rate: None, predicted: 0.0, warmup, slack, seen: 0, first: 0.0 }
    }

    /// Feeds the next residual; returns `true` if this step looks
    /// anomalous (convergence delay / jump — a silent-error indicator).
    pub fn observe(&mut self, residual: f64) -> bool {
        self.seen += 1;
        if self.seen == 1 {
            self.first = residual.max(f64::MIN_POSITIVE);
        }
        if self.seen <= self.warmup {
            if self.seen == self.warmup {
                // geometric-mean contraction over the warmup window
                let last = residual.max(f64::MIN_POSITIVE);
                let rate = (last / self.first).powf(1.0 / (self.warmup as f64 - 1.0));
                self.rate = Some(rate.clamp(1e-8, 1.0));
                self.predicted = last;
            }
            return false;
        }
        let rate = self.rate.expect("set at end of warmup");
        self.predicted *= rate;
        // Near machine precision the trajectory flattens legitimately.
        if self.predicted < 1e-14 {
            return false;
        }
        residual > self.slack * self.predicted
    }

    /// The learned contraction factor (after warmup).
    pub fn learned_rate(&self) -> Option<f64> {
        self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(mon: &mut ConvergenceMonitor, rs: &[f64]) -> Vec<usize> {
        rs.iter()
            .enumerate()
            .filter_map(|(k, &r)| mon.observe(r).then_some(k))
            .collect()
    }

    #[test]
    fn clean_geometric_decay_never_trips() {
        let mut mon = ConvergenceMonitor::new(5, 5.0);
        let rs: Vec<f64> = (0..60).map(|k| 0.9f64.powi(k)).collect();
        assert!(feed(&mut mon, &rs).is_empty());
        assert!((mon.learned_rate().unwrap() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn residual_jump_detected() {
        let mut mon = ConvergenceMonitor::new(5, 5.0);
        let mut rs: Vec<f64> = (0..40).map(|k| 0.85f64.powi(k)).collect();
        rs[25] *= 1e4; // silent error strikes
        let alarms = feed(&mut mon, &rs);
        assert!(alarms.contains(&25), "alarms: {alarms:?}");
    }

    #[test]
    fn stagnation_detected() {
        let mut mon = ConvergenceMonitor::new(5, 2.0);
        let mut rs: Vec<f64> = (0..20).map(|k| 0.7f64.powi(k)).collect();
        // stagnation: residual stops improving (frozen components)
        let plateau = rs[19];
        rs.extend(std::iter::repeat_n(plateau, 15));
        let alarms = feed(&mut mon, &rs);
        assert!(!alarms.is_empty(), "stagnation must trip the monitor");
    }

    #[test]
    fn noise_within_slack_tolerated() {
        let mut mon = ConvergenceMonitor::new(5, 10.0);
        let rs: Vec<f64> = (0..50)
            .map(|k| 0.9f64.powi(k) * (1.0 + 0.3 * ((k as f64) * 1.7).sin()))
            .collect();
        assert!(feed(&mut mon, &rs).is_empty());
    }

    #[test]
    fn machine_floor_does_not_false_alarm() {
        let mut mon = ConvergenceMonitor::new(5, 3.0);
        let mut rs: Vec<f64> = (0..80).map(|k| 0.6f64.powi(k)).collect();
        for r in rs.iter_mut() {
            *r = r.max(1e-16); // flatten at machine epsilon
        }
        assert!(feed(&mut mon, &rs).is_empty());
    }

    #[test]
    #[should_panic(expected = "slack must exceed 1")]
    fn invalid_slack_panics() {
        ConvergenceMonitor::new(5, 0.5);
    }
}
