//! Silent (undetected) errors: data corruption that no hardware signal
//! reports. The paper (§4.5) notes that asynchronous methods do not
//! magically survive these — but an unexpected convergence delay *is* a
//! usable detector, because the method's residual trajectory is otherwise
//! very predictable.

use abr_core::convergence::relative_residual;
use abr_core::{AsyncBlockSolver, SolveOptions, SolveResult};
use abr_sparse::{CsrMatrix, Result, RowPartition};

/// A single silent corruption event.
#[derive(Debug, Clone, Copy)]
pub struct SilentError {
    /// Global iteration after which the corruption strikes.
    pub at_iteration: usize,
    /// Which component is corrupted.
    pub component: usize,
    /// The corrupted value is `value * scale + offset` — a bit-flip in the
    /// exponent is well modelled by a large `scale`.
    pub scale: f64,
    /// Additive part of the corruption.
    pub offset: f64,
}

/// Runs an async-(k) solve in which a silent error corrupts the iterate
/// mid-run, returning the stitched residual history (one entry per global
/// iteration, like a plain solve).
pub fn run_with_silent_error(
    solver: &AsyncBlockSolver,
    a: &CsrMatrix,
    rhs: &[f64],
    x0: &[f64],
    partition: &RowPartition,
    total_iters: usize,
    error: SilentError,
) -> Result<SolveResult> {
    assert!(error.at_iteration < total_iters, "corruption must strike mid-run");
    assert!(error.component < a.n_rows(), "component out of range");
    let phase1 = SolveOptions::fixed_iterations(error.at_iteration.max(1));
    let r1 = solver.solve(a, rhs, x0, partition, &phase1)?;

    let mut x = r1.x;
    x[error.component] = x[error.component] * error.scale + error.offset;
    let corrupted_rr = relative_residual(a, rhs, &x);

    let phase2 = SolveOptions::fixed_iterations(total_iters - error.at_iteration.max(1));
    let r2 = solver.solve(a, rhs, &x, partition, &phase2)?;

    let mut history = r1.history;
    history.push(corrupted_rr);
    history.extend(r2.history);
    Ok(SolveResult {
        x: r2.x,
        iterations: total_iters,
        converged: r2.converged,
        final_residual: r2.final_residual,
        history,
        fault: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_sparse::gen::random_diag_dominant;

    fn setup() -> (CsrMatrix, Vec<f64>, RowPartition) {
        let a = random_diag_dominant(64, 4, 1.5, 1);
        let rhs = a.mul_vec(&vec![1.0; 64]).unwrap();
        let p = RowPartition::uniform(64, 8).unwrap();
        (a, rhs, p)
    }

    #[test]
    fn corruption_shows_as_residual_spike_then_reconverges() {
        let (a, rhs, p) = setup();
        let solver = AsyncBlockSolver::async_k(3);
        let err = SilentError { at_iteration: 20, component: 17, scale: 1e6, offset: 0.0 };
        let r = run_with_silent_error(&solver, &a, &rhs, &vec![0.0; 64], &p, 100, err).unwrap();
        // residual right before the strike vs right after
        let before = r.history[19];
        let after = r.history[20];
        assert!(after > before * 1e3, "corruption must be visible: {before} -> {after}");
        // the convergent method eats the error eventually
        assert!(r.final_residual < 1e-6, "{}", r.final_residual);
        assert_eq!(r.history.len(), 101); // per-iteration + the spike sample
    }

    #[test]
    fn benign_corruption_changes_little() {
        let (a, rhs, p) = setup();
        let solver = AsyncBlockSolver::async_k(3);
        let err = SilentError { at_iteration: 30, component: 5, scale: 1.0, offset: 0.0 };
        let r = run_with_silent_error(&solver, &a, &rhs, &vec![0.0; 64], &p, 100, err).unwrap();
        assert!(r.final_residual < 1e-6, "{}", r.final_residual);
    }

    #[test]
    #[should_panic(expected = "corruption must strike mid-run")]
    fn late_corruption_rejected() {
        let (a, rhs, p) = setup();
        let solver = AsyncBlockSolver::async_k(1);
        let err = SilentError { at_iteration: 100, component: 0, scale: 2.0, offset: 0.0 };
        let _ = run_with_silent_error(&solver, &a, &rhs, &vec![0.0; 64], &p, 50, err);
    }
}
