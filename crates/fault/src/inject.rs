//! The core-failure model: components stop updating at `t0`, optionally
//! resuming after a recovery time.

use abr_gpu::UpdateFilter;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A reproducible failure scenario (paper §4.5's setup).
#[derive(Debug, Clone)]
pub struct FailureScenario {
    /// Global iteration at which the cores die.
    pub t0: usize,
    /// Fraction of components (cores) that die, in `[0, 1]`.
    pub fraction: f64,
    /// Recovery time `t_r` in global iterations after `t0`
    /// (`recovery-(t_r)`); `None` means the components are never
    /// reassigned.
    pub recovery: Option<usize>,
    /// Seed for choosing which components die.
    pub seed: u64,
}

impl FailureScenario {
    /// The paper's experiment: 25 % of the cores die at t0 = 10.
    pub fn paper_default(recovery: Option<usize>, seed: u64) -> Self {
        FailureScenario { t0: 10, fraction: 0.25, recovery, seed }
    }

    /// Lowers the scenario onto the live fault runtime: a
    /// [`FaultPlan`](abr_gpu::FaultPlan) that kills
    /// `round(fraction * n_workers)` real persistent workers at round
    /// `t0`, with the recovery delay passed through as the plan's
    /// recovery-(t_r). Where [`build`](Self::build) produces the
    /// *analytic* model (an [`UpdateFilter`] silently dropping updates on
    /// a schedule the solver never observes), `lower` produces the
    /// *realised* one — workers actually die, the heartbeat protocol
    /// detects them, and survivors adopt the orphaned blocks. The same
    /// seed picks the victims deterministically.
    pub fn lower(&self, n_workers: usize) -> abr_gpu::FaultPlan {
        let mut idx: Vec<usize> = (0..n_workers).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        idx.shuffle(&mut rng);
        let n_dead = ((n_workers as f64) * self.fraction).round() as usize;
        let mut plan = abr_gpu::FaultPlan::new();
        for &w in idx.iter().take(n_dead) {
            plan = plan.kill(w, self.t0);
        }
        if let Some(tr) = self.recovery {
            plan = plan.with_recovery(tr);
        }
        plan
    }

    /// Materialises the scenario for an `n`-component system.
    pub fn build(&self, n: usize) -> ComponentFailure {
        let mut idx: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        idx.shuffle(&mut rng);
        let n_dead = ((n as f64) * self.fraction).round() as usize;
        let mut dead = vec![false; n];
        for &i in idx.iter().take(n_dead) {
            dead[i] = true;
        }
        ComponentFailure {
            dead,
            from_round: self.t0,
            until_round: self.recovery.map(|tr| self.t0 + tr),
        }
    }
}

/// The realised failure: an [`UpdateFilter`] that drops the dead
/// components' updates during the outage window.
#[derive(Debug, Clone)]
pub struct ComponentFailure {
    /// Which components are owned by dead cores.
    pub dead: Vec<bool>,
    /// First global iteration of the outage.
    pub from_round: usize,
    /// One past the last outage iteration (`None` = forever).
    pub until_round: Option<usize>,
}

impl ComponentFailure {
    /// Number of dead components.
    pub fn n_dead(&self) -> usize {
        self.dead.iter().filter(|&&d| d).count()
    }

    /// Whether the outage is active at `round`.
    pub fn active_at(&self, round: usize) -> bool {
        round >= self.from_round && self.until_round.is_none_or(|u| round < u)
    }
}

impl UpdateFilter for ComponentFailure {
    fn component_enabled(&self, i: usize, round: usize) -> bool {
        !(self.dead[i] && self.active_at(round))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_core::{AsyncBlockSolver, ExecutorKind, SolveOptions};
    use abr_gpu::ThreadedOptions;
    use abr_sparse::gen::random_diag_dominant;
    use abr_sparse::RowPartition;

    #[test]
    fn scenario_kills_requested_fraction() {
        let f = FailureScenario::paper_default(Some(10), 3).build(200);
        assert_eq!(f.n_dead(), 50);
        assert!(f.active_at(10));
        assert!(f.active_at(19));
        assert!(!f.active_at(20), "recovered at t0 + tr");
        assert!(!f.active_at(5), "healthy before t0");
    }

    #[test]
    fn lowering_kills_the_requested_worker_fraction() {
        let s = FailureScenario::paper_default(Some(20), 3);
        let plan = s.lower(8);
        assert_eq!(plan.faults.len(), 2, "25% of 8 workers");
        assert!(plan.faults.iter().all(|f| f.at_round == 10));
        assert_eq!(plan.recovery_rounds, Some(20));
        let again = s.lower(8);
        let victims: Vec<usize> = plan.faults.iter().map(|f| f.worker).collect();
        let victims2: Vec<usize> = again.faults.iter().map(|f| f.worker).collect();
        assert_eq!(victims, victims2, "same seed, same victims");
        assert!(FailureScenario::paper_default(None, 3).lower(8).recovery_rounds.is_none());
    }

    #[test]
    fn no_recovery_is_forever() {
        let f = FailureScenario::paper_default(None, 3).build(100);
        assert!(f.active_at(10_000_000));
    }

    #[test]
    fn deterministic_for_seed() {
        let a = FailureScenario::paper_default(None, 7).build(100);
        let b = FailureScenario::paper_default(None, 7).build(100);
        assert_eq!(a.dead, b.dead);
        let c = FailureScenario::paper_default(None, 8).build(100);
        assert_ne!(a.dead, c.dead);
    }

    #[test]
    fn nonrecovering_run_stagnates_recovering_reconverges() {
        // The Figure 10 claim, end to end on a strictly diagonally
        // dominant system (fast convergence keeps the test cheap).
        let a = random_diag_dominant(100, 4, 1.5, 2);
        let n = 100;
        let rhs = a.mul_vec(&vec![1.0; n]).unwrap();
        let p = RowPartition::uniform(n, 10).unwrap();
        let solver = AsyncBlockSolver::async_k(5);
        let opts = SolveOptions::fixed_iterations(120);

        let healthy = solver.solve(&a, &rhs, &vec![0.0; n], &p, &opts).unwrap();

        let broken = FailureScenario::paper_default(None, 1).build(n);
        let r_broken = solver
            .solve_filtered(&a, &rhs, &vec![0.0; n], &p, &opts, &broken)
            .unwrap();

        let recovering = FailureScenario::paper_default(Some(20), 1).build(n);
        let r_rec = solver
            .solve_filtered(&a, &rhs, &vec![0.0; n], &p, &opts, &recovering)
            .unwrap();

        assert!(healthy.final_residual < 1e-8);
        assert!(
            r_broken.final_residual > 1e3 * healthy.final_residual.max(1e-15),
            "non-recovering run must stagnate far above the healthy floor: {} vs {}",
            r_broken.final_residual,
            healthy.final_residual
        );
        assert!(
            r_rec.final_residual < 1e-6,
            "recovering run must re-converge: {}",
            r_rec.final_residual
        );
        // ... with some delay relative to the healthy run.
        assert!(r_rec.final_residual >= healthy.final_residual * 0.99);
    }

    #[test]
    fn recovering_run_reconverges_on_the_persistent_threaded_path() {
        // The same Figure 10 recovery claim through the persistent-worker
        // executor: the failure filter sees absolute global iterations
        // (outage at rounds 10..30) while the concurrent monitor stops
        // the workers once the post-recovery iterate reaches tolerance.
        let a = random_diag_dominant(100, 4, 1.5, 2);
        let n = 100;
        let rhs = a.mul_vec(&vec![1.0; n]).unwrap();
        let p = RowPartition::uniform(n, 10).unwrap();
        let solver = AsyncBlockSolver {
            executor: ExecutorKind::Threaded(ThreadedOptions::default()),
            ..AsyncBlockSolver::async_k(5)
        };
        let opts = SolveOptions::to_tolerance(1e-8, 5_000);
        let recovering = FailureScenario::paper_default(Some(20), 1).build(n);
        let r = solver
            .solve_filtered(&a, &rhs, &vec![0.0; n], &p, &opts, &recovering)
            .unwrap();
        assert!(r.converged, "residual {}", r.final_residual);
        assert!(
            r.iterations < 5_000,
            "the concurrent monitor must stop the workers early: {}",
            r.iterations
        );
        assert!(r.iterations > 30, "cannot converge before the outage ends");
    }
}
