//! Checkpoint/restart for synchronous methods, and the comparison the
//! paper's §4.5 argues qualitatively: a synchronous solver must
//! checkpoint because any failure corrupts the lock-step state, and once
//! the mean time between failures drops below the checkpoint+restart
//! cycle "the application gets stuck in a state of constantly being
//! restarted" — while the asynchronous iteration just keeps converging
//! through the failure and pays only a recovery delay.
//!
//! Failures are deterministic here (every `mtbf` committed iterations)
//! so the comparison is reproducible; the *work* unit is one global
//! iteration equivalent.

use abr_core::convergence::relative_residual;
use abr_core::{jacobi, AsyncBlockSolver, SolveOptions};
use abr_sparse::{CsrMatrix, Result, RowPartition};

use crate::inject::ComponentFailure;

/// Cost parameters of the checkpointed synchronous solver, in units of
/// one global iteration's work.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointPolicy {
    /// Iterations between checkpoints.
    pub interval: usize,
    /// Work to write one checkpoint.
    pub checkpoint_cost: f64,
    /// Work to detect the failure and restart from the last checkpoint.
    pub restart_cost: f64,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy { interval: 10, checkpoint_cost: 2.0, restart_cost: 5.0 }
    }
}

/// Outcome of a resilience run.
#[derive(Debug, Clone)]
pub struct ResilienceOutcome {
    /// Total work spent (iterations + overheads), in iteration units.
    pub work: f64,
    /// Whether the target accuracy was reached within the work budget.
    pub converged: bool,
    /// Number of failures that struck during the run.
    pub failures: usize,
}

/// Runs synchronous Jacobi to `tol` under failures every `mtbf` committed
/// iterations. A failure destroys the in-flight state: the solver rolls
/// back to the last checkpoint and pays the restart cost. Gives up once
/// `work_budget` iterations' worth of work is spent.
pub fn checkpointed_jacobi(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    tol: f64,
    mtbf: usize,
    policy: CheckpointPolicy,
    work_budget: f64,
) -> Result<ResilienceOutcome> {
    assert!(mtbf >= 1, "mtbf in iterations must be at least 1");
    assert!(policy.interval >= 1, "checkpoint interval must be at least 1");
    let mut checkpoint = x0.to_vec();
    let mut x = x0.to_vec();
    let mut work = 0.0f64;
    let mut failures = 0usize;
    let mut since_checkpoint = 0usize;
    let mut since_failure = 0usize;
    let one_iter = SolveOptions { max_iters: 1, tol: 0.0, record_history: false, check_every: 1 };

    while work < work_budget {
        // one synchronous sweep
        let r = jacobi(a, b, &x, &one_iter)?;
        x = r.x;
        work += 1.0;
        since_checkpoint += 1;
        since_failure += 1;

        if since_failure >= mtbf {
            // the failure corrupts the lock-step state: roll back
            failures += 1;
            since_failure = 0;
            x.copy_from_slice(&checkpoint);
            work += policy.restart_cost;
            since_checkpoint = 0;
            continue;
        }
        if relative_residual(a, b, &x) <= tol {
            return Ok(ResilienceOutcome { work, converged: true, failures });
        }
        if since_checkpoint >= policy.interval {
            checkpoint.copy_from_slice(&x);
            work += policy.checkpoint_cost;
            since_checkpoint = 0;
        }
    }
    Ok(ResilienceOutcome { work, converged: false, failures })
}

/// Runs async-(k) to `tol` under the same failure process, without any
/// checkpointing: every `mtbf` global iterations, 25 % of the components
/// go dark for `recovery` iterations (reassignment), then resume. Work is
/// just the global iterations spent.
#[allow(clippy::too_many_arguments)] // scenario knobs; mirrors checkpointed_jacobi's signature
pub fn checkpoint_free_async(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    partition: &RowPartition,
    tol: f64,
    mtbf: usize,
    recovery: usize,
    seed: u64,
    work_budget: f64,
) -> Result<ResilienceOutcome> {
    assert!(mtbf >= 1, "mtbf in iterations must be at least 1");
    let solver = AsyncBlockSolver::async_k(5);
    let n = a.n_rows();
    let max_iters = work_budget as usize;
    // periodic outages: the dead set goes dark during the
    // [f*mtbf, f*mtbf + recovery) window after every strike f >= 1
    struct PeriodicOutage {
        failure: ComponentFailure,
        mtbf: usize,
        recovery: usize,
    }
    impl abr_gpu::UpdateFilter for PeriodicOutage {
        fn component_enabled(&self, i: usize, round: usize) -> bool {
            if !self.failure.dead[i] {
                return true;
            }
            // in an outage window following each failure strike?
            let phase = round % self.mtbf;
            let had_strike = round >= self.mtbf;
            !(had_strike && phase < self.recovery)
        }
    }
    let scenario = crate::FailureScenario {
        t0: 0, // windows are driven by the periodic phase instead
        fraction: 0.25,
        recovery: None,
        seed,
    };
    let filter = PeriodicOutage { failure: scenario.build(n), mtbf, recovery };
    let opts = SolveOptions { max_iters, tol, record_history: false, check_every: 5 };
    let r = solver.solve_filtered(a, b, x0, partition, &opts, &filter)?;
    let failures = if r.iterations >= mtbf { (r.iterations - 1) / mtbf } else { 0 };
    Ok(ResilienceOutcome { work: r.iterations as f64, converged: r.converged, failures })
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_sparse::gen::random_diag_dominant;

    fn system() -> (CsrMatrix, Vec<f64>, Vec<f64>, RowPartition) {
        let a = random_diag_dominant(120, 4, 1.5, 9);
        let n = a.n_rows();
        let b = a.mul_vec(&vec![1.0; n]).unwrap();
        let p = RowPartition::uniform(n, 12).unwrap();
        (a, b, vec![0.0; n], p)
    }

    #[test]
    fn no_failures_costs_only_checkpoints() {
        let (a, b, x0, _) = system();
        // mtbf far beyond convergence: pure checkpoint overhead
        let r = checkpointed_jacobi(&a, &b, &x0, 1e-9, 100_000, CheckpointPolicy::default(), 500.0)
            .unwrap();
        assert!(r.converged);
        assert_eq!(r.failures, 0);
        // converges in ~40 sweeps + ceil(40/10)-ish checkpoints * 2
        assert!(r.work < 80.0, "work {}", r.work);
    }

    #[test]
    fn moderate_failures_slow_but_allow_convergence() {
        let (a, b, x0, _) = system();
        let healthy = checkpointed_jacobi(
            &a, &b, &x0, 1e-9, 100_000, CheckpointPolicy::default(), 2_000.0,
        )
        .unwrap();
        // this system converges in ~20 sweeps, so strike at 12 with
        // checkpoints every 5
        let policy = CheckpointPolicy { interval: 5, checkpoint_cost: 2.0, restart_cost: 5.0 };
        let faulty = checkpointed_jacobi(&a, &b, &x0, 1e-9, 12, policy, 2_000.0).unwrap();
        assert!(faulty.converged);
        assert!(faulty.failures >= 1);
        assert!(faulty.work > healthy.work, "{} vs {}", faulty.work, healthy.work);
    }

    #[test]
    fn mtbf_below_restart_cycle_livelocks_synchronous_solver() {
        // The paper's exascale scenario: a failure lands before the work
        // lost since the last checkpoint can be re-done, forever.
        let (a, b, x0, _) = system();
        let policy = CheckpointPolicy { interval: 10, checkpoint_cost: 2.0, restart_cost: 5.0 };
        let r = checkpointed_jacobi(&a, &b, &x0, 1e-9, 4, policy, 1_000.0).unwrap();
        assert!(!r.converged, "mtbf 4 < interval 10: every checkpoint window is cut short");
        assert!(r.failures > 50, "constantly restarting: {} failures", r.failures);
    }

    #[test]
    fn async_survives_the_same_failure_rate_without_checkpoints() {
        let (a, b, x0, p) = system();
        // the async method under an even harsher process (25 % of
        // components dark for 3 of every 4 iterations)
        let r = checkpoint_free_async(&a, &b, &x0, &p, 1e-9, 4, 3, 5, 2_000.0).unwrap();
        assert!(r.converged, "async must converge through failures");
        assert!(r.failures > 5);
    }

    #[test]
    fn async_total_work_far_below_checkpointed_sync_under_stress() {
        let (a, b, x0, p) = system();
        let sync = checkpointed_jacobi(
            &a,
            &b,
            &x0,
            1e-9,
            8,
            CheckpointPolicy::default(),
            3_000.0,
        )
        .unwrap();
        let asynchronous =
            checkpoint_free_async(&a, &b, &x0, &p, 1e-9, 8, 4, 5, 3_000.0).unwrap();
        assert!(asynchronous.converged);
        // either sync never finished, or it burned far more work
        if sync.converged {
            assert!(
                asynchronous.work * 2.0 < sync.work,
                "async {} vs sync {}",
                asynchronous.work,
                sync.work
            );
        }
    }
}
