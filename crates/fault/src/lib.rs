#![warn(missing_docs)]

//! # abr-fault
//!
//! Fault injection, recovery, and silent-error detection for the
//! block-asynchronous relaxation method — the §4.5 experiments of the
//! paper.
//!
//! The failure scenario modelled is the paper's: on a many-core system a
//! set of cores dies at global iteration `t0`, so the components they own
//! stop being updated. Either the runtime detects the failure and
//! reassigns those components after a recovery time `t_r`
//! (*recovery-(t_r)*), or it never does (*no recovery*). Because the
//! asynchronous iteration tolerates arbitrary update delays, the
//! recovering runs re-converge to the true solution with a bounded delay
//! (Figure 10 / Table 6), while the non-recovering runs stagnate at a
//! residual plateau determined by the frozen components.
//!
//! [`silent`] additionally models *silent* (undetected) data corruption
//! and the convergence-delay detector the paper sketches.
//!
//! Two realisations of the same scenario live in the workspace. The
//! [`inject`] types here are the *analytic* model: an
//! [`UpdateFilter`](inject::UpdateFilter) silently skips the doomed
//! components of a chunked run, so outage and recovery are simulated by
//! filtering updates — nothing actually dies. The *realised* model is
//! `abr_gpu::FaultPlan`, which kills, hangs, or poisons live persistent
//! workers mid-solve and lets the executor's heartbeat detector and
//! adoption protocol perform the recovery.
//! [`FailureScenario::lower`](inject::FailureScenario::lower) bridges
//! them: it maps one scenario onto a concrete worker count so the two
//! layers reproduce the same §4.5 sweep (see the `recovery` experiment
//! and DESIGN.md §8).

pub mod checkpoint;
pub mod detect;
pub mod inject;
pub mod silent;

pub use checkpoint::{checkpoint_free_async, checkpointed_jacobi, CheckpointPolicy};
pub use detect::ConvergenceMonitor;
pub use inject::{ComponentFailure, FailureScenario};
pub use silent::run_with_silent_error;
