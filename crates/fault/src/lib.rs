#![warn(missing_docs)]

//! # abr-fault
//!
//! Fault injection, recovery, and silent-error detection for the
//! block-asynchronous relaxation method — the §4.5 experiments of the
//! paper.
//!
//! The failure scenario modelled is the paper's: on a many-core system a
//! set of cores dies at global iteration `t0`, so the components they own
//! stop being updated. Either the runtime detects the failure and
//! reassigns those components after a recovery time `t_r`
//! (*recovery-(t_r)*), or it never does (*no recovery*). Because the
//! asynchronous iteration tolerates arbitrary update delays, the
//! recovering runs re-converge to the true solution with a bounded delay
//! (Figure 10 / Table 6), while the non-recovering runs stagnate at a
//! residual plateau determined by the frozen components.
//!
//! [`silent`] additionally models *silent* (undetected) data corruption
//! and the convergence-delay detector the paper sketches.

pub mod checkpoint;
pub mod detect;
pub mod inject;
pub mod silent;

pub use checkpoint::{checkpoint_free_async, checkpointed_jacobi, CheckpointPolicy};
pub use detect::ConvergenceMonitor;
pub use inject::{ComponentFailure, FailureScenario};
pub use silent::run_with_silent_error;
