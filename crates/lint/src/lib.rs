//! The workspace's static memory-model lint, promoted out of
//! `tests/lint_sync.rs` into a crate so it runs both as a tier-1 test
//! and as a local tool (`cargo run -p abr-lint`). Four rules:
//!
//! 1. **No direct `std` atomics outside the facade.** All shared-memory
//!    protocols must go through `abr_sync` (`crates/sync`), or the model
//!    explorer and the happens-before sanitizer cannot see them.
//! 2. **Every memory-ordering annotation is justified.** Each use of an
//!    `Ordering::` constant must carry a `sync:` comment nearby saying
//!    *why* that ordering suffices.
//! 3. **Every `unsafe` carries a `SAFETY:` comment** in the lines above.
//! 4. **Declared-ordering conformance.** Every atomic call site in the
//!    product sources (`src/`, `crates/*/src/`) is tokenized into
//!    `(file, operation, orderings)` and the aggregate is diffed against
//!    the machine-readable table in DESIGN.md §7 — the documented
//!    memory-model contract and the source can no longer drift apart
//!    silently. Regenerate the table with
//!    `cargo run -p abr-lint -- --fix-table` after an audited change.
//!
//! The scan walks `src/`, `tests/`, `crates/`, and `examples/` (the old
//! test-embedded lint missed `examples/` entirely). `crates/sync` (the
//! facade's own implementation), `crates/shims` (vendored stubs), and
//! `crates/lint` (this crate: its source names the very tokens it scans
//! for) are exempt from rules 1–3 and outside rule 4's product scope;
//! tests are also outside rule 4 (they deliberately build broken
//! protocol shapes with the orderings under audit as parameters).
//!
//! The scan is deliberately dumb — raw line tokens, no parsing, no
//! network, no dependencies — so it runs in the tier-1 suite
//! unconditionally. Match patterns are assembled at runtime so source
//! files of the lint itself never match them.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github"];

/// Directories (relative to the workspace root) the lint walks.
const SCAN_ROOTS: &[&str] = &["src", "tests", "crates", "examples"];

/// The DESIGN.md markers delimiting the machine-readable ordering table.
pub const TABLE_BEGIN: &str = "<!-- ordering-table:begin -->";
/// End marker, see [`TABLE_BEGIN`].
pub const TABLE_END: &str = "<!-- ordering-table:end -->";

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// 1-based line, or 0 for file-level findings.
    pub line: usize,
    /// What went wrong and how to fix it.
    pub msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "{}:{}: {}", self.file, self.line, self.msg)
        } else {
            write!(f, "{}: {}", self.file, self.msg)
        }
    }
}

/// An aggregated atomic call-site key: workspace-relative file, the
/// operation (`load`, `store`, `fetch_add`, …, `fence`), and the
/// `Ordering::` arguments in call order (comma-joined for CAS pairs).
pub type SiteKey = (String, String, String);

/// Walks up from this crate's manifest dir to the directory whose
/// `Cargo.toml` declares `[workspace]` — the scan root for the binary.
pub fn workspace_root() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            panic!("no [workspace] Cargo.toml above {}", env!("CARGO_MANIFEST_DIR"));
        }
    }
}

fn rust_files_into(root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(root) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            rust_files_into(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Every `.rs` file under the scan roots, sorted.
pub fn rust_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for dir in SCAN_ROOTS {
        rust_files_into(&root.join(dir), &mut files);
    }
    files.sort();
    files
}

fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/")
}

/// Whether `rel` is exempt from rules 1–3 (facade internals, vendored
/// shims, and this lint itself).
fn exempt(rel: &str) -> bool {
    rel.starts_with("crates/sync/")
        || rel.starts_with("crates/shims/")
        || rel.starts_with("crates/lint/")
}

/// Whether `rel` is in rule 4's product scope: non-test sources of the
/// root package and the workspace crates, minus the exempt crates.
fn conformance_scope(rel: &str) -> bool {
    if exempt(rel) {
        return false;
    }
    if rel.starts_with("src/") {
        return true;
    }
    if let Some(rest) = rel.strip_prefix("crates/") {
        if let Some((_, tail)) = rest.split_once('/') {
            return tail.starts_with("src/");
        }
    }
    false
}

/// The code part of a line: everything before a line comment. Naive
/// (a `//` inside a string literal truncates early), which can only
/// under-report, never false-positive.
fn code_of(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Rules 1–3 over every scanned file. Mirrors the original test lint,
/// with the scan extended to `examples/`.
pub fn check_style(root: &Path) -> Vec<Violation> {
    // Assembled so this crate's own source never matches them (and the
    // lint exempts itself anyway — belt and braces, as before).
    let raw_atomics: String = ["std::", "sync::", "atomic"].concat();
    let ordering_use: String = ["Ordering", "::"].concat();
    // The full comment form: a bare `sync:` would also match the
    // `sync::` segment of a raw std atomics path.
    let sync_comment: String = ["//", " sync", ":"].concat();
    let unsafe_token: String = ["un", "safe"].concat();
    let safety_comment: String = ["SAFETY", ":"].concat();

    let is_word_boundary =
        |b: Option<u8>| b.is_none_or(|c| !(c.is_ascii_alphanumeric() || c == b'_'));

    let mut violations = Vec::new();
    for path in rust_files(root) {
        let rel = rel_of(root, &path);
        if exempt(&rel) {
            continue;
        }
        let Ok(text) = fs::read_to_string(&path) else { continue };
        let lines: Vec<&str> = text.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            let code = code_of(line);

            if code.contains(raw_atomics.as_str()) {
                violations.push(Violation {
                    file: rel.clone(),
                    line: i + 1,
                    msg: format!(
                        "direct {raw_atomics} use — go through the abr_sync facade \
                         so the model explorer and hb sanitizer can see the operation"
                    ),
                });
            }

            if code.contains(ordering_use.as_str()) {
                // Justified when a `sync:` comment sits on the same line,
                // on the line or two below (trailing `^` notes), or in the
                // comment block above the *statement* — found by walking
                // upward through continuation lines (code not ending a
                // statement: multi-line CAS argument lists and the like)
                // and contiguous comment lines, stopping at a blank line
                // or a completed statement.
                let hi = (i + 2).min(lines.len() - 1);
                let mut justified =
                    lines[i..=hi].iter().any(|l| l.contains(sync_comment.as_str()));
                let mut j = i;
                let mut walked = 0;
                while !justified && j > 0 && walked < 16 {
                    j -= 1;
                    walked += 1;
                    let raw = lines[j];
                    if raw.contains(sync_comment.as_str()) {
                        justified = true;
                        break;
                    }
                    let c = code_of(raw).trim_end();
                    if c.trim().is_empty() {
                        if !raw.trim_start().starts_with("//") {
                            break; // blank line: left the statement region
                        }
                        continue; // pure comment line: keep walking
                    }
                    match c.as_bytes().last() {
                        // A finished statement or block above: stop.
                        Some(b';') | Some(b'{') | Some(b'}') => break,
                        // Continuation (`,`, `(`, operators…): keep walking.
                        _ => {}
                    }
                }
                if !justified {
                    violations.push(Violation {
                        file: rel.clone(),
                        line: i + 1,
                        msg: format!(
                            "`{ordering_use}` without a `{sync_comment}` justification \
                             comment nearby"
                        ),
                    });
                }
            }

            let mut from = 0;
            while let Some(off) = code[from..].find(unsafe_token.as_str()) {
                let at = from + off;
                let before = code.as_bytes()[..at].last().copied();
                let after = code.as_bytes().get(at + unsafe_token.len()).copied();
                if is_word_boundary(before) && is_word_boundary(after) {
                    let lo = i.saturating_sub(4);
                    let covered =
                        lines[lo..=i].iter().any(|l| l.contains(safety_comment.as_str()));
                    if !covered {
                        violations.push(Violation {
                            file: rel.clone(),
                            line: i + 1,
                            msg: format!("`{unsafe_token}` without a `{safety_comment}` comment"),
                        });
                    }
                    break;
                }
                from = at + unsafe_token.len();
            }
        }
    }
    violations
}

/// The fused residual-slot path must stay lock-free and keep its
/// publish/reduce ordering pairing: workers publish on every committed
/// block update, so a lock (or a stray SeqCst "just in case") on that
/// path would put the monitor back onto the workers' critical path.
pub fn check_residual_lock_free(root: &Path) -> Vec<Violation> {
    let rel = "crates/gpu/src/residual.rs";
    let Ok(text) = fs::read_to_string(root.join(rel)) else {
        return vec![Violation {
            file: rel.into(),
            line: 0,
            msg: "missing — the fused monitor depends on it".into(),
        }];
    };
    let code: String = text.lines().map(code_of).collect::<Vec<_>>().join("\n");
    let ordering: String = ["Ordering", "::"].concat();
    let mut violations = Vec::new();
    for banned in
        ["Mutex", "RwLock", "parking_lot", ".lock()", "Condvar", &[&ordering, "SeqCst"].concat()]
    {
        if code.contains(banned) {
            violations.push(Violation {
                file: rel.into(),
                line: 0,
                msg: format!(
                    "uses `{banned}` — the slot publish/reduce path must stay lock-free"
                ),
            });
        }
    }
    let release = [&ordering, "Release"].concat();
    let acquire = [&ordering, "Acquire"].concat();
    if !(code.contains(&release) && code.contains(&acquire)) {
        violations.push(Violation {
            file: rel.into(),
            line: 0,
            msg: "lost its Release-publish / Acquire-reduce pairing".into(),
        });
    }
    violations
}

/// The atomic operations rule 4 tokenizes. Longer patterns first so
/// `compare_exchange_weak` is not claimed by `compare_exchange`.
fn op_patterns() -> Vec<(String, &'static str)> {
    let dotted = |m: &str| [".", m, "("].concat();
    vec![
        (dotted("compare_exchange_weak"), "compare_exchange_weak"),
        (dotted("compare_exchange"), "compare_exchange"),
        (dotted("fetch_add"), "fetch_add"),
        (dotted("fetch_sub"), "fetch_sub"),
        (dotted("fetch_max"), "fetch_max"),
        (dotted("load"), "load"),
        (dotted("store"), "store"),
        (["fence", "("].concat(), "fence"),
    ]
}

/// Collects the `Ordering::` constants inside the parenthesized argument
/// list starting at `open` (the index of the `(`); returns `None` when
/// the parens never close (truncated scan) or no ordering is named.
fn orderings_in_call(code: &str, open: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut depth = 0usize;
    let mut end = None;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    end = Some(i);
                    break;
                }
            }
            _ => {}
        }
    }
    let body = &code[open..end?];
    let pat: String = ["Ordering", "::"].concat();
    let mut found = Vec::new();
    let mut from = 0;
    while let Some(off) = body[from..].find(pat.as_str()) {
        let start = from + off + pat.len();
        let ident: String = body[start..]
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if !ident.is_empty() {
            found.push(ident);
        }
        from = start;
    }
    if found.is_empty() {
        None
    } else {
        Some(found.join(","))
    }
}

/// Rule 4's scan: every atomic call site in the product sources,
/// aggregated to `(file, op, orderings) -> count`.
pub fn scan_ordering_sites(root: &Path) -> BTreeMap<SiteKey, usize> {
    let mut sites = BTreeMap::new();
    for path in rust_files(root) {
        let rel = rel_of(root, &path);
        if !conformance_scope(&rel) {
            continue;
        }
        let Ok(text) = fs::read_to_string(&path) else { continue };
        let code: String = text.lines().map(code_of).collect::<Vec<_>>().join("\n");
        for (pat, op) in op_patterns() {
            let mut from = 0;
            while let Some(off) = code[from..].find(pat.as_str()) {
                let at = from + off;
                let open = at + pat.len() - 1;
                // `.compare_exchange(` must not also count as a prefix
                // match inside `.compare_exchange_weak(`: the pattern
                // includes the `(`, so prefixes cannot match.
                if let Some(ords) = orderings_in_call(&code, open) {
                    *sites.entry((rel.clone(), op.to_string(), ords)).or_insert(0) += 1;
                }
                from = at + pat.len();
            }
        }
    }
    sites
}

/// Renders the scan as the DESIGN.md markdown table (markers included).
pub fn render_table(sites: &BTreeMap<SiteKey, usize>) -> String {
    let mut out = String::new();
    out.push_str(TABLE_BEGIN);
    out.push('\n');
    out.push_str("| file | op | orderings | count |\n");
    out.push_str("|------|----|-----------|-------|\n");
    for ((file, op, ords), count) in sites {
        let _ = writeln!(out, "| {file} | {op} | {ords} | {count} |");
    }
    out.push_str(TABLE_END);
    out
}

/// Parses the declared table out of DESIGN.md's marker block.
pub fn parse_declared_table(design: &str) -> Result<BTreeMap<SiteKey, usize>, String> {
    let begin = design
        .find(TABLE_BEGIN)
        .ok_or_else(|| format!("DESIGN.md has no `{TABLE_BEGIN}` marker"))?;
    let end = design[begin..]
        .find(TABLE_END)
        .map(|i| begin + i)
        .ok_or_else(|| format!("DESIGN.md has no `{TABLE_END}` marker"))?;
    let mut declared = BTreeMap::new();
    for line in design[begin..end].lines() {
        let line = line.trim();
        if !line.starts_with('|') || line.contains("---") {
            continue;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() != 4 || cells[0] == "file" {
            continue;
        }
        let count: usize = cells[3]
            .parse()
            .map_err(|_| format!("bad count in ordering-table row: {line}"))?;
        declared.insert((cells[0].into(), cells[1].into(), cells[2].into()), count);
    }
    if declared.is_empty() {
        return Err("DESIGN.md ordering table is empty".into());
    }
    Ok(declared)
}

/// Rule 4: diff the scanned sites against the table declared in
/// DESIGN.md, both directions.
pub fn check_conformance(root: &Path) -> Vec<Violation> {
    let design_path = root.join("DESIGN.md");
    let design = match fs::read_to_string(&design_path) {
        Ok(d) => d,
        Err(e) => {
            return vec![Violation {
                file: "DESIGN.md".into(),
                line: 0,
                msg: format!("unreadable: {e}"),
            }]
        }
    };
    let declared = match parse_declared_table(&design) {
        Ok(d) => d,
        Err(msg) => return vec![Violation { file: "DESIGN.md".into(), line: 0, msg }],
    };
    let actual = scan_ordering_sites(root);
    let fix = "regenerate with `cargo run -p abr-lint -- --fix-table` once the change is audited";
    let mut violations = Vec::new();
    for (key, &n) in &actual {
        match declared.get(key) {
            Some(&m) if m == n => {}
            Some(&m) => violations.push(Violation {
                file: key.0.clone(),
                line: 0,
                msg: format!(
                    "{} with orderings [{}] appears {n}x but DESIGN.md §7 declares {m}x — {fix}",
                    key.1, key.2
                ),
            }),
            None => violations.push(Violation {
                file: key.0.clone(),
                line: 0,
                msg: format!(
                    "undeclared atomic site: {} with orderings [{}] ({n}x) is not in the \
                     DESIGN.md §7 table — {fix}",
                    key.1, key.2
                ),
            }),
        }
    }
    for (key, &m) in &declared {
        if !actual.contains_key(key) {
            violations.push(Violation {
                file: key.0.clone(),
                line: 0,
                msg: format!(
                    "stale declaration: DESIGN.md §7 declares {} with orderings [{}] ({m}x) \
                     but the source no longer has it — {fix}",
                    key.1, key.2
                ),
            });
        }
    }
    violations
}

/// Rewrites DESIGN.md's table block in place from a fresh scan. Returns
/// whether the file changed.
pub fn fix_table(root: &Path) -> Result<bool, String> {
    let design_path = root.join("DESIGN.md");
    let design =
        fs::read_to_string(&design_path).map_err(|e| format!("DESIGN.md unreadable: {e}"))?;
    let begin = design
        .find(TABLE_BEGIN)
        .ok_or_else(|| format!("DESIGN.md has no `{TABLE_BEGIN}` marker"))?;
    let end = design[begin..]
        .find(TABLE_END)
        .map(|i| begin + i + TABLE_END.len())
        .ok_or_else(|| format!("DESIGN.md has no `{TABLE_END}` marker"))?;
    let table = render_table(&scan_ordering_sites(root));
    let updated = [&design[..begin], table.as_str(), &design[end..]].concat();
    if updated == design {
        return Ok(false);
    }
    fs::write(&design_path, updated).map_err(|e| format!("DESIGN.md unwritable: {e}"))?;
    Ok(true)
}

/// Runs every rule; `Err` carries the full human-readable report.
pub fn run_all(root: &Path) -> Result<(), String> {
    let files = rust_files(root);
    if files.len() <= 20 {
        return Err(format!(
            "lint walked only {} files — the scan roots moved?",
            files.len()
        ));
    }
    let mut violations = check_style(root);
    violations.extend(check_residual_lock_free(root));
    violations.extend(check_conformance(root));
    if violations.is_empty() {
        Ok(())
    } else {
        let mut report =
            format!("sync lint found {} violation(s):\n", violations.len());
        for v in &violations {
            let _ = writeln!(report, "{v}");
        }
        Err(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_extracts_cas_ordering_pairs_across_lines() {
        let code = "x.compare_exchange_weak(\n    a,\n    b,\n    Ordering::Acquire,\n    \
                    Ordering::Relaxed,\n)";
        let pat: String = [".", "compare_exchange_weak", "("].concat();
        let open = code.find(pat.as_str()).unwrap() + pat.len() - 1;
        assert_eq!(orderings_in_call(code, open).as_deref(), Some("Acquire,Relaxed"));
    }

    #[test]
    fn tokenizer_ignores_calls_without_orderings() {
        let code = "v.load(idx)";
        let open = code.find('(').unwrap();
        assert_eq!(orderings_in_call(code, open), None);
    }

    #[test]
    fn table_round_trips_through_render_and_parse() {
        let mut sites = BTreeMap::new();
        sites.insert(("crates/gpu/src/a.rs".into(), "load".into(), "Acquire".into()), 3);
        sites.insert(
            ("crates/gpu/src/b.rs".into(), "compare_exchange".into(), "AcqRel,Acquire".into()),
            1,
        );
        let table = render_table(&sites);
        let parsed = parse_declared_table(&table).unwrap();
        assert_eq!(parsed, sites);
    }

    #[test]
    fn scope_covers_product_sources_only() {
        assert!(conformance_scope("src/lib.rs"));
        assert!(conformance_scope("crates/gpu/src/persistent.rs"));
        assert!(!conformance_scope("crates/gpu/tests/foo.rs"));
        assert!(!conformance_scope("tests/model_hb.rs"));
        assert!(!conformance_scope("crates/sync/src/real.rs"));
        assert!(!conformance_scope("crates/shims/rand/src/lib.rs"));
        assert!(!conformance_scope("crates/lint/src/lib.rs"));
        assert!(!conformance_scope("examples/quickstart/main.rs"));
    }

    #[test]
    fn service_crate_is_in_lint_scope() {
        // The daemon is concurrency-bearing product code: rules 1-3
        // apply (not exempt) and rule 4 audits its sources. Its tests
        // stay outside rule 4 like every other test tree.
        assert!(!exempt("crates/service/src/daemon.rs"));
        assert!(conformance_scope("crates/service/src/daemon.rs"));
        assert!(conformance_scope("crates/service/src/cache.rs"));
        assert!(!conformance_scope("crates/service/tests/service_soak.rs"));
        // The daemon's shutdown flag goes through the facade; the scan
        // must actually see those sites, or the §7 table silently loses
        // the service layer.
        let sites = scan_ordering_sites(&workspace_root());
        assert!(
            sites.keys().any(|(f, _, _)| f == "crates/service/src/daemon.rs"),
            "daemon.rs atomic sites missing from the rule-4 scan"
        );
    }

    #[test]
    fn workspace_scan_finds_the_known_protocol_sites() {
        let root = workspace_root();
        let sites = scan_ordering_sites(&root);
        // The stop flag's Release store and the residual slots' Release
        // publish are anchor sites this scan must never lose sight of.
        assert!(
            sites
                .iter()
                .any(|((f, op, ords), _)| f == "crates/gpu/src/residual.rs"
                    && op == "fetch_add"
                    && ords == "Release"),
            "residual.rs Release publish not found: {sites:?}"
        );
        assert!(
            sites.keys().any(|(f, _, _)| f == "crates/gpu/src/persistent.rs"),
            "persistent.rs has no scanned sites"
        );
    }
}
