//! `cargo run -p abr-lint` — the workspace memory-model lint as a local
//! tool. Modes:
//!
//! * no args: run every rule (style, residual lock-freedom, ordering
//!   conformance) and exit non-zero on any violation;
//! * `--emit-table`: print the ordering table a fresh scan produces;
//! * `--fix-table`: rewrite DESIGN.md's table block in place.

use std::process::ExitCode;

fn main() -> ExitCode {
    let root = abr_lint::workspace_root();
    let mode = std::env::args().nth(1);
    match mode.as_deref() {
        Some("--emit-table") => {
            println!("{}", abr_lint::render_table(&abr_lint::scan_ordering_sites(&root)));
            ExitCode::SUCCESS
        }
        Some("--fix-table") => match abr_lint::fix_table(&root) {
            Ok(true) => {
                println!("DESIGN.md ordering table regenerated");
                ExitCode::SUCCESS
            }
            Ok(false) => {
                println!("DESIGN.md ordering table already current");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        Some(other) => {
            eprintln!("unknown flag {other}; use --emit-table or --fix-table");
            ExitCode::FAILURE
        }
        None => match abr_lint::run_all(&root) {
            Ok(()) => {
                println!("sync lint clean ({} scan roots)", 4);
                ExitCode::SUCCESS
            }
            Err(report) => {
                eprintln!("{report}");
                ExitCode::FAILURE
            }
        },
    }
}
