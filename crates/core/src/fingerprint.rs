//! FNV-1a fingerprints of solve inputs — the cache-key primitive of the
//! solve service.
//!
//! A result cache keyed on "the same system" needs a cheap, stable,
//! structure-sensitive digest of `(A, b, tolerance, scheme)`. FNV-1a over
//! the matrix's shape, sparsity pattern, and value *bit patterns* (not
//! rounded decimals — two matrices that differ in one ULP are different
//! systems) is exactly that: one linear pass, no allocation, no
//! dependency. It is a fingerprint for cache lookup and single-flight
//! coalescing, **not** a cryptographic commitment — a caller that needs
//! adversarial collision resistance needs a different tool.

use abr_sparse::CsrMatrix;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher over raw bytes.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(FNV_OFFSET)
    }

    /// Folds raw bytes into the digest.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Folds a `u64` (little-endian bytes) into the digest.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Folds a `usize` (widened to `u64` so the digest is identical on
    /// 32- and 64-bit hosts) into the digest.
    pub fn write_usize(&mut self, v: usize) -> &mut Self {
        self.write_u64(v as u64)
    }

    /// Folds an `f64`'s bit pattern into the digest. `-0.0` and `0.0`
    /// hash differently, as do distinct NaN payloads — bit identity is
    /// the equality the cache promises.
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Fingerprint of a CSR matrix: shape, row pointers, column indices, and
/// value bit patterns, in storage order. Two matrices fingerprint equal
/// iff their CSR representations are byte-identical (same pattern, same
/// entry order, same value bits).
pub fn fingerprint_matrix(a: &CsrMatrix) -> u64 {
    let mut h = Fnv1a::new();
    h.write_usize(a.n_rows()).write_usize(a.n_cols()).write_usize(a.nnz());
    for &p in a.row_ptr() {
        h.write_usize(p);
    }
    for &c in a.col_idx() {
        h.write_usize(c);
    }
    for &v in a.values() {
        h.write_f64(v);
    }
    h.finish()
}

/// Fingerprint of a dense vector (length + value bit patterns) — the
/// right-hand-side / initial-guess half of the cache key.
pub fn fingerprint_vec(v: &[f64]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_usize(v.len());
    for &x in v {
        h.write_f64(x);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_sparse::gen;

    #[test]
    fn equal_inputs_fingerprint_equal() {
        let a = gen::laplacian_2d_5pt(6);
        let b = gen::laplacian_2d_5pt(6);
        assert_eq!(fingerprint_matrix(&a), fingerprint_matrix(&b));
        assert_eq!(fingerprint_vec(&[1.0, 2.0]), fingerprint_vec(&[1.0, 2.0]));
    }

    #[test]
    fn value_and_structure_changes_move_the_fingerprint() {
        let a = gen::laplacian_2d_5pt(6);
        let fp = fingerprint_matrix(&a);
        let mut b = gen::laplacian_2d_5pt(6);
        b.values_mut()[0] += 1e-13; // one ULP-ish nudge is a new system
        assert_ne!(fp, fingerprint_matrix(&b));
        assert_ne!(fp, fingerprint_matrix(&gen::laplacian_2d_5pt(7)));
    }

    #[test]
    fn vector_fingerprint_is_bit_sensitive_and_length_sensitive() {
        assert_ne!(fingerprint_vec(&[0.0]), fingerprint_vec(&[-0.0]));
        assert_ne!(fingerprint_vec(&[]), fingerprint_vec(&[0.0]));
        // Length is folded in, so a zero is not a no-op prefix.
        assert_ne!(fingerprint_vec(&[0.0, 1.0]), fingerprint_vec(&[1.0]));
    }
}
