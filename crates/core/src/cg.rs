//! The conjugate-gradient baseline (Saad, *Iterative Methods for Sparse
//! Linear Systems*, alg. 6.18) — the "highly tuned GPU CG" the paper's
//! §4.4 compares the block-asynchronous method against.

use crate::convergence::{check_system, relative_residual, SolveOptions, SolveResult};
use abr_sparse::{blas1, CsrMatrix, Result};

/// Solves the SPD system `A x = b` with plain (unpreconditioned) CG.
pub fn conjugate_gradient(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    opts: &SolveOptions,
) -> Result<SolveResult> {
    check_system(a, b, x0);
    let n = a.n_rows();
    let mut x = x0.to_vec();
    let mut r = a.residual(b, &x)?;
    let mut p = r.clone();
    let mut ap = vec![0.0; n];
    let nb = blas1::norm2(b).max(f64::MIN_POSITIVE);
    let mut rs = blas1::dot(&r, &r);

    let mut history = Vec::new();
    let mut iterations = 0;
    let mut converged = rs.sqrt() / nb <= opts.tol && opts.tol > 0.0;

    while iterations < opts.max_iters && !converged {
        a.spmv(&p, &mut ap)?;
        let pap = blas1::dot(&p, &ap);
        if pap <= 0.0 || !pap.is_finite() {
            // A not SPD along p (or breakdown): report what we have.
            break;
        }
        let alpha = rs / pap;
        blas1::axpy(alpha, &p, &mut x);
        blas1::axpy(-alpha, &ap, &mut r);
        let rs_new = blas1::dot(&r, &r);
        let beta = rs_new / rs;
        blas1::xpay(&r, beta, &mut p);
        rs = rs_new;
        iterations += 1;

        let rr = rs.sqrt() / nb;
        if opts.record_history {
            history.push(rr);
        }
        if opts.tol > 0.0 && rr <= opts.tol {
            converged = true;
        }
        if !rr.is_finite() {
            break;
        }
    }

    let final_residual = relative_residual(a, b, &x);
    if opts.tol > 0.0 && final_residual <= opts.tol {
        converged = true;
    }
    Ok(SolveResult { x, iterations, converged, final_residual, history, fault: None })
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_sparse::gen::{laplacian_2d_5pt, trefethen};

    #[test]
    fn exact_in_n_steps_small() {
        // CG is a direct method in exact arithmetic: n steps suffice.
        let a = laplacian_2d_5pt(3);
        let x_true: Vec<f64> = (0..9).map(|i| i as f64 - 4.0).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let r =
            conjugate_gradient(&a, &b, &[0.0; 9], &SolveOptions::to_tolerance(1e-12, 9))
                .unwrap();
        assert!(r.converged, "residual {}", r.final_residual);
    }

    #[test]
    fn much_faster_than_stationary_methods() {
        let a = laplacian_2d_5pt(15);
        let n = 225;
        let b = a.mul_vec(&vec![1.0; n]).unwrap();
        let r = conjugate_gradient(&a, &b, &vec![0.0; n], &SolveOptions::to_tolerance(1e-10, 500))
            .unwrap();
        assert!(r.converged);
        assert!(r.iterations < 60, "CG took {} iterations", r.iterations);
    }

    #[test]
    fn trefethen_converges_quickly() {
        // cond(D^{-1}A) is small but cond(A) is big; plain CG still does
        // fine on the well-separated prime diagonal.
        let a = trefethen(200).unwrap();
        let b = a.mul_vec(&vec![1.0; 200]).unwrap();
        let r = conjugate_gradient(&a, &b, &vec![0.0; 200], &SolveOptions::to_tolerance(1e-12, 400))
            .unwrap();
        assert!(r.converged, "residual {}", r.final_residual);
    }

    #[test]
    fn breakdown_on_indefinite_reported_not_panicked() {
        // indefinite diagonal: p'Ap goes negative immediately
        let a = abr_sparse::CsrMatrix::from_diagonal(&[1.0, -1.0]);
        let r = conjugate_gradient(&a, &[1.0, 1.0], &[0.0, 0.0], &SolveOptions::default())
            .unwrap();
        assert!(!r.converged || r.final_residual <= 1e-12);
    }

    #[test]
    fn history_recorded() {
        let a = laplacian_2d_5pt(6);
        let b = a.mul_vec(&vec![1.0; 36]).unwrap();
        let r = conjugate_gradient(&a, &b, &vec![0.0; 36], &SolveOptions::fixed_iterations(30))
            .unwrap();
        assert_eq!(r.history.len(), r.iterations);
        assert!(r.history.last().unwrap() < &1e-8);
    }
}
