//! Successive over-relaxation: Gauss-Seidel with relaxation weight
//! `omega`. `omega = 1` recovers Gauss-Seidel; the optimal weight for
//! consistently ordered SPD systems is
//! `omega* = 2 / (1 + sqrt(1 - rho_J^2))`.

use crate::convergence::{check_system, relative_residual, SolveOptions, SolveResult};
use abr_sparse::{CsrMatrix, Result, SparseError};

/// Solves `A x = b` with SOR sweeps of weight `omega` in `(0, 2)`.
pub fn sor(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    omega: f64,
    opts: &SolveOptions,
) -> Result<SolveResult> {
    check_system(a, b, x0);
    if !(0.0..2.0).contains(&omega) || omega == 0.0 {
        return Err(SparseError::Generator(format!(
            "SOR weight must lie in (0, 2), got {omega}"
        )));
    }
    let inv_diag: Vec<f64> = a.nonzero_diagonal()?.iter().map(|&d| 1.0 / d).collect();
    let n = a.n_rows();
    let mut x = x0.to_vec();
    let mut history = Vec::new();
    let mut iterations = 0;
    let mut converged = false;

    for _ in 0..opts.max_iters {
        for i in 0..n {
            let mut acc = b[i];
            for (j, v) in a.row_iter(i) {
                if j != i {
                    acc -= v * x[j];
                }
            }
            let gs = acc * inv_diag[i];
            x[i] += omega * (gs - x[i]);
        }
        iterations += 1;
        let need_residual =
            opts.record_history || (opts.tol > 0.0 && iterations % opts.check_every == 0);
        if need_residual {
            let rr = relative_residual(a, b, &x);
            if opts.record_history {
                history.push(rr);
            }
            if opts.tol > 0.0 && rr <= opts.tol {
                converged = true;
                break;
            }
            if !rr.is_finite() {
                break;
            }
        }
    }

    let final_residual = relative_residual(a, b, &x);
    if opts.tol > 0.0 && final_residual <= opts.tol {
        converged = true;
    }
    Ok(SolveResult { x, iterations, converged, final_residual, history, fault: None })
}

/// The optimal SOR weight from the Jacobi spectral radius `rho_j`.
pub fn optimal_omega(rho_j: f64) -> f64 {
    2.0 / (1.0 + (1.0 - rho_j * rho_j).max(0.0).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gauss_seidel::gauss_seidel;
    use abr_sparse::gen::laplacian_2d_5pt;
    use abr_sparse::IterationMatrix;

    #[test]
    fn omega_one_equals_gauss_seidel() {
        let a = laplacian_2d_5pt(6);
        let b = a.mul_vec(&vec![1.0; 36]).unwrap();
        let opts = SolveOptions::fixed_iterations(20);
        let s = sor(&a, &b, &vec![0.0; 36], 1.0, &opts).unwrap();
        let g = gauss_seidel(&a, &b, &vec![0.0; 36], &opts).unwrap();
        for (xs, xg) in s.x.iter().zip(&g.x) {
            assert!((xs - xg).abs() < 1e-14);
        }
    }

    #[test]
    fn optimal_omega_beats_gauss_seidel() {
        let a = laplacian_2d_5pt(12);
        let n = 144;
        let rho_j = IterationMatrix::new(&a).unwrap().spectral_radius().unwrap();
        let w = optimal_omega(rho_j);
        assert!(w > 1.0 && w < 2.0);
        let b = a.mul_vec(&vec![1.0; n]).unwrap();
        let tol = SolveOptions::to_tolerance(1e-10, 100000);
        let s = sor(&a, &b, &vec![0.0; n], w, &tol).unwrap();
        let g = gauss_seidel(&a, &b, &vec![0.0; n], &tol).unwrap();
        assert!(s.converged && g.converged);
        assert!(
            s.iterations * 2 < g.iterations,
            "SOR {} vs GS {}",
            s.iterations,
            g.iterations
        );
    }

    #[test]
    fn invalid_omega_rejected() {
        let a = laplacian_2d_5pt(3);
        let b = vec![1.0; 9];
        for w in [0.0, -0.5, 2.0, 2.5] {
            assert!(sor(&a, &b, &[0.0; 9], w, &SolveOptions::default()).is_err());
        }
    }

    #[test]
    fn optimal_omega_limits() {
        assert!((optimal_omega(0.0) - 1.0).abs() < 1e-15);
        assert!(optimal_omega(0.999999) < 2.0);
        assert!(optimal_omega(0.9) > 1.3);
    }
}
