//! The abstract chaotic/asynchronous iteration of Chazan and Miranker
//! (paper §2.2, Eq. 3):
//!
//! ```text
//! x_i^{k+1} = sum_j b_ij x_j^{k - s(k,j)} + d_i   if i = u(k)
//! x_i^{k+1} = x_i^k                               otherwise
//! ```
//!
//! with an update function `u(k)` that visits every component infinitely
//! often and a shift function bounded by `s_max` (and `s(k, j) <= k`).
//! Strikwerda's theorem guarantees convergence for **all** admissible
//! `u`/`s` when `rho(|B|) < 1`; the property tests in this module (and the
//! crate's proptest suite) exercise exactly that statement with random
//! admissible schedules.
//!
//! This model is sequential and component-granular — it is the *theory*
//! object. The GPU-shaped realisation is [`crate::async_block`].

use abr_sparse::{CsrMatrix, IterationMatrix, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// A stepwise chaotic iteration with bounded shifts.
#[derive(Debug, Clone)]
pub struct ChazanMiranker {
    /// Explicit iteration matrix `B = I - D^{-1}A`.
    b: CsrMatrix,
    /// `d = D^{-1} rhs`.
    d: Vec<f64>,
    /// Shift bound `s_max`.
    s_max: usize,
    /// `history[m]` is the iterate at step `k - m`; `history[0]` is
    /// current.
    history: VecDeque<Vec<f64>>,
    /// Step counter.
    k: usize,
}

impl ChazanMiranker {
    /// Sets up the iteration for `A x = rhs` from `x0` with shift bound
    /// `s_max`.
    pub fn new(a: &CsrMatrix, rhs: &[f64], x0: &[f64], s_max: usize) -> Result<Self> {
        assert_eq!(rhs.len(), a.n_rows());
        assert_eq!(x0.len(), a.n_rows());
        let it = IterationMatrix::new(a)?;
        let d: Vec<f64> = rhs.iter().zip(it.inv_diag()).map(|(&r, &id)| r * id).collect();
        let mut history = VecDeque::with_capacity(s_max + 1);
        history.push_front(x0.to_vec());
        Ok(ChazanMiranker { b: it.to_csr(), d, s_max, history, k: 0 })
    }

    /// Current iterate.
    pub fn current(&self) -> &[f64] {
        &self.history[0]
    }

    /// Steps performed so far.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The shift bound.
    pub fn s_max(&self) -> usize {
        self.s_max
    }

    /// Performs one step updating component `i = u(k)`, reading component
    /// `j` from `shift_of(j)` steps back. Shifts are clamped to the
    /// admissible range `0..=min(s_max, k)`.
    pub fn step<F: FnMut(usize) -> usize>(&mut self, i: usize, mut shift_of: F) {
        let n = self.d.len();
        assert!(i < n, "component out of range");
        let mut acc = self.d[i];
        for (j, v) in self.b.row_iter(i) {
            let s = shift_of(j).min(self.s_max).min(self.k);
            acc += v * self.history[s][j];
        }
        let mut next = self.history[0].clone();
        next[i] = acc;
        self.history.push_front(next);
        while self.history.len() > self.s_max + 1 {
            self.history.pop_back();
        }
        self.k += 1;
    }

    /// One "sweep": every component once, in a random order, each read
    /// with an independent random admissible shift.
    pub fn sweep_random(&mut self, rng: &mut StdRng) {
        let n = self.d.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        for i in order {
            let s_max = self.s_max;
            let mut shifts: Vec<usize> = Vec::new();
            // Pre-draw shifts so the closure borrows only locals.
            for _ in 0..n {
                shifts.push(rng.gen_range(0..=s_max));
            }
            self.step(i, |j| shifts[j]);
        }
    }
}

/// Convenience driver: runs `sweeps` random chaotic sweeps and returns the
/// final iterate.
pub fn solve_chaotic(
    a: &CsrMatrix,
    rhs: &[f64],
    x0: &[f64],
    s_max: usize,
    sweeps: usize,
    seed: u64,
) -> Result<Vec<f64>> {
    let mut it = ChazanMiranker::new(a, rhs, x0, s_max)?;
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..sweeps {
        it.sweep_random(&mut rng);
    }
    Ok(it.current().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convergence::relative_residual;
    use abr_sparse::gen::{laplacian_1d, random_diag_dominant};

    #[test]
    fn zero_shift_cyclic_order_is_gauss_seidel() {
        let a = laplacian_1d(8);
        let x_true: Vec<f64> = (0..8).map(|i| 1.0 + i as f64).collect();
        let rhs = a.mul_vec(&x_true).unwrap();
        let mut cm = ChazanMiranker::new(&a, &rhs, &[0.0; 8], 0).unwrap();
        for _sweep in 0..3 {
            for i in 0..8 {
                cm.step(i, |_| 0);
            }
        }
        let gs = crate::gauss_seidel(&a, &rhs, &[0.0; 8], &crate::SolveOptions {
            max_iters: 3,
            tol: 0.0,
            record_history: false,
            check_every: 1,
        })
        .unwrap();
        for (c, g) in cm.current().iter().zip(&gs.x) {
            assert!((c - g).abs() < 1e-13, "{c} vs {g}");
        }
    }

    #[test]
    fn chaotic_converges_when_abs_radius_below_one() {
        for seed in 0..4 {
            let a = random_diag_dominant(40, 4, 1.4, seed);
            let x_true = vec![1.0; 40];
            let rhs = a.mul_vec(&x_true).unwrap();
            let x = solve_chaotic(&a, &rhs, &vec![0.0; 40], 3, 120, seed * 7 + 1).unwrap();
            let rr = relative_residual(&a, &rhs, &x);
            assert!(rr < 1e-8, "seed {seed}: residual {rr}");
        }
    }

    #[test]
    fn larger_shift_bound_still_converges_but_slower() {
        let a = random_diag_dominant(24, 4, 2.0, 5);
        let rhs = a.mul_vec(&[1.0; 24]).unwrap();
        let x_fresh = solve_chaotic(&a, &rhs, &[0.0; 24], 0, 20, 3).unwrap();
        let x_stale = solve_chaotic(&a, &rhs, &[0.0; 24], 8, 20, 3).unwrap();
        let rr_fresh = relative_residual(&a, &rhs, &x_fresh);
        let rr_stale = relative_residual(&a, &rhs, &x_stale);
        assert!(rr_fresh < 1e-6, "{rr_fresh}");
        assert!(rr_stale < 1e-2, "stale reads still converge: {rr_stale}");
        // Staleness generally slows convergence; allow ties within noise.
        assert!(rr_fresh <= rr_stale * 10.0, "fresh {rr_fresh} vs stale {rr_stale}");
    }

    #[test]
    fn shift_clamped_to_k_initially() {
        // Requesting huge shifts at step 0 must not panic: condition (2)
        // of §2.2 (s(k, i) <= k) is enforced by clamping.
        let a = laplacian_1d(4);
        let rhs = vec![1.0; 4];
        let mut cm = ChazanMiranker::new(&a, &rhs, &[0.0; 4], 5).unwrap();
        cm.step(0, |_| 100);
        assert_eq!(cm.k(), 1);
    }

    #[test]
    fn only_selected_component_changes() {
        let a = laplacian_1d(5);
        let rhs = vec![1.0; 5];
        let x0 = vec![0.5; 5];
        let mut cm = ChazanMiranker::new(&a, &rhs, &x0, 2).unwrap();
        cm.step(2, |_| 0);
        let x = cm.current();
        #[allow(clippy::needless_range_loop)]
        for i in 0..5 {
            if i == 2 {
                assert_ne!(x[i], 0.5);
            } else {
                assert_eq!(x[i], 0.5);
            }
        }
    }
}
