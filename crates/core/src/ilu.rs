//! ILU(0): incomplete LU factorisation on the sparsity pattern of `A`,
//! with sparse triangular solves — the classic general-purpose
//! preconditioner, here mostly as a quality baseline the relaxation-based
//! preconditioners of [`crate::pcg()`] can be measured against.
//!
//! For SPD matrices the factorisation reduces to incomplete Cholesky in
//! exact arithmetic; we keep the general LU form so it also serves the
//! nonsymmetric systems handled by [`crate::bicgstab()`].

use crate::pcg::Preconditioner;
use abr_sparse::{CsrMatrix, Result, SparseError};

/// An ILU(0) factorisation `A ≈ L U` stored in one CSR matrix (unit lower
/// triangle implicit, `U` including the diagonal).
pub struct Ilu0 {
    /// Combined factors on A's pattern.
    factors: CsrMatrix,
    /// Position of the diagonal entry within each row of `factors`.
    diag_pos: Vec<usize>,
}

impl Ilu0 {
    /// Computes ILU(0) of a square matrix with full diagonal.
    ///
    /// Fails on a zero/missing diagonal or a zero pivot encountered during
    /// elimination (e.g. strongly indefinite matrices).
    pub fn new(a: &CsrMatrix) -> Result<Ilu0> {
        if !a.is_square() {
            return Err(SparseError::DimensionMismatch {
                op: "ilu0 requires square",
                expected: a.n_rows(),
                found: a.n_cols(),
            });
        }
        let n = a.n_rows();
        let mut factors = a.clone();
        // locate diagonals first
        let mut diag_pos = vec![usize::MAX; n];
        for (i, slot) in diag_pos.iter_mut().enumerate() {
            let (cols, _) = factors.row(i);
            match cols.binary_search(&i) {
                Ok(k) => *slot = factors.row_ptr()[i] + k,
                Err(_) => return Err(SparseError::ZeroDiagonal { row: i }),
            }
        }

        // IKJ Gaussian elimination restricted to the pattern.
        // col_of[j] = slot of column j in the current row i (or MAX).
        let mut col_slot = vec![usize::MAX; n];
        for i in 0..n {
            let (row_lo, row_hi) = (factors.row_ptr()[i], factors.row_ptr()[i + 1]);
            for k in row_lo..row_hi {
                col_slot[factors.col_idx()[k]] = k;
            }
            // eliminate with rows k < i present in row i
            for kk in row_lo..row_hi {
                let k_col = factors.col_idx()[kk];
                if k_col >= i {
                    break;
                }
                let pivot = factors.values()[diag_pos[k_col]];
                if pivot == 0.0 {
                    return Err(SparseError::Generator(format!(
                        "ilu0: zero pivot at row {k_col}"
                    )));
                }
                let lik = factors.values()[kk] / pivot;
                factors.values_mut()[kk] = lik;
                // row_i -= lik * row_k (within pattern, columns > k_col)
                let (k_lo, k_hi) = (factors.row_ptr()[k_col], factors.row_ptr()[k_col + 1]);
                for kj in k_lo..k_hi {
                    let j = factors.col_idx()[kj];
                    if j <= k_col {
                        continue;
                    }
                    let slot = col_slot[j];
                    if slot != usize::MAX {
                        let ukj = factors.values()[kj];
                        factors.values_mut()[slot] -= lik * ukj;
                    }
                }
            }
            if factors.values()[diag_pos[i]] == 0.0 {
                return Err(SparseError::Generator(format!("ilu0: zero pivot at row {i}")));
            }
            for k in row_lo..row_hi {
                col_slot[factors.col_idx()[k]] = usize::MAX;
            }
        }
        Ok(Ilu0 { factors, diag_pos })
    }

    /// Solves `L U x = b` by forward then backward substitution.
    pub fn solve(&self, b: &[f64], x: &mut [f64]) {
        let n = self.factors.n_rows();
        assert_eq!(b.len(), n);
        assert_eq!(x.len(), n);
        // forward: L y = b (unit diagonal)
        for i in 0..n {
            let mut acc = b[i];
            let (lo, hi) = (self.factors.row_ptr()[i], self.factors.row_ptr()[i + 1]);
            for k in lo..hi {
                let j = self.factors.col_idx()[k];
                if j >= i {
                    break;
                }
                acc -= self.factors.values()[k] * x[j];
            }
            x[i] = acc;
        }
        // backward: U x = y
        for i in (0..n).rev() {
            let mut acc = x[i];
            let (_, hi) = (self.factors.row_ptr()[i], self.factors.row_ptr()[i + 1]);
            for k in (self.diag_pos[i] + 1)..hi {
                acc -= self.factors.values()[k] * x[self.factors.col_idx()[k]];
            }
            x[i] = acc / self.factors.values()[self.diag_pos[i]];
        }
    }
}

impl Preconditioner for Ilu0 {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        self.solve(r, z);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcg::{pcg, JacobiPreconditioner};
    use crate::SolveOptions;
    use abr_sparse::gen::{laplacian_1d, laplacian_2d_5pt};

    #[test]
    fn exact_for_tridiagonal() {
        // Tridiagonal pattern suffers no fill-in: ILU(0) = exact LU, so
        // one solve gives the exact answer.
        let a = laplacian_1d(30);
        let x_true: Vec<f64> = (0..30).map(|i| (i as f64 * 0.4).sin()).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let ilu = Ilu0::new(&a).unwrap();
        let mut x = vec![0.0; 30];
        ilu.solve(&b, &mut x);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12, "{xi} vs {ti}");
        }
    }

    #[test]
    fn ilu_pcg_beats_jacobi_pcg_on_poisson() {
        let a = laplacian_2d_5pt(20);
        let n = 400;
        let b = a.mul_vec(&vec![1.0; n]).unwrap();
        let opts = SolveOptions::to_tolerance(1e-10, 2_000);
        let jac = pcg(&a, &b, &vec![0.0; n], &JacobiPreconditioner::new(&a).unwrap(), &opts)
            .unwrap();
        let ilu = pcg(&a, &b, &vec![0.0; n], &Ilu0::new(&a).unwrap(), &opts).unwrap();
        assert!(jac.converged && ilu.converged);
        // classic result: ILU(0) roughly halves the CG iteration count on
        // the 5-point Laplacian (same O(h^-1) asymptotics, better constant)
        assert!(
            (ilu.iterations as f64) < 0.7 * jac.iterations as f64,
            "ILU {} vs Jacobi {}",
            ilu.iterations,
            jac.iterations
        );
    }

    #[test]
    fn residual_of_factorisation_small_on_pattern() {
        // For the 5-point stencil, ILU(0) is a good approximation: the
        // preconditioned residual after one application is much smaller.
        let a = laplacian_2d_5pt(8);
        let n = 64;
        let ilu = Ilu0::new(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let mut x = vec![0.0; n];
        ilu.solve(&b, &mut x);
        let r = a.residual(&b, &x).unwrap();
        let rnorm = abr_sparse::blas1::norm2(&r) / abr_sparse::blas1::norm2(&b);
        assert!(rnorm < 0.2, "one ILU solve should capture most of A: {rnorm}");
    }

    #[test]
    fn zero_diagonal_rejected() {
        let mut coo = abr_sparse::CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        coo.push(1, 1, 1.0).unwrap();
        assert!(Ilu0::new(&coo.to_csr()).is_err());
    }

    #[test]
    fn nonsquare_rejected() {
        let mut coo = abr_sparse::CooMatrix::new(2, 3);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, 1.0).unwrap();
        assert!(Ilu0::new(&coo.to_csr()).is_err());
    }
}
