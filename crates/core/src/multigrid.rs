//! Aggregation-based algebraic multigrid with pluggable smoothers —
//! the §5 future-work extension: block-asynchronous relaxation as a
//! multigrid smoother.
//!
//! Coarsening is greedy pairwise aggregation along the strongest
//! off-diagonal connection; prolongation is piecewise constant and the
//! coarse operator is the Galerkin product `P^T A P` (computed with the
//! sparse SpGEMM substrate). This is deliberately the simplest AMG that
//! exhibits mesh-independent-ish convergence on the Poisson family — the
//! point here is the *smoother comparison*, not state-of-the-art AMG.

use crate::convergence::{relative_residual, SolveOptions, SolveResult};
use crate::smoother::Smoother;
use abr_sparse::{CsrMatrix, Result, SparseError};

/// One level of the multigrid hierarchy.
struct Level {
    a: CsrMatrix,
    /// Prolongation from the next-coarser level to this one (absent on
    /// the coarsest level).
    p: Option<CsrMatrix>,
    /// Estimate of `lambda_max(D^{-1} A)` on this level, used to pick a
    /// spectrally safe damping for the coarse-level smoother.
    lambda_max: f64,
}

/// A multigrid hierarchy ready to run V-cycles.
pub struct Multigrid<S: Smoother> {
    levels: Vec<Level>,
    smoother: S,
    /// Pre-smoothing sweeps per level.
    pub pre_sweeps: usize,
    /// Post-smoothing sweeps per level.
    pub post_sweeps: usize,
}

impl<S: Smoother> Multigrid<S> {
    /// Builds the hierarchy by repeated pairwise aggregation until the
    /// coarsest level has at most `coarsest` rows (or coarsening stalls).
    pub fn new(a: &CsrMatrix, smoother: S, coarsest: usize) -> Result<Self> {
        if !a.is_square() {
            return Err(SparseError::DimensionMismatch {
                op: "multigrid matrix",
                expected: a.n_rows(),
                found: a.n_cols(),
            });
        }
        let lam0 = jacobi_lambda_max(a)?;
        let mut levels = vec![Level { a: a.clone(), p: None, lambda_max: lam0 }];
        while levels.last().expect("non-empty").a.n_rows() > coarsest.max(2) {
            let last_level = levels.last().expect("non-empty");
            let fine = &last_level.a;
            let agg = pairwise_aggregate(fine);
            let nc = agg.iter().copied().max().map_or(0, |m| m + 1);
            if nc == 0 || nc >= fine.n_rows() {
                break; // coarsening stalled
            }
            let p_agg = aggregation_prolongation(&agg, nc);
            // Smoothed aggregation: P = (I - omega D^{-1} A) P_agg with
            // the spectrally safe omega = (4/3) / lambda_max(D^{-1}A).
            // One Jacobi smoothing of the tentative prolongation
            // dramatically improves the two-grid rate over
            // piecewise-constant interpolation.
            let p = smooth_prolongation(fine, &p_agg, last_level.lambda_max)?;
            let ac = p.transpose().spgemm(fine)?.spgemm(&p)?;
            let lam = jacobi_lambda_max(&ac)?;
            let last = levels.last_mut().expect("non-empty");
            last.p = Some(p);
            levels.push(Level { a: ac, p: None, lambda_max: lam });
        }
        Ok(Multigrid { levels, smoother, pre_sweeps: 2, post_sweeps: 2 })
    }

    /// Number of levels in the hierarchy.
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// Runs V-cycles until the relative residual drops below `opts.tol`
    /// (or `opts.max_iters` cycles). Each history entry is one V-cycle.
    pub fn solve(&self, b: &[f64], x0: &[f64], opts: &SolveOptions) -> Result<SolveResult> {
        let a = &self.levels[0].a;
        assert_eq!(b.len(), a.n_rows());
        assert_eq!(x0.len(), a.n_rows());
        let mut x = x0.to_vec();
        let mut history = Vec::new();
        let mut iterations = 0;
        let mut converged = false;
        for _ in 0..opts.max_iters {
            self.v_cycle(0, b, &mut x)?;
            iterations += 1;
            let rr = relative_residual(a, b, &x);
            if opts.record_history {
                history.push(rr);
            }
            if opts.tol > 0.0 && rr <= opts.tol {
                converged = true;
                break;
            }
            if !rr.is_finite() {
                break;
            }
        }
        let final_residual = relative_residual(a, b, &x);
        if opts.tol > 0.0 && final_residual <= opts.tol {
            converged = true;
        }
        Ok(SolveResult { x, iterations, converged, final_residual, history, fault: None })
    }

    fn v_cycle(&self, level: usize, b: &[f64], x: &mut Vec<f64>) -> Result<()> {
        let lvl = &self.levels[level];
        if level + 1 == self.levels.len() {
            // Coarsest: direct dense solve (fall back to smoothing if the
            // coarse matrix is singular, e.g. a pure Neumann complement).
            match lvl.a.to_dense().solve(b) {
                Some(sol) => *x = sol,
                None => self.smoother.smooth(&lvl.a, b, x, 20)?,
            }
            return Ok(());
        }
        self.smooth_level(level, b, x, self.pre_sweeps)?;
        let r = lvl.a.residual(b, x)?;
        let p = lvl.p.as_ref().expect("non-coarsest levels have prolongation");
        let rc = p.transpose().mul_vec(&r)?;
        let mut ec = vec![0.0; rc.len()];
        self.v_cycle(level + 1, &rc, &mut ec)?;
        let e = p.mul_vec(&ec)?;
        for (xi, ei) in x.iter_mut().zip(&e) {
            *xi += ei;
        }
        self.smooth_level(level, b, x, self.post_sweeps)?;
        Ok(())
    }

    /// The user's smoother runs on the finest level, where almost all the
    /// work is; coarse Galerkin operators can have
    /// `lambda_max(D^{-1}A) > 2`, where a fixed-weight smoother diverges,
    /// so coarse levels use damped Jacobi with the spectrally safe weight
    /// `1 / lambda_max` instead.
    fn smooth_level(&self, level: usize, b: &[f64], x: &mut Vec<f64>, sweeps: usize) -> Result<()> {
        if level == 0 {
            return self.smoother.smooth(&self.levels[0].a, b, x, sweeps);
        }
        let lvl = &self.levels[level];
        let tau = 1.0 / lvl.lambda_max.max(1e-12);
        crate::smoother::DampedJacobiSmoother { tau }.smooth(&lvl.a, b, x, sweeps)
    }
}

/// Estimate of `lambda_max(D^{-1}A)` for symmetric positive-diagonal `A`
/// (upper-bounded by the max row ratio when the Lanczos path is not
/// applicable).
fn jacobi_lambda_max(a: &CsrMatrix) -> Result<f64> {
    match abr_sparse::scaling::jacobi_operator_extremes(a) {
        Ok((_, hi)) => Ok(hi),
        Err(_) => {
            // fall back to the row-sum bound lambda_max <= max_i
            // sum_j |a_ij| / a_ii
            let d = a.nonzero_diagonal()?;
            let mut bound = 0.0f64;
            for (r, dr) in d.iter().enumerate() {
                let s: f64 = a.row(r).1.iter().map(|v| v.abs()).sum();
                bound = bound.max(s / dr.abs());
            }
            Ok(bound)
        }
    }
}

/// Greedy pairwise aggregation: each unaggregated node joins its
/// strongest unaggregated neighbour; isolated leftovers become singleton
/// aggregates. Returns the aggregate index per node.
fn pairwise_aggregate(a: &CsrMatrix) -> Vec<usize> {
    let n = a.n_rows();
    let mut agg = vec![usize::MAX; n];
    let mut next = 0usize;
    for i in 0..n {
        if agg[i] != usize::MAX {
            continue;
        }
        // strongest off-diagonal neighbour not yet aggregated
        let mut best: Option<(usize, f64)> = None;
        for (j, v) in a.row_iter(i) {
            if j != i && agg[j] == usize::MAX {
                let w = v.abs();
                if best.is_none_or(|(_, bw)| w > bw) {
                    best = Some((j, w));
                }
            }
        }
        agg[i] = next;
        if let Some((j, _)) = best {
            agg[j] = next;
        }
        next += 1;
    }
    agg
}

/// Jacobi-smooths a tentative prolongation:
/// `P = (I - omega D^{-1} A) P_agg`, `omega = (4/3) / lambda_max`.
fn smooth_prolongation(a: &CsrMatrix, p_agg: &CsrMatrix, lambda_max: f64) -> Result<CsrMatrix> {
    let omega = (4.0 / 3.0) / lambda_max.max(1e-12);
    let d = a.nonzero_diagonal()?;
    let mut da = a.clone();
    let scale: Vec<f64> = d.iter().map(|&v| omega / v).collect();
    da.scale_rows(&scale)?; // da = omega D^{-1} A
    let smoother = CsrMatrix::identity(a.n_rows()).add_scaled(1.0, &da, -1.0)?;
    smoother.spgemm(p_agg)
}

/// Piecewise-constant prolongation for an aggregation.
fn aggregation_prolongation(agg: &[usize], nc: usize) -> CsrMatrix {
    let n = agg.len();
    let row_ptr: Vec<usize> = (0..=n).collect();
    let col_idx: Vec<usize> = agg.to_vec();
    let values = vec![1.0; n];
    CsrMatrix::from_raw(n, nc, row_ptr, col_idx, values)
        .expect("aggregation indices are dense and in bounds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smoother::{AsyncSmoother, DampedJacobiSmoother, GaussSeidelSmoother};
    use abr_sparse::gen::{laplacian_2d_5pt, laplacian_1d};

    #[test]
    fn hierarchy_coarsens() {
        let a = laplacian_2d_5pt(16); // 256 unknowns
        let mg = Multigrid::new(&a, DampedJacobiSmoother::default(), 16).unwrap();
        assert!(mg.n_levels() >= 3, "{} levels", mg.n_levels());
    }

    #[test]
    fn vcycles_converge_fast_on_poisson() {
        let a = laplacian_2d_5pt(16);
        let n = 256;
        let x_true: Vec<f64> = (0..n).map(|i| ((i % 17) as f64).sin()).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let mg = Multigrid::new(&a, GaussSeidelSmoother, 16).unwrap();
        let r = mg.solve(&b, &vec![0.0; n], &SolveOptions::to_tolerance(1e-10, 60)).unwrap();
        assert!(r.converged, "residual {}", r.final_residual);
        assert!(
            r.iterations < 40,
            "V-cycles should converge quickly: {} cycles",
            r.iterations
        );
    }

    #[test]
    fn multigrid_beats_plain_smoothing_iterations() {
        let a = laplacian_1d(128);
        let b = a.mul_vec(&vec![1.0; 128]).unwrap();
        let mg = Multigrid::new(&a, DampedJacobiSmoother::default(), 8).unwrap();
        let r = mg.solve(&b, &vec![0.0; 128], &SolveOptions::to_tolerance(1e-8, 200)).unwrap();
        assert!(r.converged);
        // plain Jacobi would need O(n^2) ~ 16k iterations for this tol;
        // multigrid needs a few dozen cycles.
        assert!(r.iterations < 100, "{} cycles", r.iterations);
    }

    #[test]
    fn async_smoother_works_inside_multigrid() {
        let a = laplacian_2d_5pt(12);
        let n = 144;
        let b = a.mul_vec(&vec![1.0; n]).unwrap();
        let sm = AsyncSmoother { block_size: 16, ..Default::default() };
        let mg = Multigrid::new(&a, sm, 12).unwrap();
        let r = mg.solve(&b, &vec![0.0; n], &SolveOptions::to_tolerance(1e-9, 80)).unwrap();
        assert!(r.converged, "residual {}", r.final_residual);
        assert!(r.iterations < 60, "{} cycles", r.iterations);
    }

    #[test]
    fn aggregates_cover_all_nodes() {
        let a = laplacian_2d_5pt(7);
        let agg = pairwise_aggregate(&a);
        let nc = agg.iter().copied().max().unwrap() + 1;
        assert!(nc < 49);
        assert!(nc >= 49 / 2);
        // every aggregate non-empty and every node assigned
        let mut sizes = vec![0usize; nc];
        for &g in &agg {
            sizes[g] += 1;
        }
        assert!(sizes.iter().all(|&s| (1..=2).contains(&s)));
    }
}
