//! Relaxation methods as multigrid smoothers — the application §5 of the
//! paper names as the natural future use of block-asynchronous iteration
//! ("the widespread use of component-wise relaxation methods as
//! preconditioner or smoother in multigrid").

use crate::async_block::AsyncBlockSolver;
use crate::convergence::SolveOptions;
use abr_sparse::{CsrMatrix, Result, RowPartition};

/// A smoother: damps the high-frequency error of an approximate solution.
pub trait Smoother {
    /// Applies `sweeps` smoothing steps to `x` in place.
    fn smooth(&self, a: &CsrMatrix, b: &[f64], x: &mut Vec<f64>, sweeps: usize) -> Result<()>;
}

/// Damped Jacobi smoothing (`tau = 2/3` is the classic choice for
/// Poisson-like problems).
#[derive(Debug, Clone, Copy)]
pub struct DampedJacobiSmoother {
    /// Damping weight.
    pub tau: f64,
}

impl Default for DampedJacobiSmoother {
    fn default() -> Self {
        DampedJacobiSmoother { tau: 2.0 / 3.0 }
    }
}

impl Smoother for DampedJacobiSmoother {
    fn smooth(&self, a: &CsrMatrix, b: &[f64], x: &mut Vec<f64>, sweeps: usize) -> Result<()> {
        let inv_diag: Vec<f64> = a.nonzero_diagonal()?.iter().map(|&d| 1.0 / d).collect();
        let n = a.n_rows();
        let mut ax = vec![0.0; n];
        for _ in 0..sweeps {
            a.spmv(x, &mut ax)?;
            for i in 0..n {
                x[i] += self.tau * inv_diag[i] * (b[i] - ax[i]);
            }
        }
        Ok(())
    }
}

/// Forward Gauss-Seidel smoothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct GaussSeidelSmoother;

impl Smoother for GaussSeidelSmoother {
    fn smooth(&self, a: &CsrMatrix, b: &[f64], x: &mut Vec<f64>, sweeps: usize) -> Result<()> {
        let inv_diag: Vec<f64> = a.nonzero_diagonal()?.iter().map(|&d| 1.0 / d).collect();
        let n = a.n_rows();
        for _ in 0..sweeps {
            for i in 0..n {
                let mut acc = b[i];
                for (j, v) in a.row_iter(i) {
                    if j != i {
                        acc -= v * x[j];
                    }
                }
                x[i] = acc * inv_diag[i];
            }
        }
        Ok(())
    }
}

/// Block-asynchronous smoothing: each "sweep" is one async-(k) global
/// iteration over the given block size — the smoother §5 of the paper
/// anticipates for exascale multigrid.
#[derive(Debug, Clone)]
pub struct AsyncSmoother {
    /// The async-(k) configuration used per sweep.
    pub solver: AsyncBlockSolver,
    /// Block (subdomain) size for the partition.
    pub block_size: usize,
}

impl Default for AsyncSmoother {
    fn default() -> Self {
        // Damping 2/3 inside the local sweeps: undamped Jacobi leaves the
        // highest-frequency mode essentially undamped (its iteration-
        // matrix eigenvalue is near -1), which disqualifies it as a
        // smoother; the damped update is the standard fix.
        let solver =
            AsyncBlockSolver { damping: 2.0 / 3.0, ..AsyncBlockSolver::async_k(2) };
        AsyncSmoother { solver, block_size: 64 }
    }
}

impl Smoother for AsyncSmoother {
    fn smooth(&self, a: &CsrMatrix, b: &[f64], x: &mut Vec<f64>, sweeps: usize) -> Result<()> {
        if sweeps == 0 {
            return Ok(());
        }
        let p = RowPartition::uniform(a.n_rows(), self.block_size.min(a.n_rows()))?;
        let opts = SolveOptions { max_iters: sweeps, tol: 0.0, record_history: false, check_every: 1 };
        let r = self.solver.solve(a, b, x, &p, &opts)?;
        *x = r.x;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_sparse::blas1;
    use abr_sparse::gen::laplacian_1d;

    /// Smoothers must damp a high-frequency error much faster than a
    /// smooth one — that is their defining property.
    fn damping_ratio<S: Smoother>(s: &S, freq_mode: usize) -> f64 {
        let n = 63;
        let a = laplacian_1d(n);
        let b = vec![0.0; n]; // solution is zero; x is pure error
        let pi = std::f64::consts::PI;
        let mut x: Vec<f64> = (0..n)
            .map(|i| ((i + 1) as f64 * freq_mode as f64 * pi / (n as f64 + 1.0)).sin())
            .collect();
        let before = blas1::norm2(&x);
        s.smooth(&a, &b, &mut x, 3).unwrap();
        blas1::norm2(&x) / before
    }

    #[test]
    fn damped_jacobi_smooths_high_frequencies() {
        let s = DampedJacobiSmoother::default();
        let high = damping_ratio(&s, 60);
        let low = damping_ratio(&s, 1);
        assert!(high < 0.1, "high-frequency mode barely damped: {high}");
        assert!(low > 0.9, "low-frequency mode should survive smoothing: {low}");
    }

    #[test]
    fn gauss_seidel_smooths_high_frequencies() {
        let s = GaussSeidelSmoother;
        assert!(damping_ratio(&s, 60) < 0.2);
        assert!(damping_ratio(&s, 1) > 0.9);
    }

    #[test]
    fn async_smoother_smooths_high_frequencies() {
        let s = AsyncSmoother { block_size: 8, ..Default::default() };
        assert!(damping_ratio(&s, 60) < 0.2);
        assert!(damping_ratio(&s, 1) > 0.85);
    }

    #[test]
    fn zero_sweeps_is_identity() {
        let a = laplacian_1d(10);
        let b = vec![1.0; 10];
        let mut x = vec![0.25; 10];
        let before = x.clone();
        AsyncSmoother::default().smooth(&a, &b, &mut x, 0).unwrap();
        assert_eq!(x, before);
    }
}
