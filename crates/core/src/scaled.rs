//! Damped (tau-scaled) relaxation for SPD systems with `rho(B) > 1`.
//!
//! §4.2 of the paper: `s1rmt3m1` is SPD yet Jacobi-divergent
//! (`rho(B) ≈ 2.65`); "Jacobi-based methods still can be used after a
//! proper scaling is added, e.g., taking `B = I - tau D^{-1}A` with
//! `tau = 2/(lambda_1 + lambda_n)`". The damped update is
//! `x <- x + tau D^{-1}(b - A x)`; the same damping drops into the local
//! sweeps of async-(k) via [`crate::AsyncBlockSolver::damping`].

use crate::async_block::AsyncBlockSolver;
use crate::convergence::{check_system, relative_residual, SolveOptions, SolveResult};
use abr_sparse::scaling::optimal_tau;
use abr_sparse::{CsrMatrix, Result, SparseError};

/// Synchronous damped Jacobi: `x <- x + tau D^{-1}(b - A x)`.
pub fn damped_jacobi(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    tau: f64,
    opts: &SolveOptions,
) -> Result<SolveResult> {
    check_system(a, b, x0);
    if tau <= 0.0 || !tau.is_finite() {
        return Err(SparseError::Generator(format!("damping must be positive, got {tau}")));
    }
    let inv_diag: Vec<f64> = a.nonzero_diagonal()?.iter().map(|&d| 1.0 / d).collect();
    let n = a.n_rows();
    let mut x = x0.to_vec();
    let mut r = vec![0.0; n];
    let mut history = Vec::new();
    let mut iterations = 0;
    let mut converged = false;

    for _ in 0..opts.max_iters {
        a.spmv(&x, &mut r)?;
        for i in 0..n {
            x[i] += tau * inv_diag[i] * (b[i] - r[i]);
        }
        iterations += 1;
        let need_residual =
            opts.record_history || (opts.tol > 0.0 && iterations % opts.check_every == 0);
        if need_residual {
            let rr = relative_residual(a, b, &x);
            if opts.record_history {
                history.push(rr);
            }
            if opts.tol > 0.0 && rr <= opts.tol {
                converged = true;
                break;
            }
            if !rr.is_finite() {
                break;
            }
        }
    }

    let final_residual = relative_residual(a, b, &x);
    if opts.tol > 0.0 && final_residual <= opts.tol {
        converged = true;
    }
    Ok(SolveResult { x, iterations, converged, final_residual, history, fault: None })
}

/// Damped Jacobi with the optimal `tau = 2/(lambda_1 + lambda_n)`
/// estimated from the matrix. Returns the tau actually used.
pub fn auto_damped_jacobi(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    opts: &SolveOptions,
) -> Result<(SolveResult, f64)> {
    let tau = optimal_tau(a)?;
    Ok((damped_jacobi(a, b, x0, tau, opts)?, tau))
}

/// An async-(k) solver with the optimal damping for this SPD matrix —
/// the block-asynchronous counterpart of §4.2's remedy.
pub fn damped_async_solver(a: &CsrMatrix, local_iters: usize) -> Result<AsyncBlockSolver> {
    let tau = optimal_tau(a)?;
    Ok(AsyncBlockSolver { damping: tau, ..AsyncBlockSolver::async_k(local_iters) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi;
    use abr_sparse::gen::structural_biharmonic_sq;
    use abr_sparse::RowPartition;

    fn divergent_system() -> (CsrMatrix, Vec<f64>, Vec<f64>) {
        let a = structural_biharmonic_sq(8, 2.65).unwrap();
        let n = a.n_rows();
        let x_true = vec![1.0; n];
        let b = a.mul_vec(&x_true).unwrap();
        (a, b, x_true)
    }

    #[test]
    fn plain_jacobi_diverges_damped_converges() {
        let (a, b, _) = divergent_system();
        let n = a.n_rows();
        let plain =
            jacobi(&a, &b, &vec![0.0; n], &SolveOptions::fixed_iterations(50)).unwrap();
        assert!(plain.history[40] > plain.history[5], "plain Jacobi must diverge");

        let (damped, tau) =
            auto_damped_jacobi(&a, &b, &vec![0.0; n], &SolveOptions::to_tolerance(1e-8, 200000))
                .unwrap();
        assert!(tau > 0.0 && tau < 1.0, "tau = {tau}");
        assert!(damped.converged, "residual {}", damped.final_residual);
    }

    #[test]
    fn damped_async_converges_on_divergent_system() {
        let (a, b, _) = divergent_system();
        let n = a.n_rows();
        let p = RowPartition::uniform(n, 16).unwrap();
        let solver = damped_async_solver(&a, 5).unwrap();
        let r = solver
            .solve(&a, &b, &vec![0.0; n], &p, &SolveOptions::to_tolerance(1e-6, 200000))
            .unwrap();
        assert!(r.converged, "residual {}", r.final_residual);
    }

    #[test]
    fn invalid_tau_rejected() {
        let (a, b, _) = divergent_system();
        let n = a.n_rows();
        assert!(damped_jacobi(&a, &b, &vec![0.0; n], 0.0, &SolveOptions::default()).is_err());
        assert!(damped_jacobi(&a, &b, &vec![0.0; n], -1.0, &SolveOptions::default()).is_err());
    }

    #[test]
    fn tau_one_equals_plain_jacobi() {
        let a = abr_sparse::gen::laplacian_1d(10);
        let b = a.mul_vec(&[1.0; 10]).unwrap();
        let opts = SolveOptions::fixed_iterations(8);
        let d = damped_jacobi(&a, &b, &[0.0; 10], 1.0, &opts).unwrap();
        let j = jacobi(&a, &b, &[0.0; 10], &opts).unwrap();
        for (x1, x2) in d.x.iter().zip(&j.x) {
            assert!((x1 - x2).abs() < 1e-14);
        }
    }
}
