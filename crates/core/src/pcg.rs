//! Preconditioned conjugate gradients, with the relaxation methods of
//! this crate as preconditioners — §5 of the paper names preconditioning
//! as the other natural deployment of component-wise relaxation.
//!
//! The paper's "highly tuned GPU implementation of the CG solver" behaves
//! like a Jacobi-preconditioned CG (its iteration counts track
//! `cond(D^{-1}A)`, not `cond(A)`: on `Trefethen_2000`, with
//! `cond(A) ≈ 5e4` but `cond(D^{-1}A) ≈ 6`, its Figure 9d curve drops
//! like a rock). [`JacobiPreconditioner`] is therefore the baseline the
//! `fig9` experiment uses.

use crate::convergence::{check_system, relative_residual, SolveOptions, SolveResult};
use abr_sparse::{blas1, CsrMatrix, DenseMatrix, Result, RowPartition, SparseError};

/// A symmetric positive-definite preconditioner: `z = M^{-1} r`.
pub trait Preconditioner {
    /// Applies the preconditioner.
    fn apply(&self, r: &[f64], z: &mut [f64]);
}

/// No preconditioning (plain CG).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityPreconditioner;

impl Preconditioner for IdentityPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }
}

/// Diagonal (Jacobi) preconditioning: `z_i = r_i / a_ii`.
#[derive(Debug, Clone)]
pub struct JacobiPreconditioner {
    inv_diag: Vec<f64>,
}

impl JacobiPreconditioner {
    /// Builds from the matrix diagonal; requires positive entries (SPD).
    pub fn new(a: &CsrMatrix) -> Result<Self> {
        let d = a.nonzero_diagonal()?;
        if d.iter().any(|&v| v <= 0.0) {
            return Err(SparseError::Generator(
                "Jacobi preconditioning needs a positive diagonal".into(),
            ));
        }
        Ok(JacobiPreconditioner { inv_diag: d.iter().map(|&v| 1.0 / v).collect() })
    }
}

impl Preconditioner for JacobiPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        for ((zi, &ri), &di) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = ri * di;
        }
    }
}

/// Block-Jacobi preconditioning: exact dense solves with the diagonal
/// blocks of a row partition — the natural preconditioner counterpart of
/// the async-(k) subdomains.
pub struct BlockJacobiPreconditioner {
    /// `(start, LU-factorised dense block)` per partition block.
    blocks: Vec<(usize, DenseMatrix)>,
}

impl BlockJacobiPreconditioner {
    /// Extracts and stores the diagonal blocks.
    ///
    /// Block solves use dense Gaussian elimination, so keep blocks to a
    /// few hundred rows (the paper's 448 is fine).
    pub fn new(a: &CsrMatrix, partition: &RowPartition) -> Result<Self> {
        if partition.n() != a.n_rows() {
            return Err(SparseError::DimensionMismatch {
                op: "block preconditioner partition",
                expected: a.n_rows(),
                found: partition.n(),
            });
        }
        let mut blocks = Vec::with_capacity(partition.len());
        for b in partition.blocks() {
            let local = a.diagonal_block(b.start, b.end).to_dense();
            blocks.push((b.start, local));
        }
        Ok(BlockJacobiPreconditioner { blocks })
    }
}

impl Preconditioner for BlockJacobiPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        for (start, block) in &self.blocks {
            let nb = block.n_rows();
            let rhs = &r[*start..start + nb];
            match block.solve(rhs) {
                Some(sol) => z[*start..start + nb].copy_from_slice(&sol),
                // Singular local block (can't happen for SPD A, but stay
                // total): fall back to diagonal scaling.
                None => {
                    for k in 0..nb {
                        let d = block[(k, k)];
                        z[start + k] = if d != 0.0 { rhs[k] / d } else { rhs[k] };
                    }
                }
            }
        }
    }
}

/// Solves the SPD system `A x = b` with preconditioned CG.
pub fn pcg<P: Preconditioner>(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    prec: &P,
    opts: &SolveOptions,
) -> Result<SolveResult> {
    check_system(a, b, x0);
    let n = a.n_rows();
    let mut x = x0.to_vec();
    let mut r = a.residual(b, &x)?;
    let mut z = vec![0.0; n];
    prec.apply(&r, &mut z);
    let mut p = z.clone();
    let mut ap = vec![0.0; n];
    let nb = blas1::norm2(b).max(f64::MIN_POSITIVE);
    let mut rz = blas1::dot(&r, &z);

    let mut history = Vec::new();
    let mut iterations = 0;
    let mut converged = opts.tol > 0.0 && blas1::norm2(&r) / nb <= opts.tol;

    while iterations < opts.max_iters && !converged {
        a.spmv(&p, &mut ap)?;
        let pap = blas1::dot(&p, &ap);
        if pap <= 0.0 || !pap.is_finite() {
            break; // A (or M) not SPD along p
        }
        let alpha = rz / pap;
        blas1::axpy(alpha, &p, &mut x);
        blas1::axpy(-alpha, &ap, &mut r);
        prec.apply(&r, &mut z);
        let rz_new = blas1::dot(&r, &z);
        let beta = rz_new / rz;
        blas1::xpay(&z, beta, &mut p);
        rz = rz_new;
        iterations += 1;

        let rr = blas1::norm2(&r) / nb;
        if opts.record_history {
            history.push(rr);
        }
        if opts.tol > 0.0 && rr <= opts.tol {
            converged = true;
        }
        if !rr.is_finite() {
            break;
        }
    }

    let final_residual = relative_residual(a, b, &x);
    if opts.tol > 0.0 && final_residual <= opts.tol {
        converged = true;
    }
    Ok(SolveResult { x, iterations, converged, final_residual, history, fault: None })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::conjugate_gradient;
    use abr_sparse::gen::{laplacian_2d_5pt, trefethen};

    #[test]
    fn identity_pcg_equals_plain_cg() {
        let a = laplacian_2d_5pt(8);
        let b = a.mul_vec(&vec![1.0; 64]).unwrap();
        let opts = SolveOptions::to_tolerance(1e-10, 200);
        let plain = conjugate_gradient(&a, &b, &vec![0.0; 64], &opts).unwrap();
        let ident = pcg(&a, &b, &vec![0.0; 64], &IdentityPreconditioner, &opts).unwrap();
        assert_eq!(plain.iterations, ident.iterations);
        for (x1, x2) in plain.x.iter().zip(&ident.x) {
            assert!((x1 - x2).abs() < 1e-12);
        }
    }

    #[test]
    fn jacobi_pcg_slashes_iterations_on_trefethen() {
        // Trefethen: cond(A) ~ 1e4 but cond(D^{-1}A) ~ 4.5 — diagonal
        // preconditioning is transformative, which is why the paper's
        // "highly tuned" CG converges so fast on it.
        let a = trefethen(500).unwrap();
        let n = 500;
        let b = a.mul_vec(&vec![1.0; n]).unwrap();
        let opts = SolveOptions::to_tolerance(1e-10, 2_000);
        let plain = conjugate_gradient(&a, &b, &vec![0.0; n], &opts).unwrap();
        let prec = JacobiPreconditioner::new(&a).unwrap();
        let jac = pcg(&a, &b, &vec![0.0; n], &prec, &opts).unwrap();
        assert!(jac.converged);
        assert!(
            jac.iterations * 3 < plain.iterations.max(1),
            "PCG {} vs CG {}",
            jac.iterations,
            plain.iterations
        );
    }

    #[test]
    fn block_jacobi_pcg_beats_diagonal_on_banded_system() {
        let a = laplacian_2d_5pt(14);
        let n = 196;
        let b = a.mul_vec(&vec![1.0; n]).unwrap();
        let opts = SolveOptions::to_tolerance(1e-10, 1_000);
        let pj = JacobiPreconditioner::new(&a).unwrap();
        let jac = pcg(&a, &b, &vec![0.0; n], &pj, &opts).unwrap();
        let partition = RowPartition::uniform(n, 28).unwrap();
        let pb = BlockJacobiPreconditioner::new(&a, &partition).unwrap();
        let blk = pcg(&a, &b, &vec![0.0; n], &pb, &opts).unwrap();
        assert!(jac.converged && blk.converged);
        assert!(
            blk.iterations < jac.iterations,
            "block {} vs diagonal {}",
            blk.iterations,
            jac.iterations
        );
    }

    #[test]
    fn negative_diagonal_rejected() {
        let a = CsrMatrix::from_diagonal(&[1.0, -1.0]);
        assert!(JacobiPreconditioner::new(&a).is_err());
    }

    #[test]
    fn all_preconditioners_agree_on_solution() {
        let a = laplacian_2d_5pt(10);
        let n = 100;
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).cos()).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let opts = SolveOptions::to_tolerance(1e-11, 2_000);
        let partition = RowPartition::uniform(n, 20).unwrap();
        let solutions = [
            pcg(&a, &b, &vec![0.0; n], &IdentityPreconditioner, &opts).unwrap().x,
            pcg(&a, &b, &vec![0.0; n], &JacobiPreconditioner::new(&a).unwrap(), &opts)
                .unwrap()
                .x,
            pcg(
                &a,
                &b,
                &vec![0.0; n],
                &BlockJacobiPreconditioner::new(&a, &partition).unwrap(),
                &opts,
            )
            .unwrap()
            .x,
        ];
        for x in &solutions {
            let err =
                x.iter().zip(&x_true).map(|(p, q)| (p - q).abs()).fold(0.0f64, f64::max);
            assert!(err < 1e-8, "max error {err}");
        }
    }
}
