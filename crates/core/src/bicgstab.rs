//! BiCGstab (van der Vorst): the Krylov baseline for *nonsymmetric*
//! systems — the convection-diffusion problems where CG does not apply
//! but the asynchronous relaxation methods still converge
//! (diagonal dominance gives `rho(|B|) < 1`).

use crate::convergence::{check_system, relative_residual, SolveOptions, SolveResult};
use crate::pcg::Preconditioner;
use abr_sparse::{blas1, CsrMatrix, Result};

/// Solves a general square system `A x = b` with right-preconditioned
/// BiCGstab. Each iteration costs two SpMVs and two preconditioner
/// applications.
pub fn bicgstab<P: Preconditioner>(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    prec: &P,
    opts: &SolveOptions,
) -> Result<SolveResult> {
    check_system(a, b, x0);
    let n = a.n_rows();
    let mut x = x0.to_vec();
    let mut r = a.residual(b, &x)?;
    let r_hat = r.clone(); // shadow residual
    let mut rho = 1.0f64;
    let mut alpha = 1.0f64;
    let mut omega = 1.0f64;
    let mut v = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut y = vec![0.0; n];
    let mut z = vec![0.0; n];
    let mut t = vec![0.0; n];
    let nb = blas1::norm2(b).max(f64::MIN_POSITIVE);

    let mut history = Vec::new();
    let mut iterations = 0;
    let mut converged = opts.tol > 0.0 && blas1::norm2(&r) / nb <= opts.tol;

    while iterations < opts.max_iters && !converged {
        let rho_new = blas1::dot(&r_hat, &r);
        if rho_new.abs() < 1e-300 {
            break; // breakdown: shadow residual orthogonal to residual
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        // p = r + beta (p - omega v)
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        prec.apply(&p, &mut y);
        a.spmv(&y, &mut v)?;
        let rhv = blas1::dot(&r_hat, &v);
        if rhv.abs() < 1e-300 {
            break;
        }
        alpha = rho / rhv;
        // s = r - alpha v  (reuse r)
        blas1::axpy(-alpha, &v, &mut r);
        if blas1::norm2(&r) / nb <= opts.tol && opts.tol > 0.0 {
            blas1::axpy(alpha, &y, &mut x);
            iterations += 1;
            if opts.record_history {
                history.push(blas1::norm2(&r) / nb);
            }
            converged = true;
            break;
        }
        prec.apply(&r, &mut z);
        a.spmv(&z, &mut t)?;
        let tt = blas1::dot(&t, &t);
        if tt < 1e-300 {
            break;
        }
        omega = blas1::dot(&t, &r) / tt;
        // x += alpha y + omega z
        for i in 0..n {
            x[i] += alpha * y[i] + omega * z[i];
        }
        // r -= omega t
        blas1::axpy(-omega, &t, &mut r);
        iterations += 1;
        let rr = blas1::norm2(&r) / nb;
        if opts.record_history {
            history.push(rr);
        }
        if opts.tol > 0.0 && rr <= opts.tol {
            converged = true;
        }
        if !rr.is_finite() || omega.abs() < 1e-300 {
            break;
        }
    }

    let final_residual = relative_residual(a, b, &x);
    if opts.tol > 0.0 && final_residual <= opts.tol {
        converged = true;
    }
    Ok(SolveResult { x, iterations, converged, final_residual, history, fault: None })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ilu::Ilu0;
    use crate::jacobi::jacobi;
    use crate::pcg::{IdentityPreconditioner, JacobiPreconditioner};
    use abr_sparse::gen::{convection_diffusion_2d, laplacian_2d_5pt};

    fn wind_system(m: usize) -> (CsrMatrix, Vec<f64>, Vec<f64>) {
        let a = convection_diffusion_2d(m, 0.05, 1.0, 0.3);
        let n = m * m;
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + ((i % 7) as f64) * 0.1).collect();
        let b = a.mul_vec(&x_true).unwrap();
        (a, b, x_true)
    }

    #[test]
    fn solves_nonsymmetric_convection_diffusion() {
        let (a, b, x_true) = wind_system(12);
        let n = a.n_rows();
        let r = bicgstab(
            &a,
            &b,
            &vec![0.0; n],
            &IdentityPreconditioner,
            &SolveOptions::to_tolerance(1e-10, 2_000),
        )
        .unwrap();
        assert!(r.converged, "residual {}", r.final_residual);
        for (xi, ti) in r.x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-7);
        }
    }

    #[test]
    fn far_fewer_iterations_than_jacobi() {
        let (a, b, _) = wind_system(14);
        let n = a.n_rows();
        let opts = SolveOptions::to_tolerance(1e-9, 100_000);
        let kr = bicgstab(&a, &b, &vec![0.0; n], &IdentityPreconditioner, &opts).unwrap();
        let j = jacobi(&a, &b, &vec![0.0; n], &opts).unwrap();
        assert!(kr.converged && j.converged);
        assert!(
            kr.iterations * 3 < j.iterations,
            "BiCGstab {} vs Jacobi {}",
            kr.iterations,
            j.iterations
        );
    }

    #[test]
    fn ilu_preconditioning_cuts_iterations() {
        let (a, b, _) = wind_system(16);
        let n = a.n_rows();
        let opts = SolveOptions::to_tolerance(1e-10, 5_000);
        let plain =
            bicgstab(&a, &b, &vec![0.0; n], &IdentityPreconditioner, &opts).unwrap();
        let ilu = bicgstab(&a, &b, &vec![0.0; n], &Ilu0::new(&a).unwrap(), &opts).unwrap();
        assert!(plain.converged && ilu.converged);
        assert!(
            ilu.iterations * 2 < plain.iterations.max(1),
            "ILU {} vs plain {}",
            ilu.iterations,
            plain.iterations
        );
    }

    #[test]
    fn agrees_with_cg_on_spd_system() {
        let a = laplacian_2d_5pt(9);
        let n = 81;
        let b = a.mul_vec(&vec![1.0; n]).unwrap();
        let opts = SolveOptions::to_tolerance(1e-11, 1_000);
        let k = bicgstab(
            &a,
            &b,
            &vec![0.0; n],
            &JacobiPreconditioner::new(&a).unwrap(),
            &opts,
        )
        .unwrap();
        assert!(k.converged);
        let err = k.x.iter().map(|v| (v - 1.0).abs()).fold(0.0f64, f64::max);
        assert!(err < 1e-8, "max error {err}");
    }
}
