//! Restarted GMRES(m) with Givens rotations — the second Krylov method
//! the paper's introduction names ("methods like the Conjugate Gradient
//! or GMRES, the parallelism is usually limited … with synchronization
//! required"). Its per-iteration orthogonalisation against the whole
//! Krylov basis is exactly the synchronisation burden the asynchronous
//! programme avoids, which makes it the natural contrast baseline for
//! nonsymmetric systems.

use crate::convergence::{check_system, relative_residual, SolveOptions, SolveResult};
use crate::pcg::Preconditioner;
use abr_sparse::{blas1, CsrMatrix, Result, SparseError};

/// Solves a general square system `A x = b` with right-preconditioned
/// restarted GMRES. `restart` is the Krylov dimension per cycle; each
/// inner iteration costs one SpMV + one preconditioner application +
/// orthogonalisation against the basis built so far.
///
/// `opts.max_iters` counts *inner* iterations, so runtimes are comparable
/// with the other solvers' iteration counts.
pub fn gmres<P: Preconditioner>(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    prec: &P,
    restart: usize,
    opts: &SolveOptions,
) -> Result<SolveResult> {
    check_system(a, b, x0);
    if restart == 0 {
        return Err(SparseError::Generator("gmres restart must be positive".into()));
    }
    let n = a.n_rows();
    let m = restart.min(n);
    let nb = blas1::norm2(b).max(f64::MIN_POSITIVE);

    let mut x = x0.to_vec();
    let mut history = Vec::new();
    let mut iterations = 0usize;
    let mut converged = false;

    // workspace reused across cycles
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
    // Hessenberg stored column-major: h[j] has j + 2 entries
    let mut h: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut cs = vec![0.0f64; m];
    let mut sn = vec![0.0f64; m];
    let mut g = vec![0.0f64; m + 1];
    let mut z = vec![0.0f64; n];
    let mut w = vec![0.0f64; n];

    'outer: while iterations < opts.max_iters && !converged {
        let r = a.residual(b, &x)?;
        let beta = blas1::norm2(&r);
        if opts.tol > 0.0 && beta / nb <= opts.tol {
            converged = true;
            break;
        }
        if beta < 1e-300 {
            // already at the exact solution (possible with tol == 0 in
            // fixed-iteration mode): normalising by beta would poison the
            // basis with NaN
            break;
        }
        basis.clear();
        h.clear();
        basis.push(r.iter().map(|&v| v / beta).collect());
        g.iter_mut().for_each(|v| *v = 0.0);
        g[0] = beta;

        let mut j = 0usize;
        while j < m && iterations < opts.max_iters {
            // w = A M^{-1} v_j
            prec.apply(&basis[j], &mut z);
            a.spmv(&z, &mut w)?;
            // modified Gram-Schmidt
            let mut hj = Vec::with_capacity(j + 2);
            for vi in basis.iter().take(j + 1) {
                let hij = blas1::dot(vi, &w);
                blas1::axpy(-hij, vi, &mut w);
                hj.push(hij);
            }
            let hlast = blas1::norm2(&w);
            hj.push(hlast);

            // apply existing Givens rotations to the new column
            for (i, (&c, &s)) in cs.iter().zip(&sn).enumerate().take(j) {
                let tmp = c * hj[i] + s * hj[i + 1];
                hj[i + 1] = -s * hj[i] + c * hj[i + 1];
                hj[i] = tmp;
            }
            // new rotation annihilating hj[j + 1]
            let denom = (hj[j] * hj[j] + hj[j + 1] * hj[j + 1]).sqrt();
            if denom < 1e-300 {
                // the whole new column vanished: the Krylov space is
                // exhausted. Solve with the j columns established so far
                // (including the degenerate column would divide by its
                // ~0 pivot).
                let rr = solve_and_update(a, prec, &mut x, &basis, &h, &g, j, b)?;
                if opts.record_history {
                    history.push(rr / nb);
                }
                converged = opts.tol > 0.0 && rr / nb <= opts.tol;
                break 'outer;
            }
            cs[j] = hj[j] / denom;
            sn[j] = hj[j + 1] / denom;
            hj[j] = denom;
            hj[j + 1] = 0.0;
            let tmp = cs[j] * g[j];
            g[j + 1] = -sn[j] * g[j];
            g[j] = tmp;
            h.push(hj);

            if hlast > 1e-300 {
                basis.push(w.iter().map(|&v| v / hlast).collect());
            }
            iterations += 1;
            let rr = g[j + 1].abs() / nb;
            if opts.record_history {
                history.push(rr);
            }
            j += 1;
            if opts.tol > 0.0 && rr <= opts.tol {
                solve_and_update(a, prec, &mut x, &basis, &h, &g, j, b)?;
                converged = true;
                break 'outer;
            }
            // Krylov space exhausted — or NaN from non-finite input,
            // which must not march on with a missing basis vector:
            // restart from a fresh residual. Written so NaN takes the
            // break path too.
            let exhausted = !hlast.is_finite() || hlast <= 1e-300;
            if exhausted {
                break;
            }
        }
        solve_and_update(a, prec, &mut x, &basis, &h, &g, j, b)?;
    }

    let final_residual = relative_residual(a, b, &x);
    if opts.tol > 0.0 && final_residual <= opts.tol {
        converged = true;
    }
    Ok(SolveResult { x, iterations, converged, final_residual, history, fault: None })
}

/// Back-substitutes the triangularised Hessenberg system for the `k`
/// Krylov coefficients and applies the preconditioned correction to `x`.
/// Returns the true (unpreconditioned) residual norm afterwards.
#[allow(clippy::too_many_arguments)] // internal helper over the GMRES state
fn solve_and_update<P: Preconditioner>(
    a: &CsrMatrix,
    prec: &P,
    x: &mut [f64],
    basis: &[Vec<f64>],
    h: &[Vec<f64>],
    g: &[f64],
    k: usize,
    b: &[f64],
) -> Result<f64> {
    if k == 0 {
        let r = a.residual(b, x)?;
        return Ok(blas1::norm2(&r));
    }
    let mut y = vec![0.0f64; k];
    for i in (0..k).rev() {
        let mut acc = g[i];
        for (j, yj) in y.iter().enumerate().take(k).skip(i + 1) {
            acc -= h[j][i] * yj;
        }
        y[i] = acc / h[i][i];
    }
    let n = x.len();
    let mut update = vec![0.0f64; n];
    for (j, yj) in y.iter().enumerate() {
        blas1::axpy(*yj, &basis[j], &mut update);
    }
    let mut z = vec![0.0f64; n];
    prec.apply(&update, &mut z);
    for (xi, &zi) in x.iter_mut().zip(&z) {
        *xi += zi;
    }
    let r = a.residual(b, x)?;
    Ok(blas1::norm2(&r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ilu::Ilu0;
    use crate::pcg::IdentityPreconditioner;
    use abr_sparse::gen::{convection_diffusion_2d, laplacian_2d_5pt};

    #[test]
    fn exact_in_n_inner_iterations() {
        // full GMRES (restart >= n) is a direct method
        let a = laplacian_2d_5pt(4);
        let n = 16;
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 8.0).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let r = gmres(
            &a,
            &b,
            &vec![0.0; n],
            &IdentityPreconditioner,
            n,
            &SolveOptions::to_tolerance(1e-11, n + 1),
        )
        .unwrap();
        assert!(r.converged, "residual {}", r.final_residual);
    }

    #[test]
    fn solves_nonsymmetric_system() {
        let a = convection_diffusion_2d(12, 0.05, 1.0, 0.4);
        let n = a.n_rows();
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + 0.01 * i as f64).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let r = gmres(
            &a,
            &b,
            &vec![0.0; n],
            &IdentityPreconditioner,
            30,
            &SolveOptions::to_tolerance(1e-10, 5_000),
        )
        .unwrap();
        assert!(r.converged, "residual {}", r.final_residual);
        for (xi, ti) in r.x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-7);
        }
    }

    #[test]
    fn restarting_still_converges_just_slower() {
        let a = laplacian_2d_5pt(12);
        let n = 144;
        let b = a.mul_vec(&vec![1.0; n]).unwrap();
        let opts = SolveOptions::to_tolerance(1e-9, 20_000);
        let full = gmres(&a, &b, &vec![0.0; n], &IdentityPreconditioner, 200, &opts).unwrap();
        let short = gmres(&a, &b, &vec![0.0; n], &IdentityPreconditioner, 10, &opts).unwrap();
        assert!(full.converged && short.converged);
        assert!(
            short.iterations >= full.iterations,
            "restarting cannot beat full GMRES: {} vs {}",
            short.iterations,
            full.iterations
        );
    }

    #[test]
    fn ilu_preconditioning_accelerates() {
        let a = convection_diffusion_2d(16, 0.05, 1.0, 0.3);
        let n = a.n_rows();
        let b = a.mul_vec(&vec![1.0; n]).unwrap();
        let opts = SolveOptions::to_tolerance(1e-10, 10_000);
        let plain =
            gmres(&a, &b, &vec![0.0; n], &IdentityPreconditioner, 30, &opts).unwrap();
        let ilu = gmres(&a, &b, &vec![0.0; n], &Ilu0::new(&a).unwrap(), 30, &opts).unwrap();
        assert!(plain.converged && ilu.converged);
        assert!(
            ilu.iterations * 2 < plain.iterations.max(1),
            "ILU {} vs plain {}",
            ilu.iterations,
            plain.iterations
        );
    }

    #[test]
    fn exact_initial_guess_with_fixed_iterations_stays_finite() {
        // regression: beta = 0 used to poison the basis with NaN when
        // tol == 0 (fixed-iteration mode) and x0 was already the solution
        let a = laplacian_2d_5pt(4);
        let x_true = vec![2.0; 16];
        let b = a.mul_vec(&x_true).unwrap();
        let r = gmres(
            &a,
            &b,
            &x_true,
            &IdentityPreconditioner,
            8,
            &SolveOptions::fixed_iterations(5),
        )
        .unwrap();
        assert!(r.final_residual.is_finite());
        assert!(r.final_residual < 1e-14, "{}", r.final_residual);
        for (xi, ti) in r.x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-14);
        }
    }

    #[test]
    fn nan_input_terminates_without_panic() {
        // regression: a NaN orthogonalisation norm used to skip the basis
        // push yet continue, indexing a missing basis vector
        let a = laplacian_2d_5pt(3);
        let b = vec![f64::NAN; 9];
        let r = gmres(
            &a,
            &b,
            &[0.0; 9],
            &IdentityPreconditioner,
            9,
            &SolveOptions::fixed_iterations(20),
        )
        .unwrap();
        assert!(!r.converged);
    }

    #[test]
    fn zero_restart_rejected() {
        let a = laplacian_2d_5pt(3);
        assert!(gmres(
            &a,
            &[1.0; 9],
            &[0.0; 9],
            &IdentityPreconditioner,
            0,
            &SolveOptions::default()
        )
        .is_err());
    }

    #[test]
    fn monotone_residual_within_a_cycle() {
        let a = laplacian_2d_5pt(8);
        let n = 64;
        let b = a.mul_vec(&vec![1.0; n]).unwrap();
        let r = gmres(
            &a,
            &b,
            &vec![0.0; n],
            &IdentityPreconditioner,
            64,
            &SolveOptions { max_iters: 40, tol: 0.0, record_history: true, check_every: 1 },
        )
        .unwrap();
        // GMRES minimises the residual over a growing space: monotone
        for w in r.history.windows(2) {
            assert!(w[1] <= w[0] * (1.0 + 1e-12), "{} -> {}", w[0], w[1]);
        }
    }
}
