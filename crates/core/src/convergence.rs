//! Solver options, results, and residual bookkeeping shared by every
//! method in this crate.

use abr_sparse::par::ParContext;
use abr_sparse::{blas1, CsrMatrix};

/// Options common to all iterative solvers.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Hard iteration limit (global iterations for block methods).
    pub max_iters: usize,
    /// Relative-residual stopping tolerance `||b - Ax|| / ||b||`.
    /// Set to `0.0` to always run `max_iters` iterations (the convention
    /// of the paper's convergence plots).
    pub tol: f64,
    /// Record the relative residual after every (global) iteration.
    pub record_history: bool,
    /// For asynchronous methods: how many global iterations to run between
    /// convergence checks (each check is a synchronisation point of the
    /// *driver*, not of the iteration itself).
    pub check_every: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions { max_iters: 1000, tol: 1e-12, record_history: false, check_every: 10 }
    }
}

impl SolveOptions {
    /// Convenience: run exactly `iters` iterations, recording the history
    /// (the configuration used by the paper's convergence figures).
    pub fn fixed_iterations(iters: usize) -> Self {
        SolveOptions { max_iters: iters, tol: 0.0, record_history: true, check_every: 10 }
    }

    /// Convenience: iterate to relative residual `tol` (at most
    /// `max_iters`).
    pub fn to_tolerance(tol: f64, max_iters: usize) -> Self {
        SolveOptions { max_iters, tol, record_history: false, check_every: 10 }
    }
}

/// Outcome of an iterative solve.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// Final solution approximation.
    pub x: Vec<f64>,
    /// Iterations performed (global iterations for block methods).
    pub iterations: usize,
    /// Whether the tolerance was reached within `max_iters`.
    pub converged: bool,
    /// Final relative residual `||b - Ax||_2 / ||b||_2`.
    pub final_residual: f64,
    /// Relative residual after each iteration (empty unless
    /// `record_history`). `history[k]` is the residual after iteration
    /// `k + 1`.
    pub history: Vec<f64>,
    /// What the live fault runtime did during the solve, when it ran one
    /// (`None` for every fault-free solver path): detected worker deaths,
    /// recovery reassignments, per-block frozen spans, isolated panics.
    /// See [`abr_gpu::FaultReport`] and
    /// [`solve_faulted`](crate::AsyncBlockSolver::solve_faulted).
    pub fault: Option<abr_gpu::FaultReport>,
}

impl SolveResult {
    /// Residual after `iters` iterations, from the recorded history
    /// (`iters = 0` returns the implicit initial residual of 1.0 only if
    /// the caller started from `x0 = 0`; prefer indexing the history).
    pub fn residual_at(&self, iters: usize) -> Option<f64> {
        if iters == 0 {
            None
        } else {
            self.history.get(iters - 1).copied()
        }
    }
}

/// Relative residual `||b - Ax||_2 / ||b||_2` (`||r||` itself when
/// `b = 0`).
///
/// The SpMV runs through [`ParContext::paper_cpu`] — the paper's 4-core
/// host-side configuration (§3.2) — which parallelises row chunks above
/// its 256-row threshold and falls back to the sequential kernel below
/// it. The per-row accumulation order is identical either way, so the
/// residual is bit-identical to the sequential computation at every
/// size. The norms stay sequential: a chunked reduction would change
/// the summation order and with it the convergence histories.
pub fn relative_residual(a: &CsrMatrix, b: &[f64], x: &[f64]) -> f64 {
    let mut r = vec![0.0; a.n_rows()];
    relative_residual_with(&mut r, a, b, x)
}

/// [`relative_residual`] with a caller-provided scratch buffer for the
/// residual vector, so repeated checks inside a solve loop (or a
/// concurrent convergence monitor) allocate nothing. `buf` is resized to
/// `a.n_rows()` on first use and reused afterwards; its contents on entry
/// are irrelevant, on exit it holds `b - Ax`. Bit-identical to
/// [`relative_residual`].
pub fn relative_residual_with(buf: &mut Vec<f64>, a: &CsrMatrix, b: &[f64], x: &[f64]) -> f64 {
    buf.clear();
    buf.resize(a.n_rows(), 0.0);
    ParContext::paper_cpu()
        .spmv(a, x, buf)
        .expect("dimensions checked by solver entry");
    for (ri, &bi) in buf.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    let nb = blas1::norm2(b);
    if nb == 0.0 {
        blas1::norm2(buf)
    } else {
        blas1::norm2(buf) / nb
    }
}

/// Shared driver plumbing: checks inputs once at solver entry.
pub(crate) fn check_system(a: &CsrMatrix, b: &[f64], x0: &[f64]) {
    assert!(a.is_square(), "iterative solvers need a square matrix");
    assert_eq!(b.len(), a.n_rows(), "rhs length mismatch");
    assert_eq!(x0.len(), a.n_rows(), "initial guess length mismatch");
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_sparse::gen::laplacian_1d;

    #[test]
    fn relative_residual_zero_at_solution() {
        let a = laplacian_1d(6);
        let x = vec![2.0; 6];
        let b = a.mul_vec(&x).unwrap();
        assert!(relative_residual(&a, &b, &x) < 1e-15);
    }

    #[test]
    fn relative_residual_one_at_zero_guess() {
        let a = laplacian_1d(6);
        let b = a.mul_vec(&[1.0; 6]).unwrap();
        let rr = relative_residual(&a, &b, &[0.0; 6]);
        assert!((rr - 1.0).abs() < 1e-14);
    }

    #[test]
    fn zero_rhs_uses_absolute_norm() {
        let a = laplacian_1d(4);
        let rr = relative_residual(&a, &[0.0; 4], &[0.0; 4]);
        assert_eq!(rr, 0.0);
    }

    #[test]
    fn parallel_residual_is_bit_identical_to_sequential() {
        // 400 rows > the 256-row ParContext threshold: the chunked SpMV
        // actually runs, and must not perturb a single bit
        let a = abr_sparse::gen::laplacian_2d_5pt(20);
        let x: Vec<f64> = (0..400).map(|i| (i as f64 * 0.013).cos()).collect();
        let b = a.mul_vec(&vec![1.0; 400]).unwrap();
        let rr = relative_residual(&a, &b, &x);
        let r = a.residual(&b, &x).unwrap();
        let expect = blas1::norm2(&r) / blas1::norm2(&b);
        assert_eq!(rr.to_bits(), expect.to_bits());
    }

    #[test]
    fn scratch_variant_matches_and_reuses_buffer() {
        let a = abr_sparse::gen::laplacian_2d_5pt(20);
        let x: Vec<f64> = (0..400).map(|i| (i as f64 * 0.013).cos()).collect();
        let b = a.mul_vec(&vec![1.0; 400]).unwrap();
        let mut buf = Vec::new();
        let rr = relative_residual_with(&mut buf, &a, &b, &x);
        assert_eq!(rr.to_bits(), relative_residual(&a, &b, &x).to_bits());
        let ptr = buf.as_ptr();
        let cap = buf.capacity();
        for _ in 0..3 {
            relative_residual_with(&mut buf, &a, &b, &x);
            assert_eq!(buf.as_ptr(), ptr, "scratch buffer must be reused");
            assert_eq!(buf.capacity(), cap);
        }
    }

    #[test]
    fn options_constructors() {
        let o = SolveOptions::fixed_iterations(50);
        assert_eq!(o.max_iters, 50);
        assert_eq!(o.tol, 0.0);
        assert!(o.record_history);
        let o = SolveOptions::to_tolerance(1e-9, 200);
        assert_eq!(o.tol, 1e-9);
        assert!(!o.record_history);
    }

    #[test]
    fn residual_at_indexing() {
        let r = SolveResult {
            x: vec![],
            iterations: 3,
            converged: true,
            final_residual: 0.1,
            history: vec![0.5, 0.25, 0.1],
            fault: None,
        };
        assert_eq!(r.residual_at(1), Some(0.5));
        assert_eq!(r.residual_at(3), Some(0.1));
        assert_eq!(r.residual_at(4), None);
        assert_eq!(r.residual_at(0), None);
    }
}
