//! Chebyshev semi-iteration: polynomial acceleration of the damped Jacobi
//! method, needing only eigenvalue *bounds* of `D^{-1}A` (no inner
//! products — unlike CG it has **no synchronising reductions**, which is
//! exactly the property the paper's asynchronous programme prizes; it is
//! the classic middle ground between stationary relaxation and Krylov
//! methods).

use crate::convergence::{check_system, relative_residual, SolveOptions, SolveResult};
use abr_sparse::scaling::jacobi_operator_extremes;
use abr_sparse::{CsrMatrix, Result, SparseError};

/// Solves the SPD system `A x = b` with Chebyshev acceleration over the
/// Jacobi-preconditioned operator, given bounds
/// `0 < lambda_min <= lambda(D^{-1}A) <= lambda_max`.
pub fn chebyshev(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    lambda_min: f64,
    lambda_max: f64,
    opts: &SolveOptions,
) -> Result<SolveResult> {
    check_system(a, b, x0);
    if !(lambda_min > 0.0 && lambda_max >= lambda_min) {
        return Err(SparseError::Generator(format!(
            "need 0 < lambda_min <= lambda_max, got [{lambda_min}, {lambda_max}]"
        )));
    }
    let inv_diag: Vec<f64> = a.nonzero_diagonal()?.iter().map(|&d| 1.0 / d).collect();
    let theta = 0.5 * (lambda_max + lambda_min);
    let delta = 0.5 * (lambda_max - lambda_min);

    let mut x = x0.to_vec();
    let mut r = a.residual(b, &x)?;
    let mut z: Vec<f64> = r.iter().zip(&inv_diag).map(|(&ri, &di)| ri * di).collect();
    // Saad, Iterative Methods for Sparse Linear Systems, alg. 12.1,
    // applied to the Jacobi-preconditioned operator (z = D^{-1} r):
    //   sigma1 = theta/delta, rho_0 = 1/sigma1, d_0 = z_0/theta
    //   x   <- x + d
    //   rho <- 1/(2 sigma1 - rho)
    //   d   <- rho_new * rho_old * d + (2 rho_new / delta) * z
    // Degenerate delta ~ 0 (a single eigenvalue): one damped step
    // x <- x + z/theta solves the system; the loop below keeps working
    // because d collapses to z/theta-like updates with rho -> 1/(2 sigma1).
    let delta = delta.max(1e-12 * theta);
    let sigma1 = theta / delta;
    let mut rho = 1.0 / sigma1;
    let mut d: Vec<f64> = z.iter().map(|&zi| zi / theta).collect();
    let mut history = Vec::new();
    let mut iterations = 0;
    let mut converged = false;
    let nb = abr_sparse::blas1::norm2(b).max(f64::MIN_POSITIVE);

    while iterations < opts.max_iters && !converged {
        abr_sparse::blas1::axpy(1.0, &d, &mut x);
        r = a.residual(b, &x)?;
        for ((zi, &ri), &di) in z.iter_mut().zip(&r).zip(&inv_diag) {
            *zi = ri * di;
        }
        let rho_new = 1.0 / (2.0 * sigma1 - rho);
        for (di_, &zi) in d.iter_mut().zip(&z) {
            *di_ = rho_new * rho * *di_ + (2.0 * rho_new / delta) * zi;
        }
        rho = rho_new;
        iterations += 1;
        let rr = abr_sparse::blas1::norm2(&r) / nb;
        if opts.record_history {
            history.push(rr);
        }
        if opts.tol > 0.0 && rr <= opts.tol {
            converged = true;
        }
        if !rr.is_finite() {
            break;
        }
    }

    let final_residual = relative_residual(a, b, &x);
    if opts.tol > 0.0 && final_residual <= opts.tol {
        converged = true;
    }
    Ok(SolveResult { x, iterations, converged, final_residual, history, fault: None })
}

/// Chebyshev with Lanczos-estimated eigenvalue bounds (slightly widened
/// for safety). Returns the bounds actually used.
pub fn auto_chebyshev(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    opts: &SolveOptions,
) -> Result<(SolveResult, (f64, f64))> {
    let (lo, hi) = jacobi_operator_extremes(a)?;
    let lo = (lo * 0.95).max(f64::MIN_POSITIVE);
    let hi = hi * 1.05;
    Ok((chebyshev(a, b, x0, lo, hi, opts)?, (lo, hi)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::jacobi;
    use abr_sparse::gen::{laplacian_2d_5pt, trefethen};

    #[test]
    fn converges_on_poisson_much_faster_than_jacobi() {
        let a = laplacian_2d_5pt(12);
        let n = 144;
        let b = a.mul_vec(&vec![1.0; n]).unwrap();
        let opts = SolveOptions::to_tolerance(1e-10, 100_000);
        let (cheb, bounds) = auto_chebyshev(&a, &b, &vec![0.0; n], &opts).unwrap();
        let jac = jacobi(&a, &b, &vec![0.0; n], &opts).unwrap();
        assert!(cheb.converged, "residual {}", cheb.final_residual);
        assert!(bounds.0 > 0.0 && bounds.1 > bounds.0);
        assert!(
            cheb.iterations * 5 < jac.iterations,
            "Chebyshev {} vs Jacobi {}",
            cheb.iterations,
            jac.iterations
        );
    }

    #[test]
    fn converges_on_trefethen() {
        let a = trefethen(300).unwrap();
        let b = a.mul_vec(&vec![1.0; 300]).unwrap();
        let (r, _) =
            auto_chebyshev(&a, &b, &vec![0.0; 300], &SolveOptions::to_tolerance(1e-10, 2_000))
                .unwrap();
        assert!(r.converged, "residual {}", r.final_residual);
        assert!(r.iterations < 60, "{}", r.iterations);
    }

    #[test]
    fn wrong_bounds_rejected() {
        let a = laplacian_2d_5pt(4);
        let b = vec![1.0; 16];
        assert!(chebyshev(&a, &b, &[0.0; 16], 0.0, 2.0, &SolveOptions::default()).is_err());
        assert!(chebyshev(&a, &b, &[0.0; 16], 1.0, 0.5, &SolveOptions::default()).is_err());
    }

    #[test]
    fn reaches_exact_solution() {
        let a = laplacian_2d_5pt(8);
        let n = 64;
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 7) % 11) as f64).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let (r, _) =
            auto_chebyshev(&a, &b, &vec![0.0; n], &SolveOptions::to_tolerance(1e-11, 5_000))
                .unwrap();
        assert!(r.converged);
        for (xi, ti) in r.x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-8);
        }
    }
}
