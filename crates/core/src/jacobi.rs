//! The synchronous Jacobi method (paper §2.1, Eq. 2):
//! `x_i^{k+1} = (b_i - sum_{j != i} a_ij x_j^k) / a_ii`.

use crate::convergence::{check_system, relative_residual, SolveOptions, SolveResult};
use abr_sparse::{CsrMatrix, Result};

/// Solves `A x = b` with Jacobi iterations starting from `x0`.
///
/// Converges iff `rho(I - D^{-1}A) < 1`. Fails fast on a zero diagonal.
pub fn jacobi(a: &CsrMatrix, b: &[f64], x0: &[f64], opts: &SolveOptions) -> Result<SolveResult> {
    check_system(a, b, x0);
    let inv_diag: Vec<f64> = a.nonzero_diagonal()?.iter().map(|&d| 1.0 / d).collect();
    let n = a.n_rows();
    let mut x = x0.to_vec();
    let mut x_new = vec![0.0; n];
    let mut history = Vec::new();
    let mut iterations = 0;
    let mut converged = false;

    for _ in 0..opts.max_iters {
        for i in 0..n {
            let mut acc = b[i];
            for (j, v) in a.row_iter(i) {
                if j != i {
                    acc -= v * x[j];
                }
            }
            x_new[i] = acc * inv_diag[i];
        }
        std::mem::swap(&mut x, &mut x_new);
        iterations += 1;

        let need_residual =
            opts.record_history || (opts.tol > 0.0 && iterations % opts.check_every == 0);
        if need_residual {
            let rr = relative_residual(a, b, &x);
            if opts.record_history {
                history.push(rr);
            }
            if opts.tol > 0.0 && rr <= opts.tol {
                converged = true;
                break;
            }
            if !rr.is_finite() {
                break; // diverged to inf/nan: stop burning cycles
            }
        }
    }

    let final_residual = relative_residual(a, b, &x);
    if opts.tol > 0.0 && final_residual <= opts.tol {
        converged = true;
    }
    Ok(SolveResult { x, iterations, converged, final_residual, history, fault: None })
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_sparse::gen::{laplacian_1d, laplacian_2d_5pt};
    use abr_sparse::{CsrMatrix, IterationMatrix};

    #[test]
    fn solves_laplacian() {
        let a = laplacian_1d(20);
        let x_true = vec![1.0; 20];
        let b = a.mul_vec(&x_true).unwrap();
        let r = jacobi(&a, &b, &[0.0; 20], &SolveOptions::to_tolerance(1e-10, 5000)).unwrap();
        assert!(r.converged, "residual {}", r.final_residual);
        for (xi, ti) in r.x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-8);
        }
    }

    #[test]
    fn convergence_rate_matches_spectral_radius() {
        // Asymptotically the residual shrinks by rho(B) per iteration.
        let a = laplacian_2d_5pt(8);
        let rho = IterationMatrix::new(&a).unwrap().spectral_radius().unwrap();
        let b = a.mul_vec(&vec![1.0; 64]).unwrap();
        let r = jacobi(&a, &b, &vec![0.0; 64], &SolveOptions::fixed_iterations(200)).unwrap();
        let observed = (r.history[199] / r.history[150]).powf(1.0 / 49.0);
        assert!((observed - rho).abs() < 0.01, "observed {observed} vs rho {rho}");
    }

    #[test]
    fn diverges_when_rho_above_one() {
        // Not diagonally dominant: 2x2 with rho(B) = 2.
        let mut coo = abr_sparse::CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push_sym(0, 1, 2.0).unwrap();
        coo.push(1, 1, 1.0).unwrap();
        let a = coo.to_csr();
        let b = vec![1.0, 1.0];
        let r = jacobi(&a, &b, &[0.0, 0.0], &SolveOptions::fixed_iterations(40)).unwrap();
        assert!(!r.converged);
        assert!(r.history[30] > r.history[1], "residual must grow");
    }

    #[test]
    fn zero_diagonal_is_error() {
        let a = CsrMatrix::from_diagonal(&[1.0, 0.0]);
        assert!(jacobi(&a, &[1.0, 1.0], &[0.0, 0.0], &SolveOptions::default()).is_err());
    }

    #[test]
    fn history_length_matches_iterations() {
        let a = laplacian_1d(10);
        let b = a.mul_vec(&[1.0; 10]).unwrap();
        let r = jacobi(&a, &b, &[0.0; 10], &SolveOptions::fixed_iterations(25)).unwrap();
        assert_eq!(r.iterations, 25);
        assert_eq!(r.history.len(), 25);
        // monotone decreasing for this SPD diagonally dominant system
        for w in r.history.windows(2) {
            assert!(w[1] <= w[0] * (1.0 + 1e-12));
        }
    }

    #[test]
    fn starts_from_given_guess() {
        let a = laplacian_1d(5);
        let x_true = vec![3.0; 5];
        let b = a.mul_vec(&x_true).unwrap();
        // starting at the solution: zero iterations of work needed
        let r = jacobi(&a, &b, &x_true, &SolveOptions::to_tolerance(1e-14, 10)).unwrap();
        assert!(r.converged);
        assert!(r.final_residual < 1e-14);
    }
}
