//! The Gauss-Seidel method: like Jacobi but each component update
//! immediately uses the freshly computed values of earlier components —
//! the synchronous CPU reference the paper compares against, plus a
//! red-black (two-colour) variant that parallelises on grids.

use crate::convergence::{check_system, relative_residual, SolveOptions, SolveResult};
use abr_sparse::{CsrMatrix, Result};

/// Solves `A x = b` with forward Gauss-Seidel sweeps.
pub fn gauss_seidel(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    opts: &SolveOptions,
) -> Result<SolveResult> {
    check_system(a, b, x0);
    let inv_diag: Vec<f64> = a.nonzero_diagonal()?.iter().map(|&d| 1.0 / d).collect();
    let n = a.n_rows();
    let mut x = x0.to_vec();
    let mut history = Vec::new();
    let mut iterations = 0;
    let mut converged = false;

    for _ in 0..opts.max_iters {
        for i in 0..n {
            let mut acc = b[i];
            for (j, v) in a.row_iter(i) {
                if j != i {
                    acc -= v * x[j];
                }
            }
            x[i] = acc * inv_diag[i];
        }
        iterations += 1;
        let need_residual =
            opts.record_history || (opts.tol > 0.0 && iterations % opts.check_every == 0);
        if need_residual {
            let rr = relative_residual(a, b, &x);
            if opts.record_history {
                history.push(rr);
            }
            if opts.tol > 0.0 && rr <= opts.tol {
                converged = true;
                break;
            }
            if !rr.is_finite() {
                break;
            }
        }
    }

    let final_residual = relative_residual(a, b, &x);
    if opts.tol > 0.0 && final_residual <= opts.tol {
        converged = true;
    }
    Ok(SolveResult { x, iterations, converged, final_residual, history, fault: None })
}

/// Backward Gauss-Seidel sweeps (rows in descending order).
pub fn gauss_seidel_backward(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    opts: &SolveOptions,
) -> Result<SolveResult> {
    check_system(a, b, x0);
    let inv_diag: Vec<f64> = a.nonzero_diagonal()?.iter().map(|&d| 1.0 / d).collect();
    let n = a.n_rows();
    let mut x = x0.to_vec();
    let mut history = Vec::new();
    let mut iterations = 0;
    let mut converged = false;

    for _ in 0..opts.max_iters {
        for i in (0..n).rev() {
            let mut acc = b[i];
            for (j, v) in a.row_iter(i) {
                if j != i {
                    acc -= v * x[j];
                }
            }
            x[i] = acc * inv_diag[i];
        }
        iterations += 1;
        let need_residual =
            opts.record_history || (opts.tol > 0.0 && iterations % opts.check_every == 0);
        if need_residual {
            let rr = relative_residual(a, b, &x);
            if opts.record_history {
                history.push(rr);
            }
            if opts.tol > 0.0 && rr <= opts.tol {
                converged = true;
                break;
            }
            if !rr.is_finite() {
                break;
            }
        }
    }

    let final_residual = relative_residual(a, b, &x);
    if opts.tol > 0.0 && final_residual <= opts.tol {
        converged = true;
    }
    Ok(SolveResult { x, iterations, converged, final_residual, history, fault: None })
}

/// Symmetric Gauss-Seidel: one forward followed by one backward sweep per
/// iteration. The resulting iteration operator is symmetric in the
/// `A`-inner product, which makes SGS usable as an SPD preconditioner.
pub fn gauss_seidel_symmetric(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    opts: &SolveOptions,
) -> Result<SolveResult> {
    check_system(a, b, x0);
    let inv_diag: Vec<f64> = a.nonzero_diagonal()?.iter().map(|&d| 1.0 / d).collect();
    let n = a.n_rows();
    let mut x = x0.to_vec();
    let mut history = Vec::new();
    let mut iterations = 0;
    let mut converged = false;

    for _ in 0..opts.max_iters {
        for i in 0..n {
            let mut acc = b[i];
            for (j, v) in a.row_iter(i) {
                if j != i {
                    acc -= v * x[j];
                }
            }
            x[i] = acc * inv_diag[i];
        }
        for i in (0..n).rev() {
            let mut acc = b[i];
            for (j, v) in a.row_iter(i) {
                if j != i {
                    acc -= v * x[j];
                }
            }
            x[i] = acc * inv_diag[i];
        }
        iterations += 1;
        let need_residual =
            opts.record_history || (opts.tol > 0.0 && iterations % opts.check_every == 0);
        if need_residual {
            let rr = relative_residual(a, b, &x);
            if opts.record_history {
                history.push(rr);
            }
            if opts.tol > 0.0 && rr <= opts.tol {
                converged = true;
                break;
            }
            if !rr.is_finite() {
                break;
            }
        }
    }

    let final_residual = relative_residual(a, b, &x);
    if opts.tol > 0.0 && final_residual <= opts.tol {
        converged = true;
    }
    Ok(SolveResult { x, iterations, converged, final_residual, history, fault: None })
}

/// Red-black Gauss-Seidel: rows are two-coloured by `colour[i]`, all rows
/// of colour 0 update first (in parallel, conceptually), then colour 1.
/// For 5-point-stencil grids with a checkerboard colouring this is an
/// exact Gauss-Seidel reordering; for general matrices it is a block
/// two-stage method.
pub fn gauss_seidel_red_black(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    colour: &[bool],
    opts: &SolveOptions,
) -> Result<SolveResult> {
    check_system(a, b, x0);
    assert_eq!(colour.len(), a.n_rows(), "one colour per row");
    let inv_diag: Vec<f64> = a.nonzero_diagonal()?.iter().map(|&d| 1.0 / d).collect();
    let n = a.n_rows();
    let mut x = x0.to_vec();
    let mut history = Vec::new();
    let mut iterations = 0;
    let mut converged = false;

    for _ in 0..opts.max_iters {
        for phase in [false, true] {
            for i in 0..n {
                if colour[i] != phase {
                    continue;
                }
                let mut acc = b[i];
                for (j, v) in a.row_iter(i) {
                    if j != i {
                        acc -= v * x[j];
                    }
                }
                x[i] = acc * inv_diag[i];
            }
        }
        iterations += 1;
        let need_residual =
            opts.record_history || (opts.tol > 0.0 && iterations % opts.check_every == 0);
        if need_residual {
            let rr = relative_residual(a, b, &x);
            if opts.record_history {
                history.push(rr);
            }
            if opts.tol > 0.0 && rr <= opts.tol {
                converged = true;
                break;
            }
            if !rr.is_finite() {
                break;
            }
        }
    }

    let final_residual = relative_residual(a, b, &x);
    if opts.tol > 0.0 && final_residual <= opts.tol {
        converged = true;
    }
    Ok(SolveResult { x, iterations, converged, final_residual, history, fault: None })
}

/// Multi-colour Gauss-Seidel: rows update colour class by colour class
/// (classes from [`abr_sparse::coloring`]); within a class all updates
/// are independent and could run in parallel, across classes the freshest
/// values are used. With a valid colouring this is an exact Gauss-Seidel
/// reordering — the classical synchronous-parallel alternative to the
/// paper's asynchronous approach.
pub fn gauss_seidel_multicolor(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    colors: &[usize],
    opts: &SolveOptions,
) -> Result<SolveResult> {
    check_system(a, b, x0);
    assert_eq!(colors.len(), a.n_rows(), "one colour per row");
    let n_colors = colors.iter().copied().max().map_or(0, |m| m + 1);
    // rows grouped by colour, preserving order within a class
    let mut classes: Vec<Vec<usize>> = vec![Vec::new(); n_colors];
    for (i, &c) in colors.iter().enumerate() {
        classes[c].push(i);
    }
    let inv_diag: Vec<f64> = a.nonzero_diagonal()?.iter().map(|&d| 1.0 / d).collect();
    let mut x = x0.to_vec();
    let mut history = Vec::new();
    let mut iterations = 0;
    let mut converged = false;

    for _ in 0..opts.max_iters {
        for class in &classes {
            for &i in class {
                let mut acc = b[i];
                for (j, v) in a.row_iter(i) {
                    if j != i {
                        acc -= v * x[j];
                    }
                }
                x[i] = acc * inv_diag[i];
            }
        }
        iterations += 1;
        let need_residual =
            opts.record_history || (opts.tol > 0.0 && iterations % opts.check_every == 0);
        if need_residual {
            let rr = relative_residual(a, b, &x);
            if opts.record_history {
                history.push(rr);
            }
            if opts.tol > 0.0 && rr <= opts.tol {
                converged = true;
                break;
            }
            if !rr.is_finite() {
                break;
            }
        }
    }

    let final_residual = relative_residual(a, b, &x);
    if opts.tol > 0.0 && final_residual <= opts.tol {
        converged = true;
    }
    Ok(SolveResult { x, iterations, converged, final_residual, history, fault: None })
}

/// Checkerboard colouring for an `m x m` grid ordered row-major.
pub fn checkerboard(m: usize) -> Vec<bool> {
    (0..m * m).map(|c| (c / m + c % m) % 2 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::jacobi;
    use abr_sparse::gen::{laplacian_1d, laplacian_2d_5pt};

    #[test]
    fn solves_laplacian() {
        let a = laplacian_1d(30);
        let x_true: Vec<f64> = (0..30).map(|i| (i as f64 * 0.3).sin()).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let r =
            gauss_seidel(&a, &b, &vec![0.0; 30], &SolveOptions::to_tolerance(1e-12, 5000)).unwrap();
        assert!(r.converged);
        for (xi, ti) in r.x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn converges_about_twice_as_fast_as_jacobi() {
        // The classical result the paper invokes in §4.3: for consistently
        // ordered matrices rho(GS) = rho(Jacobi)^2.
        let a = laplacian_2d_5pt(10);
        let b = a.mul_vec(&vec![1.0; 100]).unwrap();
        let opts = SolveOptions::fixed_iterations(120);
        let j = jacobi(&a, &b, &vec![0.0; 100], &opts).unwrap();
        let g = gauss_seidel(&a, &b, &vec![0.0; 100], &opts).unwrap();
        let rate_j = (j.history[119] / j.history[79]).powf(1.0 / 40.0);
        let rate_g = (g.history[119] / g.history[79]).powf(1.0 / 40.0);
        assert!(
            (rate_g - rate_j * rate_j).abs() < 0.02,
            "GS rate {rate_g} vs Jacobi^2 {}",
            rate_j * rate_j
        );
    }

    #[test]
    fn red_black_equals_forward_rate_on_grid() {
        let m = 8;
        let a = laplacian_2d_5pt(m);
        let b = a.mul_vec(&vec![1.0; m * m]).unwrap();
        let opts = SolveOptions::fixed_iterations(80);
        let rb = gauss_seidel_red_black(&a, &b, &vec![0.0; m * m], &checkerboard(m), &opts)
            .unwrap();
        let fw = gauss_seidel(&a, &b, &vec![0.0; m * m], &opts).unwrap();
        // same asymptotic rate (not identical iterates)
        let rate_rb = (rb.history[79] / rb.history[39]).powf(1.0 / 40.0);
        let rate_fw = (fw.history[79] / fw.history[39]).powf(1.0 / 40.0);
        assert!((rate_rb - rate_fw).abs() < 0.03, "{rate_rb} vs {rate_fw}");
    }

    #[test]
    fn backward_converges_with_forward_rate() {
        let a = laplacian_2d_5pt(8);
        let b = a.mul_vec(&vec![1.0; 64]).unwrap();
        let opts = SolveOptions::to_tolerance(1e-10, 100_000);
        let fw = gauss_seidel(&a, &b, &vec![0.0; 64], &opts).unwrap();
        let bw = gauss_seidel_backward(&a, &b, &vec![0.0; 64], &opts).unwrap();
        assert!(fw.converged && bw.converged);
        // symmetric matrix: identical rate up to transient effects
        let ratio = bw.iterations as f64 / fw.iterations as f64;
        assert!((0.8..1.25).contains(&ratio), "{} vs {}", bw.iterations, fw.iterations);
    }

    #[test]
    fn symmetric_sweep_at_least_halves_iteration_count() {
        let a = laplacian_2d_5pt(8);
        let b = a.mul_vec(&vec![1.0; 64]).unwrap();
        let opts = SolveOptions::to_tolerance(1e-10, 100_000);
        let fw = gauss_seidel(&a, &b, &vec![0.0; 64], &opts).unwrap();
        let sym = gauss_seidel_symmetric(&a, &b, &vec![0.0; 64], &opts).unwrap();
        assert!(sym.converged);
        // each SGS iteration does two sweeps; the symmetrised operator is
        // not quite as fast as two forward sweeps, but close
        assert!(
            (sym.iterations as f64) <= 0.65 * fw.iterations as f64,
            "SGS {} vs GS {}",
            sym.iterations,
            fw.iterations
        );
    }

    #[test]
    fn multicolor_matches_forward_gs_rate_on_grid() {
        use abr_sparse::coloring::greedy_coloring;
        let m = 10;
        let a = laplacian_2d_5pt(m);
        let b = a.mul_vec(&vec![1.0; m * m]).unwrap();
        let colors = greedy_coloring(&a);
        let opts = SolveOptions::to_tolerance(1e-10, 100_000);
        let mc = gauss_seidel_multicolor(&a, &b, &vec![0.0; m * m], &colors, &opts).unwrap();
        let fw = gauss_seidel(&a, &b, &vec![0.0; m * m], &opts).unwrap();
        assert!(mc.converged && fw.converged);
        let ratio = mc.iterations as f64 / fw.iterations as f64;
        assert!((0.7..1.4).contains(&ratio), "MC {} vs FW {}", mc.iterations, fw.iterations);
    }

    #[test]
    fn multicolor_converges_on_many_color_matrix() {
        use abr_sparse::coloring::greedy_coloring;
        let a = abr_sparse::gen::trefethen(128).unwrap();
        let b = a.mul_vec(&vec![1.0; 128]).unwrap();
        let colors = greedy_coloring(&a);
        let r = gauss_seidel_multicolor(
            &a,
            &b,
            &vec![0.0; 128],
            &colors,
            &SolveOptions::to_tolerance(1e-10, 10_000),
        )
        .unwrap();
        assert!(r.converged, "residual {}", r.final_residual);
    }

    #[test]
    fn checkerboard_alternates() {
        let c = checkerboard(3);
        assert_eq!(c, vec![false, true, false, true, false, true, false, true, false]);
    }

    #[test]
    fn tolerance_stop_before_max() {
        let a = laplacian_1d(10);
        let b = a.mul_vec(&[1.0; 10]).unwrap();
        let r = gauss_seidel(&a, &b, &[0.0; 10], &SolveOptions::to_tolerance(1e-6, 100000))
            .unwrap();
        assert!(r.converged);
        assert!(r.iterations < 100000);
    }
}
